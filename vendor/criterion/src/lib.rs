//! Offline, API-compatible subset of the `criterion` benchmark harness.
//!
//! Provides `Criterion::bench_function`, `Bencher::{iter, iter_batched}`,
//! `BatchSize`, `black_box` and the `criterion_group!`/`criterion_main!`
//! macros. Measurement is a simple calibrated loop reporting the median of
//! several samples — adequate for the relative comparisons the workspace's
//! benches make, with no registry access required.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock time per measured sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(60);
/// Number of samples whose median is reported.
const SAMPLES: usize = 7;

/// How batched inputs are grouped between setup calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many iterations per batch.
    SmallInput,
    /// Large inputs: one setup per iteration batch of modest size.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    /// Measured median time per iteration.
    per_iter: Option<Duration>,
}

impl Bencher {
    /// Benchmarks `routine`, timing repeated calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate the iteration count for the sample target.
        let mut n: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= SAMPLE_TARGET / 4 || n >= 1 << 24 {
                break;
            }
            n = (n * 4).max(2);
        }
        let mut samples = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            let start = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            samples.push(start.elapsed() / u32::try_from(n).unwrap_or(u32::MAX));
        }
        samples.sort_unstable();
        self.per_iter = Some(samples[samples.len() / 2]);
    }

    /// Benchmarks `routine` on fresh inputs produced by `setup`; only the
    /// routine is timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut samples = Vec::with_capacity(SAMPLES);
        // One timed call per sample: setup cost stays outside the timer,
        // which is the property the callers rely on.
        for _ in 0..SAMPLES {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            samples.push(start.elapsed());
        }
        samples.sort_unstable();
        self.per_iter = Some(samples[samples.len() / 2]);
    }

    /// Like [`iter_batched`](Self::iter_batched) but passes the input by
    /// mutable reference.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        let mut samples = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            samples.push(start.elapsed());
        }
        samples.sort_unstable();
        self.per_iter = Some(samples[samples.len() / 2]);
    }
}

/// Benchmark registry and reporter.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one named benchmark and prints its median time.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { per_iter: None };
        f(&mut b);
        match b.per_iter {
            Some(t) => println!("{id:<44} time: {}", format_duration(t)),
            None => println!("{id:<44} time: <no measurement>"),
        }
        self
    }
}

/// Renders a duration with criterion-style units.
#[must_use]
pub fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Groups benchmark functions into one runnable entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        c.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u8; 64],
                |v| v.iter().map(|&x| x as u64).sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
    }

    #[test]
    fn duration_units() {
        assert!(format_duration(Duration::from_nanos(12)).contains("ns"));
        assert!(format_duration(Duration::from_micros(12)).contains("µs"));
        assert!(format_duration(Duration::from_millis(12)).contains("ms"));
    }
}
