//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no registry access, so this vendored stand-in
//! provides exactly the surface the workspace uses: [`Rng::gen`],
//! [`Rng::gen_range`], [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`] and
//! [`rngs::StdRng`]. The generator is xoshiro256** seeded through SplitMix64,
//! so sequences are deterministic per seed (they differ from upstream
//! `rand`'s StdRng stream, which callers must not rely on).

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (only the `u64` convenience entry point is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly over their whole domain (the `Standard`
/// distribution of upstream `rand`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling (Lemire); bias is < 2^-64
                // per draw which is irrelevant for test workloads.
                let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                if start == 0 && end as u128 == <$t>::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                let span = (end - start) as u64 + 1;
                let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                start + hi as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                (self.start as i128 + hi as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range in gen_range");
        let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        self.start + unit * (self.end - self.start)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value over its full domain (`Standard` distribution).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for upstream StdRng).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as upstream rand does for small seeds.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = r.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn bool_draws_are_mixed() {
        let mut r = StdRng::seed_from_u64(1);
        let trues = (0..256).filter(|_| r.gen::<bool>()).count();
        assert!(trues > 64 && trues < 192, "suspicious bias: {trues}/256");
    }
}
