//! Harness configuration, case outcomes and the deterministic test RNG.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Per-test configuration (`ProptestConfig` in the prelude).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of accepted cases to run.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` accepted cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// Outcome of a single property case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case's assumptions did not hold; try another input.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

/// Deterministic RNG: seeded from the property name so runs are
/// reproducible without an environment variable protocol.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Seeds from a test name (FNV-1a).
    #[must_use]
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
