//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                if start == 0 && end as u128 == <$t>::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                start + (rng.below((end - start) as u64 + 1) as $t)
            }
        }
    )*};
}
impl_range_strategy_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy_int!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)*) = self;
                ($($name.generate(rng),)*)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Strategy for `Vec`s with element strategy `S` and a length range.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.len.clone().generate(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `prop::collection::vec(element, len_range)`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}
