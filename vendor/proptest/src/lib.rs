//! Offline, API-compatible subset of the `proptest` crate.
//!
//! Supports the surface the workspace's property tests use: the
//! [`proptest!`] macro (with `#![proptest_config(..)]`), range / tuple /
//! `prop::collection::vec` strategies, `prop_assert!`, `prop_assert_eq!`
//! and `prop_assume!`. Failing cases are reported with their generated
//! inputs; shrinking is not implemented (the offline build has no
//! registry access, so this vendored subset stands in for upstream).

pub mod strategy;
pub mod test_runner;

/// Strategy combinators namespace (mirrors upstream's `prop::` paths).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::vec;
    }
}

/// Collection strategies at the upstream path `proptest::collection`.
pub mod collection {
    pub use crate::strategy::vec;
}

/// The glob-import surface used by tests.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `cases` random instantiations of `body`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    (@impl $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = cfg.cases.saturating_mul(16).max(64);
                while accepted < cfg.cases && attempts < max_attempts {
                    attempts += 1;
                    $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)*
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; ",)*),
                        $(&$arg),*
                    );
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "property `{}` failed after {} case(s): {}\n  inputs: {}",
                                stringify!($name), accepted + 1, msg, inputs,
                            );
                        }
                    }
                }
                // Match upstream: a run that cannot reach its configured
                // case count because prop_assume! rejected too much is an
                // error, not a silently weakened test.
                assert!(
                    accepted >= cfg.cases,
                    "property `{}` rejected too many inputs ({} accepted / {} attempts)",
                    stringify!($name), accepted, attempts,
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::test_runner::Config::default(); $($rest)*);
    };
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
            l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}\n  {}",
            l, r, format!($($fmt)*)
        );
    }};
}

/// `assert_ne!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: `left != right`\n  both: {:?}", l);
    }};
}

/// Discards the current case (counts as neither pass nor fail).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vectors_respect_length(v in prop::collection::vec(1usize..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for e in &v {
                prop_assert!((1..10).contains(e));
            }
        }

        #[test]
        fn tuples_and_assume(pair in (0u8..4, 1u64..100)) {
            prop_assume!(pair.0 != 3);
            prop_assert!(pair.0 < 3);
            prop_assert_eq!(pair.1, pair.1);
        }
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failures_panic_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(x in 0usize..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
