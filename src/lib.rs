//! STEAC suite — umbrella crate re-exporting the whole reproduction of
//! *"SOC Testing Methodology and Practice"* (DATE 2005).
//!
//! See the README for the map of the workspace; every subsystem is its
//! own crate:
//!
//! * [`steac`] — the platform (Fig. 1 flow, insertion, reports),
//! * [`steac_stil`] — STIL parsing and core test information,
//! * [`steac_sched`] — the session-based Core Test Scheduler,
//! * [`steac_wrapper`] / [`steac_tam`] — IEEE 1500-style wrappers, TAM,
//!   Test Controller, IO sharing,
//! * [`steac_membist`] — the BRAINS memory-BIST compiler,
//! * [`steac_pattern`] — pattern translation and the ATE cycle player,
//! * [`steac_netlist`] / [`steac_sim`] — the gate-level substrate,
//! * [`steac_dsc`] — the DSC test-chip model and the calibrated paper
//!   experiments.

pub use steac;
pub use steac_dsc;
pub use steac_membist;
pub use steac_netlist;
pub use steac_pattern;
pub use steac_sched;
pub use steac_sim;
pub use steac_stil;
pub use steac_tam;
pub use steac_wrapper;
