//! STEAC suite — umbrella crate re-exporting the whole reproduction of
//! *"SOC Testing Methodology and Practice"* (DATE 2005).
//!
//! See the README for the map of the workspace; every subsystem is its
//! own crate:
//!
//! * [`steac`] — the platform (Fig. 1 flow, insertion, reports),
//! * [`steac_stil`] — STIL parsing and core test information,
//! * [`steac_sched`] — the session-based Core Test Scheduler,
//! * [`steac_wrapper`] / [`steac_tam`] — IEEE 1500-style wrappers, TAM,
//!   Test Controller, IO sharing,
//! * [`steac_membist`] — the BRAINS memory-BIST compiler,
//! * [`steac_pattern`] — pattern translation and the ATE cycle player,
//! * [`steac_netlist`] / [`steac_sim`] — the gate-level substrate,
//! * [`steac_dsc`] — the DSC test-chip model and the calibrated paper
//!   experiments,
//! * [`steac_zoo`] — the seeded synthetic-SOC corpus and scheduler
//!   invariant checks (the standing stress workload).

pub use steac;
pub use steac_dsc;
pub use steac_membist;
pub use steac_netlist;
pub use steac_pattern;
pub use steac_sched;
pub use steac_sim;
pub use steac_stil;
pub use steac_tam;
pub use steac_wrapper;
pub use steac_zoo;

use steac_sim::shard::JobRegistry;

/// The platform's worker-side job registry: every distributable
/// workload, keyed by its wire `kind`. This is the one table the
/// `steac-worker` binary routes requests through — in stdio mode
/// (process pools, spawn transports) and in `--serve` TCP mode (remote
/// fleets) alike. Workload crates each contribute a single
/// `open_wire_job` constructor, and this umbrella crate is the only
/// place that knows them all.
///
/// | kind | workload | crate |
/// |------|----------|-------|
/// | 1 | PPSFP vector grading of a stuck-at fault chunk | `steac_sim::fault` |
/// | 2 | 64-pattern ATE playback chunk | `steac_pattern::cycle` |
/// | 3 | packed March walk over a memory-fault chunk | `steac_membist::wire` |
/// | 4 | transition-fault grading / dictionary chunk | `steac_sim::models::transition` |
/// | 5 | bridging-fault grading / dictionary chunk | `steac_sim::models::bridging` |
/// | 6 | fault-dictionary diagnosis chunk | `steac_sim::models::dictionary` |
#[must_use]
pub fn worker_registry() -> JobRegistry {
    let mut registry = JobRegistry::new();
    registry.register(
        steac_sim::fault::WIRE_KIND,
        "gate-vector-grading",
        steac_sim::fault::open_wire_job,
    );
    registry.register(
        steac_pattern::cycle::WIRE_KIND,
        "ate-playback-chunk",
        steac_pattern::cycle::open_wire_job,
    );
    registry.register(
        steac_membist::wire::WIRE_KIND,
        "march-walk",
        steac_membist::wire::open_wire_job,
    );
    registry.register(
        steac_sim::models::transition::WIRE_KIND,
        "transition-grading",
        steac_sim::models::transition::open_wire_job,
    );
    registry.register(
        steac_sim::models::bridging::WIRE_KIND,
        "bridging-grading",
        steac_sim::models::bridging::open_wire_job,
    );
    registry.register(
        steac_sim::models::dictionary::WIRE_KIND,
        "dictionary-diagnose",
        steac_sim::models::dictionary::open_wire_job,
    );
    registry
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every workload registers exactly once, under its own kind.
    #[test]
    fn registry_covers_every_distributable_workload() {
        let kinds: Vec<(u16, &str)> = worker_registry().kinds().collect();
        assert_eq!(
            kinds,
            [
                (1, "gate-vector-grading"),
                (2, "ate-playback-chunk"),
                (3, "march-walk"),
                (4, "transition-grading"),
                (5, "bridging-grading"),
                (6, "dictionary-diagnose"),
            ]
        );
        assert!(worker_registry().open(999, b"").is_err());
    }
}
