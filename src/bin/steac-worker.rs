//! `steac-worker` — the process-pool worker of the STEAC platform.
//!
//! Reads one job plus its work units from stdin (the versioned protocol
//! in `steac_sim::shard`), executes every unit, and writes the per-unit
//! results to stdout. The job `kind` selects the workload:
//!
//! | kind | workload | crate |
//! |------|----------|-------|
//! | 1 | PPSFP vector grading of a fault chunk | `steac_sim::fault` |
//! | 2 | 64-pattern ATE playback chunk | `steac_pattern::cycle` |
//! | 3 | packed March walk over a memory-fault chunk | `steac_membist::wire` |
//!
//! Spawned by `steac_sim::shard::ProcessPool` (the dispatcher behind the
//! `STEAC_WORKERS` environment knob); also runnable by hand or from a
//! remote shell — any transport that delivers the request bytes to
//! stdin works, which is what makes the same passes machine-portable.
//! Protocol errors exit nonzero with a diagnostic on stderr; per-unit
//! failures are reported in-band so the dispatcher can attribute them to
//! the lowest-indexed failing unit.

use std::io::{stdin, stdout};
use std::process::ExitCode;
use steac_sim::shard::{serve_worker, WireJob};

fn route(kind: u16, job: &[u8]) -> Result<Box<dyn WireJob>, String> {
    match kind {
        steac_sim::fault::WIRE_KIND => steac_sim::fault::open_wire_job(job),
        steac_pattern::cycle::WIRE_KIND => steac_pattern::cycle::open_wire_job(job),
        steac_membist::wire::WIRE_KIND => steac_membist::wire::open_wire_job(job),
        other => Err(format!("unknown work-unit kind {other}")),
    }
}

fn main() -> ExitCode {
    match serve_worker(stdin().lock(), stdout().lock(), route) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("steac-worker: {e}");
            ExitCode::from(2)
        }
    }
}
