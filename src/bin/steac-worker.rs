//! `steac-worker` — the process-pool and remote-fleet worker of the
//! STEAC platform.
//!
//! Three modes, one execution core (`steac_sim::shard::process_request`
//! / `process_request_with`), one job table
//! (`steac_suite::worker_registry` — see its docs for the kind table),
//! so this binary contains no per-workload knowledge at all:
//!
//! * **stdio (default)**: reads one job plus its work units from stdin
//!   (the versioned protocol in `steac_sim::shard`), executes every
//!   unit, writes the per-unit results to stdout and exits. Spawned by
//!   `steac_sim::shard::ProcessPool` (`STEAC_EXEC=processes:N` /
//!   `STEAC_WORKERS=N`) and by `steac_sim::remote::SpawnTransport`.
//!   The worker state is fresh per process, so by-hash requests
//!   correctly draw "need program".
//! * **`--serve <host:port> [--cache-cap N]`**: binds a TCP listener
//!   and serves the same requests forever over persistent, pipelined
//!   sessions (`steac_sim::remote::serve_tcp_with_state`): each
//!   connection is a framed request loop, each request runs on its own
//!   thread, and one shared worker state carries the program cache and
//!   status counters across every connection the process ever accepts.
//!   This is the remote half of `STEAC_EXEC=remote:host:port,…` — start
//!   one per host of the fleet. The bound address is printed to stdout
//!   (bind to port 0 for an ephemeral port and scrape it from that
//!   line). The program cache holds 8 entries by default — enough for a
//!   single campaign, but interleaved streaming workloads (grading +
//!   playback + March) cycle more distinct jobs than that and thrash;
//!   size it with `--cache-cap N` (or `STEAC_CACHE_CAP=N`, flag wins)
//!   when a fleet serves mixed campaigns.
//! * **`--status <host:port>`**: queries a serving worker's status
//!   counters (uptime, program-cache entries/capacity/hits/misses/
//!   evictions, requests and units served, bytes received) and prints
//!   them — the observability half of the protocol's status request.
//!   Evictions while the cache sits full are flagged as pressure, the
//!   signal to raise `--cache-cap`.
//!
//! Protocol errors exit nonzero with a diagnostic on stderr (stdio
//! mode) or close the offending connection (serve mode — a misbehaving
//! client never takes the server down); per-unit failures are reported
//! in-band so the dispatcher can attribute them to the lowest-indexed
//! failing unit.
//!
//! # Fault models and dictionaries
//!
//! The gate-level fault models (`steac_sim::models`) each register
//! their own kind — 4 (transition/delay), 5 (bridging), 6 (dictionary
//! diagnosis) — next to the founding stuck-at kind 1, so a fleet
//! worker needs no flag to serve a mixed-model campaign: the dispatcher
//! picks the model, this binary just routes kinds. Flows that read the
//! model from the environment (`steac_zoo`, the scaling bench) select
//! it with `STEAC_MODEL=stuck-at|transition|bridging` — set on the
//! *dispatching* side, never on the worker. Kinds 4 and 5 carry a mode
//! byte choosing between coverage grading (lane-mask results, as the
//! stuck-at kind) and fault-dictionary building, whose unit results are per-fault
//! `(first detecting pattern, pattern x output signature bitmap)`
//! entries; a full dictionary serializes as an `SDCT` block (magic,
//! wire version, pattern/output counts, entries) — the persistent
//! artifact kind 6 diagnoses observed failure signatures against.

use std::io::{stdin, stdout, Write as _};
use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::Arc;
use steac_sim::remote::{query_status, serve_tcp_with_state, TcpTransport};
use steac_sim::shard::{
    env_cache_capacity, serve_worker, WorkerState, DEFAULT_PROGRAM_CACHE_CAPACITY,
};

const USAGE: &str =
    "usage: steac-worker [--serve <host:port> [--cache-cap N] | --status <host:port>]";

/// Program-cache capacity for `--serve`: the `--cache-cap` flag when
/// given, else `STEAC_CACHE_CAP`, else the built-in default.
fn serve_cache_capacity(rest: &[String]) -> Result<usize, String> {
    match rest {
        [] => Ok(env_cache_capacity().unwrap_or(DEFAULT_PROGRAM_CACHE_CAPACITY)),
        [flag, n] if flag == "--cache-cap" => match n.parse::<usize>() {
            Ok(cap) if cap > 0 => Ok(cap),
            _ => Err(format!("--cache-cap must be a positive integer, got `{n}`")),
        },
        _ => Err(USAGE.to_string()),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let registry = steac_suite::worker_registry();
    let result = match args.as_slice() {
        [] => serve_worker(stdin().lock(), stdout().lock(), |kind, job| {
            registry.open(kind, job)
        }),
        [flag, addr, rest @ ..] if flag == "--serve" => match serve_cache_capacity(rest) {
            Ok(capacity) => match TcpListener::bind(addr) {
                Ok(listener) => {
                    match listener.local_addr() {
                        Ok(bound) => println!("steac-worker: serving on {bound}"),
                        Err(_) => println!("steac-worker: serving on {addr}"),
                    }
                    let _ = stdout().flush();
                    serve_tcp_with_state(
                        listener,
                        move |kind, job| registry.open(kind, job),
                        Arc::new(WorkerState::with_cache_capacity(capacity)),
                    )
                }
                Err(e) => Err(format!("binding {addr}: {e}")),
            },
            Err(e) => Err(e),
        },
        [flag, addr] if flag == "--status" => {
            let transport = TcpTransport::new(addr.clone());
            query_status(&transport).map(|status| println!("{addr}: {status}"))
        }
        _ => Err(USAGE.to_string()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("steac-worker: {e}");
            ExitCode::from(2)
        }
    }
}
