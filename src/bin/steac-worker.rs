//! `steac-worker` — the process-pool worker of the STEAC platform.
//!
//! Reads one job plus its work units from stdin (the versioned protocol
//! in `steac_sim::shard`), executes every unit, and writes the per-unit
//! results to stdout. The job `kind` is routed through the single
//! worker-side job registry (`steac_suite::worker_registry` — see its
//! docs for the kind table), so this binary contains no per-workload
//! knowledge at all.
//!
//! Spawned by `steac_sim::shard::ProcessPool` — the process backend
//! behind `steac_sim::Exec` (`Exec::processes(..)`, or `Exec::from_env`
//! with `STEAC_EXEC=processes:N` / `STEAC_WORKERS=N`); also runnable by
//! hand or from a remote shell — any transport that delivers the
//! request bytes to stdin works, which is what makes the same passes
//! machine-portable. Protocol errors exit nonzero with a diagnostic on
//! stderr; per-unit failures are reported in-band so the dispatcher can
//! attribute them to the lowest-indexed failing unit.

use std::io::{stdin, stdout};
use std::process::ExitCode;
use steac_sim::shard::serve_worker;

fn main() -> ExitCode {
    let registry = steac_suite::worker_registry();
    match serve_worker(stdin().lock(), stdout().lock(), |kind, job| {
        registry.open(kind, job)
    }) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("steac-worker: {e}");
            ExitCode::from(2)
        }
    }
}
