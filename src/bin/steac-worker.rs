//! `steac-worker` — the process-pool and remote-fleet worker of the
//! STEAC platform.
//!
//! Two modes, one execution core (`steac_sim::shard::process_request`),
//! one job table (`steac_suite::worker_registry` — see its docs for the
//! kind table), so this binary contains no per-workload knowledge at
//! all:
//!
//! * **stdio (default)**: reads one job plus its work units from stdin
//!   (the versioned protocol in `steac_sim::shard`), executes every
//!   unit, writes the per-unit results to stdout and exits. Spawned by
//!   `steac_sim::shard::ProcessPool` (`STEAC_EXEC=processes:N` /
//!   `STEAC_WORKERS=N`) and by `steac_sim::remote::SpawnTransport`.
//! * **`--serve <host:port>`**: binds a TCP listener and serves the
//!   same requests forever, one envelope-framed request/response per
//!   connection (`steac_sim::remote::serve_tcp`), each connection on
//!   its own thread. This is the remote half of
//!   `STEAC_EXEC=remote:host:port,…` — start one per host of the
//!   fleet. The bound address is printed to stdout (bind to port 0 for
//!   an ephemeral port and scrape it from that line).
//!
//! Protocol errors exit nonzero with a diagnostic on stderr (stdio
//! mode) or close the offending connection (serve mode — a misbehaving
//! client never takes the server down); per-unit failures are reported
//! in-band so the dispatcher can attribute them to the lowest-indexed
//! failing unit.

use std::io::{stdin, stdout, Write as _};
use std::net::TcpListener;
use std::process::ExitCode;
use steac_sim::remote::serve_tcp;
use steac_sim::shard::serve_worker;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let registry = steac_suite::worker_registry();
    let result = match args.as_slice() {
        [] => serve_worker(stdin().lock(), stdout().lock(), |kind, job| {
            registry.open(kind, job)
        }),
        [flag, addr] if flag == "--serve" => match TcpListener::bind(addr) {
            Ok(listener) => {
                match listener.local_addr() {
                    Ok(bound) => println!("steac-worker: serving on {bound}"),
                    Err(_) => println!("steac-worker: serving on {addr}"),
                }
                let _ = stdout().flush();
                serve_tcp(listener, move |kind, job| registry.open(kind, job))
            }
            Err(e) => Err(format!("binding {addr}: {e}")),
        },
        _ => Err("usage: steac-worker [--serve <host:port>]".to_string()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("steac-worker: {e}");
            ExitCode::from(2)
        }
    }
}
