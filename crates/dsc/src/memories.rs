//! The DSC's embedded SRAM inventory ("tens of single-port and two-port
//! synchronous SRAMs with different sizes") and its BRAINS configuration.
//!
//! The companion papers carry the exact sizes; this inventory is the
//! synthetic equivalent, calibrated so the March C− BIST time of the two
//! sequencer groups reproduces the paper's §3 scheduling arithmetic
//! (DESIGN.md §4): the single-port group sums to 296,640 distinct words
//! (2,966,400 cycles at 10N) and the two-port group to 90,000 words
//! (900,000 cycles).

use steac_membist::{Brains, MemorySpec, SequencerPolicy, SramConfig};

/// Single-port sequencer group (group 0): distinct word counts sum to
/// 296,640.
const SP_SIZES: [(usize, usize); 13] = [
    // (words, width) — frame buffers, DMA, caches, line buffers.
    (131_072, 16),
    (65_536, 16),
    (34_624, 32), // frame-strip buffer (the calibration residual)
    (32_768, 32),
    (16_384, 32),
    (8_192, 32),
    (4_096, 16),
    (2_048, 16),
    (1_024, 8),
    (512, 8),
    (256, 8),
    (128, 8),
    (131_072, 16), // second instance of the big buffer (broadcast pair)
];

/// Two-port sequencer group (group 1): distinct word counts sum to
/// 90,000.
const TP_SIZES: [(usize, usize); 9] = [
    (65_536, 16),
    (16_384, 16),
    (4_096, 32),
    (2_048, 32),
    (1_024, 16),
    (512, 16),
    (256, 8),
    (144, 8),    // video FIFO
    (1_024, 16), // second instance (broadcast pair)
];

/// Builds the full memory inventory (22 instances: 13 SP + 9 2P).
#[must_use]
pub fn dsc_memory_inventory() -> Vec<MemorySpec> {
    let mut v = Vec::new();
    for (i, &(words, width)) in SP_SIZES.iter().enumerate() {
        v.push(MemorySpec::new(
            &format!("sp_ram{i}"),
            SramConfig::single_port(words, width),
            0,
        ));
    }
    for (i, &(words, width)) in TP_SIZES.iter().enumerate() {
        v.push(MemorySpec::new(
            &format!("tp_ram{i}"),
            SramConfig::two_port(words, width),
            1,
        ));
    }
    v
}

/// The DSC BRAINS configuration: March C−, one sequencer per port-kind
/// group, groups run in parallel (Fig. 2).
#[must_use]
pub fn dsc_brains() -> Brains {
    let mut b = Brains::new();
    for m in dsc_memory_inventory() {
        b.add_memory(m);
    }
    b.policy(SequencerPolicy::PerGroup).parallel(true);
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn inventory_is_tens_of_memories() {
        let inv = dsc_memory_inventory();
        assert_eq!(inv.len(), 22);
        let sp = inv.iter().filter(|m| m.group == 0).count();
        let tp = inv.iter().filter(|m| m.group == 1).count();
        assert_eq!((sp, tp), (13, 9));
    }

    #[test]
    fn calibrated_group_words() {
        let distinct = |group: usize| -> usize {
            let mut seen = BTreeSet::new();
            dsc_memory_inventory()
                .iter()
                .filter(|m| m.group == group)
                .filter(|m| seen.insert((m.config.words, m.config.width)))
                .map(|m| m.config.words)
                .sum()
        };
        assert_eq!(distinct(0), 296_640, "SP group calibration");
        assert_eq!(distinct(1), 90_000, "2P group calibration");
    }

    #[test]
    fn brains_compile_matches_calibration() {
        let d = dsc_brains().compile().unwrap();
        assert_eq!(d.sequencer_count(), 2);
        assert_eq!(d.sequencer_cycles[0], 2_966_400);
        assert_eq!(d.sequencer_cycles[1], 900_000);
        assert_eq!(d.total_cycles_parallel, 2_966_400);
        assert_eq!(d.total_cycles_serial, 3_866_400);
        assert_eq!(d.per_memory.len(), 22);
    }

    #[test]
    fn coverage_on_the_inventory_is_full() {
        let reports = dsc_brains()
            .evaluate_coverage(&steac_sim::Exec::from_env(), 8, 2005)
            .unwrap();
        assert!(!reports.is_empty());
        for r in &reports {
            assert_eq!(r.coverage_percent(), 100.0, "{r}");
        }
    }
}
