//! Table 1 cores as synthetic gate-level netlists.
//!
//! Each generator produces a module whose port list, scan structure and
//! control-pin inventory match the paper exactly; internal logic is a
//! compact XOR-mix so that scan captures observe PI activity. The real
//! cores' logic sizes are recorded as declared GE so chip-level area
//! accounting matches the 0.25 µm DSC (see [`crate::chip`]).

use steac_netlist::{GateKind, Module, NetId, NetlistBuilder, NetlistError};

/// One row of the paper's Table 1 plus the §3 control-pin detail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table1Row {
    /// Core name.
    pub core: &'static str,
    /// Dedicated test inputs.
    pub ti: usize,
    /// Dedicated test outputs.
    pub to: usize,
    /// Functional inputs.
    pub pi: usize,
    /// Functional outputs.
    pub po: usize,
    /// Internal scan chain lengths.
    pub scan_chains: &'static [usize],
    /// Scan pattern count.
    pub scan_patterns: u64,
    /// Functional pattern count.
    pub functional_patterns: u64,
    /// Clock domains.
    pub clocks: usize,
    /// Reset pins.
    pub resets: usize,
    /// Scan-enable pins.
    pub scan_enables: usize,
    /// Test-enable pins.
    pub test_enables: usize,
}

/// The paper's Table 1 (USB, TV encoder, JPEG), with the §3 control
/// detail: "The USB core has 4 clock domains, 3 reset signals, 1 scan
/// enable (SE) signal, and 6 test signals... The TV encoder [...] test
/// pins include one clock, reset, SE, and test enable signals... The
/// legacy JPEG core has only functional patterns and one clock domain."
pub const TABLE1: [Table1Row; 3] = [
    Table1Row {
        core: "USB",
        ti: 18,
        to: 4,
        pi: 221,
        po: 104,
        scan_chains: &[1629, 78, 293, 45],
        scan_patterns: 716,
        functional_patterns: 0,
        clocks: 4,
        resets: 3,
        scan_enables: 1,
        test_enables: 6,
    },
    Table1Row {
        core: "TV",
        ti: 6,
        to: 1,
        pi: 25,
        po: 40,
        scan_chains: &[577, 576],
        scan_patterns: 229,
        functional_patterns: 202_673,
        clocks: 1,
        resets: 1,
        scan_enables: 1,
        test_enables: 1,
    },
    Table1Row {
        core: "JPEG",
        ti: 1,
        to: 0,
        pi: 165,
        po: 104,
        scan_chains: &[],
        scan_patterns: 0,
        functional_patterns: 235_696,
        clocks: 1,
        resets: 0,
        scan_enables: 0,
        test_enables: 0,
    },
];

/// Interface parameters of a generated core (port names for the wrapper
/// generator and the STIL emitter).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CoreParams {
    /// Module name.
    pub name: String,
    /// Clock port names.
    pub clocks: Vec<String>,
    /// Reset port names (active low).
    pub resets: Vec<String>,
    /// Scan-enable port name, if scanned.
    pub scan_enable: Option<String>,
    /// Test-enable port names.
    pub test_enables: Vec<String>,
    /// Scan-in ports per chain.
    pub scan_si: Vec<String>,
    /// Scan-out ports per chain.
    pub scan_so: Vec<String>,
    /// Functional input ports.
    pub pi: Vec<String>,
    /// Functional output ports.
    pub po: Vec<String>,
    /// Index of the PO shared with a scan-out, if any (the TV encoder's
    /// shared pin).
    pub shared_scan_out_po: Option<usize>,
}

/// Builds a scan chain of `len` SDFFs whose functional `D` mixes the
/// previous stage with a data tap (so captures depend on PIs).
fn build_chain(
    b: &mut NetlistBuilder,
    len: usize,
    si: NetId,
    se: NetId,
    ck: NetId,
    taps: &[NetId],
    label: &str,
) -> NetId {
    let mut prev_q = si;
    let mut func = taps.first().copied().unwrap_or(si);
    for j in 0..len {
        let d = b.gate(GateKind::Xor2, &[func, taps[j % taps.len().max(1)]]);
        let q = b.net(&format!("{label}_q{j}"));
        b.gate_into(GateKind::Sdff, &[d, prev_q, se, ck], q);
        prev_q = q;
        func = q;
    }
    prev_q
}

/// Generates the USB core: 4 clock domains, 3 resets, 1 SE, 6 test
/// signals, 4 scan chains (1629/78/293/45) with dedicated scan IO,
/// 221 PIs, 104 POs. TI = 4+3+1+6+4 = 18, TO = 4.
///
/// # Errors
///
/// Propagates netlist construction errors.
pub fn usb_core() -> Result<(Module, CoreParams), NetlistError> {
    let row = &TABLE1[0];
    let mut b = NetlistBuilder::new("usb_core");
    let mut p = CoreParams {
        name: "usb_core".to_string(),
        ..CoreParams::default()
    };
    let clocks: Vec<NetId> = (0..row.clocks)
        .map(|i| {
            let n = format!("ck{i}");
            p.clocks.push(n.clone());
            b.input(&n)
        })
        .collect();
    for i in 0..row.resets {
        let n = format!("rst{i}");
        p.resets.push(n.clone());
        let _ = b.input(&n); // resets tie into test logic only
    }
    let se = b.input("se");
    p.scan_enable = Some("se".to_string());
    for i in 0..row.test_enables {
        let n = format!("test{i}");
        p.test_enables.push(n.clone());
        let _ = b.input(&n);
    }
    let pi: Vec<NetId> = (0..row.pi)
        .map(|i| {
            let n = format!("d[{i}]");
            p.pi.push(n.clone());
            b.input(&n)
        })
        .collect();

    // One chain per clock domain, as in the paper.
    let mut chain_ends = Vec::new();
    for (c, &len) in row.scan_chains.iter().enumerate() {
        let si_name = format!("si{c}");
        let si = b.input(&si_name);
        p.scan_si.push(si_name);
        let taps: Vec<NetId> = pi.iter().skip(c * 7 % 50).take(16).copied().collect();
        let end = build_chain(&mut b, len, si, se, clocks[c], &taps, &format!("u{c}"));
        chain_ends.push(end);
        let so_name = format!("so{c}");
        b.output(&so_name, end);
        p.scan_so.push(so_name);
    }
    // Functional outputs: XOR mixes of chain state and PIs.
    for i in 0..row.po {
        let a = chain_ends[i % chain_ends.len()];
        let t = pi[(i * 3) % pi.len()];
        let y = b.gate(GateKind::Xor2, &[a, t]);
        let n = format!("q[{i}]");
        b.output(&n, y);
        p.po.push(n);
    }
    // Real USB 1.1 device-core logic is on the order of 25 kGE beyond the
    // 2045 scan flops modelled explicitly.
    b.declare_extra_ge(25_000.0);
    Ok((b.finish()?, p))
}

/// Generates the TV encoder: 1 clock, 1 reset, 1 SE, 1 TE, 2 chains
/// (577/576) where chain 1's scan-out *shares* the functional output
/// `q[39]` (the paper: "one scan chain shares the output with a
/// functional output"), 25 PIs, 40 POs. TI = 1+1+1+1+2 = 6, TO = 1.
///
/// # Errors
///
/// Propagates netlist construction errors.
pub fn tv_core() -> Result<(Module, CoreParams), NetlistError> {
    let row = &TABLE1[1];
    let mut b = NetlistBuilder::new("tv_core");
    let mut p = CoreParams {
        name: "tv_core".to_string(),
        ..CoreParams::default()
    };
    let ck = b.input("ck");
    p.clocks.push("ck".to_string());
    let _rst = b.input("rst");
    p.resets.push("rst".to_string());
    let se = b.input("se");
    p.scan_enable = Some("se".to_string());
    let _te = b.input("te");
    p.test_enables.push("te".to_string());
    let pi: Vec<NetId> = (0..row.pi)
        .map(|i| {
            let n = format!("d[{i}]");
            p.pi.push(n.clone());
            b.input(&n)
        })
        .collect();

    let mut chain_ends = Vec::new();
    for (c, &len) in row.scan_chains.iter().enumerate() {
        let si_name = format!("si{c}");
        let si = b.input(&si_name);
        p.scan_si.push(si_name);
        let end = build_chain(&mut b, len, si, se, ck, &pi, &format!("t{c}"));
        chain_ends.push(end);
    }
    // Chain 0: dedicated scan-out.
    b.output("so0", chain_ends[0]);
    p.scan_so.push("so0".to_string());
    // Functional outputs; q[39] doubles as chain 1's scan-out.
    for i in 0..row.po {
        let n = format!("q[{i}]");
        if i == 39 {
            b.output(&n, chain_ends[1]);
            p.shared_scan_out_po = Some(39);
        } else {
            let a = chain_ends[i % chain_ends.len()];
            let t = pi[(i * 5) % pi.len()];
            let y = b.gate(GateKind::Xor2, &[a, t]);
            b.output(&n, y);
        }
        p.po.push(n);
    }
    p.scan_so.push("q[39]".to_string());
    // NTSC/PAL encoder logic ~ 18 kGE beyond the 1153 scan flops.
    b.declare_extra_ge(18_000.0);
    Ok((b.finish()?, p))
}

/// Generates the legacy JPEG codec: one clock, no scan, no test pins
/// beyond the clock (TI = 1, TO = 0), 165 PIs, 104 POs, functional
/// patterns only.
///
/// # Errors
///
/// Propagates netlist construction errors.
pub fn jpeg_core() -> Result<(Module, CoreParams), NetlistError> {
    let row = &TABLE1[2];
    let mut b = NetlistBuilder::new("jpeg_core");
    let mut p = CoreParams {
        name: "jpeg_core".to_string(),
        ..CoreParams::default()
    };
    let ck = b.input("ck");
    p.clocks.push("ck".to_string());
    let pi: Vec<NetId> = (0..row.pi)
        .map(|i| {
            let n = format!("d[{i}]");
            p.pi.push(n.clone());
            b.input(&n)
        })
        .collect();
    // A small pipeline: non-scanned flops (legacy core).
    let mut regs = Vec::new();
    for i in 0..32 {
        let d = b.gate(
            GateKind::Xor2,
            &[pi[i % pi.len()], pi[(i * 7 + 1) % pi.len()]],
        );
        regs.push(b.gate(GateKind::Dff, &[d, ck]));
    }
    for i in 0..row.po {
        let y = b.gate(
            GateKind::Xor2,
            &[regs[i % regs.len()], pi[(i * 11) % pi.len()]],
        );
        let n = format!("q[{i}]");
        b.output(&n, y);
        p.po.push(n);
    }
    // Legacy JPEG codec ~ 55 kGE.
    b.declare_extra_ge(55_000.0);
    Ok((b.finish()?, p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use steac_netlist::PortDir;

    fn count_dir(m: &Module, dir: PortDir) -> usize {
        m.ports_with_dir(dir).count()
    }

    #[test]
    fn usb_interface_matches_table1() {
        let (m, p) = usb_core().unwrap();
        // Inputs: 4 ck + 3 rst + 1 se + 6 test + 4 si + 221 d = 239.
        assert_eq!(count_dir(&m, PortDir::Input), 239);
        // Outputs: 4 so + 104 q = 108.
        assert_eq!(count_dir(&m, PortDir::Output), 108);
        // TI = clocks+resets+se+test+dedicated si = 18.
        let ti = p.clocks.len()
            + p.resets.len()
            + usize::from(p.scan_enable.is_some())
            + p.test_enables.len()
            + p.scan_si.len();
        assert_eq!(ti, TABLE1[0].ti);
        assert_eq!(m.flop_count(), 1629 + 78 + 293 + 45);
    }

    #[test]
    fn tv_interface_matches_table1_with_shared_pin() {
        let (m, p) = tv_core().unwrap();
        // Inputs: ck + rst + se + te + 2 si + 25 d = 31.
        assert_eq!(count_dir(&m, PortDir::Input), 31);
        // Outputs: so0 + 40 q = 41 (q[39] shared).
        assert_eq!(count_dir(&m, PortDir::Output), 41);
        assert_eq!(p.shared_scan_out_po, Some(39));
        // Dedicated scan outs = 1 -> TO = 1.
        let dedicated_so = p.scan_so.iter().filter(|s| !s.starts_with("q[")).count();
        assert_eq!(dedicated_so, TABLE1[1].to);
        assert_eq!(m.flop_count(), 577 + 576);
    }

    #[test]
    fn jpeg_has_no_scan() {
        let (m, p) = jpeg_core().unwrap();
        assert!(p.scan_si.is_empty());
        assert!(p.scan_enable.is_none());
        assert_eq!(count_dir(&m, PortDir::Input), 1 + 165);
        assert_eq!(count_dir(&m, PortDir::Output), 104);
        // Non-scan flops only.
        assert!(m.flop_count() > 0);
    }

    #[test]
    fn usb_scan_chain_shifts() {
        use steac_sim::{scan, Logic, ScanPorts, Simulator};
        let (m, p) = usb_core().unwrap();
        let mut sim: Simulator = Simulator::new(&m).unwrap();
        // Quiet all inputs.
        for port in m.ports_with_dir(PortDir::Input) {
            let net = port.net;
            sim.set(net, Logic::Zero);
        }
        sim.settle().unwrap();
        // Shift a short marker through the *shortest* chain (45 flops,
        // chain index 3) to keep the test fast.
        let ports = ScanPorts {
            si: vec![p.scan_si[3].clone()],
            so: vec![p.scan_so[3].clone()],
            se: "se".to_string(),
            clock: "ck3".to_string(),
        };
        use Logic::{One, Zero};
        let mut bits = vec![Zero; 45];
        bits[0] = One;
        bits[7] = One;
        scan::shift(&mut sim, &ports, &[bits.clone()]).unwrap();
        let out = scan::shift(&mut sim, &ports, &[vec![Zero; 45]]).unwrap();
        assert_eq!(out[0], bits, "chain must behave as a FIFO");
    }
}
