//! The DSC controller test-chip model — the paper's evaluation vehicle.
//!
//! "A DSC test chip has been implemented and fabricated to verify the
//! proposed approach. This test chip is implemented with a standard
//! 0.25 µm CMOS technology. The major digital part of the chip includes a
//! processor, JPEG codec, TV encoder, USB, external memory interface, and
//! tens of single-port and two-port synchronous SRAMs with different
//! sizes" (Fig. 3).
//!
//! We do not have the fabricated silicon, so this crate provides the
//! synthetic equivalent (see DESIGN.md §1): gate-level cores whose
//! *interfaces, scan structures and pattern counts reproduce Table 1
//! exactly*, a calibrated SRAM inventory, STIL test-information files for
//! each core, and the scheduling instance whose session-based/non-session
//! comparison reproduces the paper's §3 numbers.
//!
//! | Core | TI | TO | PI | PO | Scan chains (lengths) | Patterns |
//! |------|----|----|----|----|------------------------|----------|
//! | USB  | 18 | 4  | 221| 104| 4 (1629, 78, 293, 45)  | 716 scan |
//! | TV   | 6  | 1  | 25 | 40 | 2 (577, 576)           | 229 scan + 202,673 func |
//! | JPEG | 1  | 0  | 165| 104| none                   | 235,696 func |

pub mod chip;
pub mod cores;
pub mod memories;
pub mod stilgen;
pub mod tasks;
pub mod verify;

pub use chip::{build_chip, ChipInventory, DSC_CHIP_LOGIC_GE};
pub use cores::{jpeg_core, tv_core, usb_core, CoreParams, Table1Row, TABLE1};
pub use memories::{dsc_brains, dsc_memory_inventory};
pub use stilgen::core_stil;
pub use tasks::{dsc_chip_config, dsc_test_tasks, PAPER_NONSESSION_CYCLES, PAPER_SESSION_CYCLES};
pub use verify::{
    jpeg_functional_patterns, jpeg_playback_batch, jpeg_playback_stream, PlaybackReport,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_is_the_paper_table() {
        let usb = &TABLE1[0];
        assert_eq!(
            (usb.ti, usb.to, usb.pi, usb.po),
            (18, 4, 221, 104),
            "USB row"
        );
        assert_eq!(usb.scan_chains, &[1629, 78, 293, 45]);
        assert_eq!(usb.scan_patterns, 716);
        let tv = &TABLE1[1];
        assert_eq!((tv.ti, tv.to, tv.pi, tv.po), (6, 1, 25, 40), "TV row");
        assert_eq!(tv.scan_patterns, 229);
        assert_eq!(tv.functional_patterns, 202_673);
        let jpeg = &TABLE1[2];
        assert_eq!((jpeg.ti, jpeg.to, jpeg.pi, jpeg.po), (1, 0, 165, 104));
        assert_eq!(jpeg.functional_patterns, 235_696);
        assert!(jpeg.scan_chains.is_empty());
    }
}
