//! The calibrated DSC scheduling instance — the paper's §3 experiment.
//!
//! "In the DSC case, we tried several scheduling approaches, and found
//! that the session-based approach (with three test sessions) has the
//! shortest total test time — 4,371,194 clock cycles as opposed to
//! 4,713,935 cycles by non-session-based approach."
//!
//! The instance below reproduces that comparison with this workspace's
//! models: Table 1 drives the scan/functional tasks, the calibrated
//! memory inventory drives the two BIST tasks, and the chip configuration
//! puts the pin budget exactly where the paper's observation bites — the
//! JPEG functional test fits at full width only when control IOs are
//! session-scoped. Power figures follow the usual ordering (at-speed
//! functional and large-array BIST are the hungriest; slow-clock scan the
//! tamest) and are chosen within the calibration freedom DESIGN.md §4
//! documents.

use crate::cores::TABLE1;
use crate::memories::dsc_brains;
use steac_sched::{ChipConfig, TestTask};
use steac_tam::{ControlClass, ControlSignal, PinBudget, SharePolicy};

/// The paper's session-based total test time in cycles.
pub const PAPER_SESSION_CYCLES: u64 = 4_371_194;
/// The paper's non-session total test time in cycles.
pub const PAPER_NONSESSION_CYCLES: u64 = 4_713_935;

/// USB control inventory: 4 clock domains, 3 resets, 1 SE, 6 test
/// signals (14 signals; with its 4 dedicated scan-ins TI = 18).
fn usb_controls() -> Vec<ControlSignal> {
    let mut v = Vec::new();
    for (i, f) in [48u32, 12, 480, 60].iter().enumerate() {
        v.push(ControlSignal::new(
            "USB",
            &format!("ck{i}"),
            ControlClass::Clock { freq_mhz: *f },
        ));
    }
    for i in 0..3 {
        v.push(ControlSignal::new(
            "USB",
            &format!("rst{i}"),
            ControlClass::Reset,
        ));
    }
    v.push(ControlSignal::new("USB", "se", ControlClass::ScanEnable));
    for i in 0..6 {
        v.push(ControlSignal::new(
            "USB",
            &format!("test{i}"),
            ControlClass::TestEnable,
        ));
    }
    v
}

fn tv_controls() -> Vec<ControlSignal> {
    vec![
        ControlSignal::new("TV", "ck", ControlClass::Clock { freq_mhz: 27 }),
        ControlSignal::new("TV", "rst", ControlClass::Reset),
        ControlSignal::new("TV", "se", ControlClass::ScanEnable),
        ControlSignal::new("TV", "te", ControlClass::TestEnable),
    ]
}

/// The DSC chip configuration for scheduling.
///
/// 280 test-usable pins (2 reserved), 4 global test pins, power cap 2.2
/// units, at most 3 sessions (the paper's result uses exactly 3), PLL
/// clocks and controller-decoded test enables in the session
/// architecture; per-core test enables in the static baseline.
#[must_use]
pub fn dsc_chip_config() -> ChipConfig {
    ChipConfig {
        budget: PinBudget::with_reserved(280, 2),
        global_pins: 4,
        power_limit: 2.2,
        max_sessions: 3,
        session_share: SharePolicy::dsc(3),
        static_share: SharePolicy {
            te_via_controller: false,
            ..SharePolicy::dsc(1)
        },
    }
}

/// The six DSC test tasks: USB scan, TV scan, TV functional, JPEG
/// functional, and the two BIST sequencer groups.
#[must_use]
pub fn dsc_test_tasks() -> Vec<TestTask> {
    let usb = &TABLE1[0];
    let tv = &TABLE1[1];
    let jpeg = &TABLE1[2];
    let bist = dsc_brains().compile().expect("DSC BIST compiles");
    vec![
        TestTask::scan(
            "usb",
            usb.scan_patterns,
            usb.scan_chains,
            usb.pi,
            usb.po,
            false,
        )
        .with_controls(usb_controls())
        .with_power(1.0),
        TestTask::scan("tv", tv.scan_patterns, tv.scan_chains, tv.pi, tv.po, false)
            .with_controls(tv_controls())
            .with_power(0.3),
        TestTask::functional("tv", tv.functional_patterns, tv.pi, tv.po)
            .with_controls(vec![
                ControlSignal::new("TV", "ck", ControlClass::Clock { freq_mhz: 27 }),
                ControlSignal::new("TV", "te", ControlClass::TestEnable),
            ])
            .with_power(1.1),
        TestTask::functional("jpeg", jpeg.functional_patterns, jpeg.pi, jpeg.po)
            .with_controls(vec![ControlSignal::new(
                "JPEG",
                "ck",
                ControlClass::Clock { freq_mhz: 54 },
            )])
            .with_power(1.4),
        TestTask::bist("sp_group", bist.sequencer_cycles[0]).with_power(1.3),
        TestTask::bist("tp_group", bist.sequencer_cycles[1]).with_power(0.6),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use steac_sched::{schedule_nonsession, schedule_serial, schedule_sessions};

    #[test]
    fn control_inventory_sums_to_19() {
        // 6 clocks + 4 resets + 7 TEs + 2 SEs across the three cores.
        let tasks = dsc_test_tasks();
        let mut all: Vec<(String, String)> = Vec::new();
        for t in &tasks {
            for c in &t.controls {
                let key = (c.core.clone(), c.name.clone());
                if !all.contains(&key) {
                    all.push(key);
                }
            }
        }
        assert_eq!(all.len(), 19, "paper: 19 control IOs unshared");
    }

    /// The headline reproduction: session-based (3 sessions) beats
    /// non-session, with totals in the paper's band.
    #[test]
    fn session_schedule_reproduces_paper_shape() {
        let tasks = dsc_test_tasks();
        let config = dsc_chip_config();
        let s = schedule_sessions(&tasks, &config).expect("feasible");
        assert_eq!(s.sessions.len(), 3, "paper: three test sessions");
        let ns = schedule_nonsession(&tasks, &config).expect("feasible");
        assert!(
            s.total_cycles < ns.makespan,
            "session {} must beat non-session {}",
            s.total_cycles,
            ns.makespan
        );
        // Within 5% of the paper's absolute numbers (the substrate is a
        // model, not the authors' testbed).
        let close =
            |ours: u64, paper: u64| (ours as f64 - paper as f64).abs() / (paper as f64) < 0.05;
        assert!(
            close(s.total_cycles, PAPER_SESSION_CYCLES),
            "session {} vs paper {}",
            s.total_cycles,
            PAPER_SESSION_CYCLES
        );
        assert!(
            close(ns.makespan, PAPER_NONSESSION_CYCLES),
            "non-session {} vs paper {}",
            ns.makespan,
            PAPER_NONSESSION_CYCLES
        );
    }

    #[test]
    fn serial_is_worst() {
        let tasks = dsc_test_tasks();
        let config = dsc_chip_config();
        let s = schedule_sessions(&tasks, &config).expect("feasible");
        let serial = schedule_serial(&tasks, &config).expect("feasible");
        assert!(serial.makespan > s.total_cycles);
    }
}
