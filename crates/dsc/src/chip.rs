//! The DSC chip: Fig. 3 block inventory and full netlist assembly.

use crate::cores::{jpeg_core, tv_core, usb_core, CoreParams};
use crate::memories::dsc_memory_inventory;
use steac_netlist::{Design, Module, NetlistBuilder, NetlistError};

/// Declared logic size of the DSC chip (gate equivalents), set so that
/// the paper's "hardware overhead is only about 0.3%" holds for the
/// 371-gate Test Controller plus 132-gate TAM mux (503 GE / 167 kGE ≈
/// 0.3%).
pub const DSC_CHIP_LOGIC_GE: f64 = 167_000.0;

/// The Fig. 3 block inventory.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipInventory {
    /// `(block name, role, declared GE)` for the logic blocks.
    pub blocks: Vec<(String, String, f64)>,
    /// `(memory name, geometry)` for the embedded SRAMs.
    pub memories: Vec<(String, String)>,
}

impl ChipInventory {
    /// Builds the inventory.
    #[must_use]
    pub fn new() -> Self {
        let blocks = vec![
            (
                "micro_processor".to_string(),
                "RISC microprocessor".to_string(),
                45_000.0,
            ),
            (
                "jpeg_core".to_string(),
                "JPEG codec (legacy)".to_string(),
                55_000.0,
            ),
            ("tv_core".to_string(), "TV encoder".to_string(), 18_000.0),
            (
                "usb_core".to_string(),
                "USB device controller".to_string(),
                25_000.0,
            ),
            (
                "ext_mem_if".to_string(),
                "external memory interface".to_string(),
                14_000.0,
            ),
            ("glue_logic".to_string(), "glue logic".to_string(), 10_000.0),
        ];
        let memories = dsc_memory_inventory()
            .into_iter()
            .map(|m| (m.name, m.config.to_string()))
            .collect();
        ChipInventory { blocks, memories }
    }

    /// Total declared logic GE (must match [`DSC_CHIP_LOGIC_GE`]).
    #[must_use]
    pub fn total_logic_ge(&self) -> f64 {
        self.blocks.iter().map(|(_, _, ge)| ge).sum()
    }

    /// Fig. 3 as text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("DSC controller chip (Fig. 3)\n");
        out.push_str("+--------------------------------------------+\n");
        for (name, role, ge) in &self.blocks {
            out.push_str(&format!("| {name:<16} {role:<28} {:>7.0} GE |\n", ge));
        }
        out.push_str(&format!(
            "| embedded SRAMs: {} instances                |\n",
            self.memories.len()
        ));
        out.push_str("+--------------------------------------------+\n");
        out
    }
}

impl Default for ChipInventory {
    fn default() -> Self {
        Self::new()
    }
}

/// Assembles the chip design: the three Table 1 cores plus abstracted
/// blocks, instantiated in a `dsc_chip` top module. Returns the design
/// and the per-core interface parameters (consumed by STEAC's insertion
/// flow).
///
/// # Errors
///
/// Propagates netlist construction errors.
pub fn build_chip() -> Result<(Design, Vec<CoreParams>), NetlistError> {
    let mut design = Design::new();
    let (usb, usb_p) = usb_core()?;
    let (tv, tv_p) = tv_core()?;
    let (jpeg, jpeg_p) = jpeg_core()?;
    design.add_module(usb)?;
    design.add_module(tv)?;
    design.add_module(jpeg)?;
    // Abstracted blocks (declared GE only, pass-through netlists).
    for (name, ge) in [
        ("micro_processor", 45_000.0),
        ("ext_mem_if", 14_000.0),
        ("glue_logic", 10_000.0),
    ] {
        design.add_module(abstract_block(name, ge)?)?;
    }

    // Top: instantiate everything; core pins surface as chip pins (pad
    // muxing is the TAM insertion step's concern).
    let mut b = NetlistBuilder::new("dsc_chip");
    let instantiate = |b: &mut NetlistBuilder, m: &str, params: Option<&CoreParams>| {
        let module = design.module(m).expect("just added");
        let mut conns = Vec::new();
        for port in &module.ports {
            let net = match port.dir {
                steac_netlist::PortDir::Input => b.input(&format!("{m}_{}", port.name)),
                steac_netlist::PortDir::Output => {
                    let n = b.net(&format!("{m}_{}", port.name));
                    b.output(&format!("{m}_{}", port.name), n);
                    n
                }
            };
            conns.push((port.name.clone(), net));
        }
        let _ = params;
        let conn_refs: Vec<(&str, steac_netlist::NetId)> =
            conns.iter().map(|(p, n)| (p.as_str(), *n)).collect();
        b.instance(&format!("u_{m}"), m, &conn_refs);
    };
    instantiate(&mut b, "usb_core", Some(&usb_p));
    instantiate(&mut b, "tv_core", Some(&tv_p));
    instantiate(&mut b, "jpeg_core", Some(&jpeg_p));
    instantiate(&mut b, "micro_processor", None);
    instantiate(&mut b, "ext_mem_if", None);
    instantiate(&mut b, "glue_logic", None);
    design.add_module(b.finish()?)?;

    Ok((design, vec![usb_p, tv_p, jpeg_p]))
}

fn abstract_block(name: &str, ge: f64) -> Result<Module, NetlistError> {
    let mut b = NetlistBuilder::new(name);
    let a = b.input("bus_in");
    let y = b.gate(steac_netlist::GateKind::Buf, &[a]);
    b.output("bus_out", y);
    b.declare_extra_ge(ge - 1.0); // the buffer accounts for 1 GE
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use steac_netlist::AreaReport;

    #[test]
    fn inventory_matches_declared_chip_size() {
        let inv = ChipInventory::new();
        assert_eq!(inv.total_logic_ge(), DSC_CHIP_LOGIC_GE);
        assert_eq!(inv.blocks.len(), 6, "Fig. 3 shows six logic blocks");
        assert_eq!(inv.memories.len(), 22);
    }

    #[test]
    fn render_mentions_every_block() {
        let text = ChipInventory::new().render();
        for b in ["micro_processor", "jpeg_core", "tv_core", "usb_core"] {
            assert!(text.contains(b), "{text}");
        }
    }

    #[test]
    fn chip_assembles_and_flattens() {
        let (design, params) = build_chip().unwrap();
        assert_eq!(params.len(), 3);
        let report = AreaReport::for_design(&design, "dsc_chip").unwrap();
        // Explicit gates (scan flops + mixes) plus declared GE; the
        // declared portion dominates and the total sits near the 167 kGE
        // chip-logic figure plus the explicitly modelled scan flops.
        assert!(
            report.total_ge() > 150_000.0,
            "chip too small: {}",
            report.total_ge()
        );
        let flat = design.flatten("dsc_chip").unwrap();
        assert!(flat.flop_count() >= 2045 + 1153 + 32);
    }
}
