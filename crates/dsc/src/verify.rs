//! Pattern-verification experiments on the DSC cores, riding the
//! bit-parallel simulation kernel.
//!
//! The paper's flow ends with chip-level ATE patterns; verifying them
//! against the gate-level netlist is a pure simulation workload, and the
//! batched cycle player ([`steac_pattern::apply_cycle_patterns_batch`])
//! runs 64 patterns per pass — the experiment here is the JPEG core's
//! functional-pattern verification, the largest single pattern set of
//! Table 1 (235,696 functional patterns on silicon;
//! `examples/jpeg_full_playback.rs` plays the full set end to end, the
//! tests a sampled subset the same way). One [`Exec`] value picks the
//! backend for the whole experiment: playback passes dispatch through
//! [`Exec::dispatch`] (inline, threads or `steac-worker` processes),
//! and pattern *generation* — whose expected-response closures cannot
//! cross a process boundary — shards on the backend's in-process pool.
//! Reports are byte-identical on every backend.

use crate::cores::jpeg_core;
use std::sync::Arc;
use steac_netlist::Module;
use steac_pattern::{apply_cycle_patterns_batch, CyclePattern, PatternError, PinState};
use steac_sim::{Exec, Logic, SimError, SimProgram, Simulator, LANES};

/// Outcome of a batched playback experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlaybackReport {
    /// Patterns played.
    pub patterns: usize,
    /// Tester cycles represented (sum over patterns).
    pub cycles: u64,
    /// Compares performed (sum over patterns).
    pub compares: u64,
    /// Total mismatching compares (0 for a healthy netlist).
    pub mismatches: usize,
    /// Packed passes the player needed
    /// (⌈patterns / (64 · [`steac_pattern::PLAYBACK_LANE_GROUPS`])⌉).
    pub passes: usize,
    /// Times process dispatch fell back to the in-thread pool while
    /// producing this report (0 unless the `Exec` runs a process
    /// backend under [`steac_sim::Fallback::InThread`] and that
    /// dispatch failed); the verdicts are unaffected. Every other field
    /// is backend-invariant, so healthy reports compare equal across
    /// serial, thread and process execution.
    pub process_fallbacks: usize,
}

/// Deterministic per-pattern stimulus (SplitMix64, so the experiment is
/// reproducible without an RNG dependency).
fn stimulus_bit(pattern: usize, pin: usize) -> bool {
    let mut z = (pattern as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(pin as u64);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) & 1 == 1
}

/// Builds `count` two-cycle functional patterns for the JPEG core (drive
/// PIs + pulse `ck`, then compare every PO), with expected responses
/// computed by a scalar reference simulation of each pattern. The
/// expected-response simulations are independent per pattern, so
/// generation fans 64-pattern blocks across the backend's in-process
/// pool ([`Exec::run_fallible`]); pattern `k` depends only on `k`, so
/// the output is identical on every backend and at every width.
///
/// # Errors
///
/// Propagates netlist and simulation errors.
pub fn jpeg_functional_patterns(
    exec: &Exec,
    count: usize,
) -> Result<(Module, Vec<CyclePattern>), PatternError> {
    let (module, program, patterns) = jpeg_patterns_and_program(exec, count)?;
    drop(program);
    Ok((module, patterns))
}

/// Shared generation core: compiles the JPEG module once and returns the
/// program alongside the patterns, so playback never recompiles it.
#[allow(clippy::type_complexity)]
fn jpeg_patterns_and_program(
    exec: &Exec,
    count: usize,
) -> Result<(Module, Arc<SimProgram>, Vec<CyclePattern>), PatternError> {
    let (module, params) = jpeg_core().map_err(|e| PatternError::Sim(SimError::Netlist(e)))?;
    let mut pins: Vec<String> = params.pi.clone();
    pins.push(params.clocks[0].clone());
    pins.extend(params.po.iter().cloned());
    let n_pi = params.pi.len();

    let program = Arc::new(SimProgram::compile(&module)?);
    let blocks = count.div_ceil(LANES);
    let per_block = exec.run_fallible(blocks, |bi| {
        let mut sim: Simulator = Simulator::from_program(Arc::clone(&program));
        let mut block = Vec::with_capacity(LANES);
        for k in (bi * LANES..count).take(LANES) {
            let drives: Vec<Logic> = (0..n_pi).map(|i| Logic::from(stimulus_bit(k, i))).collect();
            // Scalar reference run from the power-on state (the batch
            // player resets each chunk the same way).
            sim.reset_to_x();
            for (name, &v) in params.pi.iter().zip(&drives) {
                sim.set_by_name(name, v)?;
            }
            sim.clock_cycle_by_name(&params.clocks[0])?;
            let expected: Vec<Logic> = params
                .po
                .iter()
                .map(|name| sim.get_by_name(name))
                .collect::<Result<_, _>>()?;

            let mut p = CyclePattern::new(pins.clone());
            let mut capture_row: Vec<PinState> =
                drives.iter().map(|&v| PinState::from_drive(v)).collect();
            capture_row.push(PinState::Pulse);
            capture_row.extend(std::iter::repeat_n(PinState::DontCare, params.po.len()));
            p.push_cycle(capture_row)?;
            let mut compare_row: Vec<PinState> =
                drives.iter().map(|&v| PinState::from_drive(v)).collect();
            compare_row.push(PinState::Drive0);
            compare_row.extend(expected.iter().map(|&v| PinState::from_expect(v)));
            p.push_cycle(compare_row)?;
            block.push(p);
        }
        Ok::<_, PatternError>(block)
    })?;
    Ok((module, program, per_block.into_iter().flatten().collect()))
}

/// Verifies `count` JPEG functional patterns with the batched cycle
/// player (one pattern per lane, `64 * PLAYBACK_LANE_GROUPS` per pass —
/// playback's narrow default width; see
/// [`steac_pattern::PLAYBACK_LANE_GROUPS`])
/// and aggregates the result. The single entry
/// point for every backend: `exec` decides whether playback passes run
/// inline, across threads or across `steac-worker` processes, and the
/// report is byte-identical in every flavour.
///
/// # Errors
///
/// Propagates netlist, pattern and simulation errors; a failing worker
/// surfaces as the lowest-indexed failing chunk's error (under
/// [`steac_sim::Fallback::Fail`]).
pub fn jpeg_playback_batch(exec: &Exec, count: usize) -> Result<PlaybackReport, PatternError> {
    let (_module, program, patterns) = jpeg_patterns_and_program(exec, count)?;
    let refs: Vec<&CyclePattern> = patterns.iter().collect();
    let sim: Simulator = Simulator::from_program(program);
    let playback = apply_cycle_patterns_batch(exec, &sim, &refs)?;
    Ok(aggregate_report(
        &patterns,
        &playback.reports,
        count,
        playback.process_fallbacks,
    ))
}

/// Folds per-pattern reports into one [`PlaybackReport`] — shared by
/// every backend so the aggregation can never diverge.
fn aggregate_report(
    patterns: &[CyclePattern],
    reports: &[steac_pattern::MismatchReport],
    count: usize,
    process_fallbacks: usize,
) -> PlaybackReport {
    PlaybackReport {
        patterns: reports.len(),
        cycles: patterns.iter().map(CyclePattern::cycle_count).sum(),
        compares: reports.iter().map(|r| r.compares).sum(),
        mismatches: reports.iter().map(|r| r.mismatches.len()).sum(),
        passes: count.div_ceil(LANES * steac_pattern::PLAYBACK_LANE_GROUPS),
        process_fallbacks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use steac_pattern::apply_cycle_pattern;
    use steac_sim::Threads;

    fn exec() -> Exec {
        Exec::from_env()
    }

    /// The batched verdict must equal per-pattern scalar playback — and
    /// pass: the expectations were computed from the same netlist.
    #[test]
    fn jpeg_batched_playback_is_clean_and_matches_scalar() {
        let count = 70; // > 64: exercises chunking
        let (module, patterns) = jpeg_functional_patterns(&exec(), count).unwrap();
        let refs: Vec<&CyclePattern> = patterns.iter().collect();
        let sim: Simulator = Simulator::new(&module).unwrap();
        let batch = apply_cycle_patterns_batch(&exec(), &sim, &refs)
            .unwrap()
            .reports;
        assert_eq!(batch.len(), count);
        for (i, p) in patterns.iter().enumerate() {
            let mut scalar_sim = Simulator::new(&module).unwrap();
            let scalar = apply_cycle_pattern(&mut scalar_sim, p).unwrap();
            assert_eq!(batch[i].compares, scalar.compares, "pattern {i}");
            assert_eq!(batch[i].mismatches, scalar.mismatches, "pattern {i}");
            assert!(batch[i].passed(), "pattern {i}: {}", batch[i]);
        }
    }

    #[test]
    fn playback_report_aggregates() {
        let rep = jpeg_playback_batch(&Exec::threads(Threads::exact(2)), 10).unwrap();
        assert_eq!(rep.patterns, 10);
        assert_eq!(rep.cycles, 20);
        assert_eq!(rep.mismatches, 0);
        assert_eq!(rep.passes, 1);
        assert_eq!(rep.compares, 10 * 104); // every PO compared once
        assert_eq!(rep.process_fallbacks, 0);
    }

    /// Generation and the whole playback report are bit-identical on the
    /// serial backend and at every thread count — every field of
    /// `PlaybackReport` is backend-invariant now, so the reports compare
    /// equal as values.
    #[test]
    fn jpeg_generation_and_playback_are_backend_invariant_in_process() {
        let count = 130; // three blocks
        let (_, baseline) = jpeg_functional_patterns(&Exec::serial(), count).unwrap();
        let base_rep = jpeg_playback_batch(&Exec::serial(), count).unwrap();
        for t in [2, 4] {
            let threaded = Exec::threads(Threads::exact(t));
            let (_, sharded) = jpeg_functional_patterns(&threaded, count).unwrap();
            assert_eq!(sharded, baseline, "{t} threads");
            let rep = jpeg_playback_batch(&threaded, count).unwrap();
            assert_eq!(rep, base_rep, "{t} threads");
        }
    }

    #[test]
    fn corrupted_expectation_is_caught() {
        let (module, mut patterns) = jpeg_functional_patterns(&exec(), 3).unwrap();
        // Flip one expectation of pattern 1.
        let row = patterns[1].cycles.len() - 1;
        let col = patterns[1].pins.len() - 1;
        patterns[1].cycles[row][col] = match patterns[1].cycles[row][col] {
            PinState::ExpectH => PinState::ExpectL,
            _ => PinState::ExpectH,
        };
        let refs: Vec<&CyclePattern> = patterns.iter().collect();
        let sim: Simulator = Simulator::new(&module).unwrap();
        let reports = apply_cycle_patterns_batch(&exec(), &sim, &refs)
            .unwrap()
            .reports;
        assert!(reports[0].passed());
        assert!(!reports[1].passed());
        assert!(reports[2].passed());
    }
}
