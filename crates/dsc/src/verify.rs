//! Pattern-verification experiments on the DSC cores, riding the
//! bit-parallel simulation kernel.
//!
//! The paper's flow ends with chip-level ATE patterns; verifying them
//! against the gate-level netlist is a pure simulation workload — the
//! experiment here is the JPEG core's functional-pattern verification,
//! the largest single pattern set of Table 1 (235,696 functional
//! patterns on silicon; `examples/jpeg_full_playback.rs` plays the
//! full set end to end, the tests a sampled subset the same way).
//!
//! Like a real ATE flow, verification is a **streaming pipeline**:
//! [`jpeg_playback_stream`] runs pattern generation as a producer —
//! generator threads computing [`LANES`]-sized blocks of stimulus +
//! expected responses, feeding a bounded block queue — while the cycle
//! player ([`steac_pattern::stream_cycle_patterns`]) consumes the
//! blocks as they arrive, so generation (the slow phase, ~11–12k
//! patterns/s) overlaps playback and peak memory is bounded by queue
//! depth, never set size. [`jpeg_playback_batch`] is the materialized
//! flavour — generate everything, then play — kept as the differential
//! baseline; the two produce byte-identical [`PlaybackReport`]s. One
//! [`Exec`] value picks the backend for the whole experiment: playback
//! chunks dispatch through [`Exec::dispatch_stream`] (inline, threads,
//! `steac-worker` processes, or a remote fleet), and generation —
//! whose expected-response closures cannot cross a process boundary —
//! shards on the backend's in-process pool. Reports are byte-identical
//! on every backend.

use crate::cores::{jpeg_core, CoreParams};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use steac_netlist::Module;
use steac_pattern::{stream_cycle_patterns, CyclePattern, PatternError, PinState};
use steac_sim::{Exec, Logic, SimError, SimProgram, Simulator, LANES};

/// Outcome of a batched playback experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlaybackReport {
    /// Patterns played.
    pub patterns: usize,
    /// Tester cycles represented (sum over patterns).
    pub cycles: u64,
    /// Compares performed (sum over patterns).
    pub compares: u64,
    /// Total mismatching compares (0 for a healthy netlist).
    pub mismatches: usize,
    /// Packed passes the player needed
    /// (⌈patterns / (64 · [`steac_pattern::PLAYBACK_LANE_GROUPS`])⌉).
    pub passes: usize,
    /// Times process dispatch fell back to the in-thread pool while
    /// producing this report (0 unless the `Exec` runs a process
    /// backend under [`steac_sim::Fallback::InThread`] and that
    /// dispatch failed); the verdicts are unaffected. Every other field
    /// is backend-invariant, so healthy reports compare equal across
    /// serial, thread and process execution.
    pub process_fallbacks: usize,
}

/// Deterministic per-pattern stimulus (SplitMix64, so the experiment is
/// reproducible without an RNG dependency).
fn stimulus_bit(pattern: usize, pin: usize) -> bool {
    let mut z = (pattern as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(pin as u64);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) & 1 == 1
}

/// Everything JPEG pattern generation and playback share: the module,
/// its compiled program (compiled exactly once), the core parameters
/// and the pattern pin list (PIs, then the clock, then POs).
struct JpegRig {
    module: Module,
    program: Arc<SimProgram>,
    params: CoreParams,
    pins: Vec<String>,
}

fn jpeg_rig() -> Result<JpegRig, PatternError> {
    let (module, params) = jpeg_core().map_err(|e| PatternError::Sim(SimError::Netlist(e)))?;
    let mut pins: Vec<String> = params.pi.clone();
    pins.push(params.clocks[0].clone());
    pins.extend(params.po.iter().cloned());
    let program = Arc::new(SimProgram::compile(&module)?);
    Ok(JpegRig {
        module,
        program,
        params,
        pins,
    })
}

/// Generates block `bi` (up to [`LANES`] two-cycle patterns: drive PIs +
/// pulse `ck`, then compare every PO) of the `count`-pattern JPEG set,
/// with expected responses computed by a scalar reference simulation of
/// each pattern. Pattern `k` depends only on `k`, so the output is
/// identical on every backend, at every width and in any block order —
/// the foundation of both the materialized and the streaming flow.
fn generate_block(
    rig: &JpegRig,
    bi: usize,
    count: usize,
) -> Result<Vec<CyclePattern>, PatternError> {
    let n_pi = rig.params.pi.len();
    let mut sim: Simulator = Simulator::from_program(Arc::clone(&rig.program));
    let mut block = Vec::with_capacity(LANES);
    for k in (bi * LANES..count).take(LANES) {
        let drives: Vec<Logic> = (0..n_pi).map(|i| Logic::from(stimulus_bit(k, i))).collect();
        // Scalar reference run from the power-on state (the batch
        // player resets each chunk the same way).
        sim.reset_to_x();
        for (name, &v) in rig.params.pi.iter().zip(&drives) {
            sim.set_by_name(name, v)?;
        }
        sim.clock_cycle_by_name(&rig.params.clocks[0])?;
        let expected: Vec<Logic> = rig
            .params
            .po
            .iter()
            .map(|name| sim.get_by_name(name))
            .collect::<Result<_, _>>()?;

        let mut p = CyclePattern::new(rig.pins.clone());
        let mut capture_row: Vec<PinState> =
            drives.iter().map(|&v| PinState::from_drive(v)).collect();
        capture_row.push(PinState::Pulse);
        capture_row.extend(std::iter::repeat_n(PinState::DontCare, rig.params.po.len()));
        p.push_cycle(capture_row)?;
        let mut compare_row: Vec<PinState> =
            drives.iter().map(|&v| PinState::from_drive(v)).collect();
        compare_row.push(PinState::Drive0);
        compare_row.extend(expected.iter().map(|&v| PinState::from_expect(v)));
        p.push_cycle(compare_row)?;
        block.push(p);
    }
    Ok(block)
}

/// Builds `count` two-cycle functional patterns for the JPEG core. The
/// expected-response simulations are independent per pattern, so
/// generation fans [`LANES`]-pattern blocks across the backend's
/// in-process pool ([`Exec::run_fallible`]); the output is identical on
/// every backend and at every width.
///
/// # Errors
///
/// Propagates netlist and simulation errors.
pub fn jpeg_functional_patterns(
    exec: &Exec,
    count: usize,
) -> Result<(Module, Vec<CyclePattern>), PatternError> {
    let (module, program, patterns) = jpeg_patterns_and_program(exec, count)?;
    drop(program);
    Ok((module, patterns))
}

/// Shared generation core: compiles the JPEG module once and returns the
/// program alongside the patterns, so playback never recompiles it.
#[allow(clippy::type_complexity)]
fn jpeg_patterns_and_program(
    exec: &Exec,
    count: usize,
) -> Result<(Module, Arc<SimProgram>, Vec<CyclePattern>), PatternError> {
    let rig = jpeg_rig()?;
    let blocks = count.div_ceil(LANES);
    let per_block = exec.run_fallible(blocks, |bi| generate_block(&rig, bi, count))?;
    Ok((
        rig.module,
        rig.program,
        per_block.into_iter().flatten().collect(),
    ))
}

/// Verifies `count` JPEG functional patterns the **materialized** way:
/// generate the whole set, then play it through the streaming cycle
/// player at full-width chunks (one pattern per lane,
/// `64 * PLAYBACK_LANE_GROUPS` per pass; see
/// [`steac_pattern::PLAYBACK_LANE_GROUPS`]) and aggregate the result.
/// `exec` decides whether playback chunks run inline, across threads,
/// across `steac-worker` processes or on a remote fleet, and the report
/// is byte-identical in every flavour — and to
/// [`jpeg_playback_stream`], the constant-memory pipeline this is the
/// differential baseline for.
///
/// # Errors
///
/// Propagates netlist, pattern and simulation errors; a failing worker
/// surfaces as the lowest-indexed failing chunk's error (under
/// [`steac_sim::Fallback::Fail`]).
pub fn jpeg_playback_batch(exec: &Exec, count: usize) -> Result<PlaybackReport, PatternError> {
    let (_module, program, patterns) = jpeg_patterns_and_program(exec, count)?;
    let sim: Simulator = Simulator::from_program(program);
    let cycles: u64 = patterns.iter().map(CyclePattern::cycle_count).sum();
    let mut fold = ReportFold::default();
    let run = stream_cycle_patterns(exec, &sim, patterns.into_iter(), |r| fold.add(&r))?;
    Ok(fold.into_report(cycles, count, run.process_fallbacks))
}

/// Verifies `count` JPEG functional patterns as a **streaming
/// pipeline**: generator threads (the backend's in-process width)
/// produce [`LANES`]-pattern blocks into a bounded queue while the
/// cycle player consumes them through [`Exec::dispatch_stream`], so the
/// full pattern set is never materialized — peak memory follows the
/// queue depth, not `count` — and generation overlaps playback. Blocks
/// are re-ordered to pattern order before they reach the player, so the
/// report is byte-identical to [`jpeg_playback_batch`] on every
/// backend.
///
/// # Errors
///
/// Propagates netlist, pattern and simulation errors; the lowest-indexed
/// failure wins (a dispatch error always precedes a generation error's
/// truncation point in pattern order, so it takes precedence).
pub fn jpeg_playback_stream(exec: &Exec, count: usize) -> Result<PlaybackReport, PatternError> {
    let rig = jpeg_rig()?;
    let sim: Simulator = Simulator::from_program(Arc::clone(&rig.program));
    let blocks = count.div_ceil(LANES);
    let generators = exec.local_threads().get().min(blocks.max(1));
    let cursor = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let gen_error: Mutex<Option<PatternError>> = Mutex::new(None);
    let cycles = AtomicU64::new(0);
    // Bounded handoff: at most 2 blocks per generator queued, so the
    // producer side holds O(generators) blocks however far ahead
    // generation runs.
    let (tx, rx) = mpsc::sync_channel::<(usize, Vec<CyclePattern>)>(generators * 2);

    let mut fold = ReportFold::default();
    let streamed = std::thread::scope(|scope| {
        for _ in 0..generators {
            let tx = tx.clone();
            let (rig, cursor, abort, gen_error) = (&rig, &cursor, &abort, &gen_error);
            scope.spawn(move || loop {
                // Checked before pulling the next index so an error
                // leaves only already-in-flight blocks to drain — the
                // consumer's reorder buffer stays bounded past the hole.
                if abort.load(Ordering::Acquire) {
                    break;
                }
                let bi = cursor.fetch_add(1, Ordering::Relaxed);
                if bi >= blocks {
                    break;
                }
                match generate_block(rig, bi, count) {
                    Ok(block) => {
                        if tx.send((bi, block)).is_err() {
                            break; // consumer gone (dispatch error)
                        }
                    }
                    Err(e) => {
                        let mut cell = gen_error.lock().expect("generator poisoned");
                        if cell.is_none() {
                            *cell = Some(e);
                        }
                        abort.store(true, Ordering::Release);
                        break;
                    }
                }
            });
        }
        drop(tx);
        let feed = BlockStream {
            rx,
            pending: BTreeMap::new(),
            next: 0,
            current: Vec::new().into_iter(),
            cycles: &cycles,
        };
        stream_cycle_patterns(exec, &sim, feed, |r| fold.add(&r))
    });
    // A dispatch error is always lower-indexed than a generation
    // error's truncation point, so it wins.
    let run = streamed?;
    if let Some(e) = gen_error.into_inner().expect("generator poisoned") {
        return Err(e);
    }
    Ok(fold.into_report(cycles.into_inner(), count, run.process_fallbacks))
}

/// In-order pattern feed for the streaming pipeline: receives
/// `(block index, block)` pairs from the generator threads — which race
/// and finish out of order — and yields the patterns in pattern order,
/// buffering at most the in-flight blocks. Counts tester cycles as
/// patterns flow past, since the streaming flow never holds the set to
/// sum over.
struct BlockStream<'a> {
    rx: mpsc::Receiver<(usize, Vec<CyclePattern>)>,
    pending: BTreeMap<usize, Vec<CyclePattern>>,
    next: usize,
    current: std::vec::IntoIter<CyclePattern>,
    cycles: &'a AtomicU64,
}

impl Iterator for BlockStream<'_> {
    type Item = CyclePattern;

    fn next(&mut self) -> Option<CyclePattern> {
        loop {
            if let Some(p) = self.current.next() {
                self.cycles.fetch_add(p.cycle_count(), Ordering::Relaxed);
                return Some(p);
            }
            loop {
                if let Some(block) = self.pending.remove(&self.next) {
                    self.next += 1;
                    self.current = block.into_iter();
                    break;
                }
                match self.rx.recv() {
                    Ok((bi, block)) => {
                        self.pending.insert(bi, block);
                    }
                    // Generators done (or aborted): the stream ends at
                    // the first hole.
                    Err(_) => return None,
                }
            }
        }
    }
}

/// Folds per-pattern mismatch reports into one [`PlaybackReport`] as
/// they arrive — shared by the materialized and streaming flows so the
/// aggregation can never diverge.
#[derive(Default)]
struct ReportFold {
    patterns: usize,
    compares: u64,
    mismatches: usize,
}

impl ReportFold {
    fn add(&mut self, r: &steac_pattern::MismatchReport) {
        self.patterns += 1;
        self.compares += r.compares;
        self.mismatches += r.mismatches.len();
    }

    fn into_report(self, cycles: u64, count: usize, process_fallbacks: usize) -> PlaybackReport {
        PlaybackReport {
            patterns: self.patterns,
            cycles,
            compares: self.compares,
            mismatches: self.mismatches,
            passes: count.div_ceil(LANES * steac_pattern::PLAYBACK_LANE_GROUPS),
            process_fallbacks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use steac_pattern::apply_cycle_pattern;
    use steac_sim::Threads;

    fn exec() -> Exec {
        Exec::from_env()
    }

    /// The batched verdict must equal per-pattern scalar playback — and
    /// pass: the expectations were computed from the same netlist.
    #[test]
    fn jpeg_batched_playback_is_clean_and_matches_scalar() {
        let count = 70; // > 64: exercises chunking
        let (module, patterns) = jpeg_functional_patterns(&exec(), count).unwrap();
        let sim: Simulator = Simulator::new(&module).unwrap();
        let mut batch = Vec::new();
        stream_cycle_patterns(&exec(), &sim, patterns.iter().cloned(), |r| batch.push(r)).unwrap();
        assert_eq!(batch.len(), count);
        for (i, p) in patterns.iter().enumerate() {
            let mut scalar_sim = Simulator::new(&module).unwrap();
            let scalar = apply_cycle_pattern(&mut scalar_sim, p).unwrap();
            assert_eq!(batch[i].compares, scalar.compares, "pattern {i}");
            assert_eq!(batch[i].mismatches, scalar.mismatches, "pattern {i}");
            assert!(batch[i].passed(), "pattern {i}: {}", batch[i]);
        }
    }

    #[test]
    fn playback_report_aggregates() {
        let rep = jpeg_playback_batch(&Exec::threads(Threads::exact(2)), 10).unwrap();
        assert_eq!(rep.patterns, 10);
        assert_eq!(rep.cycles, 20);
        assert_eq!(rep.mismatches, 0);
        assert_eq!(rep.passes, 1);
        assert_eq!(rep.compares, 10 * 104); // every PO compared once
        assert_eq!(rep.process_fallbacks, 0);
    }

    /// Generation and the whole playback report are bit-identical on the
    /// serial backend and at every thread count — every field of
    /// `PlaybackReport` is backend-invariant now, so the reports compare
    /// equal as values.
    #[test]
    fn jpeg_generation_and_playback_are_backend_invariant_in_process() {
        let count = 130; // three blocks
        let (_, baseline) = jpeg_functional_patterns(&Exec::serial(), count).unwrap();
        let base_rep = jpeg_playback_batch(&Exec::serial(), count).unwrap();
        for t in [2, 4] {
            let threaded = Exec::threads(Threads::exact(t));
            let (_, sharded) = jpeg_functional_patterns(&threaded, count).unwrap();
            assert_eq!(sharded, baseline, "{t} threads");
            let rep = jpeg_playback_batch(&threaded, count).unwrap();
            assert_eq!(rep, base_rep, "{t} threads");
        }
    }

    #[test]
    fn corrupted_expectation_is_caught() {
        let (module, mut patterns) = jpeg_functional_patterns(&exec(), 3).unwrap();
        // Flip one expectation of pattern 1.
        let row = patterns[1].cycles.len() - 1;
        let col = patterns[1].pins.len() - 1;
        patterns[1].cycles[row][col] = match patterns[1].cycles[row][col] {
            PinState::ExpectH => PinState::ExpectL,
            _ => PinState::ExpectH,
        };
        let sim: Simulator = Simulator::new(&module).unwrap();
        let mut reports = Vec::new();
        stream_cycle_patterns(&exec(), &sim, patterns.into_iter(), |r| reports.push(r)).unwrap();
        assert!(reports[0].passed());
        assert!(!reports[1].passed());
        assert!(reports[2].passed());
    }

    /// The streaming pipeline's report must be byte-identical to the
    /// materialized flow's on the in-process backends — the streaming
    /// seam (bounded queues, racing generators, chunked dispatch) is
    /// invisible in the outcome.
    #[test]
    fn streaming_playback_matches_the_materialized_report() {
        let count = 150; // three generation blocks
        let base = jpeg_playback_batch(&Exec::serial(), count).unwrap();
        assert_eq!(base.patterns, count);
        assert_eq!(base.mismatches, 0);
        for (name, exec) in [
            ("serial", Exec::serial()),
            ("threads:3", Exec::threads(Threads::exact(3))),
        ] {
            let rep = jpeg_playback_stream(&exec, count).unwrap();
            assert_eq!(rep, base, "{name}");
        }
    }
}
