//! Pattern-verification experiments on the DSC cores, riding the
//! bit-parallel simulation kernel.
//!
//! The paper's flow ends with chip-level ATE patterns; verifying them
//! against the gate-level netlist is a pure simulation workload, and the
//! batched cycle player ([`steac_pattern::apply_cycle_patterns_batch`])
//! runs 64 patterns per pass, with 64-pattern passes sharded across
//! cores — the experiment here is the JPEG core's functional-pattern
//! verification, the largest single pattern set of Table 1 (235,696
//! functional patterns on silicon; `examples/jpeg_full_playback.rs`
//! plays the full set end to end, the tests a sampled subset the same
//! way). Pattern *generation* shards too: every 64-pattern block is an
//! independent work unit over the shared compiled program.

use crate::cores::jpeg_core;
use std::sync::Arc;
use steac_netlist::Module;
use steac_pattern::{apply_cycle_patterns_batch_with, CyclePattern, PatternError, PinState};
use steac_sim::{shard, Logic, SimError, SimProgram, Simulator, Threads, LANES};

/// Outcome of a batched playback experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlaybackReport {
    /// Patterns played.
    pub patterns: usize,
    /// Tester cycles represented (sum over patterns).
    pub cycles: u64,
    /// Compares performed (sum over patterns).
    pub compares: u64,
    /// Total mismatching compares (0 for a healthy netlist).
    pub mismatches: usize,
    /// Packed passes the player needed (⌈patterns / 64⌉).
    pub passes: usize,
    /// Worker threads the sharded player actually fanned passes across
    /// (the configured width, capped at the number of passes).
    pub threads: usize,
}

/// Deterministic per-pattern stimulus (SplitMix64, so the experiment is
/// reproducible without an RNG dependency).
fn stimulus_bit(pattern: usize, pin: usize) -> bool {
    let mut z = (pattern as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(pin as u64);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) & 1 == 1
}

/// Builds `count` two-cycle functional patterns for the JPEG core (drive
/// PIs + pulse `ck`, then compare every PO), with expected responses
/// computed by a scalar reference simulation of each pattern, sharded
/// with the default thread count ([`Threads::from_env`]).
///
/// # Errors
///
/// Propagates netlist and simulation errors.
pub fn jpeg_functional_patterns(count: usize) -> Result<(Module, Vec<CyclePattern>), PatternError> {
    jpeg_functional_patterns_with(count, Threads::from_env())
}

/// [`jpeg_functional_patterns`] with an explicit worker count: the
/// expected-response simulations are independent per pattern, so
/// generation fans 64-pattern blocks across workers (each with its own
/// executor over the shared compiled program). Pattern `k` depends only
/// on `k`, so the output is identical at every thread count.
///
/// # Errors
///
/// Propagates netlist and simulation errors.
pub fn jpeg_functional_patterns_with(
    count: usize,
    threads: Threads,
) -> Result<(Module, Vec<CyclePattern>), PatternError> {
    let (module, program, patterns) = jpeg_patterns_and_program(count, threads)?;
    drop(program);
    Ok((module, patterns))
}

/// Shared generation core: compiles the JPEG module once and returns the
/// program alongside the patterns, so playback never recompiles it.
#[allow(clippy::type_complexity)]
fn jpeg_patterns_and_program(
    count: usize,
    threads: Threads,
) -> Result<(Module, Arc<SimProgram>, Vec<CyclePattern>), PatternError> {
    let (module, params) = jpeg_core().map_err(|e| PatternError::Sim(SimError::Netlist(e)))?;
    let mut pins: Vec<String> = params.pi.clone();
    pins.push(params.clocks[0].clone());
    pins.extend(params.po.iter().cloned());
    let n_pi = params.pi.len();

    let program = Arc::new(SimProgram::compile(&module)?);
    let blocks = count.div_ceil(LANES);
    let per_block = shard::run_fallible(threads, blocks, |bi| {
        let mut sim = Simulator::from_program(Arc::clone(&program));
        let mut block = Vec::with_capacity(LANES);
        for k in (bi * LANES..count).take(LANES) {
            let drives: Vec<Logic> = (0..n_pi).map(|i| Logic::from(stimulus_bit(k, i))).collect();
            // Scalar reference run from the power-on state (the batch
            // player resets each chunk the same way).
            sim.reset_to_x();
            for (name, &v) in params.pi.iter().zip(&drives) {
                sim.set_by_name(name, v)?;
            }
            sim.clock_cycle_by_name(&params.clocks[0])?;
            let expected: Vec<Logic> = params
                .po
                .iter()
                .map(|name| sim.get_by_name(name))
                .collect::<Result<_, _>>()?;

            let mut p = CyclePattern::new(pins.clone());
            let mut capture_row: Vec<PinState> =
                drives.iter().map(|&v| PinState::from_drive(v)).collect();
            capture_row.push(PinState::Pulse);
            capture_row.extend(std::iter::repeat_n(PinState::DontCare, params.po.len()));
            p.push_cycle(capture_row)?;
            let mut compare_row: Vec<PinState> =
                drives.iter().map(|&v| PinState::from_drive(v)).collect();
            compare_row.push(PinState::Drive0);
            compare_row.extend(expected.iter().map(|&v| PinState::from_expect(v)));
            p.push_cycle(compare_row)?;
            block.push(p);
        }
        Ok::<_, PatternError>(block)
    })?;
    Ok((module, program, per_block.into_iter().flatten().collect()))
}

/// Verifies `count` JPEG functional patterns with the batched cycle
/// player (64 per pass) and aggregates the result.
///
/// Dispatch: with `STEAC_WORKERS` set to a positive integer, playback
/// passes fan out across that many `steac-worker` **processes**
/// ([`jpeg_playback_batch_processes`]); otherwise across the default
/// in-thread pool. Reports are byte-identical either way.
///
/// # Errors
///
/// Propagates netlist, pattern and simulation errors.
pub fn jpeg_playback_batch(count: usize) -> Result<PlaybackReport, PatternError> {
    match shard::env_workers() {
        Some(workers) => jpeg_playback_batch_processes(count, workers),
        None => jpeg_playback_batch_with(count, Threads::from_env()),
    }
}

/// [`jpeg_playback_batch`] with playback fanned across `workers`
/// `steac-worker` processes (generation stays on the in-thread pool —
/// its expected-response simulations feed directly into the patterns the
/// playback units then ship over the wire). Falls back to in-thread
/// playback when the worker binary cannot be found or spawned; the
/// report's `threads` field records the requested process width.
///
/// # Errors
///
/// Propagates netlist, pattern and simulation errors; a failing worker
/// surfaces as the lowest-indexed failing chunk's error.
pub fn jpeg_playback_batch_processes(
    count: usize,
    workers: usize,
) -> Result<PlaybackReport, PatternError> {
    let (_module, program, patterns) = jpeg_patterns_and_program(count, Threads::from_env())?;
    let refs: Vec<&CyclePattern> = patterns.iter().collect();
    let sim = Simulator::from_program(program);
    let reports = steac_pattern::apply_cycle_patterns_batch_processes(&sim, &refs, workers)?;
    Ok(aggregate_report(&patterns, &reports, count, workers))
}

/// [`jpeg_playback_batch`] with an explicit worker count (generation and
/// playback both shard at this width; the report records it).
///
/// # Errors
///
/// Propagates netlist, pattern and simulation errors.
pub fn jpeg_playback_batch_with(
    count: usize,
    threads: Threads,
) -> Result<PlaybackReport, PatternError> {
    let (_module, program, patterns) = jpeg_patterns_and_program(count, threads)?;
    let refs: Vec<&CyclePattern> = patterns.iter().collect();
    let sim = Simulator::from_program(program);
    let reports = apply_cycle_patterns_batch_with(&sim, &refs, threads)?;
    Ok(aggregate_report(&patterns, &reports, count, threads.get()))
}

/// Folds per-pattern reports into one [`PlaybackReport`] — shared by the
/// thread and process flavours so the aggregation can never diverge;
/// `width` is the requested fan-out (threads or worker processes).
fn aggregate_report(
    patterns: &[CyclePattern],
    reports: &[steac_pattern::MismatchReport],
    count: usize,
    width: usize,
) -> PlaybackReport {
    let passes = count.div_ceil(LANES);
    PlaybackReport {
        patterns: reports.len(),
        cycles: patterns.iter().map(CyclePattern::cycle_count).sum(),
        compares: reports.iter().map(|r| r.compares).sum(),
        mismatches: reports.iter().map(|r| r.mismatches.len()).sum(),
        passes,
        threads: width.min(passes.max(1)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use steac_pattern::{apply_cycle_pattern, apply_cycle_patterns_batch_with};

    /// The batched verdict must equal per-pattern scalar playback — and
    /// pass: the expectations were computed from the same netlist.
    #[test]
    fn jpeg_batched_playback_is_clean_and_matches_scalar() {
        let count = 70; // > 64: exercises chunking
        let (module, patterns) = jpeg_functional_patterns(count).unwrap();
        let refs: Vec<&CyclePattern> = patterns.iter().collect();
        let sim = Simulator::new(&module).unwrap();
        let batch = apply_cycle_patterns_batch_with(&sim, &refs, Threads::from_env()).unwrap();
        assert_eq!(batch.len(), count);
        for (i, p) in patterns.iter().enumerate() {
            let mut scalar_sim = Simulator::new(&module).unwrap();
            let scalar = apply_cycle_pattern(&mut scalar_sim, p).unwrap();
            assert_eq!(batch[i].mismatches, scalar.mismatches, "pattern {i}");
            assert!(batch[i].passed(), "pattern {i}: {}", batch[i]);
        }
    }

    #[test]
    fn playback_report_aggregates() {
        let rep = jpeg_playback_batch_with(10, Threads::exact(2)).unwrap();
        assert_eq!(rep.patterns, 10);
        assert_eq!(rep.cycles, 20);
        assert_eq!(rep.mismatches, 0);
        assert_eq!(rep.passes, 1);
        assert_eq!(rep.compares, 10 * 104); // every PO compared once
        assert_eq!(rep.threads, 1); // one pass caps the effective width
    }

    /// Sharded generation and playback are bit-identical at every
    /// thread count (patterns AND reports).
    #[test]
    fn jpeg_generation_and_playback_are_thread_count_invariant() {
        let count = 130; // three blocks
        let (_, baseline) = jpeg_functional_patterns_with(count, Threads::single()).unwrap();
        let base_rep = jpeg_playback_batch_with(count, Threads::single()).unwrap();
        for t in [2, 4] {
            let (_, sharded) = jpeg_functional_patterns_with(count, Threads::exact(t)).unwrap();
            assert_eq!(sharded, baseline, "{t} threads");
            let rep = jpeg_playback_batch_with(count, Threads::exact(t)).unwrap();
            assert_eq!(rep.patterns, base_rep.patterns);
            assert_eq!(rep.compares, base_rep.compares);
            assert_eq!(rep.mismatches, base_rep.mismatches);
            assert_eq!(rep.threads, t.min(rep.passes));
        }
    }

    #[test]
    fn corrupted_expectation_is_caught() {
        let (module, mut patterns) = jpeg_functional_patterns(3).unwrap();
        // Flip one expectation of pattern 1.
        let row = patterns[1].cycles.len() - 1;
        let col = patterns[1].pins.len() - 1;
        patterns[1].cycles[row][col] = match patterns[1].cycles[row][col] {
            PinState::ExpectH => PinState::ExpectL,
            _ => PinState::ExpectH,
        };
        let refs: Vec<&CyclePattern> = patterns.iter().collect();
        let sim = Simulator::new(&module).unwrap();
        let reports = apply_cycle_patterns_batch_with(&sim, &refs, Threads::from_env()).unwrap();
        assert!(reports[0].passed());
        assert!(!reports[1].passed());
        assert!(reports[2].passed());
    }
}
