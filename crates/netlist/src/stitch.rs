//! Scan-chain stitching: the DFT step that turns ordinary flip-flops into
//! scan flip-flops and threads them into shift chains.
//!
//! STEAC's Core Test Scheduler "will then rebalance scan chains for each
//! assigned TAM width" for soft cores; the physical realization of a
//! (re)balanced configuration is performed here by replacing `DFF`/`DFFR`
//! cells with `SDFF`/`SDFFR` cells and wiring `SI → ... → SO` per chain.

use crate::gate::GateKind;
use crate::module::{CellContents, Module, Port, PortDir};
use crate::NetlistError;

/// Configuration for scan stitching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StitchConfig {
    /// Number of scan chains to create. Flops are distributed round-robin
    /// in cell order, which yields chain lengths differing by at most one
    /// (a balanced configuration).
    pub chains: usize,
    /// Base name for the scan-in ports (`{base}_si[i]`).
    pub si_base: String,
    /// Base name for the scan-out ports (`{base}_so[i]`).
    pub so_base: String,
    /// Name of the scan-enable port added to the module.
    pub se_name: String,
}

impl StitchConfig {
    /// Balanced stitching into `chains` chains with conventional port
    /// names (`scan_si[i]`, `scan_so[i]`, `scan_se`).
    #[must_use]
    pub fn balanced(chains: usize) -> Self {
        StitchConfig {
            chains,
            si_base: "scan_si".to_string(),
            so_base: "scan_so".to_string(),
            se_name: "scan_se".to_string(),
        }
    }
}

/// Result of a stitching transformation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanStitchReport {
    /// Number of flops converted to scan flops.
    pub converted_flops: usize,
    /// Length of each created chain.
    pub chain_lengths: Vec<usize>,
}

impl ScanStitchReport {
    /// Longest chain length (0 when no flop exists).
    #[must_use]
    pub fn max_chain(&self) -> usize {
        self.chain_lengths.iter().copied().max().unwrap_or(0)
    }
}

/// Replaces every `DFF`/`DFFR` in `m` with its scan equivalent and stitches
/// the scan pins into `config.chains` chains, adding `si`/`so`/`se` ports.
///
/// Pre-existing scan flops are re-stitched as well, so the transformation
/// is idempotent in chain structure.
///
/// # Errors
///
/// Returns [`NetlistError::DuplicateName`] if the scan port names collide
/// with existing ports, or an error if `config.chains == 0` while the
/// module contains flops (modelled as `PinCount` misuse is avoided; we use
/// `DuplicateName` only for name clashes — a zero-chain request with flops
/// yields `CombLoop`-free module untouched and an empty report).
pub fn stitch_scan(
    m: &mut Module,
    config: &StitchConfig,
) -> Result<ScanStitchReport, NetlistError> {
    let flop_ids: Vec<usize> = m
        .cells
        .iter()
        .enumerate()
        .filter(|(_, c)| c.gate_kind().is_some_and(GateKind::is_flop))
        .map(|(i, _)| i)
        .collect();
    if flop_ids.is_empty() || config.chains == 0 {
        return Ok(ScanStitchReport {
            converted_flops: 0,
            chain_lengths: vec![0; config.chains],
        });
    }
    for p in &m.ports {
        if p.name == config.se_name {
            return Err(NetlistError::DuplicateName {
                name: config.se_name.clone(),
            });
        }
    }

    // Scan-enable port.
    let se_net = m.add_net(config.se_name.clone());
    m.ports.push(Port {
        name: config.se_name.clone(),
        dir: PortDir::Input,
        net: se_net,
    });

    // Distribute flops round-robin over chains.
    let chains: Vec<Vec<usize>> = {
        let mut v: Vec<Vec<usize>> = vec![Vec::new(); config.chains];
        for (i, &f) in flop_ids.iter().enumerate() {
            v[i % config.chains].push(f);
        }
        v
    };

    let mut chain_lengths = Vec::with_capacity(config.chains);
    for (ci, chain) in chains.iter().enumerate() {
        chain_lengths.push(chain.len());
        if chain.is_empty() {
            continue;
        }
        let si_name = format!("{}[{ci}]", config.si_base);
        let si_net = m.add_net(si_name.clone());
        m.ports.push(Port {
            name: si_name,
            dir: PortDir::Input,
            net: si_net,
        });
        let mut prev = si_net;
        for &cell_idx in chain {
            let (kind, inputs, output) = match &m.cells[cell_idx].contents {
                CellContents::Gate {
                    kind,
                    inputs,
                    output,
                } => (*kind, inputs.clone(), *output),
                CellContents::Inst(_) => unreachable!("flop ids are gates"),
            };
            let (new_kind, new_inputs) = match kind {
                // (d, ck) -> (d, si, se, ck)
                GateKind::Dff => (GateKind::Sdff, vec![inputs[0], prev, se_net, inputs[1]]),
                // (d, ck, rstn) -> (d, si, se, ck, rstn)
                GateKind::DffR => (
                    GateKind::SdffR,
                    vec![inputs[0], prev, se_net, inputs[1], inputs[2]],
                ),
                // Re-stitch existing scan flops: replace si/se.
                GateKind::Sdff => (GateKind::Sdff, vec![inputs[0], prev, se_net, inputs[3]]),
                GateKind::SdffR => (
                    GateKind::SdffR,
                    vec![inputs[0], prev, se_net, inputs[3], inputs[4]],
                ),
                _ => unreachable!("is_flop covers exactly these kinds"),
            };
            m.cells[cell_idx].contents = CellContents::Gate {
                kind: new_kind,
                inputs: new_inputs,
                output,
            };
            prev = output;
        }
        let so_name = format!("{}[{ci}]", config.so_base);
        m.ports.push(Port {
            name: so_name,
            dir: PortDir::Output,
            net: prev,
        });
    }

    Ok(ScanStitchReport {
        converted_flops: flop_ids.len(),
        chain_lengths,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;

    /// A toy 5-flop shift structure used by several tests.
    fn five_flop_module() -> Module {
        let mut b = NetlistBuilder::new("m");
        let ck = b.input("ck");
        let d = b.input("d");
        let mut cur = d;
        for _ in 0..5 {
            cur = b.gate(GateKind::Dff, &[cur, ck]);
        }
        b.output("q", cur);
        b.finish().unwrap()
    }

    #[test]
    fn stitch_converts_all_flops() {
        let mut m = five_flop_module();
        let rep = stitch_scan(&mut m, &StitchConfig::balanced(2)).unwrap();
        assert_eq!(rep.converted_flops, 5);
        assert_eq!(rep.chain_lengths, vec![3, 2]);
        assert_eq!(m.flop_count(), 5);
        assert!(m
            .cells
            .iter()
            .all(|c| !matches!(c.gate_kind(), Some(GateKind::Dff))));
        // Ports added: se + 2 si + 2 so.
        assert!(m.port("scan_se").is_some());
        assert!(m.port("scan_si[0]").is_some());
        assert!(m.port("scan_so[1]").is_some());
    }

    #[test]
    fn stitched_module_still_validates() {
        let mut m = five_flop_module();
        stitch_scan(&mut m, &StitchConfig::balanced(3)).unwrap();
        assert!(m.drivers(None).is_ok());
        assert!(!crate::visit::detect_comb_loop(&m));
    }

    #[test]
    fn zero_flops_is_a_noop() {
        let mut b = NetlistBuilder::new("comb");
        let a = b.input("a");
        let y = b.gate(GateKind::Inv, &[a]);
        b.output("y", y);
        let mut m = b.finish().unwrap();
        let rep = stitch_scan(&mut m, &StitchConfig::balanced(4)).unwrap();
        assert_eq!(rep.converted_flops, 0);
        assert!(m.port("scan_se").is_none());
    }

    #[test]
    fn port_name_collision_is_rejected() {
        let mut b = NetlistBuilder::new("m");
        let ck = b.input("ck");
        let se = b.input("scan_se");
        let q = b.gate(GateKind::Dff, &[se, ck]);
        b.output("q", q);
        let mut m = b.finish().unwrap();
        assert!(matches!(
            stitch_scan(&mut m, &StitchConfig::balanced(1)),
            Err(NetlistError::DuplicateName { .. })
        ));
    }

    #[test]
    fn chain_lengths_are_balanced() {
        let mut b = NetlistBuilder::new("m");
        let ck = b.input("ck");
        let d = b.input("d");
        let mut cur = d;
        for _ in 0..10 {
            cur = b.gate(GateKind::Dff, &[cur, ck]);
        }
        b.output("q", cur);
        let mut m = b.finish().unwrap();
        let rep = stitch_scan(&mut m, &StitchConfig::balanced(4)).unwrap();
        let max = rep.chain_lengths.iter().max().unwrap();
        let min = rep.chain_lengths.iter().min().unwrap();
        assert!(max - min <= 1, "{:?}", rep.chain_lengths);
    }
}
