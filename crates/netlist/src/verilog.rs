//! Structural Verilog emission.
//!
//! STEAC's Test Insertion step produces a "DFT-ready netlist"; this module
//! renders any [`Module`] (or whole [`Design`]) as structural Verilog-1995
//! so generated wrappers/TAM/controllers can be inspected or handed to
//! external tools.

use crate::module::{CellContents, Design, Module, PortDir};
use std::fmt::Write as _;

/// Escape a netlist name into a valid Verilog identifier.
///
/// Bus-bit names like `a[3]` and hierarchical names like `u0/g1` are turned
/// into escaped identifiers per the Verilog standard (leading `\`,
/// trailing space) when they contain characters outside `[A-Za-z0-9_$]`.
#[must_use]
pub fn escape_ident(name: &str) -> String {
    let plain = !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '$')
        && !name.chars().next().unwrap().is_ascii_digit();
    if plain {
        name.to_string()
    } else {
        format!("\\{name} ")
    }
}

/// Renders one module as structural Verilog.
#[must_use]
pub fn module_to_verilog(m: &Module) -> String {
    let mut s = String::new();
    let port_list: Vec<String> = m.ports.iter().map(|p| escape_ident(&p.name)).collect();
    let _ = writeln!(
        s,
        "module {} ({});",
        escape_ident(&m.name),
        port_list.join(", ")
    );
    for p in &m.ports {
        let dir = match p.dir {
            PortDir::Input => "input",
            PortDir::Output => "output",
        };
        let _ = writeln!(s, "  {dir} {};", escape_ident(&p.name));
    }
    // Declare internal wires (nets that are not ports).
    let port_nets: std::collections::BTreeSet<usize> =
        m.ports.iter().map(|p| p.net.index()).collect();
    for (i, net) in m.nets.iter().enumerate() {
        if !port_nets.contains(&i) {
            let _ = writeln!(s, "  wire {};", escape_ident(&net.name));
        }
    }
    for cell in &m.cells {
        match &cell.contents {
            CellContents::Gate {
                kind,
                inputs,
                output,
            } => {
                let mut pins: Vec<String> = Vec::with_capacity(inputs.len() + 1);
                pins.push(format!(
                    ".Y({})",
                    escape_ident(&m.nets[output.index()].name)
                ));
                for (i, n) in inputs.iter().enumerate() {
                    pins.push(format!(
                        ".{}({})",
                        pin_name(i, inputs.len(), *kind),
                        escape_ident(&m.nets[n.index()].name)
                    ));
                }
                let _ = writeln!(
                    s,
                    "  {} {} ({});",
                    kind.cell_name(),
                    escape_ident(&cell.name),
                    pins.join(", ")
                );
            }
            CellContents::Inst(inst) => {
                let pins: Vec<String> = inst
                    .connections
                    .iter()
                    .map(|(p, n)| {
                        format!(
                            ".{}({})",
                            escape_ident(p),
                            escape_ident(&m.nets[n.index()].name)
                        )
                    })
                    .collect();
                let _ = writeln!(
                    s,
                    "  {} {} ({});",
                    escape_ident(&inst.module),
                    escape_ident(&cell.name),
                    pins.join(", ")
                );
            }
        }
    }
    let _ = writeln!(s, "endmodule");
    s
}

fn pin_name(i: usize, _n: usize, kind: crate::GateKind) -> String {
    use crate::gate::PinRole;
    let roles = kind.pin_roles();
    match roles.get(i) {
        Some(PinRole::Clock) => "CK".to_string(),
        Some(PinRole::ResetN) => "RN".to_string(),
        Some(PinRole::ScanIn) => "SI".to_string(),
        Some(PinRole::ScanEnable) => "SE".to_string(),
        Some(PinRole::Enable) => "EN".to_string(),
        _ => {
            // Data pins: A, B, C, D... except the flop data pin, named D.
            if kind.is_sequential() && i == 0 {
                "D".to_string()
            } else {
                char::from(b'A' + i as u8).to_string()
            }
        }
    }
}

/// Renders a whole design, one module after another (children first so the
/// file elaborates without forward references).
#[must_use]
pub fn design_to_verilog(d: &Design) -> String {
    let mut out = String::new();
    for m in d.iter() {
        out.push_str(&module_to_verilog(m));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;
    use crate::gate::GateKind;

    #[test]
    fn plain_names_unescaped() {
        assert_eq!(escape_ident("abc_1$"), "abc_1$");
    }

    #[test]
    fn special_names_escaped() {
        assert_eq!(escape_ident("a[3]"), "\\a[3] ");
        assert_eq!(escape_ident("u0/g1"), "\\u0/g1 ");
        assert_eq!(escape_ident("9lives"), "\\9lives ");
    }

    #[test]
    fn emits_module_skeleton() {
        let mut b = NetlistBuilder::new("m");
        let a = b.input("a");
        let ck = b.input("ck");
        let q = b.gate(GateKind::Dff, &[a, ck]);
        b.output("q", q);
        let v = module_to_verilog(&b.finish().unwrap());
        assert!(v.contains("module m (a, ck, q);"), "{v}");
        assert!(v.contains("input a;"), "{v}");
        assert!(v.contains("output q;"), "{v}");
        assert!(v.contains("DFF"), "{v}");
        assert!(v.contains(".CK(ck)"), "{v}");
        assert!(v.trim_end().ends_with("endmodule"), "{v}");
    }

    #[test]
    fn scan_flop_pins_are_named() {
        let mut b = NetlistBuilder::new("m");
        let d = b.input("d");
        let si = b.input("si");
        let se = b.input("se");
        let ck = b.input("ck");
        let q = b.gate(GateKind::Sdff, &[d, si, se, ck]);
        b.output("q", q);
        let v = module_to_verilog(&b.finish().unwrap());
        assert!(v.contains(".SI(si)"), "{v}");
        assert!(v.contains(".SE(se)"), "{v}");
        assert!(v.contains(".D(d)"), "{v}");
    }
}
