//! Connectivity queries, topological ordering and loop detection.

use crate::module::{CellContents, CellId, Module, NetId};
use crate::NetlistError;

/// Precomputed fanin/fanout tables for a flat module.
///
/// Instance cells are ignored; run [`crate::Design::flatten`] first when a
/// hierarchical module must be analysed.
#[derive(Debug, Clone)]
pub struct FanTables {
    /// For each net: the cells reading it (as gate inputs).
    pub net_readers: Vec<Vec<CellId>>,
    /// For each net: the cell driving it, if any.
    pub net_driver: Vec<Option<CellId>>,
}

impl FanTables {
    /// Builds the tables for a flat module.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::MultipleDrivers`] when two gates drive one
    /// net.
    pub fn build(m: &Module) -> Result<Self, NetlistError> {
        let mut net_readers: Vec<Vec<CellId>> = vec![Vec::new(); m.nets.len()];
        let net_driver = m.drivers(None)?;
        for (i, cell) in m.cells.iter().enumerate() {
            if let CellContents::Gate { inputs, .. } = &cell.contents {
                for n in inputs {
                    net_readers[n.index()].push(CellId(i as u32));
                }
            }
        }
        Ok(FanTables {
            net_readers,
            net_driver,
        })
    }

    /// Cells in the transitive fanout of `net` (combinational and
    /// sequential), breadth-first.
    #[must_use]
    pub fn transitive_fanout(&self, m: &Module, net: NetId) -> Vec<CellId> {
        let mut seen = vec![false; m.cells.len()];
        let mut queue: Vec<NetId> = vec![net];
        let mut out = Vec::new();
        while let Some(n) = queue.pop() {
            for &c in &self.net_readers[n.index()] {
                if !seen[c.index()] {
                    seen[c.index()] = true;
                    out.push(c);
                    if let CellContents::Gate { kind, output, .. } = &m.cells[c.index()].contents {
                        if !kind.is_sequential() {
                            queue.push(*output);
                        }
                    }
                }
            }
        }
        out
    }
}

/// Returns the combinational gates of `m` in topological (evaluation)
/// order. Sequential elements act as sources/sinks and are excluded.
///
/// # Errors
///
/// Returns [`NetlistError::CombLoop`] if the combinational part of the
/// module is cyclic, or [`NetlistError::MultipleDrivers`] on driver
/// conflicts.
pub fn combinational_order(m: &Module) -> Result<Vec<CellId>, NetlistError> {
    let tables = FanTables::build(m)?;
    // Kahn's algorithm over combinational gates only.
    let mut indeg = vec![0usize; m.cells.len()];
    let mut is_comb = vec![false; m.cells.len()];
    for (i, cell) in m.cells.iter().enumerate() {
        if let CellContents::Gate { kind, inputs, .. } = &cell.contents {
            if !kind.is_sequential() {
                is_comb[i] = true;
                for n in inputs {
                    if let Some(d) = tables.net_driver[n.index()] {
                        if let CellContents::Gate { kind: dk, .. } = &m.cells[d.index()].contents {
                            if !dk.is_sequential() {
                                indeg[i] += 1;
                            }
                        }
                    }
                }
            }
        }
    }
    let mut order = Vec::new();
    let mut stack: Vec<usize> = (0..m.cells.len())
        .filter(|&i| is_comb[i] && indeg[i] == 0)
        .collect();
    while let Some(i) = stack.pop() {
        order.push(CellId(i as u32));
        if let CellContents::Gate { output, .. } = &m.cells[i].contents {
            for &r in &tables.net_readers[output.index()] {
                if is_comb[r.index()] {
                    indeg[r.index()] -= 1;
                    if indeg[r.index()] == 0 {
                        stack.push(r.index());
                    }
                }
            }
        }
    }
    let comb_total = is_comb.iter().filter(|&&b| b).count();
    if order.len() != comb_total {
        let witness = (0..m.cells.len())
            .find(|&i| is_comb[i] && indeg[i] > 0)
            .map(|i| CellId(i as u32))
            .unwrap_or(CellId(0));
        return Err(NetlistError::CombLoop { witness });
    }
    Ok(order)
}

/// Convenience predicate: does the module contain a combinational loop?
#[must_use]
pub fn detect_comb_loop(m: &Module) -> bool {
    matches!(combinational_order(m), Err(NetlistError::CombLoop { .. }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;
    use crate::gate::GateKind;

    #[test]
    fn topo_order_respects_dependencies() {
        let mut b = NetlistBuilder::new("m");
        let a = b.input("a");
        let x = b.gate(GateKind::Inv, &[a]);
        let y = b.gate(GateKind::Inv, &[x]);
        let z = b.gate(GateKind::And2, &[x, y]);
        b.output("z", z);
        let m = b.finish().unwrap();
        let order = combinational_order(&m).unwrap();
        let pos = |name: &str| {
            let id = m.cell_by_name(name).unwrap();
            order.iter().position(|&c| c == id).unwrap()
        };
        assert!(pos("g0") < pos("g1"));
        assert!(pos("g1") < pos("g2"));
    }

    #[test]
    fn flops_break_cycles() {
        // A classic counter bit: q -> inv -> d -> flop -> q is fine.
        let mut b = NetlistBuilder::new("m");
        let ck = b.input("ck");
        let q = b.net("q");
        let d = b.gate(GateKind::Inv, &[q]);
        b.gate_into(GateKind::Dff, &[d, ck], q);
        b.output("q", q);
        let m = b.finish().unwrap();
        assert!(!detect_comb_loop(&m));
        assert_eq!(combinational_order(&m).unwrap().len(), 1);
    }

    #[test]
    fn pure_combinational_cycle_is_detected() {
        let mut b = NetlistBuilder::new("m");
        let a = b.input("a");
        let x = b.net("x");
        let y = b.gate(GateKind::And2, &[a, x]);
        b.gate_into(GateKind::Inv, &[y], x);
        b.output("y", y);
        let m = b.finish().unwrap();
        assert!(detect_comb_loop(&m));
    }

    #[test]
    fn transitive_fanout_stops_at_flops() {
        let mut b = NetlistBuilder::new("m");
        let a = b.input("a");
        let ck = b.input("ck");
        let x = b.gate(GateKind::Inv, &[a]);
        let q = b.gate(GateKind::Dff, &[x, ck]);
        let z = b.gate(GateKind::Inv, &[q]);
        b.output("z", z);
        let m = b.finish().unwrap();
        let t = FanTables::build(&m).unwrap();
        let a_id = m.net_by_name("a").unwrap();
        let fan = t.transitive_fanout(&m, a_id);
        // Reaches INV and the DFF, but not past the DFF.
        assert_eq!(fan.len(), 2);
    }
}
