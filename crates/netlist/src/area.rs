//! Gate-equivalent area accounting.
//!
//! Reproduces the paper's cost metric: "The area of the WBR cell is
//! equivalent to 26 two-input NAND gates. The Test Controller and TAM
//! multiplexer require about 371 and 132 gates, respectively — their
//! hardware overhead is only about 0.3%."

use crate::gate::GateKind;
use crate::module::{CellContents, Design, Module};
use std::collections::BTreeMap;
use std::fmt;

/// Human-readable documentation of the GE table used throughout the
/// workspace (NAND-decomposition convention of 0.25 µm standard-cell
/// libraries).
pub const GE_TABLE_DOC: &str = "INV 0.5, BUF 1.0, NAND2/NOR2 1.0, NAND3/NOR3 1.5, NAND4 2.0, \
     AND2/OR2 1.5, AND3/OR3 2.0, XOR2/XNOR2 2.5, MUX2 3.5, LATCH 3.5, \
     DFF 6.0, DFFR 7.0, SDFF 9.5, SDFFR 10.5, TIE 0.5 (all in NAND2 \
     gate equivalents)";

/// Per-module area breakdown in gate equivalents.
#[derive(Debug, Clone, PartialEq)]
pub struct AreaReport {
    /// Module the report describes.
    pub module: String,
    /// GE contributed by explicit primitive cells.
    pub explicit_ge: f64,
    /// GE declared for abstracted logic (see
    /// [`Module::declared_extra_ge`]).
    pub declared_ge: f64,
    /// Cell-count histogram per gate kind.
    pub histogram: BTreeMap<GateKind, usize>,
}

impl AreaReport {
    /// Computes the report for a flat module (instances contribute zero;
    /// flatten first or use [`AreaReport::for_design`]).
    #[must_use]
    pub fn for_module(m: &Module) -> Self {
        let mut histogram: BTreeMap<GateKind, usize> = BTreeMap::new();
        let mut explicit_ge = 0.0;
        for cell in &m.cells {
            if let CellContents::Gate { kind, .. } = &cell.contents {
                *histogram.entry(*kind).or_insert(0) += 1;
                explicit_ge += kind.area_ge();
            }
        }
        AreaReport {
            module: m.name.clone(),
            explicit_ge,
            declared_ge: m.declared_extra_ge,
            histogram,
        }
    }

    /// Computes the report for `top` in `design`, flattening hierarchy.
    ///
    /// # Errors
    ///
    /// Propagates flattening errors (unknown module / port).
    pub fn for_design(design: &Design, top: &str) -> Result<Self, crate::NetlistError> {
        let flat = design.flatten(top)?;
        Ok(Self::for_module(&flat))
    }

    /// Total area: explicit + declared GE.
    #[must_use]
    pub fn total_ge(&self) -> f64 {
        self.explicit_ge + self.declared_ge
    }

    /// Overhead of this module relative to a base size, in percent —
    /// the quantity the paper reports as "about 0.3%".
    #[must_use]
    pub fn overhead_percent(&self, base_ge: f64) -> f64 {
        if base_ge <= 0.0 {
            return 0.0;
        }
        100.0 * self.total_ge() / base_ge
    }

    /// Number of primitive cells.
    #[must_use]
    pub fn cell_count(&self) -> usize {
        self.histogram.values().sum()
    }
}

impl fmt::Display for AreaReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "module {}: {:.1} GE ({} cells, {:.1} GE declared)",
            self.module,
            self.total_ge(),
            self.cell_count(),
            self.declared_ge
        )?;
        for (kind, count) in &self.histogram {
            writeln!(
                f,
                "  {:>6} x{:<5} = {:>8.1} GE",
                kind.cell_name(),
                count,
                kind.area_ge() * *count as f64
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;

    #[test]
    fn area_sums_gate_table() {
        let mut b = NetlistBuilder::new("m");
        let a = b.input("a");
        let c = b.input("b");
        let n = b.gate(GateKind::Nand2, &[a, c]); // 1.0
        let x = b.gate(GateKind::Xor2, &[a, n]); // 2.5
        let y = b.gate(GateKind::Inv, &[x]); // 0.5
        b.output("y", y);
        let m = b.finish().unwrap();
        let r = AreaReport::for_module(&m);
        assert!((r.total_ge() - 4.0).abs() < 1e-9);
        assert_eq!(r.cell_count(), 3);
    }

    #[test]
    fn declared_extra_ge_counts_toward_total() {
        let mut b = NetlistBuilder::new("legacy");
        let a = b.input("a");
        b.output("y", a);
        b.declare_extra_ge(1234.5);
        let m = b.finish().unwrap();
        let r = AreaReport::for_module(&m);
        assert!((r.total_ge() - 1234.5).abs() < 1e-9);
    }

    #[test]
    fn overhead_percent_matches_definition() {
        let mut b = NetlistBuilder::new("dft");
        let a = b.input("a");
        let y = b.gate(GateKind::Nand2, &[a, a]);
        b.output("y", y);
        let r = AreaReport::for_module(&b.finish().unwrap());
        // 1 GE over a 1000 GE chip = 0.1%.
        assert!((r.overhead_percent(1000.0) - 0.1).abs() < 1e-9);
        assert_eq!(r.overhead_percent(0.0), 0.0);
    }

    #[test]
    fn display_mentions_every_kind_used() {
        let mut b = NetlistBuilder::new("m");
        let a = b.input("a");
        let y = b.gate(GateKind::Mux2, &[a, a, a]);
        b.output("y", y);
        let r = AreaReport::for_module(&b.finish().unwrap());
        let text = r.to_string();
        assert!(text.contains("MUX2"), "{text}");
    }
}
