//! Gate-level netlist substrate for the STEAC SOC test-integration platform.
//!
//! The DATE 2005 paper inserts test structures (IEEE 1500-style wrappers, a
//! TAM bus, a test controller, and memory-BIST blocks) into a gate-level SOC
//! netlist and reports their cost in *gate equivalents* (NAND2 = 1.0 GE).
//! This crate provides everything those flows need from an EDA netlist
//! database:
//!
//! * a primitive [`GateKind`] library with per-gate GE areas ([`gate`]),
//! * flat-with-instances [`Module`]s collected in a [`Design`] ([`module`]),
//! * a convenient [`NetlistBuilder`] ([`builder`]),
//! * connectivity queries, topological sort and loop detection ([`visit`]),
//! * scan-chain stitching used by DFT insertion ([`stitch`]),
//! * GE area accounting ([`area`]) and structural Verilog emission
//!   ([`verilog`]).
//!
//! # Example
//!
//! ```
//! use steac_netlist::{NetlistBuilder, GateKind};
//!
//! # fn main() -> Result<(), steac_netlist::NetlistError> {
//! let mut b = NetlistBuilder::new("half_adder");
//! let a = b.input("a");
//! let c = b.input("b");
//! let sum = b.gate(GateKind::Xor2, &[a, c]);
//! let carry = b.gate(GateKind::And2, &[a, c]);
//! b.output("sum", sum);
//! b.output("carry", carry);
//! let module = b.finish()?;
//! assert_eq!(module.gate_count(), 2);
//! # Ok(())
//! # }
//! ```

pub mod area;
pub mod builder;
pub mod gate;
pub mod module;
pub mod stitch;
pub mod verilog;
pub mod visit;

pub use area::{AreaReport, GE_TABLE_DOC};
pub use builder::NetlistBuilder;
pub use gate::{GateKind, PinRole};
pub use module::{
    Cell, CellContents, CellId, Design, Instance, Module, Net, NetId, Port, PortDir, PortId,
};
pub use stitch::{stitch_scan, ScanStitchReport, StitchConfig};
pub use visit::{combinational_order, detect_comb_loop, FanTables};

use std::fmt;

/// Errors produced while constructing or transforming netlists.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A gate was created with the wrong number of input pins.
    PinCount {
        /// Gate kind that was being instantiated.
        kind: GateKind,
        /// Number of inputs expected by the gate.
        expected: usize,
        /// Number of inputs actually supplied.
        got: usize,
    },
    /// Two drivers were connected to the same net.
    MultipleDrivers {
        /// The net that ended up with more than one driver.
        net: NetId,
    },
    /// A net is referenced but has no driver and is not a module input.
    Undriven {
        /// The floating net.
        net: NetId,
        /// Name of the net if it has one.
        name: String,
    },
    /// A combinational feedback loop was detected.
    CombLoop {
        /// One cell on the loop, for diagnostics.
        witness: CellId,
    },
    /// A referenced module is missing from the design.
    UnknownModule {
        /// Name of the missing module.
        name: String,
    },
    /// An instance connection references a port that does not exist.
    UnknownPort {
        /// Module that was being instantiated.
        module: String,
        /// The port name that could not be resolved.
        port: String,
    },
    /// A duplicate name was registered where uniqueness is required.
    DuplicateName {
        /// The clashing name.
        name: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::PinCount {
                kind,
                expected,
                got,
            } => write!(
                f,
                "gate {kind} expects {expected} input pins but {got} were supplied"
            ),
            NetlistError::MultipleDrivers { net } => {
                write!(f, "net {net} has more than one driver")
            }
            NetlistError::Undriven { net, name } => {
                write!(f, "net {net} ({name}) has no driver and is not an input")
            }
            NetlistError::CombLoop { witness } => {
                write!(f, "combinational loop passing through cell {witness}")
            }
            NetlistError::UnknownModule { name } => write!(f, "unknown module `{name}`"),
            NetlistError::UnknownPort { module, port } => {
                write!(f, "module `{module}` has no port `{port}`")
            }
            NetlistError::DuplicateName { name } => write!(f, "duplicate name `{name}`"),
        }
    }
}

impl std::error::Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = NetlistError::PinCount {
            kind: GateKind::Nand2,
            expected: 2,
            got: 3,
        };
        let msg = e.to_string();
        assert!(msg.contains("NAND2"), "{msg}");
        assert!(msg.contains('3'), "{msg}");
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetlistError>();
    }
}
