//! Primitive gate library with gate-equivalent (GE) areas.
//!
//! The paper reports DFT hardware cost in "gates", i.e. two-input NAND gate
//! equivalents ("The area of the WBR cell is equivalent to 26 two-input NAND
//! gates"). All generated test circuitry in this reproduction is an actual
//! netlist of these primitives, and area is obtained by summing their GE
//! figures (see [`crate::area`]).

use std::fmt;

/// The role a pin plays on a primitive gate.
///
/// Used by the simulator and by netlist transformations (e.g. scan
/// stitching needs to know which pin is the clock and which is the data
/// input).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PinRole {
    /// Ordinary combinational data input.
    Data,
    /// Clock input of a sequential element (rising-edge triggered).
    Clock,
    /// Active-low asynchronous reset.
    ResetN,
    /// Scan-data input of a scan flip-flop.
    ScanIn,
    /// Scan-enable input of a scan flip-flop.
    ScanEnable,
    /// Latch transparent-enable input.
    Enable,
}

/// Primitive gate kinds available to generated netlists.
///
/// The selection mirrors what a small 0.25 µm standard-cell library offers
/// and is sufficient to express every structure STEAC generates (wrapper
/// boundary cells, instruction registers, TAM multiplexers, controller
/// FSMs, BIST sequencers and TPGs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum GateKind {
    /// Inverter.
    Inv,
    /// Non-inverting buffer.
    Buf,
    /// 2-input NAND — the unit of area (1.0 GE).
    Nand2,
    /// 3-input NAND.
    Nand3,
    /// 4-input NAND.
    Nand4,
    /// 2-input NOR.
    Nor2,
    /// 3-input NOR.
    Nor3,
    /// 2-input AND.
    And2,
    /// 3-input AND.
    And3,
    /// 2-input OR.
    Or2,
    /// 3-input OR.
    Or3,
    /// 2-input XOR.
    Xor2,
    /// 2-input XNOR.
    Xnor2,
    /// 2-to-1 multiplexer; pins are `(a, b, sel)`, output is `a` when
    /// `sel = 0` and `b` when `sel = 1`.
    Mux2,
    /// Rising-edge D flip-flop; pins are `(d, ck)`.
    Dff,
    /// Rising-edge D flip-flop with active-low async reset; pins are
    /// `(d, ck, rstn)`.
    DffR,
    /// Scan D flip-flop; pins are `(d, si, se, ck)` — captures `d` when
    /// `se = 0`, shifts `si` when `se = 1`.
    Sdff,
    /// Scan D flip-flop with active-low async reset; pins are
    /// `(d, si, se, ck, rstn)`.
    SdffR,
    /// Level-sensitive latch; pins are `(d, en)`, transparent while
    /// `en = 1`.
    Latch,
    /// Constant logic 0.
    Tie0,
    /// Constant logic 1.
    Tie1,
}

impl GateKind {
    /// Number of input pins the gate expects.
    #[must_use]
    pub fn input_count(self) -> usize {
        match self {
            GateKind::Tie0 | GateKind::Tie1 => 0,
            GateKind::Inv | GateKind::Buf => 1,
            GateKind::Nand2
            | GateKind::Nor2
            | GateKind::And2
            | GateKind::Or2
            | GateKind::Xor2
            | GateKind::Xnor2
            | GateKind::Dff
            | GateKind::Latch => 2,
            GateKind::Nand3 | GateKind::Nor3 | GateKind::And3 | GateKind::Or3 | GateKind::Mux2 => 3,
            GateKind::DffR => 3,
            GateKind::Sdff => 4,
            GateKind::SdffR => 5,
            GateKind::Nand4 => 4,
        }
    }

    /// Pin roles, in pin order. The slice length equals
    /// [`input_count`](Self::input_count).
    #[must_use]
    pub fn pin_roles(self) -> &'static [PinRole] {
        use PinRole::*;
        match self {
            GateKind::Tie0 | GateKind::Tie1 => &[],
            GateKind::Inv | GateKind::Buf => &[Data],
            GateKind::Nand2
            | GateKind::Nor2
            | GateKind::And2
            | GateKind::Or2
            | GateKind::Xor2
            | GateKind::Xnor2 => &[Data, Data],
            GateKind::Nand3 | GateKind::Nor3 | GateKind::And3 | GateKind::Or3 | GateKind::Mux2 => {
                &[Data, Data, Data]
            }
            GateKind::Nand4 => &[Data, Data, Data, Data],
            GateKind::Dff => &[Data, Clock],
            GateKind::DffR => &[Data, Clock, ResetN],
            GateKind::Sdff => &[Data, ScanIn, ScanEnable, Clock],
            GateKind::SdffR => &[Data, ScanIn, ScanEnable, Clock, ResetN],
            GateKind::Latch => &[Data, Enable],
        }
    }

    /// Gate-equivalent area (NAND2 = 1.0).
    ///
    /// The table follows the usual NAND-decomposition convention of
    /// standard-cell datasheets of the 0.25 µm era; it is documented in
    /// [`crate::area::GE_TABLE_DOC`].
    #[must_use]
    pub fn area_ge(self) -> f64 {
        match self {
            GateKind::Inv => 0.5,
            GateKind::Buf => 1.0,
            GateKind::Nand2 | GateKind::Nor2 => 1.0,
            GateKind::Nand3 | GateKind::Nor3 => 1.5,
            GateKind::Nand4 => 2.0,
            GateKind::And2 | GateKind::Or2 => 1.5,
            GateKind::And3 | GateKind::Or3 => 2.0,
            GateKind::Xor2 | GateKind::Xnor2 => 2.5,
            GateKind::Mux2 => 3.5,
            GateKind::Dff => 6.0,
            GateKind::DffR => 7.0,
            GateKind::Sdff => 9.5,
            GateKind::SdffR => 10.5,
            GateKind::Latch => 3.5,
            GateKind::Tie0 | GateKind::Tie1 => 0.5,
        }
    }

    /// `true` for flip-flops and latches (elements with state).
    #[must_use]
    pub fn is_sequential(self) -> bool {
        matches!(
            self,
            GateKind::Dff | GateKind::DffR | GateKind::Sdff | GateKind::SdffR | GateKind::Latch
        )
    }

    /// `true` for edge-triggered flip-flops (excludes latches).
    #[must_use]
    pub fn is_flop(self) -> bool {
        matches!(
            self,
            GateKind::Dff | GateKind::DffR | GateKind::Sdff | GateKind::SdffR
        )
    }

    /// `true` for scan-capable flip-flops.
    #[must_use]
    pub fn is_scan_flop(self) -> bool {
        matches!(self, GateKind::Sdff | GateKind::SdffR)
    }

    /// Short library cell name used in Verilog output, e.g. `NAND2`.
    #[must_use]
    pub fn cell_name(self) -> &'static str {
        match self {
            GateKind::Inv => "INV",
            GateKind::Buf => "BUF",
            GateKind::Nand2 => "NAND2",
            GateKind::Nand3 => "NAND3",
            GateKind::Nand4 => "NAND4",
            GateKind::Nor2 => "NOR2",
            GateKind::Nor3 => "NOR3",
            GateKind::And2 => "AND2",
            GateKind::And3 => "AND3",
            GateKind::Or2 => "OR2",
            GateKind::Or3 => "OR3",
            GateKind::Xor2 => "XOR2",
            GateKind::Xnor2 => "XNOR2",
            GateKind::Mux2 => "MUX2",
            GateKind::Dff => "DFF",
            GateKind::DffR => "DFFR",
            GateKind::Sdff => "SDFF",
            GateKind::SdffR => "SDFFR",
            GateKind::Latch => "LATCH",
            GateKind::Tie0 => "TIE0",
            GateKind::Tie1 => "TIE1",
        }
    }

    /// All gate kinds, for iteration in tests and reports.
    #[must_use]
    pub fn all() -> &'static [GateKind] {
        &[
            GateKind::Inv,
            GateKind::Buf,
            GateKind::Nand2,
            GateKind::Nand3,
            GateKind::Nand4,
            GateKind::Nor2,
            GateKind::Nor3,
            GateKind::And2,
            GateKind::And3,
            GateKind::Or2,
            GateKind::Or3,
            GateKind::Xor2,
            GateKind::Xnor2,
            GateKind::Mux2,
            GateKind::Dff,
            GateKind::DffR,
            GateKind::Sdff,
            GateKind::SdffR,
            GateKind::Latch,
            GateKind::Tie0,
            GateKind::Tie1,
        ]
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.cell_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_roles_match_input_count() {
        for &k in GateKind::all() {
            assert_eq!(
                k.pin_roles().len(),
                k.input_count(),
                "pin role table inconsistent for {k}"
            );
        }
    }

    #[test]
    fn nand2_is_the_unit_of_area() {
        assert_eq!(GateKind::Nand2.area_ge(), 1.0);
    }

    #[test]
    fn areas_are_positive() {
        for &k in GateKind::all() {
            assert!(k.area_ge() > 0.0, "{k} has non-positive area");
        }
    }

    #[test]
    fn scan_flop_costs_more_than_plain_flop() {
        assert!(GateKind::Sdff.area_ge() > GateKind::Dff.area_ge());
        assert!(GateKind::SdffR.area_ge() > GateKind::DffR.area_ge());
    }

    #[test]
    fn sequential_classification() {
        assert!(GateKind::Dff.is_sequential());
        assert!(GateKind::Latch.is_sequential());
        assert!(!GateKind::Latch.is_flop());
        assert!(GateKind::Sdff.is_scan_flop());
        assert!(!GateKind::Nand2.is_sequential());
    }

    #[test]
    fn clock_pin_identified_on_all_flops() {
        for &k in GateKind::all() {
            if k.is_flop() {
                assert!(
                    k.pin_roles().contains(&PinRole::Clock),
                    "{k} lacks a clock pin"
                );
            }
        }
    }
}
