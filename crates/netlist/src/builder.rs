//! Ergonomic construction of gate-level modules.
//!
//! [`NetlistBuilder`] is the single entry point used by every generator in
//! the workspace (wrapper cells, TAM muxes, controller FSMs, BIST logic).
//! It auto-names nets and cells, validates pin counts eagerly and checks
//! driver rules at [`finish`](NetlistBuilder::finish) time.

use crate::gate::GateKind;
use crate::module::{Cell, CellContents, Instance, Module, NetId, Port, PortDir};
use crate::NetlistError;
use std::collections::BTreeSet;

/// Incremental builder for a [`Module`].
///
/// # Example
///
/// ```
/// use steac_netlist::{NetlistBuilder, GateKind};
///
/// # fn main() -> Result<(), steac_netlist::NetlistError> {
/// let mut b = NetlistBuilder::new("mux_tree");
/// let sel = b.input("sel");
/// let a = b.input_bus("a", 4);
/// let c = b.input_bus("b", 4);
/// for i in 0..4 {
///     let y = b.gate(GateKind::Mux2, &[a[i], c[i], sel]);
///     b.output(&format!("y[{i}]"), y);
/// }
/// let m = b.finish()?;
/// assert_eq!(m.gate_count(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NetlistBuilder {
    module: Module,
    names: BTreeSet<String>,
    errors: Vec<NetlistError>,
    next_gate: usize,
}

impl NetlistBuilder {
    /// Starts building a module with the given name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        NetlistBuilder {
            module: Module::new(name),
            names: BTreeSet::new(),
            errors: Vec::new(),
            next_gate: 0,
        }
    }

    fn unique_name(&mut self, base: &str) -> String {
        if self.names.insert(base.to_string()) {
            return base.to_string();
        }
        let mut i = 1usize;
        loop {
            let cand = format!("{base}_{i}");
            if self.names.insert(cand.clone()) {
                return cand;
            }
            i += 1;
        }
    }

    /// Creates a fresh named net.
    pub fn net(&mut self, name: &str) -> NetId {
        let n = self.unique_name(name);
        self.module.add_net(n)
    }

    /// Creates `width` nets named `name[0]..name[width-1]`.
    pub fn bus(&mut self, name: &str, width: usize) -> Vec<NetId> {
        (0..width)
            .map(|i| self.net(&format!("{name}[{i}]")))
            .collect()
    }

    /// Declares an input port and returns its net.
    pub fn input(&mut self, name: &str) -> NetId {
        let net = self.net(name);
        self.module.ports.push(Port {
            name: self.module.nets[net.index()].name.clone(),
            dir: PortDir::Input,
            net,
        });
        net
    }

    /// Declares an input bus `name[0..width]`, returning its nets.
    pub fn input_bus(&mut self, name: &str, width: usize) -> Vec<NetId> {
        (0..width)
            .map(|i| self.input(&format!("{name}[{i}]")))
            .collect()
    }

    /// Declares an output port bound to an existing net.
    pub fn output(&mut self, name: &str, net: NetId) {
        self.module.ports.push(Port {
            name: name.to_string(),
            dir: PortDir::Output,
            net,
        });
    }

    /// Declares an output bus bound to existing nets.
    pub fn output_bus(&mut self, name: &str, nets: &[NetId]) {
        for (i, &n) in nets.iter().enumerate() {
            self.output(&format!("{name}[{i}]"), n);
        }
    }

    /// Instantiates a primitive gate, returning its output net.
    ///
    /// Pin-count errors are recorded and reported by
    /// [`finish`](Self::finish); the returned net is valid either way so
    /// construction code can stay linear.
    pub fn gate(&mut self, kind: GateKind, inputs: &[NetId]) -> NetId {
        let out = self.net(&format!("w{}", self.next_gate));
        self.gate_into(kind, inputs, out);
        out
    }

    /// Instantiates a primitive gate driving an existing net.
    pub fn gate_into(&mut self, kind: GateKind, inputs: &[NetId], output: NetId) {
        if inputs.len() != kind.input_count() {
            self.errors.push(NetlistError::PinCount {
                kind,
                expected: kind.input_count(),
                got: inputs.len(),
            });
        }
        let name = self.unique_name(&format!("g{}", self.next_gate));
        self.next_gate += 1;
        self.module.cells.push(Cell {
            name,
            contents: CellContents::Gate {
                kind,
                inputs: inputs.to_vec(),
                output,
            },
        });
    }

    /// Instantiates a primitive gate with an explicit instance name.
    pub fn named_gate(&mut self, name: &str, kind: GateKind, inputs: &[NetId], output: NetId) {
        if inputs.len() != kind.input_count() {
            self.errors.push(NetlistError::PinCount {
                kind,
                expected: kind.input_count(),
                got: inputs.len(),
            });
        }
        let name = self.unique_name(name);
        self.next_gate += 1;
        self.module.cells.push(Cell {
            name,
            contents: CellContents::Gate {
                kind,
                inputs: inputs.to_vec(),
                output,
            },
        });
    }

    /// Instantiates a child module.
    pub fn instance(&mut self, name: &str, module: &str, connections: &[(&str, NetId)]) {
        let name = self.unique_name(name);
        self.module.cells.push(Cell {
            name,
            contents: CellContents::Inst(Instance {
                module: module.to_string(),
                connections: connections
                    .iter()
                    .map(|(p, n)| ((*p).to_string(), *n))
                    .collect(),
            }),
        });
    }

    /// Constant 0 net (one `TIE0` cell per call).
    pub fn tie0(&mut self) -> NetId {
        self.gate(GateKind::Tie0, &[])
    }

    /// Constant 1 net (one `TIE1` cell per call).
    pub fn tie1(&mut self) -> NetId {
        self.gate(GateKind::Tie1, &[])
    }

    /// Builds a balanced AND tree over `inputs` (returns a tie-1 for empty
    /// input, the net itself for a single input).
    pub fn and_tree(&mut self, inputs: &[NetId]) -> NetId {
        self.tree(GateKind::And2, inputs, true)
    }

    /// Builds a balanced OR tree over `inputs` (tie-0 for empty input).
    pub fn or_tree(&mut self, inputs: &[NetId]) -> NetId {
        self.tree(GateKind::Or2, inputs, false)
    }

    fn tree(&mut self, kind: GateKind, inputs: &[NetId], empty_is_one: bool) -> NetId {
        match inputs.len() {
            0 => {
                if empty_is_one {
                    self.tie1()
                } else {
                    self.tie0()
                }
            }
            1 => inputs[0],
            _ => {
                let mut level: Vec<NetId> = inputs.to_vec();
                while level.len() > 1 {
                    let mut next = Vec::with_capacity(level.len().div_ceil(2));
                    for pair in level.chunks(2) {
                        if pair.len() == 2 {
                            next.push(self.gate(kind, &[pair[0], pair[1]]));
                        } else {
                            next.push(pair[0]);
                        }
                    }
                    level = next;
                }
                level[0]
            }
        }
    }

    /// Builds an N-to-1 one-hot-select multiplexer from 2-to-1 muxes using
    /// the binary-encoded select bus `sel` (LSB first). `inputs.len()` must
    /// be at least 1; missing leaves are padded with the last input.
    pub fn mux_tree(&mut self, inputs: &[NetId], sel: &[NetId]) -> NetId {
        assert!(!inputs.is_empty(), "mux_tree needs at least one input");
        let mut level: Vec<NetId> = inputs.to_vec();
        for &s in sel {
            if level.len() == 1 {
                break;
            }
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            let mut i = 0;
            while i < level.len() {
                if i + 1 < level.len() {
                    next.push(self.gate(GateKind::Mux2, &[level[i], level[i + 1], s]));
                } else {
                    next.push(level[i]);
                }
                i += 2;
            }
            level = next;
        }
        level[0]
    }

    /// Number of cells added so far.
    #[must_use]
    pub fn cell_count(&self) -> usize {
        self.module.cells.len()
    }

    /// Records extra gate-equivalents attributed to the module without
    /// explicit cells (declared size of abstracted logic).
    pub fn declare_extra_ge(&mut self, ge: f64) {
        self.module.declared_extra_ge += ge;
    }

    /// Validates and returns the module.
    ///
    /// # Errors
    ///
    /// Returns the first recorded construction error, a
    /// [`NetlistError::MultipleDrivers`] conflict, or a
    /// [`NetlistError::Undriven`] net (nets that are neither driven by a
    /// gate, bound to an input port, nor connected to an instance are
    /// rejected — instance output resolution happens at design level).
    pub fn finish(mut self) -> Result<Module, NetlistError> {
        if let Some(e) = self.errors.drain(..).next() {
            return Err(e);
        }
        let drivers = self.module.drivers(None)?;
        let mut driven = vec![false; self.module.nets.len()];
        for (i, d) in drivers.iter().enumerate() {
            if d.is_some() {
                driven[i] = true;
            }
        }
        for p in self.module.ports_with_dir(PortDir::Input) {
            driven[p.net.index()] = true;
        }
        // Nets touched by instances may be driven by the child module;
        // resolution requires the full design, so grant them amnesty.
        for c in &self.module.cells {
            if let CellContents::Inst(inst) = &c.contents {
                for (_, n) in &inst.connections {
                    driven[n.index()] = true;
                }
            }
        }
        // Only nets actually consumed (gate input or output port) must be
        // driven.
        let mut used = vec![false; self.module.nets.len()];
        for c in &self.module.cells {
            if let CellContents::Gate { inputs, .. } = &c.contents {
                for n in inputs {
                    used[n.index()] = true;
                }
            }
        }
        for p in self.module.ports_with_dir(PortDir::Output) {
            used[p.net.index()] = true;
        }
        for i in 0..self.module.nets.len() {
            if used[i] && !driven[i] {
                return Err(NetlistError::Undriven {
                    net: crate::module::NetId(i as u32),
                    name: self.module.nets[i].name.clone(),
                });
            }
        }
        Ok(self.module)
    }

    /// Returns the module without validation. Intended for tests that
    /// construct deliberately broken netlists.
    #[must_use]
    pub fn finish_unchecked(self) -> Module {
        self.module
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_names_are_unique() {
        let mut b = NetlistBuilder::new("m");
        let a = b.input("a");
        let n1 = b.gate(GateKind::Inv, &[a]);
        let n2 = b.gate(GateKind::Inv, &[a]);
        b.output("y1", n1);
        b.output("y2", n2);
        let m = b.finish().unwrap();
        let mut names: Vec<_> = m.cells.iter().map(|c| c.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), m.cells.len());
    }

    #[test]
    fn pin_count_error_is_deferred_to_finish() {
        let mut b = NetlistBuilder::new("m");
        let a = b.input("a");
        let y = b.gate(GateKind::Nand2, &[a]); // missing one pin
        b.output("y", y);
        assert!(matches!(
            b.finish(),
            Err(NetlistError::PinCount { got: 1, .. })
        ));
    }

    #[test]
    fn undriven_used_net_is_rejected() {
        let mut b = NetlistBuilder::new("m");
        let ghost = b.net("ghost");
        let y = b.gate(GateKind::Inv, &[ghost]);
        b.output("y", y);
        assert!(matches!(b.finish(), Err(NetlistError::Undriven { .. })));
    }

    #[test]
    fn unused_floating_net_is_fine() {
        let mut b = NetlistBuilder::new("m");
        let a = b.input("a");
        let _floating = b.net("nc");
        let y = b.gate(GateKind::Buf, &[a]);
        b.output("y", y);
        assert!(b.finish().is_ok());
    }

    #[test]
    fn and_tree_sizes() {
        let mut b = NetlistBuilder::new("m");
        let ins = b.input_bus("a", 7);
        let y = b.and_tree(&ins);
        b.output("y", y);
        let m = b.finish().unwrap();
        // 7 leaves need 6 two-input gates.
        assert_eq!(m.gate_count(), 6);
    }

    #[test]
    fn mux_tree_collapses_to_single_net_for_one_input() {
        let mut b = NetlistBuilder::new("m");
        let a = b.input("a");
        let s = b.input("s");
        let y = b.mux_tree(&[a], &[s]);
        assert_eq!(y, a);
        b.output("y", y);
        assert_eq!(b.finish().unwrap().gate_count(), 0);
    }

    #[test]
    fn mux_tree_full_binary() {
        let mut b = NetlistBuilder::new("m");
        let ins = b.input_bus("a", 4);
        let sel = b.input_bus("s", 2);
        let y = b.mux_tree(&ins, &sel);
        b.output("y", y);
        let m = b.finish().unwrap();
        assert_eq!(m.gate_count(), 3); // 2 + 1 muxes
    }
}
