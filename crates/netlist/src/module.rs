//! Netlist data model: designs, modules, cells, nets and ports.
//!
//! A [`Design`] is a set of named [`Module`]s. Each module is flat except
//! that a [`Cell`] may be an [`Instance`] of another module; [`Design::flatten`]
//! inlines instances recursively, which is how the simulator and the area
//! reporter consume inserted SOCs.

use crate::gate::GateKind;
use crate::NetlistError;
use std::collections::BTreeMap;
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub u32);

        impl $name {
            /// Index into the owning module's storage vector.
            #[must_use]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifier of a net within one [`Module`].
    NetId,
    "n"
);
id_type!(
    /// Identifier of a cell within one [`Module`].
    CellId,
    "c"
);
id_type!(
    /// Identifier of a port within one [`Module`].
    PortId,
    "p"
);

/// Direction of a module port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortDir {
    /// Driven from outside the module.
    Input,
    /// Driven by the module.
    Output,
}

impl fmt::Display for PortDir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PortDir::Input => f.write_str("input"),
            PortDir::Output => f.write_str("output"),
        }
    }
}

/// A single-bit module port bound to a net.
///
/// Buses are modelled as families of single-bit ports named `bus[i]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Port {
    /// Port name, unique within the module.
    pub name: String,
    /// Direction seen from inside the module.
    pub dir: PortDir,
    /// The net the port is bound to.
    pub net: NetId,
}

/// A named single-bit net.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Net {
    /// Net name, unique within the module.
    pub name: String,
}

/// Instantiation of another module inside a parent module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instance {
    /// Name of the instantiated module (looked up in the [`Design`]).
    pub module: String,
    /// Connections `(child port name, parent net)`.
    pub connections: Vec<(String, NetId)>,
}

/// What a cell is: a primitive gate or a module instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellContents {
    /// A primitive gate with ordered input nets and one output net.
    Gate {
        /// The primitive kind.
        kind: GateKind,
        /// Input nets in pin order (see [`GateKind::pin_roles`]).
        inputs: Vec<NetId>,
        /// The single output net.
        output: NetId,
    },
    /// A hierarchical instance.
    Inst(Instance),
}

/// A cell: named occurrence of a gate or an instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell {
    /// Instance name, unique within the module.
    pub name: String,
    /// Gate or hierarchical contents.
    pub contents: CellContents,
}

impl Cell {
    /// The gate kind if this cell is a primitive.
    #[must_use]
    pub fn gate_kind(&self) -> Option<GateKind> {
        match &self.contents {
            CellContents::Gate { kind, .. } => Some(*kind),
            CellContents::Inst(_) => None,
        }
    }
}

/// A flat-with-instances netlist module.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Module {
    /// Module name, unique within a [`Design`].
    pub name: String,
    /// Ports in declaration order.
    pub ports: Vec<Port>,
    /// Net storage; a [`NetId`] indexes this vector.
    pub nets: Vec<Net>,
    /// Cell storage; a [`CellId`] indexes this vector.
    pub cells: Vec<Cell>,
    /// Extra gate-equivalents attributed to this module but not present as
    /// explicit cells (e.g. the declared size of a synthesized legacy block
    /// whose internals are not modelled). Used by area accounting.
    pub declared_extra_ge: f64,
}

impl Module {
    /// Creates an empty module with the given name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Module {
            name: name.into(),
            ..Module::default()
        }
    }

    /// Number of primitive gate cells (instances are not counted).
    #[must_use]
    pub fn gate_count(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| matches!(c.contents, CellContents::Gate { .. }))
            .count()
    }

    /// Number of flip-flops (scan and non-scan) among the primitive cells.
    #[must_use]
    pub fn flop_count(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| c.gate_kind().is_some_and(GateKind::is_flop))
            .count()
    }

    /// Iterator over ports with the given direction.
    pub fn ports_with_dir(&self, dir: PortDir) -> impl Iterator<Item = &Port> {
        self.ports.iter().filter(move |p| p.dir == dir)
    }

    /// Number of input ports.
    #[must_use]
    pub fn input_count(&self) -> usize {
        self.ports_with_dir(PortDir::Input).count()
    }

    /// Number of output ports.
    #[must_use]
    pub fn output_count(&self) -> usize {
        self.ports_with_dir(PortDir::Output).count()
    }

    /// Looks up a port by name.
    #[must_use]
    pub fn port(&self, name: &str) -> Option<&Port> {
        self.ports.iter().find(|p| p.name == name)
    }

    /// Looks up a net id by name (linear scan; fine for test structures).
    #[must_use]
    pub fn net_by_name(&self, name: &str) -> Option<NetId> {
        self.nets
            .iter()
            .position(|n| n.name == name)
            .map(|i| NetId(i as u32))
    }

    /// Looks up a cell id by name.
    #[must_use]
    pub fn cell_by_name(&self, name: &str) -> Option<CellId> {
        self.cells
            .iter()
            .position(|c| c.name == name)
            .map(|i| CellId(i as u32))
    }

    /// Adds a net, returning its id. Names need not be unique here;
    /// [`crate::NetlistBuilder`] enforces uniqueness at construction time.
    pub fn add_net(&mut self, name: impl Into<String>) -> NetId {
        let id = NetId(self.nets.len() as u32);
        self.nets.push(Net { name: name.into() });
        id
    }

    /// The driver cell and output pin of each net, or an error if a net has
    /// multiple drivers.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::MultipleDrivers`] on driver conflicts.
    /// Instance cells are treated as driving their connected nets only if
    /// `design` resolves the instance's ports; pass `None` to treat
    /// instance connections as non-driving (useful mid-construction).
    pub fn drivers(&self, design: Option<&Design>) -> Result<Vec<Option<CellId>>, NetlistError> {
        let mut driver: Vec<Option<CellId>> = vec![None; self.nets.len()];
        for (i, cell) in self.cells.iter().enumerate() {
            let cid = CellId(i as u32);
            match &cell.contents {
                CellContents::Gate { output, .. } => {
                    if driver[output.index()].is_some() {
                        return Err(NetlistError::MultipleDrivers { net: *output });
                    }
                    driver[output.index()] = Some(cid);
                }
                CellContents::Inst(inst) => {
                    if let Some(d) = design {
                        if let Some(m) = d.module(&inst.module) {
                            for (port_name, net) in &inst.connections {
                                if let Some(p) = m.port(port_name) {
                                    if p.dir == PortDir::Output {
                                        if driver[net.index()].is_some() {
                                            return Err(NetlistError::MultipleDrivers {
                                                net: *net,
                                            });
                                        }
                                        driver[net.index()] = Some(cid);
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(driver)
    }
}

/// A collection of modules forming a design.
#[derive(Debug, Clone, Default)]
pub struct Design {
    modules: Vec<Module>,
    index: BTreeMap<String, usize>,
}

impl Design {
    /// Creates an empty design.
    #[must_use]
    pub fn new() -> Self {
        Design::default()
    }

    /// Adds a module; the name must be unique within the design.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] if a module with the same
    /// name already exists.
    pub fn add_module(&mut self, module: Module) -> Result<(), NetlistError> {
        if self.index.contains_key(&module.name) {
            return Err(NetlistError::DuplicateName {
                name: module.name.clone(),
            });
        }
        self.index.insert(module.name.clone(), self.modules.len());
        self.modules.push(module);
        Ok(())
    }

    /// Looks up a module by name.
    #[must_use]
    pub fn module(&self, name: &str) -> Option<&Module> {
        self.index.get(name).map(|&i| &self.modules[i])
    }

    /// Mutable lookup by name.
    pub fn module_mut(&mut self, name: &str) -> Option<&mut Module> {
        self.index
            .get(name)
            .copied()
            .map(move |i| &mut self.modules[i])
    }

    /// Iterator over all modules.
    pub fn iter(&self) -> impl Iterator<Item = &Module> {
        self.modules.iter()
    }

    /// Number of modules.
    #[must_use]
    pub fn len(&self) -> usize {
        self.modules.len()
    }

    /// `true` if the design holds no modules.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.modules.is_empty()
    }

    /// Recursively inlines all instances of `top`, producing a single flat
    /// module containing only primitive gates.
    ///
    /// Instance-internal nets and cells are prefixed with
    /// `"<instance name>/"`, matching common EDA flattening conventions.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownModule`] or
    /// [`NetlistError::UnknownPort`] if hierarchy references are broken.
    pub fn flatten(&self, top: &str) -> Result<Module, NetlistError> {
        let top_mod = self
            .module(top)
            .ok_or_else(|| NetlistError::UnknownModule {
                name: top.to_string(),
            })?;
        let mut out = Module::new(format!("{}_flat", top_mod.name));
        out.declared_extra_ge = 0.0;
        // Copy top nets and ports verbatim.
        for net in &top_mod.nets {
            out.add_net(net.name.clone());
        }
        for port in &top_mod.ports {
            out.ports.push(port.clone());
        }
        self.flatten_into(
            top_mod,
            &mut out,
            "",
            &(0..top_mod.nets.len())
                .map(|i| NetId(i as u32))
                .collect::<Vec<_>>(),
        )?;
        Ok(out)
    }

    fn flatten_into(
        &self,
        m: &Module,
        out: &mut Module,
        prefix: &str,
        net_map: &[NetId],
    ) -> Result<(), NetlistError> {
        out.declared_extra_ge += m.declared_extra_ge;
        for cell in &m.cells {
            match &cell.contents {
                CellContents::Gate {
                    kind,
                    inputs,
                    output,
                } => {
                    let mapped = CellContents::Gate {
                        kind: *kind,
                        inputs: inputs.iter().map(|n| net_map[n.index()]).collect(),
                        output: net_map[output.index()],
                    };
                    out.cells.push(Cell {
                        name: format!("{prefix}{}", cell.name),
                        contents: mapped,
                    });
                }
                CellContents::Inst(inst) => {
                    let child =
                        self.module(&inst.module)
                            .ok_or_else(|| NetlistError::UnknownModule {
                                name: inst.module.clone(),
                            })?;
                    let child_prefix = format!("{prefix}{}/", cell.name);
                    // Build child net map: every child net becomes a fresh
                    // net in `out`, except nets bound to connected ports,
                    // which map to the parent nets.
                    let mut child_map: Vec<NetId> = Vec::with_capacity(child.nets.len());
                    for (i, net) in child.nets.iter().enumerate() {
                        let _ = i;
                        child_map.push(out.add_net(format!("{child_prefix}{}", net.name)));
                    }
                    // A child net may surface on several ports (a module
                    // output aliased to a scan-out, or an input-to-output
                    // feedthrough). The first connection claims the
                    // mapping; further output-port connections become
                    // alias buffers so every parent net stays driven.
                    let mut mapped = vec![false; child.nets.len()];
                    for (port_name, parent_net) in &inst.connections {
                        let port =
                            child
                                .port(port_name)
                                .ok_or_else(|| NetlistError::UnknownPort {
                                    module: inst.module.clone(),
                                    port: port_name.clone(),
                                })?;
                        let idx = port.net.index();
                        let pnet = net_map[parent_net.index()];
                        if !mapped[idx] {
                            child_map[idx] = pnet;
                            mapped[idx] = true;
                        } else if child_map[idx] != pnet {
                            match port.dir {
                                PortDir::Output => {
                                    out.cells.push(Cell {
                                        name: format!("{child_prefix}alias_{port_name}"),
                                        contents: CellContents::Gate {
                                            kind: GateKind::Buf,
                                            inputs: vec![child_map[idx]],
                                            output: pnet,
                                        },
                                    });
                                }
                                PortDir::Input => {
                                    // Two different parent drivers onto
                                    // one child net: genuinely ambiguous.
                                    return Err(NetlistError::MultipleDrivers { net: pnet });
                                }
                            }
                        }
                    }
                    self.flatten_into(child, out, &child_prefix, &child_map)?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;

    fn inverter_module() -> Module {
        let mut b = NetlistBuilder::new("inv_mod");
        let a = b.input("a");
        let y = b.gate(GateKind::Inv, &[a]);
        b.output("y", y);
        b.finish().expect("valid module")
    }

    #[test]
    fn module_counts() {
        let m = inverter_module();
        assert_eq!(m.gate_count(), 1);
        assert_eq!(m.input_count(), 1);
        assert_eq!(m.output_count(), 1);
        assert_eq!(m.flop_count(), 0);
    }

    #[test]
    fn design_rejects_duplicate_module_names() {
        let mut d = Design::new();
        d.add_module(inverter_module()).unwrap();
        let err = d.add_module(inverter_module()).unwrap_err();
        assert!(matches!(err, NetlistError::DuplicateName { .. }));
    }

    #[test]
    fn flatten_inlines_instances() {
        let mut d = Design::new();
        d.add_module(inverter_module()).unwrap();

        let mut b = NetlistBuilder::new("top");
        let a = b.input("a");
        let mid = b.net("mid");
        let y = b.net("y");
        b.instance("u0", "inv_mod", &[("a", a), ("y", mid)]);
        b.instance("u1", "inv_mod", &[("a", mid), ("y", y)]);
        b.output("y", y);
        d.add_module(b.finish().unwrap()).unwrap();

        let flat = d.flatten("top").unwrap();
        assert_eq!(flat.gate_count(), 2);
        assert!(flat.cells.iter().any(|c| c.name == "u0/g0"));
        assert!(flat.cells.iter().any(|c| c.name == "u1/g0"));
        // The two inverters must be chained through `mid`.
        let drv = flat.drivers(None).unwrap();
        let mid_id = flat.net_by_name("mid").unwrap();
        assert!(drv[mid_id.index()].is_some());
    }

    #[test]
    fn flatten_reports_unknown_module() {
        let mut b = NetlistBuilder::new("top");
        let a = b.input("a");
        b.instance("u0", "nope", &[("a", a)]);
        let mut d = Design::new();
        d.add_module(b.finish_unchecked()).unwrap();
        let err = d.flatten("top").unwrap_err();
        assert!(matches!(err, NetlistError::UnknownModule { .. }));
    }

    #[test]
    fn flatten_aliases_multi_port_nets() {
        // A child whose single flop output surfaces on two ports (`q`
        // and `so`), plus an input-to-output feedthrough (`a` -> `thru`).
        let mut b = NetlistBuilder::new("child");
        let a = b.input("a");
        let ck = b.input("ck");
        let q = b.gate(GateKind::Dff, &[a, ck]);
        b.output("q", q);
        b.output("so", q);
        b.output("thru", a);
        let mut d = Design::new();
        d.add_module(b.finish().unwrap()).unwrap();

        let mut top = NetlistBuilder::new("top");
        let a = top.input("a");
        let ck = top.input("ck");
        let q = top.net("q_top");
        let so = top.net("so_top");
        let thru = top.net("thru_top");
        top.instance(
            "u0",
            "child",
            &[("a", a), ("ck", ck), ("q", q), ("so", so), ("thru", thru)],
        );
        top.output("q", q);
        top.output("so", so);
        top.output("thru", thru);
        d.add_module(top.finish().unwrap()).unwrap();

        let flat = d.flatten("top").unwrap();
        // Both q_top and so_top must be driven (one direct, one via an
        // alias buffer), and thru_top via a feedthrough buffer.
        let drv = flat.drivers(None).unwrap();
        for name in ["q_top", "so_top", "thru_top"] {
            let id = flat.net_by_name(name).unwrap();
            assert!(drv[id.index()].is_some(), "{name} undriven after flatten");
        }
    }

    #[test]
    fn drivers_detects_conflicts() {
        let mut m = Module::new("bad");
        let n = m.add_net("x");
        for i in 0..2 {
            m.cells.push(Cell {
                name: format!("t{i}"),
                contents: CellContents::Gate {
                    kind: GateKind::Tie0,
                    inputs: vec![],
                    output: n,
                },
            });
        }
        assert!(matches!(
            m.drivers(None),
            Err(NetlistError::MultipleDrivers { .. })
        ));
    }
}
