//! Core test information extraction — the record the paper's Table 1
//! reports per core (TI, TO, PI, PO, scan chains and lengths, pattern
//! counts) and the input to STEAC's Core Test Scheduler.
//!
//! # Conventions
//!
//! STIL itself does not classify pins into "test" and "functional"; ATPG
//! flows encode this in signal groups. The STEAC platform uses the
//! well-known group names of [`WellKnownGroups`]: `clocks`, `resets`,
//! `scan_enables`, `test_enables`, `pi`, `po`. The Table 1 arithmetic is
//! then:
//!
//! * `TI` = clocks + resets + scan enables + test enables + *dedicated*
//!   scan-in pins (scan-ins that are not shared with functional `pi`),
//! * `TO` = *dedicated* scan-out pins (the paper's TV encoder has two
//!   chains but `TO = 1` because one chain shares its output with a
//!   functional output),
//! * `PI`/`PO` = the functional pin groups.

use crate::ast::{PatternStmt, StilFile};
use crate::StilError;
use std::collections::BTreeSet;
use std::fmt;

/// Names of the signal groups the platform understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WellKnownGroups;

impl WellKnownGroups {
    /// Clock pins group.
    pub const CLOCKS: &'static str = "clocks";
    /// Reset pins group.
    pub const RESETS: &'static str = "resets";
    /// Scan-enable pins group.
    pub const SCAN_ENABLES: &'static str = "scan_enables";
    /// Test-enable / test-mode pins group.
    pub const TEST_ENABLES: &'static str = "test_enables";
    /// Functional inputs group.
    pub const PI: &'static str = "pi";
    /// Functional outputs group.
    pub const PO: &'static str = "po";
}

/// Per-core test information (one row of the paper's Table 1).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CoreTestInfo {
    /// Core name.
    pub name: String,
    /// Dedicated test inputs (TI).
    pub test_inputs: usize,
    /// Dedicated test outputs (TO).
    pub test_outputs: usize,
    /// Functional inputs (PI).
    pub functional_inputs: usize,
    /// Functional outputs (PO).
    pub functional_outputs: usize,
    /// Scan chain lengths, in declaration order.
    pub scan_chains: Vec<usize>,
    /// Number of scan test patterns.
    pub scan_patterns: u64,
    /// Number of functional test patterns (tester cycles of functional
    /// vectors).
    pub functional_patterns: u64,
    /// Clock pin names.
    pub clocks: Vec<String>,
    /// Reset pin names.
    pub resets: Vec<String>,
    /// Scan-enable pin names.
    pub scan_enables: Vec<String>,
    /// Test-enable pin names.
    pub test_enables: Vec<String>,
    /// Scan-in pin names (per chain, deduplicated).
    pub scan_in_pins: Vec<String>,
    /// Scan-out pin names (per chain, deduplicated).
    pub scan_out_pins: Vec<String>,
    /// Scan-out pins shared with functional outputs.
    pub shared_scan_outs: usize,
    /// Scan-in pins shared with functional inputs.
    pub shared_scan_ins: usize,
}

impl CoreTestInfo {
    /// Extracts the record from a parsed STIL file.
    ///
    /// # Errors
    ///
    /// Returns [`StilError::Unresolved`] if a scan chain references a
    /// signal that is not declared.
    pub fn from_stil(core_name: &str, f: &StilFile) -> Result<Self, StilError> {
        let group_members =
            |g: &str| -> Vec<String> { f.group(g).map(|g| g.signals.clone()).unwrap_or_default() };
        let clocks = group_members(WellKnownGroups::CLOCKS);
        let resets = group_members(WellKnownGroups::RESETS);
        let scan_enables = group_members(WellKnownGroups::SCAN_ENABLES);
        let test_enables = group_members(WellKnownGroups::TEST_ENABLES);
        let pi: BTreeSet<String> = group_members(WellKnownGroups::PI).into_iter().collect();
        let po: BTreeSet<String> = group_members(WellKnownGroups::PO).into_iter().collect();

        let mut scan_in_pins: Vec<String> = Vec::new();
        let mut scan_out_pins: Vec<String> = Vec::new();
        for chain in &f.scan_chains {
            for pin in [&chain.scan_in, &chain.scan_out] {
                if !pin.is_empty() && f.signal(pin).is_none() {
                    return Err(StilError::Unresolved {
                        name: pin.clone(),
                        context: format!("ScanChain \"{}\"", chain.name),
                    });
                }
            }
            if !scan_in_pins.contains(&chain.scan_in) {
                scan_in_pins.push(chain.scan_in.clone());
            }
            if !scan_out_pins.contains(&chain.scan_out) {
                scan_out_pins.push(chain.scan_out.clone());
            }
        }
        let shared_scan_ins = scan_in_pins.iter().filter(|p| pi.contains(*p)).count();
        let shared_scan_outs = scan_out_pins.iter().filter(|p| po.contains(*p)).count();

        let dedicated_scan_ins = scan_in_pins.len() - shared_scan_ins;
        let dedicated_scan_outs = scan_out_pins.len() - shared_scan_outs;

        let test_inputs = clocks.len()
            + resets.len()
            + scan_enables.len()
            + test_enables.len()
            + dedicated_scan_ins;

        let (scan_patterns, functional_patterns) = count_patterns(f);

        Ok(CoreTestInfo {
            name: core_name.to_string(),
            test_inputs,
            test_outputs: dedicated_scan_outs,
            functional_inputs: pi.len(),
            functional_outputs: po.len(),
            scan_chains: f.scan_chains.iter().map(|c| c.length).collect(),
            scan_patterns,
            functional_patterns,
            clocks,
            resets,
            scan_enables,
            test_enables,
            scan_in_pins,
            scan_out_pins,
            shared_scan_outs,
            shared_scan_ins,
        })
    }

    /// `true` if the core has scan chains.
    #[must_use]
    pub fn has_scan(&self) -> bool {
        !self.scan_chains.is_empty()
    }

    /// Longest internal scan chain (0 without scan).
    #[must_use]
    pub fn max_chain(&self) -> usize {
        self.scan_chains.iter().copied().max().unwrap_or(0)
    }

    /// Sum of all scan chain lengths — the number of scan cells, which is
    /// what soft-core rebalancing redistributes.
    #[must_use]
    pub fn total_scan_cells(&self) -> usize {
        self.scan_chains.iter().sum()
    }

    /// Total control pins (clocks + resets + SE + TE), the quantity the
    /// paper sums to 19 over the three DSC cores.
    #[must_use]
    pub fn control_pins(&self) -> usize {
        self.clocks.len() + self.resets.len() + self.scan_enables.len() + self.test_enables.len()
    }
}

impl fmt::Display for CoreTestInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let chains = if self.scan_chains.is_empty() {
            "No scan".to_string()
        } else {
            format!(
                "{} ({})",
                self.scan_chains.len(),
                self.scan_chains
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        };
        write!(
            f,
            "{}: TI={} TO={} PI={} PO={} chains={} scan_pats={} func_pats={}",
            self.name,
            self.test_inputs,
            self.test_outputs,
            self.functional_inputs,
            self.functional_outputs,
            chains,
            self.scan_patterns,
            self.functional_patterns
        )
    }
}

/// Counts `(scan, functional)` patterns in all `Pattern` blocks.
///
/// A *scan pattern* is a `Call` to a procedure whose body contains a
/// `Shift` statement; everything else that consumes a tester cycle (`V`)
/// is a functional pattern. `Loop` multiplies its body counts.
fn count_patterns(f: &StilFile) -> (u64, u64) {
    let is_scan_proc = |name: &str| -> bool {
        f.procedure(name)
            .map(|p| contains_shift(&p.stmts))
            .unwrap_or(false)
    };
    let mut scan = 0u64;
    let mut func = 0u64;
    for p in &f.patterns {
        let (s, v) = count_stmts(&p.stmts, &is_scan_proc);
        scan += s;
        func += v;
    }
    (scan, func)
}

fn contains_shift(stmts: &[PatternStmt]) -> bool {
    stmts.iter().any(|s| match s {
        PatternStmt::Shift(_) => true,
        PatternStmt::Loop(_, body) => contains_shift(body),
        _ => false,
    })
}

fn count_stmts(stmts: &[PatternStmt], is_scan_proc: &dyn Fn(&str) -> bool) -> (u64, u64) {
    let mut scan = 0u64;
    let mut func = 0u64;
    for s in stmts {
        match s {
            PatternStmt::Vector(_) => func += 1,
            PatternStmt::Call { proc, .. } => {
                if is_scan_proc(proc) {
                    scan += 1;
                } else {
                    func += 1;
                }
            }
            PatternStmt::Loop(n, body) => {
                let (s2, f2) = count_stmts(body, is_scan_proc);
                scan += n * s2;
                func += n * f2;
            }
            PatternStmt::Shift(body) => {
                let (s2, f2) = count_stmts(body, is_scan_proc);
                scan += s2;
                func += f2;
            }
            PatternStmt::Waveform(_) | PatternStmt::Condition(_) => {}
        }
    }
    (scan, func)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_stil;

    /// A miniature version of the paper's TV encoder: 2 chains, one scan
    /// output shared with a functional output.
    const TV_LIKE: &str = r#"
STIL 1.0;
Signals {
  ck In; rst In; se In; te In;
  d0 In; d1 In; q0 Out; q1 Out;
  si0 In { ScanIn; } si1 In { ScanIn; }
  so0 Out { ScanOut; }
}
SignalGroups {
  clocks = 'ck';
  resets = 'rst';
  scan_enables = 'se';
  test_enables = 'te';
  pi = 'd0 + d1';
  po = 'q0 + q1';
}
ScanStructures {
  ScanChain "c0" { ScanLength 577; ScanIn si0; ScanOut so0; }
  ScanChain "c1" { ScanLength 576; ScanIn si1; ScanOut q1; }
}
Procedures { "load_unload" { Shift { V { si0=#; si1=#; ck=P; } } } }
Pattern scan { Loop 229 { Call "load_unload"; } }
Pattern func { Loop 202673 { V { d0=0; ck=P; } } }
"#;

    #[test]
    fn tv_like_core_matches_table1_shape() {
        let f = parse_stil(TV_LIKE).unwrap();
        let info = CoreTestInfo::from_stil("TV", &f).unwrap();
        // TI = 1 clock + 1 reset + 1 SE + 1 TE + 2 dedicated scan-ins = 6.
        assert_eq!(info.test_inputs, 6);
        // TO = 1: chain c1's output is shared with functional q1.
        assert_eq!(info.test_outputs, 1);
        assert_eq!(info.functional_inputs, 2);
        assert_eq!(info.functional_outputs, 2);
        assert_eq!(info.scan_chains, vec![577, 576]);
        assert_eq!(info.scan_patterns, 229);
        assert_eq!(info.functional_patterns, 202_673);
        assert_eq!(info.shared_scan_outs, 1);
        assert_eq!(info.control_pins(), 4);
        assert_eq!(info.max_chain(), 577);
        assert_eq!(info.total_scan_cells(), 1153);
    }

    #[test]
    fn functional_only_core() {
        let src = r#"
STIL 1.0;
Signals { ck In; d In; q Out; }
SignalGroups { clocks = 'ck'; pi = 'd'; po = 'q'; }
Pattern func { Loop 100 { V { d=1; ck=P; } } }
"#;
        let f = parse_stil(src).unwrap();
        let info = CoreTestInfo::from_stil("JPEG-ish", &f).unwrap();
        assert_eq!(info.test_inputs, 1); // just the clock
        assert_eq!(info.test_outputs, 0);
        assert!(!info.has_scan());
        assert_eq!(info.scan_patterns, 0);
        assert_eq!(info.functional_patterns, 100);
    }

    #[test]
    fn undeclared_scan_pin_is_an_error() {
        let src = r#"
STIL 1.0;
Signals { ck In; }
ScanStructures { ScanChain "c" { ScanLength 5; ScanIn ghost; ScanOut ck; } }
"#;
        let f = parse_stil(src).unwrap();
        let err = CoreTestInfo::from_stil("x", &f).unwrap_err();
        assert!(matches!(err, StilError::Unresolved { .. }));
    }

    #[test]
    fn display_row_mentions_key_fields() {
        let f = parse_stil(TV_LIKE).unwrap();
        let info = CoreTestInfo::from_stil("TV", &f).unwrap();
        let row = info.to_string();
        assert!(row.contains("TI=6"), "{row}");
        assert!(row.contains("577"), "{row}");
    }

    #[test]
    fn missing_groups_default_to_empty() {
        let f = parse_stil("STIL 1.0; Signals { a In; }").unwrap();
        let info = CoreTestInfo::from_stil("bare", &f).unwrap();
        assert_eq!(info.test_inputs, 0);
        assert_eq!(info.functional_inputs, 0);
    }
}
