//! Tokenizer for the STIL subset.
//!
//! STIL is line-noise-light: identifiers/data strings, `"` strings,
//! `'`-quoted expressions, braces, `;`, `=`, `+` and comments (`//`,
//! `/* */`) plus annotation blocks `{* ... *}` which are skipped as
//! trivia.

use crate::{Loc, StilError};

/// Kind of a lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Bare word: identifiers, keywords, numbers and pattern data
    /// (`Signals`, `1629`, `0101LHX`, `ck`, ...).
    Word(String),
    /// Double-quoted string (content without quotes).
    DqString(String),
    /// Single-quoted expression (content without quotes), e.g. `'ck + d'`
    /// or `'100ns'`.
    SqString(String),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `;`
    Semi,
    /// `=`
    Eq,
    /// `+`
    Plus,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Human-readable description for error messages.
    #[must_use]
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Word(w) => format!("`{w}`"),
            TokenKind::DqString(s) => format!("\"{s}\""),
            TokenKind::SqString(s) => format!("'{s}'"),
            TokenKind::LBrace => "`{`".to_string(),
            TokenKind::RBrace => "`}`".to_string(),
            TokenKind::Semi => "`;`".to_string(),
            TokenKind::Eq => "`=`".to_string(),
            TokenKind::Plus => "`+`".to_string(),
            TokenKind::Eof => "end of input".to_string(),
        }
    }
}

/// A token with its source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it started.
    pub loc: Loc,
}

/// Streaming tokenizer.
#[derive(Debug, Clone)]
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over `src`.
    #[must_use]
    pub fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn loc(&self) -> Loc {
        Loc {
            line: self.line,
            col: self.col,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn skip_trivia(&mut self) -> Result<(), StilError> {
        loop {
            match (self.peek(), self.peek2()) {
                (Some(c), _) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                (Some(b'/'), Some(b'/')) => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                (Some(b'/'), Some(b'*')) => {
                    let start = self.loc();
                    self.bump();
                    self.bump();
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some(b'*'), Some(b'/')) => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => {
                                return Err(StilError::Unterminated {
                                    loc: start,
                                    what: "comment",
                                })
                            }
                        }
                    }
                }
                // Annotation block {* ... *} — STIL trivia.
                (Some(b'{'), Some(b'*')) => {
                    let start = self.loc();
                    self.bump();
                    self.bump();
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some(b'*'), Some(b'}')) => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => {
                                return Err(StilError::Unterminated {
                                    loc: start,
                                    what: "annotation",
                                })
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn is_word_byte(c: u8) -> bool {
        c.is_ascii_alphanumeric() || matches!(c, b'_' | b'.' | b'[' | b']' | b'#' | b'%' | b'!')
    }

    /// Produces the next token.
    ///
    /// # Errors
    ///
    /// Returns [`StilError::Lex`] on an unexpected character or
    /// [`StilError::Unterminated`] on an open string/comment.
    pub fn next_token(&mut self) -> Result<Token, StilError> {
        self.skip_trivia()?;
        let loc = self.loc();
        let Some(c) = self.peek() else {
            return Ok(Token {
                kind: TokenKind::Eof,
                loc,
            });
        };
        let kind = match c {
            b'{' => {
                self.bump();
                TokenKind::LBrace
            }
            b'}' => {
                self.bump();
                TokenKind::RBrace
            }
            b';' => {
                self.bump();
                TokenKind::Semi
            }
            b'=' => {
                self.bump();
                TokenKind::Eq
            }
            b'+' => {
                self.bump();
                TokenKind::Plus
            }
            b'"' => {
                self.bump();
                let mut s = String::new();
                loop {
                    match self.bump() {
                        Some(b'"') => break,
                        Some(ch) => s.push(ch as char),
                        None => {
                            return Err(StilError::Unterminated {
                                loc,
                                what: "string",
                            })
                        }
                    }
                }
                TokenKind::DqString(s)
            }
            b'\'' => {
                self.bump();
                let mut s = String::new();
                loop {
                    match self.bump() {
                        Some(b'\'') => break,
                        Some(ch) => s.push(ch as char),
                        None => {
                            return Err(StilError::Unterminated {
                                loc,
                                what: "string",
                            })
                        }
                    }
                }
                TokenKind::SqString(s)
            }
            c if Self::is_word_byte(c) => {
                let mut s = String::new();
                while let Some(c) = self.peek() {
                    if Self::is_word_byte(c) {
                        s.push(c as char);
                        self.bump();
                    } else {
                        break;
                    }
                }
                TokenKind::Word(s)
            }
            other => {
                return Err(StilError::Lex {
                    loc,
                    ch: other as char,
                })
            }
        };
        Ok(Token { kind, loc })
    }

    /// Lexes the whole input into a vector (including the final `Eof`).
    ///
    /// # Errors
    ///
    /// Propagates the first lexing error.
    pub fn tokenize(mut self) -> Result<Vec<Token>, StilError> {
        let mut out = Vec::new();
        loop {
            let t = self.next_token()?;
            let done = t.kind == TokenKind::Eof;
            out.push(t);
            if done {
                return Ok(out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_basic_statement() {
        let ks = kinds("STIL 1.0;");
        assert_eq!(
            ks,
            vec![
                TokenKind::Word("STIL".to_string()),
                TokenKind::Word("1.0".to_string()),
                TokenKind::Semi,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_strings_and_expressions() {
        let ks = kinds("ScanChain \"c0\" { ScanIn si; } g = 'a + b';");
        assert!(ks.contains(&TokenKind::DqString("c0".to_string())));
        assert!(ks.contains(&TokenKind::SqString("a + b".to_string())));
    }

    #[test]
    fn skips_comments_and_annotations() {
        let ks = kinds("a // line\n /* block\nmore */ b {* Ann content *} c");
        assert_eq!(
            ks,
            vec![
                TokenKind::Word("a".to_string()),
                TokenKind::Word("b".to_string()),
                TokenKind::Word("c".to_string()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn pattern_data_is_one_word() {
        let ks = kinds("si=0101LHXZ;");
        assert_eq!(
            ks,
            vec![
                TokenKind::Word("si".to_string()),
                TokenKind::Eq,
                TokenKind::Word("0101LHXZ".to_string()),
                TokenKind::Semi,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn tracks_line_numbers() {
        let toks = Lexer::new("a\nb\n  c").tokenize().unwrap();
        assert_eq!(toks[0].loc.line, 1);
        assert_eq!(toks[1].loc.line, 2);
        assert_eq!(toks[2].loc.line, 3);
        assert_eq!(toks[2].loc.col, 3);
    }

    #[test]
    fn unterminated_string_errors() {
        let err = Lexer::new("\"abc").tokenize().unwrap_err();
        assert!(matches!(err, StilError::Unterminated { .. }));
    }

    #[test]
    fn unexpected_character_errors() {
        let err = Lexer::new("a @ b").tokenize().unwrap_err();
        assert!(matches!(err, StilError::Lex { ch: '@', .. }));
    }
}
