//! Pretty-printer: renders a [`StilFile`] back to STIL text.
//!
//! The output parses back to an identical AST (round-trip property, tested
//! here and with generators in the crate's proptest suite).

use crate::ast::{PatternStmt, StilFile};
use std::fmt::Write as _;

fn ident(name: &str) -> String {
    let plain = !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '[' | ']' | '#' | '%'))
        && !name.starts_with(|c: char| c.is_ascii_digit());
    if plain {
        name.to_string()
    } else {
        format!("\"{name}\"")
    }
}

fn write_stmts(out: &mut String, stmts: &[PatternStmt], indent: usize) {
    let pad = "  ".repeat(indent);
    for s in stmts {
        match s {
            PatternStmt::Waveform(t) => {
                let _ = writeln!(out, "{pad}W {};", ident(t));
            }
            PatternStmt::Condition(assigns) => {
                let _ = write!(out, "{pad}C {{ ");
                for (k, v) in assigns {
                    let _ = write!(out, "{}={v}; ", ident(k));
                }
                let _ = writeln!(out, "}}");
            }
            PatternStmt::Vector(assigns) => {
                let _ = write!(out, "{pad}V {{ ");
                for (k, v) in assigns {
                    let _ = write!(out, "{}={v}; ", ident(k));
                }
                let _ = writeln!(out, "}}");
            }
            PatternStmt::Call { proc, args } => {
                if args.is_empty() {
                    let _ = writeln!(out, "{pad}Call {};", ident(proc));
                } else {
                    let _ = write!(out, "{pad}Call {} {{ ", ident(proc));
                    for (k, v) in args {
                        let _ = write!(out, "{}={v}; ", ident(k));
                    }
                    let _ = writeln!(out, "}}");
                }
            }
            PatternStmt::Shift(body) => {
                let _ = writeln!(out, "{pad}Shift {{");
                write_stmts(out, body, indent + 1);
                let _ = writeln!(out, "{pad}}}");
            }
            PatternStmt::Loop(n, body) => {
                let _ = writeln!(out, "{pad}Loop {n} {{");
                write_stmts(out, body, indent + 1);
                let _ = writeln!(out, "{pad}}}");
            }
        }
    }
}

/// Renders `f` as STIL text.
///
/// # Example
///
/// ```
/// use steac_stil::{parse_stil, to_stil_string};
///
/// # fn main() -> Result<(), steac_stil::StilError> {
/// let f = parse_stil("STIL 1.0; Signals { a In; }")?;
/// let text = to_stil_string(&f);
/// assert_eq!(parse_stil(&text)?, f);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn to_stil_string(f: &StilFile) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "STIL {};", f.version);
    if f.title.is_some() || f.date.is_some() || f.source.is_some() {
        let _ = writeln!(out, "Header {{");
        if let Some(t) = &f.title {
            let _ = writeln!(out, "  Title \"{t}\";");
        }
        if let Some(d) = &f.date {
            let _ = writeln!(out, "  Date \"{d}\";");
        }
        if let Some(s) = &f.source {
            let _ = writeln!(out, "  Source \"{s}\";");
        }
        let _ = writeln!(out, "}}");
    }
    if !f.signals.is_empty() {
        let _ = writeln!(out, "Signals {{");
        for s in &f.signals {
            if s.scan_in || s.scan_out {
                let _ = write!(out, "  {} {} {{ ", ident(&s.name), s.dir);
                if s.scan_in {
                    let _ = write!(out, "ScanIn; ");
                }
                if s.scan_out {
                    let _ = write!(out, "ScanOut; ");
                }
                let _ = writeln!(out, "}}");
            } else {
                let _ = writeln!(out, "  {} {};", ident(&s.name), s.dir);
            }
        }
        let _ = writeln!(out, "}}");
    }
    if !f.signal_groups.is_empty() {
        let _ = writeln!(out, "SignalGroups {{");
        for g in &f.signal_groups {
            let _ = writeln!(out, "  {} = '{}';", ident(&g.name), g.signals.join(" + "));
        }
        let _ = writeln!(out, "}}");
    }
    if !f.scan_chains.is_empty() {
        let _ = writeln!(out, "ScanStructures {{");
        for c in &f.scan_chains {
            let _ = writeln!(out, "  ScanChain \"{}\" {{", c.name);
            let _ = writeln!(out, "    ScanLength {};", c.length);
            let _ = writeln!(out, "    ScanIn {};", ident(&c.scan_in));
            let _ = writeln!(out, "    ScanOut {};", ident(&c.scan_out));
            if let Some(se) = &c.scan_enable {
                let _ = writeln!(out, "    ScanEnable {};", ident(se));
            }
            if let Some(ck) = &c.scan_clock {
                let _ = writeln!(out, "    ScanClock {};", ident(ck));
            }
            let _ = writeln!(out, "  }}");
        }
        let _ = writeln!(out, "}}");
    }
    if !f.waveform_tables.is_empty() {
        let _ = writeln!(out, "Timing {{");
        for w in &f.waveform_tables {
            let _ = writeln!(out, "  WaveformTable \"{}\" {{", w.name);
            let _ = writeln!(out, "    Period '{}ns';", w.period_ns);
            let _ = writeln!(out, "    Waveforms {{");
            for (sig, label, events) in &w.waveforms {
                let _ = write!(out, "      {} {{ {label} {{ ", ident(sig));
                for e in events {
                    let _ = write!(out, "'{}ns' {}; ", e.time_ns, e.event);
                }
                let _ = writeln!(out, "}} }}");
            }
            let _ = writeln!(out, "    }}");
            let _ = writeln!(out, "  }}");
        }
        let _ = writeln!(out, "}}");
    }
    for (name, pats) in &f.pattern_bursts {
        let _ = writeln!(out, "PatternBurst \"{name}\" {{");
        let _ = writeln!(out, "  PatList {{");
        for p in pats {
            let _ = writeln!(out, "    {};", ident(p));
        }
        let _ = writeln!(out, "  }}");
        let _ = writeln!(out, "}}");
    }
    for (timing, burst) in &f.pattern_execs {
        let _ = writeln!(out, "PatternExec {{");
        if let Some(t) = timing {
            let _ = writeln!(out, "  Timing {};", ident(t));
        }
        let _ = writeln!(out, "  PatternBurst {};", ident(burst));
        let _ = writeln!(out, "}}");
    }
    if !f.procedures.is_empty() {
        let _ = writeln!(out, "Procedures {{");
        for p in &f.procedures {
            let _ = writeln!(out, "  \"{}\" {{", p.name);
            write_stmts(&mut out, &p.stmts, 2);
            let _ = writeln!(out, "  }}");
        }
        let _ = writeln!(out, "}}");
    }
    for p in &f.patterns {
        let _ = writeln!(out, "Pattern \"{}\" {{", p.name);
        write_stmts(&mut out, &p.stmts, 1);
        let _ = writeln!(out, "}}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_stil;

    #[test]
    fn round_trip_minimal() {
        let f = parse_stil("STIL 1.0;").unwrap();
        let printed = to_stil_string(&f);
        assert_eq!(parse_stil(&printed).unwrap(), f);
    }

    #[test]
    fn round_trip_rich_file() {
        let src = r#"
STIL 1.0;
Header { Title "T"; Date "D"; Source "S"; }
Signals { ck In; si In { ScanIn; } so Out { ScanOut; } d In; q Out; }
SignalGroups { clocks = 'ck'; pi = 'd'; po = 'q'; }
ScanStructures {
  ScanChain "c0" { ScanLength 45; ScanIn si; ScanOut so; ScanEnable se; ScanClock ck; }
}
Timing { WaveformTable "w" { Period '50ns';
  Waveforms { ck { P { '0ns' D; '25ns' U; } } } } }
PatternBurst "b" { PatList { p; } }
PatternExec { Timing t; PatternBurst b; }
Procedures { "lu" { Shift { V { si=#; ck=P; } } } }
Pattern p {
  W w;
  C { d=0; }
  Call "lu" { si=0101; }
  V { d=1; q=H; }
  Loop 2 { V { d=0; } }
}
"#;
        let f = parse_stil(src).unwrap();
        let printed = to_stil_string(&f);
        let reparsed =
            parse_stil(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        assert_eq!(reparsed, f, "\n--- printed ---\n{printed}");
    }

    #[test]
    fn identifiers_with_brackets_stay_bare() {
        // `[` and `]` are word characters in our lexer, so bus bits
        // survive unquoted.
        let f = parse_stil("STIL 1.0; Signals { d[0] In; }").unwrap();
        let printed = to_stil_string(&f);
        assert!(printed.contains("d[0] In;"), "{printed}");
        assert_eq!(parse_stil(&printed).unwrap(), f);
    }
}
