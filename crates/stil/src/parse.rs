//! Recursive-descent parser for the STIL subset.

use crate::ast::{
    Pattern, PatternStmt, Procedure, ScanChain, Signal, SignalDir, SignalGroup, StilFile,
    WaveEvent, WaveformTable,
};
use crate::lex::{Lexer, Token, TokenKind};
use crate::{Loc, StilError};

/// Parses STIL source text into a [`StilFile`].
///
/// # Errors
///
/// Returns a [`StilError`] with the location of the first problem.
///
/// # Example
///
/// ```
/// let file = steac_stil::parse_stil("STIL 1.0;")?;
/// assert_eq!(file.version, "1.0");
/// # Ok::<(), steac_stil::StilError>(())
/// ```
pub fn parse_stil(src: &str) -> Result<StilFile, StilError> {
    let tokens = Lexer::new(src).tokenize()?;
    Parser { tokens, pos: 0 }.file()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn unexpected(&self, expected: &str) -> StilError {
        let t = self.peek();
        StilError::Unexpected {
            loc: t.loc,
            found: t.kind.describe(),
            expected: expected.to_string(),
        }
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<(), StilError> {
        if &self.peek().kind == kind {
            self.bump();
            Ok(())
        } else {
            Err(self.unexpected(what))
        }
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if &self.peek().kind == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    /// A name: bare word or quoted string.
    fn name(&mut self, what: &str) -> Result<String, StilError> {
        match self.peek().kind.clone() {
            TokenKind::Word(w) => {
                self.bump();
                Ok(w)
            }
            TokenKind::DqString(s) => {
                self.bump();
                Ok(s)
            }
            _ => Err(self.unexpected(what)),
        }
    }

    fn word(&mut self, what: &str) -> Result<(String, Loc), StilError> {
        match self.peek().kind.clone() {
            TokenKind::Word(w) => {
                let loc = self.peek().loc;
                self.bump();
                Ok((w, loc))
            }
            _ => Err(self.unexpected(what)),
        }
    }

    fn number(&mut self, what: &str) -> Result<u64, StilError> {
        let (w, loc) = self.word(what)?;
        w.parse::<u64>().map_err(|_| StilError::BadNumber {
            loc,
            text: w.clone(),
        })
    }

    fn time_ns(&mut self, raw: &str, loc: Loc) -> Result<u32, StilError> {
        let trimmed = raw.trim().trim_end_matches("ns").trim();
        trimmed.parse::<u32>().map_err(|_| StilError::BadNumber {
            loc,
            text: raw.to_string(),
        })
    }

    fn file(&mut self) -> Result<StilFile, StilError> {
        let mut f = StilFile::default();
        // `STIL 1.0;`
        let (kw, _) = self.word("`STIL` keyword")?;
        if kw != "STIL" {
            return Err(self.unexpected("`STIL` keyword"));
        }
        let (v, _) = self.word("a STIL version")?;
        f.version = v;
        self.expect(&TokenKind::Semi, "`;` after version")?;

        loop {
            let t = self.peek().clone();
            match &t.kind {
                TokenKind::Eof => break,
                TokenKind::Word(w) => match w.as_str() {
                    "Header" => {
                        self.bump();
                        self.header(&mut f)?;
                    }
                    "Signals" => {
                        self.bump();
                        self.signals(&mut f)?;
                    }
                    "SignalGroups" => {
                        self.bump();
                        self.signal_groups(&mut f)?;
                    }
                    "ScanStructures" => {
                        self.bump();
                        self.scan_structures(&mut f)?;
                    }
                    "Timing" => {
                        self.bump();
                        self.timing(&mut f)?;
                    }
                    "PatternBurst" => {
                        self.bump();
                        self.pattern_burst(&mut f)?;
                    }
                    "PatternExec" => {
                        self.bump();
                        self.pattern_exec(&mut f)?;
                    }
                    "Procedures" => {
                        self.bump();
                        self.procedures(&mut f)?;
                    }
                    "Pattern" => {
                        self.bump();
                        let name = self.name("a pattern name")?;
                        self.expect(&TokenKind::LBrace, "`{` opening the pattern")?;
                        let stmts = self.stmts()?;
                        f.patterns.push(Pattern { name, stmts });
                    }
                    _ => return Err(self.unexpected("a top-level STIL block")),
                },
                _ => return Err(self.unexpected("a top-level STIL block")),
            }
        }
        Ok(f)
    }

    fn header(&mut self, f: &mut StilFile) -> Result<(), StilError> {
        self.expect(&TokenKind::LBrace, "`{` opening Header")?;
        while !self.eat(&TokenKind::RBrace) {
            let (key, _) = self.word("a header field")?;
            let val = match self.peek().kind.clone() {
                TokenKind::DqString(s) => {
                    self.bump();
                    s
                }
                TokenKind::Word(w) => {
                    self.bump();
                    w
                }
                _ => return Err(self.unexpected("a header value")),
            };
            self.expect(&TokenKind::Semi, "`;` after header field")?;
            match key.as_str() {
                "Title" => f.title = Some(val),
                "Date" => f.date = Some(val),
                "Source" => f.source = Some(val),
                _ => {} // tolerate unknown header fields
            }
        }
        Ok(())
    }

    fn signals(&mut self, f: &mut StilFile) -> Result<(), StilError> {
        self.expect(&TokenKind::LBrace, "`{` opening Signals")?;
        while !self.eat(&TokenKind::RBrace) {
            let name = self.name("a signal name")?;
            let (dir_word, _) = self.word("a signal direction (In/Out/InOut)")?;
            let dir = match dir_word.as_str() {
                "In" => SignalDir::In,
                "Out" => SignalDir::Out,
                "InOut" => SignalDir::InOut,
                _ => return Err(self.unexpected("`In`, `Out` or `InOut`")),
            };
            let mut sig = Signal::new(name, dir);
            if self.eat(&TokenKind::LBrace) {
                while !self.eat(&TokenKind::RBrace) {
                    let (attr, _) = self.word("a signal attribute")?;
                    match attr.as_str() {
                        "ScanIn" => sig.scan_in = true,
                        "ScanOut" => sig.scan_out = true,
                        _ => {} // tolerate unknown attributes
                    }
                    self.expect(&TokenKind::Semi, "`;` after signal attribute")?;
                }
            } else {
                self.expect(&TokenKind::Semi, "`;` after signal")?;
            }
            f.signals.push(sig);
        }
        Ok(())
    }

    fn signal_groups(&mut self, f: &mut StilFile) -> Result<(), StilError> {
        self.expect(&TokenKind::LBrace, "`{` opening SignalGroups")?;
        while !self.eat(&TokenKind::RBrace) {
            let name = self.name("a group name")?;
            self.expect(&TokenKind::Eq, "`=` in group definition")?;
            let expr = match self.peek().kind.clone() {
                TokenKind::SqString(s) => {
                    self.bump();
                    s
                }
                _ => return Err(self.unexpected("a quoted signal expression")),
            };
            self.expect(&TokenKind::Semi, "`;` after group definition")?;
            let signals: Vec<String> = expr
                .split('+')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect();
            f.signal_groups.push(SignalGroup { name, signals });
        }
        Ok(())
    }

    fn scan_structures(&mut self, f: &mut StilFile) -> Result<(), StilError> {
        self.expect(&TokenKind::LBrace, "`{` opening ScanStructures")?;
        while !self.eat(&TokenKind::RBrace) {
            let (kw, _) = self.word("`ScanChain`")?;
            if kw != "ScanChain" {
                return Err(self.unexpected("`ScanChain`"));
            }
            let name = self.name("a chain name")?;
            self.expect(&TokenKind::LBrace, "`{` opening ScanChain")?;
            let mut chain = ScanChain {
                name,
                length: 0,
                scan_in: String::new(),
                scan_out: String::new(),
                scan_enable: None,
                scan_clock: None,
            };
            while !self.eat(&TokenKind::RBrace) {
                let (key, _) = self.word("a ScanChain field")?;
                match key.as_str() {
                    "ScanLength" => chain.length = self.number("a scan length")? as usize,
                    "ScanIn" => chain.scan_in = self.name("a signal name")?,
                    "ScanOut" => chain.scan_out = self.name("a signal name")?,
                    "ScanEnable" => chain.scan_enable = Some(self.name("a signal name")?),
                    "ScanClock" => chain.scan_clock = Some(self.name("a signal name")?),
                    _ => {
                        // Tolerate and skip unknown single-value fields.
                        let _ = self.name("a field value")?;
                    }
                }
                self.expect(&TokenKind::Semi, "`;` after ScanChain field")?;
            }
            f.scan_chains.push(chain);
        }
        Ok(())
    }

    fn timing(&mut self, f: &mut StilFile) -> Result<(), StilError> {
        // Optional timing block name.
        if !matches!(self.peek().kind, TokenKind::LBrace) {
            let _ = self.name("a timing name")?;
        }
        self.expect(&TokenKind::LBrace, "`{` opening Timing")?;
        while !self.eat(&TokenKind::RBrace) {
            let (kw, _) = self.word("`WaveformTable`")?;
            if kw != "WaveformTable" {
                return Err(self.unexpected("`WaveformTable`"));
            }
            let name = self.name("a waveform table name")?;
            self.expect(&TokenKind::LBrace, "`{` opening WaveformTable")?;
            let mut wft = WaveformTable {
                name,
                period_ns: 0,
                waveforms: Vec::new(),
            };
            while !self.eat(&TokenKind::RBrace) {
                let (key, loc) = self.word("`Period` or `Waveforms`")?;
                match key.as_str() {
                    "Period" => {
                        let raw = match self.peek().kind.clone() {
                            TokenKind::SqString(s) => {
                                self.bump();
                                s
                            }
                            _ => return Err(self.unexpected("a quoted period")),
                        };
                        wft.period_ns = self.time_ns(&raw, loc)?;
                        self.expect(&TokenKind::Semi, "`;` after Period")?;
                    }
                    "Waveforms" => {
                        self.expect(&TokenKind::LBrace, "`{` opening Waveforms")?;
                        while !self.eat(&TokenKind::RBrace) {
                            let signal = self.name("a signal name")?;
                            self.expect(&TokenKind::LBrace, "`{` opening waveform")?;
                            while !self.eat(&TokenKind::RBrace) {
                                let (wfc, _) = self.word("a waveform character")?;
                                let label = wfc.chars().next().unwrap_or('?');
                                self.expect(&TokenKind::LBrace, "`{` opening events")?;
                                let mut events = Vec::new();
                                while !self.eat(&TokenKind::RBrace) {
                                    let (raw, eloc) = match self.peek().kind.clone() {
                                        TokenKind::SqString(s) => {
                                            let l = self.peek().loc;
                                            self.bump();
                                            (s, l)
                                        }
                                        _ => return Err(self.unexpected("a quoted event time")),
                                    };
                                    let t = self.time_ns(&raw, eloc)?;
                                    let (ev, _) = self.word("an event character")?;
                                    self.expect(&TokenKind::Semi, "`;` after event")?;
                                    events.push(WaveEvent {
                                        time_ns: t,
                                        event: ev.chars().next().unwrap_or('?'),
                                    });
                                }
                                wft.waveforms.push((signal.clone(), label, events));
                            }
                        }
                    }
                    _ => return Err(self.unexpected("`Period` or `Waveforms`")),
                }
            }
            f.waveform_tables.push(wft);
        }
        Ok(())
    }

    fn pattern_burst(&mut self, f: &mut StilFile) -> Result<(), StilError> {
        let name = self.name("a burst name")?;
        self.expect(&TokenKind::LBrace, "`{` opening PatternBurst")?;
        let mut pats = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            let (kw, _) = self.word("`PatList`")?;
            if kw != "PatList" {
                return Err(self.unexpected("`PatList`"));
            }
            self.expect(&TokenKind::LBrace, "`{` opening PatList")?;
            while !self.eat(&TokenKind::RBrace) {
                let p = self.name("a pattern name")?;
                self.expect(&TokenKind::Semi, "`;` after pattern name")?;
                pats.push(p);
            }
        }
        f.pattern_bursts.push((name, pats));
        Ok(())
    }

    fn pattern_exec(&mut self, f: &mut StilFile) -> Result<(), StilError> {
        // Optional exec name.
        if !matches!(self.peek().kind, TokenKind::LBrace) {
            let _ = self.name("an exec name")?;
        }
        self.expect(&TokenKind::LBrace, "`{` opening PatternExec")?;
        let mut timing = None;
        let mut burst = None;
        while !self.eat(&TokenKind::RBrace) {
            let (key, _) = self.word("`Timing` or `PatternBurst`")?;
            let val = self.name("a name")?;
            self.expect(&TokenKind::Semi, "`;`")?;
            match key.as_str() {
                "Timing" => timing = Some(val),
                "PatternBurst" => burst = Some(val),
                _ => return Err(self.unexpected("`Timing` or `PatternBurst`")),
            }
        }
        let burst = burst.ok_or(StilError::Unresolved {
            name: "PatternBurst".to_string(),
            context: "PatternExec".to_string(),
        })?;
        f.pattern_execs.push((timing, burst));
        Ok(())
    }

    fn procedures(&mut self, f: &mut StilFile) -> Result<(), StilError> {
        self.expect(&TokenKind::LBrace, "`{` opening Procedures")?;
        while !self.eat(&TokenKind::RBrace) {
            let name = self.name("a procedure name")?;
            self.expect(&TokenKind::LBrace, "`{` opening procedure")?;
            let stmts = self.stmts()?;
            f.procedures.push(Procedure { name, stmts });
        }
        Ok(())
    }

    /// Parses statements until the matching `}` (consumed).
    fn stmts(&mut self) -> Result<Vec<PatternStmt>, StilError> {
        let mut out = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            let (kw, _) = self.word("a pattern statement (W/C/V/Call/Shift/Loop)")?;
            match kw.as_str() {
                "W" => {
                    let t = self.name("a waveform table name")?;
                    self.expect(&TokenKind::Semi, "`;` after W")?;
                    out.push(PatternStmt::Waveform(t));
                }
                "C" => {
                    let assigns = self.assigns()?;
                    out.push(PatternStmt::Condition(assigns));
                }
                "V" => {
                    let assigns = self.assigns()?;
                    out.push(PatternStmt::Vector(assigns));
                }
                "Call" => {
                    let proc = self.name("a procedure name")?;
                    let args = if matches!(self.peek().kind, TokenKind::LBrace) {
                        self.assigns()?
                    } else {
                        self.expect(&TokenKind::Semi, "`;` after Call")?;
                        Vec::new()
                    };
                    out.push(PatternStmt::Call { proc, args });
                }
                "Shift" => {
                    self.expect(&TokenKind::LBrace, "`{` opening Shift")?;
                    let body = self.stmts()?;
                    out.push(PatternStmt::Shift(body));
                }
                "Loop" => {
                    let n = self.number("a loop count")?;
                    self.expect(&TokenKind::LBrace, "`{` opening Loop")?;
                    let body = self.stmts()?;
                    out.push(PatternStmt::Loop(n, body));
                }
                _ => return Err(self.unexpected("a pattern statement (W/C/V/Call/Shift/Loop)")),
            }
        }
        Ok(out)
    }

    /// Parses `{ sig=data; ... }` (opening brace expected next).
    fn assigns(&mut self) -> Result<Vec<(String, String)>, StilError> {
        self.expect(&TokenKind::LBrace, "`{` opening assignments")?;
        let mut out = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            let sig = self.name("a signal or group name")?;
            self.expect(&TokenKind::Eq, "`=` in assignment")?;
            let data = match self.peek().kind.clone() {
                TokenKind::Word(w) => {
                    self.bump();
                    w
                }
                TokenKind::SqString(s) => {
                    self.bump();
                    s
                }
                _ => return Err(self.unexpected("pattern data")),
            };
            self.expect(&TokenKind::Semi, "`;` after assignment")?;
            out.push((sig, data));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
STIL 1.0;
Header {
  Title "USB core test";
  Date "2004-10-01";
  Source "ATPG";
}
Signals {
  ck0 In; ck1 In; rst0 In; se In;
  d[0] In; d[1] In; q[0] Out;
  si0 In { ScanIn; } so0 Out { ScanOut; }
}
SignalGroups {
  clocks = 'ck0 + ck1';
  resets = 'rst0';
  scan_enables = 'se';
  pi = 'd[0] + d[1]';
  po = 'q[0]';
}
ScanStructures {
  ScanChain "chain0" {
    ScanLength 1629;
    ScanIn si0;
    ScanOut so0;
    ScanEnable se;
    ScanClock ck0;
  }
}
Timing "t0" {
  WaveformTable "wft" {
    Period '100ns';
    Waveforms {
      ck0 { P { '0ns' D; '40ns' U; '60ns' D; } }
      d[0] { 0 { '0ns' D; } }
    }
  }
}
PatternBurst "b" { PatList { scan_test; } }
PatternExec { Timing t0; PatternBurst b; }
Procedures {
  "load_unload" {
    V { se=1; }
    Shift { V { si0=#; so0=#; ck0=P; } }
  }
}
Pattern scan_test {
  W wft;
  C { d[0]=0; d[1]=0; }
  Call "load_unload" { si0=0101; so0=LLHH; }
  V { d[0]=1; q[0]=H; ck0=P; }
  Loop 3 { V { d[0]=0; ck0=P; } }
}
"#;

    #[test]
    fn parses_the_full_sample() {
        let f = parse_stil(SAMPLE).expect("sample parses");
        assert_eq!(f.version, "1.0");
        assert_eq!(f.title.as_deref(), Some("USB core test"));
        assert_eq!(f.signals.len(), 9);
        assert_eq!(f.signal_groups.len(), 5);
        assert_eq!(f.group("clocks").unwrap().signals, vec!["ck0", "ck1"]);
        assert_eq!(f.scan_chains.len(), 1);
        assert_eq!(f.scan_chains[0].length, 1629);
        assert_eq!(f.scan_chains[0].scan_enable.as_deref(), Some("se"));
        assert_eq!(f.waveform_tables.len(), 1);
        assert_eq!(f.waveform_tables[0].period_ns, 100);
        assert_eq!(f.waveform_tables[0].waveforms.len(), 2);
        assert_eq!(f.pattern_bursts.len(), 1);
        assert_eq!(f.pattern_execs.len(), 1);
        assert_eq!(f.procedures.len(), 1);
        assert_eq!(f.patterns.len(), 1);
        let p = &f.patterns[0];
        assert_eq!(p.stmts.len(), 5);
        assert!(matches!(&p.stmts[2], PatternStmt::Call { proc, args }
            if proc == "load_unload" && args.len() == 2));
        assert!(matches!(&p.stmts[4], PatternStmt::Loop(3, body) if body.len() == 1));
    }

    #[test]
    fn signal_scan_attributes() {
        let f = parse_stil(SAMPLE).unwrap();
        assert!(f.signal("si0").unwrap().scan_in);
        assert!(f.signal("so0").unwrap().scan_out);
        assert!(!f.signal("ck0").unwrap().scan_in);
    }

    #[test]
    fn total_cycles_counts_shift() {
        let f = parse_stil(SAMPLE).unwrap();
        // load_unload = 1 + 1629; pattern adds 1 V + 3 loop = 4.
        assert_eq!(f.total_cycles(), 1 + 1629 + 4);
    }

    #[test]
    fn error_has_location() {
        let err = parse_stil("STIL 1.0;\nSignals { x Sideways; }").unwrap_err();
        match err {
            StilError::Unexpected { loc, .. } => assert_eq!(loc.line, 2),
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn missing_version_is_an_error() {
        assert!(parse_stil("Signals { }").is_err());
    }

    #[test]
    fn pattern_exec_requires_burst() {
        let err = parse_stil("STIL 1.0; PatternExec { Timing t; }").unwrap_err();
        assert!(matches!(err, StilError::Unresolved { .. }));
    }

    #[test]
    fn call_without_args() {
        let f = parse_stil("STIL 1.0; Pattern p { Call reset_proc; }").unwrap();
        assert!(matches!(&f.patterns[0].stmts[0],
            PatternStmt::Call { proc, args } if proc == "reset_proc" && args.is_empty()));
    }
}
