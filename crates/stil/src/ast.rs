//! Abstract syntax tree for the STIL subset.

use std::fmt;

/// Direction of a signal as declared in the `Signals` block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SignalDir {
    /// `In`
    In,
    /// `Out`
    Out,
    /// `InOut`
    InOut,
}

impl fmt::Display for SignalDir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignalDir::In => f.write_str("In"),
            SignalDir::Out => f.write_str("Out"),
            SignalDir::InOut => f.write_str("InOut"),
        }
    }
}

/// One declared signal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signal {
    /// Signal name.
    pub name: String,
    /// Direction.
    pub dir: SignalDir,
    /// `ScanIn` attribute present in the signal's brace block.
    pub scan_in: bool,
    /// `ScanOut` attribute present in the signal's brace block.
    pub scan_out: bool,
}

impl Signal {
    /// A plain signal without scan attributes.
    #[must_use]
    pub fn new(name: impl Into<String>, dir: SignalDir) -> Self {
        Signal {
            name: name.into(),
            dir,
            scan_in: false,
            scan_out: false,
        }
    }
}

/// A named group of signals (`SignalGroups` entry).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignalGroup {
    /// Group name.
    pub name: String,
    /// Member signal names, in declaration order.
    pub signals: Vec<String>,
}

/// One `ScanChain` entry of a `ScanStructures` block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanChain {
    /// Chain name.
    pub name: String,
    /// `ScanLength`: number of scan cells.
    pub length: usize,
    /// `ScanIn` signal name.
    pub scan_in: String,
    /// `ScanOut` signal name.
    pub scan_out: String,
    /// Optional `ScanEnable` signal name.
    pub scan_enable: Option<String>,
    /// Optional `ScanClock` signal name.
    pub scan_clock: Option<String>,
}

/// One event of a waveform: `(time in ns, waveform character)`.
///
/// Waveform characters follow STIL conventions: `D` (drive low), `U`
/// (drive high), `Z` (release), `P` (pulse), `L`/`H`/`X` (compare low /
/// high / don't-care).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaveEvent {
    /// Event time within the period, in nanoseconds.
    pub time_ns: u32,
    /// Event character.
    pub event: char,
}

/// A `WaveformTable` inside `Timing`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaveformTable {
    /// Table name.
    pub name: String,
    /// Tester period in nanoseconds.
    pub period_ns: u32,
    /// Per-signal waveforms: `(signal or group name, WFC label, events)`.
    pub waveforms: Vec<(String, char, Vec<WaveEvent>)>,
}

/// A pattern statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatternStmt {
    /// `W table;` — select the active waveform table.
    Waveform(String),
    /// `C { sig=data; ... }` — condition (background) values.
    Condition(Vec<(String, String)>),
    /// `V { sig=data; ... }` — one tester cycle.
    Vector(Vec<(String, String)>),
    /// `Call proc { sig=data; ... }` — invoke a procedure with data
    /// substitutions (the classic `load_unload` scan call).
    Call {
        /// Procedure name.
        proc: String,
        /// Arguments: `(signal, data string)`.
        args: Vec<(String, String)>,
    },
    /// `Shift { ... }` — repeated application of the body, once per scan
    /// bit (inside procedures).
    Shift(Vec<PatternStmt>),
    /// `Loop n { ... }` — repeat the body `n` times.
    Loop(u64, Vec<PatternStmt>),
}

impl PatternStmt {
    /// Number of tester cycles this statement expands to, given a scan
    /// `shift_length` used for `Shift` bodies and a resolver for `Call`
    /// cycle counts.
    #[must_use]
    pub fn cycle_count(&self, shift_length: u64, call_cycles: &dyn Fn(&str) -> u64) -> u64 {
        match self {
            PatternStmt::Waveform(_) | PatternStmt::Condition(_) => 0,
            PatternStmt::Vector(_) => 1,
            PatternStmt::Call { proc, .. } => call_cycles(proc),
            PatternStmt::Shift(body) => {
                let per: u64 = body
                    .iter()
                    .map(|s| s.cycle_count(shift_length, call_cycles))
                    .sum();
                per * shift_length
            }
            PatternStmt::Loop(n, body) => {
                let per: u64 = body
                    .iter()
                    .map(|s| s.cycle_count(shift_length, call_cycles))
                    .sum();
                per * n
            }
        }
    }
}

/// A named procedure (`Procedures` entry).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Procedure {
    /// Procedure name.
    pub name: String,
    /// Body statements.
    pub stmts: Vec<PatternStmt>,
}

/// A `Pattern` block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pattern {
    /// Pattern block name.
    pub name: String,
    /// Statements in order.
    pub stmts: Vec<PatternStmt>,
}

/// A parsed STIL file.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StilFile {
    /// Version string from `STIL x.y;` (e.g. `"1.0"`).
    pub version: String,
    /// `Title` from the header, if present.
    pub title: Option<String>,
    /// `Date` from the header, if present.
    pub date: Option<String>,
    /// `Source` from the header, if present.
    pub source: Option<String>,
    /// Declared signals.
    pub signals: Vec<Signal>,
    /// Declared signal groups.
    pub signal_groups: Vec<SignalGroup>,
    /// Scan chains.
    pub scan_chains: Vec<ScanChain>,
    /// Waveform tables (across all `Timing` blocks).
    pub waveform_tables: Vec<WaveformTable>,
    /// Pattern bursts: `(name, pattern names)`.
    pub pattern_bursts: Vec<(String, Vec<String>)>,
    /// Pattern execs: `(timing name, burst name)`.
    pub pattern_execs: Vec<(Option<String>, String)>,
    /// Procedures.
    pub procedures: Vec<Procedure>,
    /// Pattern blocks.
    pub patterns: Vec<Pattern>,
}

impl StilFile {
    /// Looks up a signal by name.
    #[must_use]
    pub fn signal(&self, name: &str) -> Option<&Signal> {
        self.signals.iter().find(|s| s.name == name)
    }

    /// Looks up a signal group by name.
    #[must_use]
    pub fn group(&self, name: &str) -> Option<&SignalGroup> {
        self.signal_groups.iter().find(|g| g.name == name)
    }

    /// Looks up a procedure by name.
    #[must_use]
    pub fn procedure(&self, name: &str) -> Option<&Procedure> {
        self.procedures.iter().find(|p| p.name == name)
    }

    /// The longest scan chain length (0 if no scan).
    #[must_use]
    pub fn max_scan_length(&self) -> usize {
        self.scan_chains.iter().map(|c| c.length).max().unwrap_or(0)
    }

    /// Total tester cycles of all pattern blocks, expanding `Shift` bodies
    /// with the longest chain length and `Call`s with their procedure's
    /// cycle count.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        let shift_len = self.max_scan_length() as u64;
        let call_cycles = |name: &str| -> u64 {
            self.procedure(name)
                .map(|p| {
                    p.stmts
                        .iter()
                        .map(|s| s.cycle_count(shift_len, &|_| 0))
                        .sum()
                })
                .unwrap_or(0)
        };
        self.patterns
            .iter()
            .flat_map(|p| &p.stmts)
            .map(|s| s.cycle_count(shift_len, &call_cycles))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_count_vector_and_loop() {
        let v = PatternStmt::Vector(vec![]);
        assert_eq!(v.cycle_count(0, &|_| 0), 1);
        let l = PatternStmt::Loop(5, vec![PatternStmt::Vector(vec![])]);
        assert_eq!(l.cycle_count(0, &|_| 0), 5);
    }

    #[test]
    fn cycle_count_shift_scales_with_chain() {
        let s = PatternStmt::Shift(vec![PatternStmt::Vector(vec![])]);
        assert_eq!(s.cycle_count(577, &|_| 0), 577);
    }

    #[test]
    fn total_cycles_resolves_calls() {
        let mut f = StilFile::default();
        f.scan_chains.push(ScanChain {
            name: "c0".to_string(),
            length: 10,
            scan_in: "si".to_string(),
            scan_out: "so".to_string(),
            scan_enable: None,
            scan_clock: None,
        });
        f.procedures.push(Procedure {
            name: "load_unload".to_string(),
            stmts: vec![
                PatternStmt::Vector(vec![]),
                PatternStmt::Shift(vec![PatternStmt::Vector(vec![])]),
            ],
        });
        f.patterns.push(Pattern {
            name: "p".to_string(),
            stmts: vec![
                PatternStmt::Call {
                    proc: "load_unload".to_string(),
                    args: vec![],
                },
                PatternStmt::Vector(vec![]),
            ],
        });
        // Call = 1 + 10 cycles, plus 1 vector.
        assert_eq!(f.total_cycles(), 12);
    }
}
