//! Test tasks and the chip-level resource configuration.

use steac_tam::{ControlClass, ControlSignal, PinBudget, SharePolicy};
use steac_wrapper::chain::{balance_fixed, balance_soft};

/// What kind of test a task applies, with its time model.
#[derive(Debug, Clone, PartialEq)]
pub enum TestKind {
    /// Scan test through a wrapper: time follows the wrapper-chain balance
    /// for the width bought with the allocated pins (2 pins per TAM wire).
    Scan {
        /// Number of scan patterns.
        patterns: u64,
        /// Internal chain lengths (hard cores) — for soft cores the total
        /// is redistributed.
        internal_chains: Vec<usize>,
        /// Wrapped functional inputs.
        inputs: usize,
        /// Wrapped functional outputs.
        outputs: usize,
        /// Soft core: chains may be rebalanced per assigned width.
        soft: bool,
    },
    /// Functional test applied through multiplexed chip pins: each pattern
    /// needs `ceil((pi + po) / pins)` tester cycles.
    Functional {
        /// Number of functional patterns.
        patterns: u64,
        /// Functional input pins of the core.
        pi: usize,
        /// Functional output pins of the core.
        po: usize,
    },
    /// Memory BIST: runs autonomously for a fixed cycle count; chip-pin
    /// cost is the shared BIST tester interface.
    Bist {
        /// Total BIST cycles.
        cycles: u64,
    },
}

/// A schedulable test task.
#[derive(Debug, Clone, PartialEq)]
pub struct TestTask {
    /// Task name (usually `<core>:<kind>`).
    pub name: String,
    /// The time model.
    pub kind: TestKind,
    /// Control signals needed on chip pins while this task runs.
    pub controls: Vec<ControlSignal>,
    /// Fixed data pins needed while active; tasks sharing a
    /// [`pin_group`](Self::pin_group) pay this once per session.
    pub fixed_pins: usize,
    /// Name of the shared pin interface (e.g. the 7-signal memory-BIST
    /// port of Fig. 2), if any.
    pub pin_group: Option<String>,
    /// Power units consumed while running (session sum is capped).
    pub power: f64,
}

impl TestTask {
    /// Creates a scan task. Control signals default to one clock, one
    /// reset, one SE and one TE for the core; customize `controls` for
    /// multi-domain cores.
    #[must_use]
    pub fn scan(
        core: &str,
        patterns: u64,
        internal_chains: &[usize],
        inputs: usize,
        outputs: usize,
        soft: bool,
    ) -> Self {
        TestTask {
            name: format!("{core}:scan"),
            kind: TestKind::Scan {
                patterns,
                internal_chains: internal_chains.to_vec(),
                inputs,
                outputs,
                soft,
            },
            controls: default_controls(core),
            fixed_pins: 0,
            pin_group: None,
            power: 1.0,
        }
    }

    /// Creates a functional task (one clock + one TE by default).
    #[must_use]
    pub fn functional(core: &str, patterns: u64, pi: usize, po: usize) -> Self {
        TestTask {
            name: format!("{core}:func"),
            kind: TestKind::Functional { patterns, pi, po },
            controls: vec![
                ControlSignal::new(core, "ck", ControlClass::Clock { freq_mhz: 100 }),
                ControlSignal::new(core, "te", ControlClass::TestEnable),
            ],
            fixed_pins: 0,
            pin_group: None,
            power: 1.0,
        }
    }

    /// Creates a BIST task on the shared `mbist` interface (7 pins, the
    /// Fig. 2 tester port: MBS MSI MBR MRD MSO MBO MBC).
    #[must_use]
    pub fn bist(group: &str, cycles: u64) -> Self {
        TestTask {
            name: format!("bist:{group}"),
            kind: TestKind::Bist { cycles },
            controls: vec![],
            fixed_pins: 7,
            pin_group: Some("mbist".to_string()),
            power: 0.5,
        }
    }

    /// Builder-style: replace the control signal list.
    #[must_use]
    pub fn with_controls(mut self, controls: Vec<ControlSignal>) -> Self {
        self.controls = controls;
        self
    }

    /// Builder-style: set power.
    #[must_use]
    pub fn with_power(mut self, power: f64) -> Self {
        self.power = power;
        self
    }

    /// Minimum data pins this task can run with.
    #[must_use]
    pub fn min_pins(&self) -> usize {
        match &self.kind {
            TestKind::Scan { .. } => 2, // one TAM wire = si + so pin
            TestKind::Functional { .. } => 8,
            TestKind::Bist { .. } => 0, // interface cost is in fixed_pins
        }
    }

    /// Largest useful data-pin allocation (more pins stop helping here).
    #[must_use]
    pub fn max_pins(&self) -> usize {
        match &self.kind {
            TestKind::Scan {
                internal_chains,
                inputs,
                outputs,
                ..
            } => {
                // One wire per internal chain plus boundary-only wires
                // stop helping beyond the cell counts.
                let useful = (internal_chains.len() + 2).clamp(4, 32);
                let cap = (inputs + outputs).clamp(2, 64);
                2 * useful.min(cap)
            }
            TestKind::Functional { pi, po, .. } => (pi + po).max(8),
            TestKind::Bist { .. } => 0,
        }
    }

    /// Allocation granularity (scan widths grow in wire pairs).
    #[must_use]
    pub fn pin_step(&self) -> usize {
        match &self.kind {
            TestKind::Scan { .. } => 2,
            TestKind::Functional { .. } => 1,
            TestKind::Bist { .. } => 1,
        }
    }

    /// Test time in tester cycles with `pins` allocated data pins.
    ///
    /// # Panics
    ///
    /// Panics if `pins` is below [`min_pins`](Self::min_pins) for a task
    /// kind that needs pins.
    #[must_use]
    pub fn time(&self, pins: usize) -> u64 {
        match &self.kind {
            TestKind::Scan {
                patterns,
                internal_chains,
                inputs,
                outputs,
                soft,
            } => {
                assert!(pins >= 2, "scan task needs at least one TAM wire");
                let width = pins / 2;
                let plan = if *soft {
                    balance_soft(internal_chains.iter().sum(), *inputs, *outputs, width)
                } else {
                    balance_fixed(internal_chains, *inputs, *outputs, width)
                };
                plan.test_time(*patterns)
            }
            TestKind::Functional { patterns, pi, po } => {
                assert!(pins > 0, "functional task needs pins");
                let per = ((pi + po) as u64).div_ceil(pins as u64).max(1);
                patterns.saturating_mul(per)
            }
            TestKind::Bist { cycles } => *cycles,
        }
    }

    /// Shortest achievable time (at max pins).
    #[must_use]
    pub fn best_time(&self) -> u64 {
        self.time(self.max_pins().max(self.min_pins()))
    }
}

fn default_controls(core: &str) -> Vec<ControlSignal> {
    vec![
        ControlSignal::new(core, "ck", ControlClass::Clock { freq_mhz: 100 }),
        ControlSignal::new(core, "rst", ControlClass::Reset),
        ControlSignal::new(core, "se", ControlClass::ScanEnable),
        ControlSignal::new(core, "te", ControlClass::TestEnable),
    ]
}

/// Chip-level scheduling configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipConfig {
    /// Test-usable pin budget.
    pub budget: PinBudget,
    /// Pins permanently taken by the global test interface (`tck`,
    /// `trst_n`, `test_mode`, `next_session`).
    pub global_pins: usize,
    /// Session power cap (sum of active task powers).
    pub power_limit: f64,
    /// Maximum number of sessions the controller supports.
    pub max_sessions: usize,
    /// Control sharing available to the session-based architecture
    /// (session-scoped TEs via the controller).
    pub session_share: SharePolicy,
    /// Control sharing available to the non-session baseline (no session
    /// counter: test enables stay per-core and every core's controls
    /// must be pinned for the whole test).
    pub static_share: SharePolicy,
}

impl Default for ChipConfig {
    /// A DSC-like operating point: the pin budget sits just above what the
    /// largest functional test needs when controls are session-scoped, and
    /// just below it when every core's controls are statically pinned —
    /// the regime in which the paper's observation bites.
    fn default() -> Self {
        ChipConfig {
            budget: PinBudget::with_reserved(285, 2),
            global_pins: 4,
            power_limit: 2.2,
            max_sessions: 4,
            session_share: SharePolicy::dsc(4),
            static_share: SharePolicy {
                te_via_controller: false,
                ..SharePolicy::dsc(1)
            },
        }
    }
}

/// A DSC-like task set (Table 1 cores plus a calibrated BIST load) used by
/// unit tests; the exact calibrated instance for the paper's experiment
/// lives in `steac-dsc`.
///
/// Powers reflect the usual ordering: at-speed functional tests and BIST
/// are the hungriest, slow-clock scan the tamest.
#[must_use]
pub fn dsc_like_tasks() -> Vec<TestTask> {
    vec![
        TestTask::scan("usb", 716, &[1629, 78, 293, 45], 221, 104, false).with_power(1.0),
        TestTask::scan("tv", 229, &[577, 576], 25, 40, false).with_power(0.4),
        TestTask::functional("tv", 202_673, 25, 40).with_power(1.2),
        TestTask::functional("jpeg", 235_696, 165, 104).with_power(1.4),
        TestTask::bist("bank0", 1_300_000).with_power(0.9),
        TestTask::bist("bank1", 1_300_000).with_power(0.9),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_time_decreases_with_width_for_soft_cores() {
        let t = TestTask::scan("x", 100, &[1000], 50, 50, true);
        let narrow = t.time(2);
        let wide = t.time(8);
        assert!(wide < narrow, "{wide} !< {narrow}");
    }

    #[test]
    fn scan_time_matches_wrapper_model() {
        let t = TestTask::scan("x", 5, &[10], 2, 3, false);
        // Width 1: si=12, so=13 -> (1+13)*5+12 = 82 (see wrapper tests).
        assert_eq!(t.time(2), 82);
    }

    #[test]
    fn functional_time_scales_with_pin_multiplexing() {
        let t = TestTask::functional("jpeg", 1000, 165, 104);
        // 269 pins through 100 -> 3 cycles per pattern.
        assert_eq!(t.time(100), 3000);
        // Full pins -> 1 cycle per pattern.
        assert_eq!(t.time(269), 1000);
    }

    #[test]
    fn bist_time_is_pin_independent() {
        let t = TestTask::bist("b", 42);
        assert_eq!(t.time(0), 42);
        assert_eq!(t.min_pins(), 0);
        assert_eq!(t.fixed_pins, 7, "Fig. 2 interface is 7 signals");
    }

    #[test]
    fn max_pins_bounds_are_consistent() {
        for t in dsc_like_tasks() {
            assert!(t.max_pins() >= t.min_pins(), "{}", t.name);
            let _ = t.best_time();
        }
    }

    #[test]
    #[should_panic(expected = "at least one TAM wire")]
    fn scan_with_zero_pins_panics() {
        let t = TestTask::scan("x", 1, &[1], 1, 1, false);
        let _ = t.time(0);
    }
}
