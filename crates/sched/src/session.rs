//! The session-based scheduler.
//!
//! Tests are partitioned into sessions executed back-to-back; within a
//! session tests run concurrently on disjoint pin allocations. Control
//! IOs are *session-scoped*: only the active cores' control signals
//! occupy pins (shared per [`ChipConfig::session_share`]), so a session
//! with few cores enjoys a wide TAM — the mechanism behind the paper's
//! "session-based approach has the shortest total test time".
//!
//! Small instances (≤ [`EXHAUSTIVE_LIMIT`] tasks) are solved by exhaustive
//! set-partition search; larger instances use greedy seeding plus a
//! move/swap local search.

use crate::alloc::{allocate_session, Allocation};
use crate::task::{ChipConfig, TestTask};
use std::fmt;
use steac_tam::{share_controls, ControlSignal};

/// Exhaustive partition search is used up to this many tasks.
pub const EXHAUSTIVE_LIMIT: usize = 9;

/// Why no schedule exists for a task set under a configuration.
///
/// Infeasibility used to be reported in-band (an empty schedule with
/// `total_cycles == u64::MAX`), which any caller summing totals over a
/// corpus would silently add up; it is now a typed error.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ScheduleError {
    /// These tasks (indices into the input slice) cannot run even in a
    /// session of their own: their minimum pin needs or power exceed
    /// the chip budget.
    Infeasible {
        /// Indices of the tasks that do not fit alone.
        tasks: Vec<usize>,
    },
    /// Every task fits in a session alone, but no partition into at
    /// most `max_sessions` sessions satisfies the pin and power
    /// constraints (within the search budget).
    NoPartition {
        /// The session budget the search ran under.
        max_sessions: usize,
    },
    /// Non-session static width split: the minimum widths of all tasks
    /// together exceed the static data-pin budget.
    StaticBudget {
        /// Data pins the minimum allocations need.
        needed: usize,
        /// Data pins available after static control allocation.
        available: usize,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::Infeasible { tasks } => {
                write!(
                    f,
                    "task(s) {tasks:?} cannot run even in a session of their own"
                )
            }
            ScheduleError::NoPartition { max_sessions } => write!(
                f,
                "no feasible partition into at most {max_sessions} session(s)"
            ),
            ScheduleError::StaticBudget { needed, available } => write!(
                f,
                "static width split needs {needed} data pins but only {available} are available"
            ),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// Which partition search [`schedule_sessions_with`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Exhaustive up to [`EXHAUSTIVE_LIMIT`] tasks, greedy + local
    /// search beyond — what [`schedule_sessions`] does.
    #[default]
    Auto,
    /// Exhaustive set-partition search regardless of size. Optimal, but
    /// exponential: callers (differential tests, mostly) must keep the
    /// instance small.
    Exhaustive,
    /// Greedy seeding plus move-based local search regardless of size.
    Greedy,
}

/// One task inside a scheduled session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledTask {
    /// Index into the input task slice.
    pub task_index: usize,
    /// Data pins allocated.
    pub pins: usize,
    /// Resulting test time in cycles.
    pub cycles: u64,
}

/// A scheduled session.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledSession {
    /// Member tasks with allocations.
    pub tasks: Vec<ScheduledTask>,
    /// Control pins occupied during the session (after sharing).
    pub control_pins: usize,
    /// Data pins available during the session.
    pub data_pins_available: usize,
    /// Session makespan in cycles.
    pub makespan: u64,
    /// Session power (sum of member powers).
    pub power: f64,
}

/// A complete session-based schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSchedule {
    /// Sessions in execution order (longest first, matching the DSC
    /// bring-up order).
    pub sessions: Vec<ScheduledSession>,
    /// Total test time: the sum of session makespans.
    pub total_cycles: u64,
}

impl SessionSchedule {
    fn from_sessions(mut sessions: Vec<ScheduledSession>) -> Self {
        sessions.sort_by_key(|s| std::cmp::Reverse(s.makespan));
        let total_cycles = sessions
            .iter()
            .fold(0u64, |acc, s| acc.saturating_add(s.makespan));
        SessionSchedule {
            sessions,
            total_cycles,
        }
    }
}

/// Evaluates one session (a set of task indices): control sharing, pin
/// budget, power cap, allocation. `None` if infeasible.
fn eval_session(
    block: &[usize],
    tasks: &[TestTask],
    config: &ChipConfig,
) -> Option<ScheduledSession> {
    let members: Vec<&TestTask> = block.iter().map(|&i| &tasks[i]).collect();
    let power: f64 = members.iter().map(|t| t.power).sum();
    if power > config.power_limit + 1e-9 {
        return None;
    }
    let signals: Vec<ControlSignal> = members
        .iter()
        .flat_map(|t| t.controls.iter().cloned())
        .collect();
    let control_pins = share_controls(&signals, &config.session_share).shared_pins();
    let data_pins = config.budget.data_pins(config.global_pins + control_pins);
    let alloc: Allocation = allocate_session(&members, data_pins)?;
    Some(ScheduledSession {
        tasks: block
            .iter()
            .zip(alloc.pins.iter().zip(&alloc.times))
            .map(|(&task_index, (&pins, &cycles))| ScheduledTask {
                task_index,
                pins,
                cycles,
            })
            .collect(),
        control_pins,
        data_pins_available: data_pins,
        makespan: alloc.makespan(),
        power,
    })
}

/// Schedules `tasks` into at most `config.max_sessions` sessions,
/// minimising total test time under pin and power constraints.
///
/// An empty task set is a valid (empty) schedule with zero cycles.
///
/// # Errors
///
/// [`ScheduleError::Infeasible`] when some task cannot run even in a
/// session of its own; [`ScheduleError::NoPartition`] when every task
/// fits alone but no partition within `config.max_sessions` sessions
/// satisfies the constraints.
pub fn schedule_sessions(
    tasks: &[TestTask],
    config: &ChipConfig,
) -> Result<SessionSchedule, ScheduleError> {
    schedule_sessions_with(tasks, config, Strategy::Auto)
}

/// [`schedule_sessions`] with an explicit partition-search [`Strategy`].
///
/// The zoo's differential tests use this to run `Exhaustive` and
/// `Greedy` on the same instance and compare totals.
///
/// # Errors
///
/// Same contract as [`schedule_sessions`].
pub fn schedule_sessions_with(
    tasks: &[TestTask],
    config: &ChipConfig,
    strategy: Strategy,
) -> Result<SessionSchedule, ScheduleError> {
    if tasks.is_empty() {
        return Ok(SessionSchedule {
            sessions: vec![],
            total_cycles: 0,
        });
    }
    let best = match strategy {
        Strategy::Auto if tasks.len() <= EXHAUSTIVE_LIMIT => exhaustive(tasks, config),
        Strategy::Auto => greedy_local(tasks, config),
        Strategy::Exhaustive => exhaustive(tasks, config),
        Strategy::Greedy => greedy_local(tasks, config),
    };
    best.ok_or_else(|| diagnose_infeasibility(tasks, config))
}

/// Explains a failed partition search: names the tasks that do not fit
/// even alone, or blames the session budget when every task does.
fn diagnose_infeasibility(tasks: &[TestTask], config: &ChipConfig) -> ScheduleError {
    let lone: Vec<usize> = (0..tasks.len())
        .filter(|&i| eval_session(&[i], tasks, config).is_none())
        .collect();
    if lone.is_empty() {
        ScheduleError::NoPartition {
            max_sessions: config.max_sessions,
        }
    } else {
        ScheduleError::Infeasible { tasks: lone }
    }
}

fn exhaustive(tasks: &[TestTask], config: &ChipConfig) -> Option<SessionSchedule> {
    struct Ctx<'a> {
        tasks: &'a [TestTask],
        config: &'a ChipConfig,
        // (total, sessions). The total rides inside the Option rather
        // than starting from a `u64::MAX` sentinel: a real schedule
        // whose saturated total *equals* `u64::MAX` must still beat
        // "nothing found yet".
        best: Option<(u64, Vec<ScheduledSession>)>,
    }
    fn rec(ctx: &mut Ctx<'_>, i: usize, blocks: &mut Vec<Vec<usize>>) {
        if i == ctx.tasks.len() {
            let mut sessions = Vec::with_capacity(blocks.len());
            let mut total = 0u64;
            for b in blocks.iter() {
                match eval_session(b, ctx.tasks, ctx.config) {
                    Some(s) => {
                        total = total.saturating_add(s.makespan);
                        sessions.push(s);
                    }
                    None => return,
                }
            }
            if ctx.best.as_ref().is_none_or(|(t, _)| total < *t) {
                ctx.best = Some((total, sessions));
            }
            return;
        }
        for bi in 0..blocks.len() {
            blocks[bi].push(i);
            rec(ctx, i + 1, blocks);
            blocks[bi].pop();
        }
        if blocks.len() < ctx.config.max_sessions {
            blocks.push(vec![i]);
            rec(ctx, i + 1, blocks);
            blocks.pop();
        }
    }
    let mut ctx = Ctx {
        tasks,
        config,
        best: None,
    };
    let mut blocks: Vec<Vec<usize>> = Vec::new();
    rec(&mut ctx, 0, &mut blocks);
    ctx.best
        .map(|(_, sessions)| SessionSchedule::from_sessions(sessions))
}

fn greedy_local(tasks: &[TestTask], config: &ChipConfig) -> Option<SessionSchedule> {
    let mut blocks = seed_min_total(tasks, config).or_else(|| seed_backtracking(tasks, config))?;

    // Local search: single-task moves between blocks (including opening a
    // new block), first-improvement, bounded rounds.
    let mut cur_total = total_of(&blocks, tasks, config)?;
    for _round in 0..32 {
        let mut improved = false;
        'moves: for from in 0..blocks.len() {
            for pos in 0..blocks[from].len() {
                let ti = blocks[from][pos];
                for to in 0..=blocks.len() {
                    if to == from || (to == blocks.len() && blocks.len() >= config.max_sessions) {
                        continue;
                    }
                    let mut cand = blocks.clone();
                    cand[from].remove(pos);
                    if to == cand.len() {
                        cand.push(vec![ti]);
                    } else {
                        cand[to].push(ti);
                    }
                    cand.retain(|b| !b.is_empty());
                    if let Some(total) = total_of(&cand, tasks, config) {
                        if total < cur_total {
                            blocks = cand;
                            cur_total = total;
                            improved = true;
                            break 'moves;
                        }
                    }
                }
            }
        }
        if !improved {
            break;
        }
    }

    let sessions: Option<Vec<ScheduledSession>> = blocks
        .iter()
        .filter(|b| !b.is_empty())
        .map(|b| eval_session(b, tasks, config))
        .collect();
    sessions.map(SessionSchedule::from_sessions)
}

/// Myopic seeding: longest tasks first, each into the block whose
/// inclusion yields the smallest total; open a new block when
/// allowed/better. Fast and usually good, but can paint itself into a
/// corner on tightly power-packed instances.
fn seed_min_total(tasks: &[TestTask], config: &ChipConfig) -> Option<Vec<Vec<usize>>> {
    let mut order: Vec<usize> = (0..tasks.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(tasks[i].best_time()));
    let mut blocks: Vec<Vec<usize>> = Vec::new();
    for &ti in &order {
        let mut best: Option<(usize, u64)> = None; // (block idx or usize::MAX for new, total)
        for bi in 0..blocks.len() {
            blocks[bi].push(ti);
            if let Some(total) = total_of(&blocks, tasks, config) {
                if best.is_none_or(|(_, t)| total < t) {
                    best = Some((bi, total));
                }
            }
            blocks[bi].pop();
        }
        if blocks.len() < config.max_sessions {
            blocks.push(vec![ti]);
            if let Some(total) = total_of(&blocks, tasks, config) {
                if best.is_none_or(|(_, t)| total < t) {
                    best = Some((usize::MAX, total));
                }
            }
            blocks.pop();
        }
        match best {
            Some((usize::MAX, _)) => blocks.push(vec![ti]),
            Some((bi, _)) => blocks[bi].push(ti),
            None => return None, // stuck; caller falls back to backtracking
        }
    }
    Some(blocks)
}

/// Feasibility-only backtracking: tasks in descending power order, each
/// tried in every feasible block (or a new one), backtracking on dead
/// ends. Finds a feasible partition whenever one exists within the node
/// budget; quality is then recovered by local search.
fn seed_backtracking(tasks: &[TestTask], config: &ChipConfig) -> Option<Vec<Vec<usize>>> {
    let mut order: Vec<usize> = (0..tasks.len()).collect();
    order.sort_by(|&a, &b| {
        tasks[b]
            .power
            .partial_cmp(&tasks[a].power)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    const NODE_BUDGET: usize = 200_000;
    fn rec(
        pos: usize,
        order: &[usize],
        blocks: &mut Vec<Vec<usize>>,
        tasks: &[TestTask],
        config: &ChipConfig,
        nodes: &mut usize,
    ) -> bool {
        if pos == order.len() {
            return true;
        }
        if *nodes >= NODE_BUDGET {
            return false;
        }
        *nodes += 1;
        let ti = order[pos];
        for bi in 0..blocks.len() {
            blocks[bi].push(ti);
            if eval_session(&blocks[bi], tasks, config).is_some()
                && rec(pos + 1, order, blocks, tasks, config, nodes)
            {
                return true;
            }
            blocks[bi].pop();
        }
        if blocks.len() < config.max_sessions {
            blocks.push(vec![ti]);
            if eval_session(&blocks[blocks.len() - 1], tasks, config).is_some()
                && rec(pos + 1, order, blocks, tasks, config, nodes)
            {
                return true;
            }
            blocks.pop();
        }
        false
    }
    let mut blocks: Vec<Vec<usize>> = Vec::new();
    let mut nodes = 0usize;
    rec(0, &order, &mut blocks, tasks, config, &mut nodes).then_some(blocks)
}

fn total_of(blocks: &[Vec<usize>], tasks: &[TestTask], config: &ChipConfig) -> Option<u64> {
    let mut total = 0u64;
    for b in blocks {
        if b.is_empty() {
            continue;
        }
        total = total.saturating_add(eval_session(b, tasks, config)?.makespan);
    }
    Some(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{dsc_like_tasks, TestKind};

    #[test]
    fn empty_input_is_empty_schedule() {
        let s = schedule_sessions(&[], &ChipConfig::default()).expect("empty is feasible");
        assert_eq!(s.total_cycles, 0);
        assert!(s.sessions.is_empty());
    }

    #[test]
    fn single_task_single_session() {
        let tasks = vec![TestTask::bist("b", 1000)];
        let s = schedule_sessions(&tasks, &ChipConfig::default()).expect("feasible");
        assert_eq!(s.sessions.len(), 1);
        assert_eq!(s.total_cycles, 1000);
    }

    #[test]
    fn all_tasks_scheduled_exactly_once() {
        let tasks = dsc_like_tasks();
        let s = schedule_sessions(&tasks, &ChipConfig::default()).expect("feasible");
        let mut seen: Vec<usize> = s
            .sessions
            .iter()
            .flat_map(|sess| sess.tasks.iter().map(|t| t.task_index))
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..tasks.len()).collect::<Vec<_>>());
    }

    #[test]
    fn constraints_hold_in_every_session() {
        let tasks = dsc_like_tasks();
        let config = ChipConfig::default();
        let s = schedule_sessions(&tasks, &config).expect("feasible");
        for sess in &s.sessions {
            assert!(sess.power <= config.power_limit + 1e-9);
            let used: usize = sess.tasks.iter().map(|t| t.pins).sum();
            assert!(
                used <= sess.data_pins_available,
                "used {used} > avail {}",
                sess.data_pins_available
            );
            let max = sess.tasks.iter().map(|t| t.cycles).max().unwrap();
            assert_eq!(sess.makespan, max);
        }
        let sum: u64 = s.sessions.iter().map(|s| s.makespan).sum();
        assert_eq!(s.total_cycles, sum);
    }

    #[test]
    fn respects_max_sessions() {
        // Regression: the DSC set draws 5.8 power total, so two
        // 2.2-capped sessions can never hold it — the sentinel-era
        // version of this test "passed" on the empty infeasible
        // schedule (0 sessions <= 2). The typed result makes the
        // infeasibility visible; three sessions are the real floor.
        let tasks = dsc_like_tasks();
        let config = ChipConfig {
            max_sessions: 2,
            ..ChipConfig::default()
        };
        let err = schedule_sessions(&tasks, &config).expect_err("5.8 power cannot fit 2 x 2.2");
        assert_eq!(err, ScheduleError::NoPartition { max_sessions: 2 });

        let config = ChipConfig {
            max_sessions: 3,
            ..ChipConfig::default()
        };
        let s = schedule_sessions(&tasks, &config).expect("feasible in 3 sessions");
        assert!((1..=3).contains(&s.sessions.len()));
    }

    #[test]
    fn power_cap_forces_serialisation() {
        // Two power-hungry tasks cannot share a session.
        let tasks = vec![
            TestTask::bist("a", 100).with_power(2.0),
            TestTask::bist("b", 100).with_power(2.0),
        ];
        let config = ChipConfig {
            power_limit: 3.0,
            ..ChipConfig::default()
        };
        let s = schedule_sessions(&tasks, &config).expect("feasible");
        assert_eq!(s.sessions.len(), 2);
        assert_eq!(s.total_cycles, 200);
    }

    #[test]
    fn parallelism_helps_when_pins_allow() {
        // Two small BIST banks share the interface: parallel in one
        // session halves the time.
        let tasks = vec![TestTask::bist("a", 500), TestTask::bist("b", 500)];
        let s = schedule_sessions(&tasks, &ChipConfig::default()).expect("feasible");
        assert_eq!(s.sessions.len(), 1);
        assert_eq!(s.total_cycles, 500);
    }

    #[test]
    fn overpowered_task_is_a_typed_infeasible_error() {
        // Task 1 alone exceeds the power cap: the old code reported an
        // empty schedule with `total_cycles == u64::MAX`; now the error
        // names the offender.
        let tasks = vec![
            TestTask::bist("ok", 100).with_power(1.0),
            TestTask::bist("hot", 100).with_power(9.0),
        ];
        let config = ChipConfig {
            power_limit: 2.0,
            ..ChipConfig::default()
        };
        let err = schedule_sessions(&tasks, &config).unwrap_err();
        assert_eq!(err, ScheduleError::Infeasible { tasks: vec![1] });
        assert!(err.to_string().contains("[1]"), "{err}");
    }

    #[test]
    fn session_budget_too_small_is_no_partition() {
        // Three tasks that each fit alone but pairwise exceed the power
        // cap need three sessions; cap the budget at two.
        let tasks = vec![
            TestTask::bist("a", 100).with_power(1.5),
            TestTask::bist("b", 100).with_power(1.5),
            TestTask::bist("c", 100).with_power(1.5),
        ];
        let config = ChipConfig {
            power_limit: 2.0,
            max_sessions: 2,
            ..ChipConfig::default()
        };
        let err = schedule_sessions(&tasks, &config).unwrap_err();
        assert_eq!(err, ScheduleError::NoPartition { max_sessions: 2 });
    }

    #[test]
    fn explicit_strategies_agree_on_small_instances() {
        let tasks = dsc_like_tasks();
        let config = ChipConfig::default();
        let exact =
            schedule_sessions_with(&tasks, &config, Strategy::Exhaustive).expect("feasible");
        let greedy = schedule_sessions_with(&tasks, &config, Strategy::Greedy).expect("feasible");
        assert!(exact.total_cycles <= greedy.total_cycles);
    }

    #[test]
    fn totals_saturate_instead_of_overflowing() {
        // Two near-max BIST sessions (forced apart by power) must sum
        // with saturation, not wrap.
        let tasks = vec![
            TestTask::bist("a", u64::MAX - 1).with_power(2.0),
            TestTask::bist("b", u64::MAX - 1).with_power(2.0),
        ];
        let config = ChipConfig {
            power_limit: 3.0,
            ..ChipConfig::default()
        };
        let s = schedule_sessions(&tasks, &config).expect("feasible");
        assert_eq!(s.sessions.len(), 2);
        assert_eq!(s.total_cycles, u64::MAX);
    }

    #[test]
    fn greedy_path_matches_exhaustive_on_moderate_instance() {
        // 10 tasks forces the greedy path; compare against exhaustive on
        // the same instance with a raised limit via direct call.
        let mut tasks = dsc_like_tasks();
        tasks.push(TestTask::bist("c", 300_000));
        tasks.push(TestTask::bist("d", 250_000));
        tasks.push(TestTask::functional("glue", 10_000, 30, 30));
        tasks.push(TestTask::bist("e", 50_000));
        assert_eq!(tasks.len(), 10);
        let config = ChipConfig::default();
        let greedy = greedy_local(&tasks, &config).expect("feasible");
        let exact = exhaustive(&tasks, &config).expect("feasible");
        assert!(
            greedy.total_cycles <= exact.total_cycles.saturating_mul(12) / 10,
            "greedy {} much worse than optimal {}",
            greedy.total_cycles,
            exact.total_cycles
        );
        assert!(exact.total_cycles <= greedy.total_cycles);
    }

    #[test]
    fn scan_tasks_get_even_pin_counts() {
        let tasks = dsc_like_tasks();
        let s = schedule_sessions(&tasks, &ChipConfig::default()).expect("feasible");
        for sess in &s.sessions {
            for st in &sess.tasks {
                if matches!(tasks[st.task_index].kind, TestKind::Scan { .. }) {
                    assert_eq!(st.pins % 2, 0, "TAM wires come in si/so pairs");
                }
            }
        }
    }
}
