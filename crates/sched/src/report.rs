//! Schedule rendering: tables and text Gantt charts for reports,
//! examples and the experiment harness.

use crate::nonsession::NonSessionSchedule;
use crate::session::SessionSchedule;
use crate::task::TestTask;
use std::fmt::Write as _;

/// Renders a session schedule as a table.
#[must_use]
pub fn render_sessions(s: &SessionSchedule, tasks: &[TestTask]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "session-based schedule: {} sessions, {} cycles total",
        s.sessions.len(),
        s.total_cycles
    );
    for (i, sess) in s.sessions.iter().enumerate() {
        let _ = writeln!(
            out,
            "  session {i}: makespan {:>9} cycles | control {} pins | data {} pins | power {:.1}",
            sess.makespan, sess.control_pins, sess.data_pins_available, sess.power
        );
        for t in &sess.tasks {
            let _ = writeln!(
                out,
                "    {:<14} {:>9} cycles on {:>3} pins",
                tasks[t.task_index].name, t.cycles, t.pins
            );
        }
    }
    out
}

/// Renders a non-session schedule as a table plus a Gantt chart.
#[must_use]
pub fn render_nonsession(s: &NonSessionSchedule, tasks: &[TestTask]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "non-session schedule: makespan {} cycles (control {} pins, data {} pins)",
        s.makespan, s.control_pins, s.data_pins_available
    );
    for p in &s.placements {
        let _ = writeln!(
            out,
            "  {:<14} [{:>9}, {:>9}) on {:>3} pins",
            tasks[p.task_index].name,
            p.start,
            p.end(),
            p.pins
        );
    }
    out.push_str(&gantt(s, tasks, 60));
    out
}

/// A fixed-width text Gantt chart of a non-session schedule.
#[must_use]
pub fn gantt(s: &NonSessionSchedule, tasks: &[TestTask], columns: usize) -> String {
    if s.makespan == 0 || columns == 0 {
        return String::new();
    }
    let mut out = String::new();
    let scale = s.makespan as f64 / columns as f64;
    for p in &s.placements {
        let start_col = (p.start as f64 / scale).round() as usize;
        let end_col = ((p.end() as f64 / scale).round() as usize).clamp(start_col + 1, columns);
        let mut line = String::with_capacity(columns + 20);
        let _ = write!(line, "{:<14} |", tasks[p.task_index].name);
        for c in 0..columns {
            line.push(if c >= start_col && c < end_col {
                '#'
            } else {
                ' '
            });
        }
        line.push('|');
        let _ = writeln!(out, "{line}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{dsc_like_tasks, ChipConfig};
    use crate::{schedule_nonsession, schedule_sessions};

    #[test]
    fn session_report_lists_all_tasks() {
        let tasks = dsc_like_tasks();
        let s = schedule_sessions(&tasks, &ChipConfig::default()).expect("feasible");
        let text = render_sessions(&s, &tasks);
        for t in &tasks {
            assert!(text.contains(&t.name), "{} missing in:\n{text}", t.name);
        }
    }

    #[test]
    fn gantt_has_one_row_per_task() {
        let tasks = dsc_like_tasks();
        let s = schedule_nonsession(&tasks, &ChipConfig::default()).expect("feasible");
        let chart = gantt(&s, &tasks, 40);
        assert_eq!(chart.lines().count(), tasks.len());
        assert!(chart.contains('#'));
    }

    #[test]
    fn gantt_handles_degenerate_inputs() {
        let s = NonSessionSchedule {
            placements: vec![],
            makespan: 0,
            control_pins: 0,
            data_pins_available: 0,
        };
        assert!(gantt(&s, &[], 40).is_empty());
    }
}
