//! STEAC's Core Test Scheduler.
//!
//! The paper: *"Core Test Scheduler will schedule the core tests to reduce
//! the overall test time. The Scheduler partitions core tests into several
//! test sessions, and assigns the TAM wires to each core to meet the power
//! and IO resource constraints."* And the central observation of §3:
//! *"When the test IO resource constraint is considered, parallel testing
//! may not be better than serial testing. This is because more test
//! control IOs are needed for parallel testing, so fewer IO pins can be
//! used as the test data IOs (i.e., TAM IOs)."*
//!
//! This crate implements:
//!
//! * [`task`] — malleable test tasks (scan / functional / BIST) with
//!   width-dependent test-time models,
//! * [`alloc`] — water-filling pin allocation within a session,
//! * [`session`] — the session-based scheduler (exhaustive partition
//!   search for small instances, greedy + local search beyond) under pin
//!   and power constraints, with session-scoped control-IO sharing,
//! * [`nonsession`] — the non-session baseline (2-D strip packing with a
//!   static, whole-test control-IO allocation) and the pure-serial
//!   baseline,
//! * [`report`] — schedule rendering (tables and a text Gantt chart).
//!
//! # Example
//!
//! ```
//! use steac_sched::{ChipConfig, TestTask, schedule_sessions};
//!
//! let tasks = vec![
//!     TestTask::scan("usb", 716, &[1629, 78, 293, 45], 221, 104, false),
//!     TestTask::functional("jpeg", 235_696, 165, 104),
//!     TestTask::bist("sram_bank", 1_000_000),
//! ];
//! let config = ChipConfig::default();
//! let schedule = schedule_sessions(&tasks, &config).expect("feasible under defaults");
//! assert!(schedule.total_cycles > 0);
//! assert!(schedule.sessions.len() <= config.max_sessions);
//! ```
//!
//! Infeasibility is a typed error, not a sentinel:
//!
//! ```
//! use steac_sched::{ChipConfig, ScheduleError, TestTask, schedule_sessions};
//!
//! let hot = vec![TestTask::bist("hot", 100).with_power(9.0)];
//! let err = schedule_sessions(&hot, &ChipConfig::default()).unwrap_err();
//! assert_eq!(err, ScheduleError::Infeasible { tasks: vec![0] });
//! ```

pub mod alloc;
pub mod nonsession;
pub mod report;
pub mod session;
pub mod task;

pub use alloc::{allocate_session, min_pins_needed, Allocation};
pub use nonsession::{schedule_nonsession, schedule_serial, NonSessionSchedule, Placement};
pub use session::{
    schedule_sessions, schedule_sessions_with, ScheduleError, ScheduledSession, ScheduledTask,
    SessionSchedule, Strategy, EXHAUSTIVE_LIMIT,
};
pub use task::{ChipConfig, TestKind, TestTask};

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline experiment shape: on a DSC-like instance, the
    /// session-based schedule beats the non-session baseline once IO
    /// constraints bind (paper: 4,371,194 vs 4,713,935 cycles).
    #[test]
    fn session_based_beats_nonsession_on_dsc_like_instance() {
        let tasks = task::dsc_like_tasks();
        let config = ChipConfig::default();
        let s = schedule_sessions(&tasks, &config).expect("feasible");
        let ns = schedule_nonsession(&tasks, &config).expect("feasible");
        assert!(
            s.total_cycles < ns.makespan,
            "session {} >= non-session {}",
            s.total_cycles,
            ns.makespan
        );
    }
}
