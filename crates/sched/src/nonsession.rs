//! Baselines: non-session scheduling and pure-serial scheduling.
//!
//! A non-session architecture has neither a session controller nor a
//! session-reconfigured TAM multiplexer, which costs it twice:
//!
//! 1. **Static control IOs** — every core's control signals (and all
//!    shared interfaces) stay pinned for the whole test; test enables
//!    cannot be session-decoded.
//! 2. **Static TAM widths** — without the TAM mux, each core's wrapper
//!    terminals occupy *dedicated* chip pins, so the width split is fixed
//!    at design time across **all** cores, not per concurrent group.
//!
//! The ATE can still sequence tests in time (driving test enables), so
//! placement remains free subject to the power cap. This is the
//! architecture the paper compares against: its session-based schedule
//! (4,371,194 cycles) beat the non-session one (4,713,935 cycles) on the
//! DSC chip.

use crate::alloc::{allocate_session, min_pins_needed};
use crate::session::ScheduleError;
use crate::task::{ChipConfig, TestTask};
use steac_tam::{share_controls, ControlSignal};

/// A placed task in a non-session schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    /// Index into the input task slice.
    pub task_index: usize,
    /// Start cycle.
    pub start: u64,
    /// Duration in cycles.
    pub cycles: u64,
    /// Data pins statically dedicated to this task.
    pub pins: usize,
}

impl Placement {
    /// End cycle (exclusive); saturates instead of wrapping on
    /// zoo-scale cycle counts.
    #[must_use]
    pub fn end(&self) -> u64 {
        self.start.saturating_add(self.cycles)
    }
}

/// A non-session (statically pinned) schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct NonSessionSchedule {
    /// Task placements.
    pub placements: Vec<Placement>,
    /// Total test time.
    pub makespan: u64,
    /// Static control pins held for the whole test.
    pub control_pins: usize,
    /// Data pins available for the static width split.
    pub data_pins_available: usize,
}

/// Static pin accounting shared by both baselines: all control signals of
/// all tasks are pinned simultaneously. Shared data interfaces (pin
/// groups such as the BIST port) are charged by the allocator inside the
/// data budget, exactly as in the session path.
fn static_budget(tasks: &[TestTask], config: &ChipConfig) -> (usize, usize) {
    let signals: Vec<ControlSignal> = tasks
        .iter()
        .flat_map(|t| t.controls.iter().cloned())
        .collect();
    let control = share_controls(&signals, &config.static_share).shared_pins();
    let data = config.budget.data_pins(config.global_pins + control);
    (control, data)
}

/// Schedules the non-session baseline: static widths via water-filling
/// over the whole task set, then earliest-feasible placement (longest
/// first) under the power cap.
///
/// An empty task set is a valid (empty) schedule with zero makespan.
///
/// # Errors
///
/// [`ScheduleError::Infeasible`] when a task exceeds the power cap on
/// its own; [`ScheduleError::StaticBudget`] when the minimum widths of
/// all tasks together do not fit the static data budget.
pub fn schedule_nonsession(
    tasks: &[TestTask],
    config: &ChipConfig,
) -> Result<NonSessionSchedule, ScheduleError> {
    let (control_pins, data) = static_budget(tasks, config);
    let overpowered: Vec<usize> = (0..tasks.len())
        .filter(|&i| tasks[i].power > config.power_limit + 1e-9)
        .collect();
    if !overpowered.is_empty() {
        return Err(ScheduleError::Infeasible { tasks: overpowered });
    }
    let refs: Vec<&TestTask> = tasks.iter().collect();
    let Some(alloc) = allocate_session(&refs, data) else {
        return Err(ScheduleError::StaticBudget {
            needed: min_pins_needed(&refs),
            available: data,
        });
    };

    let mut order: Vec<usize> = (0..tasks.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(alloc.times[i]));

    let mut placed: Vec<Placement> = Vec::with_capacity(tasks.len());
    for &ti in &order {
        let cycles = alloc.times[ti];
        let power = tasks[ti].power;
        let mut candidates: Vec<u64> = vec![0];
        candidates.extend(placed.iter().map(Placement::end));
        candidates.sort_unstable();
        candidates.dedup();
        let start = candidates
            .into_iter()
            .find(|&s| power_fits(&placed, tasks, s, cycles, power, config))
            .expect("the end of the last task is always feasible");
        placed.push(Placement {
            task_index: ti,
            start,
            cycles,
            pins: alloc.pins[ti],
        });
    }
    // The empty-placement case (no tasks) yields a zero makespan
    // instead of panicking on `max()` of an empty iterator.
    let makespan = placed.iter().map(Placement::end).max().unwrap_or(0);
    Ok(NonSessionSchedule {
        placements: placed,
        makespan,
        control_pins,
        data_pins_available: data,
    })
}

fn power_fits(
    placed: &[Placement],
    tasks: &[TestTask],
    start: u64,
    cycles: u64,
    power: f64,
    config: &ChipConfig,
) -> bool {
    let end = start.saturating_add(cycles);
    let mut boundaries: Vec<u64> = vec![start];
    for p in placed {
        if p.start < end && p.end() > start {
            boundaries.push(p.start.max(start));
        }
    }
    for &t0 in &boundaries {
        let mut pw = power;
        for p in placed {
            if p.start <= t0 && p.end() > t0 {
                pw += tasks[p.task_index].power;
            }
        }
        if pw > config.power_limit + 1e-9 {
            return false;
        }
    }
    true
}

/// Pure-serial reference: one test at a time, each receiving every
/// available data pin (an idealised fully-reconfigurable serial tester),
/// under the same static control allocation.
///
/// # Errors
///
/// [`ScheduleError::Infeasible`] naming every task that cannot run even
/// alone — too wide for the data budget or over the power cap.
pub fn schedule_serial(
    tasks: &[TestTask],
    config: &ChipConfig,
) -> Result<NonSessionSchedule, ScheduleError> {
    let (control_pins, data) = static_budget(tasks, config);
    let lone: Vec<usize> = (0..tasks.len())
        .filter(|&i| data < tasks[i].min_pins() || tasks[i].power > config.power_limit + 1e-9)
        .collect();
    if !lone.is_empty() {
        return Err(ScheduleError::Infeasible { tasks: lone });
    }
    let mut placements = Vec::with_capacity(tasks.len());
    let mut clock = 0u64;
    for (i, t) in tasks.iter().enumerate() {
        let pins = t.max_pins().min(data).max(t.min_pins());
        let cycles = t.time(pins.max(1));
        placements.push(Placement {
            task_index: i,
            start: clock,
            cycles,
            pins,
        });
        clock = clock.saturating_add(cycles);
    }
    Ok(NonSessionSchedule {
        placements,
        makespan: clock,
        control_pins,
        data_pins_available: data,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::dsc_like_tasks;

    #[test]
    fn static_widths_fit_the_dedicated_budget() {
        let tasks = dsc_like_tasks();
        let config = ChipConfig::default();
        let s = schedule_nonsession(&tasks, &config).expect("feasible schedule expected");
        let total: usize = s.placements.iter().map(|p| p.pins).sum();
        assert!(
            total + 7 <= s.data_pins_available + 7,
            "static split {total} exceeds data budget {}",
            s.data_pins_available
        );
    }

    #[test]
    fn power_cap_respected_at_all_times() {
        let tasks = dsc_like_tasks();
        let config = ChipConfig::default();
        let s = schedule_nonsession(&tasks, &config).expect("feasible");
        for p in &s.placements {
            let t0 = p.start;
            let pw: f64 = s
                .placements
                .iter()
                .filter(|q| q.start <= t0 && q.end() > t0)
                .map(|q| tasks[q.task_index].power)
                .sum();
            assert!(pw <= config.power_limit + 1e-9, "power {pw} at {t0}");
        }
    }

    #[test]
    fn all_tasks_placed_once() {
        let tasks = dsc_like_tasks();
        let s = schedule_nonsession(&tasks, &ChipConfig::default()).expect("feasible");
        let mut seen: Vec<usize> = s.placements.iter().map(|p| p.task_index).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..tasks.len()).collect::<Vec<_>>());
    }

    #[test]
    fn static_control_exceeds_session_control() {
        // The whole point: the non-session baseline pins more controls.
        let tasks = dsc_like_tasks();
        let config = ChipConfig::default();
        let (ctl, _) = static_budget(&tasks, &config);
        let s = crate::session::schedule_sessions(&tasks, &config).expect("feasible");
        for sess in &s.sessions {
            assert!(
                sess.control_pins <= ctl,
                "session control {} > static {}",
                sess.control_pins,
                ctl
            );
        }
    }

    #[test]
    fn nonsession_beats_idealised_serial_here() {
        // With power room for overlap, packing beats pure serial even
        // though serial gets full width per test.
        let tasks = dsc_like_tasks();
        let config = ChipConfig::default();
        let ns = schedule_nonsession(&tasks, &config).expect("feasible");
        let serial = schedule_serial(&tasks, &config).expect("feasible");
        assert!(ns.makespan <= serial.makespan);
    }

    #[test]
    fn makespan_is_last_end() {
        let tasks = dsc_like_tasks();
        let s = schedule_nonsession(&tasks, &ChipConfig::default()).expect("feasible");
        let last = s.placements.iter().map(Placement::end).max().unwrap();
        assert_eq!(s.makespan, last);
    }

    #[test]
    fn empty_task_set_is_an_empty_schedule() {
        let s = schedule_nonsession(&[], &ChipConfig::default()).expect("empty is feasible");
        assert!(s.placements.is_empty());
        assert_eq!(s.makespan, 0);
        let s = schedule_serial(&[], &ChipConfig::default()).expect("empty is feasible");
        assert_eq!(s.makespan, 0);
    }

    #[test]
    fn overpowered_single_task_is_a_typed_error() {
        let tasks = vec![crate::task::TestTask::bist("b", 10).with_power(99.0)];
        let err = schedule_nonsession(&tasks, &ChipConfig::default()).unwrap_err();
        assert_eq!(err, ScheduleError::Infeasible { tasks: vec![0] });
        let err = schedule_serial(&tasks, &ChipConfig::default()).unwrap_err();
        assert_eq!(err, ScheduleError::Infeasible { tasks: vec![0] });
    }

    #[test]
    fn static_budget_overflow_is_a_typed_error() {
        // 60 functional tasks want 8 pins each statically: 480 > the
        // default data budget.
        let tasks: Vec<_> = (0..60)
            .map(|i| crate::task::TestTask::functional(&format!("f{i}"), 100, 16, 16))
            .collect();
        let err = schedule_nonsession(&tasks, &ChipConfig::default()).unwrap_err();
        match err {
            ScheduleError::StaticBudget { needed, available } => {
                assert!(needed > available, "{needed} <= {available}");
            }
            other => panic!("expected StaticBudget, got {other:?}"),
        }
    }

    #[test]
    fn placement_end_saturates() {
        let p = Placement {
            task_index: 0,
            start: u64::MAX - 5,
            cycles: 10,
            pins: 1,
        };
        assert_eq!(p.end(), u64::MAX);
    }
}
