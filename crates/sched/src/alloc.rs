//! Pin allocation within one test session (water-filling).
//!
//! Given the session's data-pin budget, every task first receives its
//! minimum allocation; remaining pins are then granted iteratively to the
//! current bottleneck task (the one defining the session makespan) until
//! it can no longer improve — the standard water-filling argument: only
//! shrinking the argmax shrinks the max.

use crate::task::TestTask;
use std::collections::BTreeSet;

/// Result of allocating pins to a set of concurrent tasks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allocation {
    /// Data pins granted per task (parallel to the input slice).
    pub pins: Vec<usize>,
    /// Resulting per-task times.
    pub times: Vec<u64>,
    /// Fixed pins charged for shared interfaces (counted once per group).
    pub fixed_pins: usize,
}

impl Allocation {
    /// Session makespan: the slowest task.
    #[must_use]
    pub fn makespan(&self) -> u64 {
        self.times.iter().copied().max().unwrap_or(0)
    }

    /// Total data pins consumed (allocated + fixed).
    #[must_use]
    pub fn total_pins(&self) -> usize {
        self.pins.iter().sum::<usize>() + self.fixed_pins
    }
}

/// Charges fixed pins, counting each pin group once.
fn fixed_pin_cost(tasks: &[&TestTask]) -> usize {
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    let mut cost = 0usize;
    for t in tasks {
        match &t.pin_group {
            Some(g) => {
                if seen.insert(g.as_str()) {
                    cost += t.fixed_pins;
                }
            }
            None => cost += t.fixed_pins,
        }
    }
    cost
}

/// Data pins the minimum allocations of `tasks` need to run
/// concurrently: per-task minimum widths plus shared-interface fixed
/// pins (each pin group counted once). [`allocate_session`] succeeds
/// exactly when this fits the budget.
#[must_use]
pub fn min_pins_needed(tasks: &[&TestTask]) -> usize {
    tasks.iter().map(|t| t.min_pins()).sum::<usize>() + fixed_pin_cost(tasks)
}

/// Allocates `data_pins` among `tasks` running concurrently.
///
/// Returns `None` if even the minimum allocations do not fit.
#[must_use]
pub fn allocate_session(tasks: &[&TestTask], data_pins: usize) -> Option<Allocation> {
    let fixed = fixed_pin_cost(tasks);
    let mut pins: Vec<usize> = tasks.iter().map(|t| t.min_pins()).collect();
    let used: usize = pins.iter().sum::<usize>() + fixed;
    if used > data_pins {
        return None;
    }
    let mut spare = data_pins - used;
    let mut times: Vec<u64> = tasks.iter().zip(&pins).map(|(t, &p)| t.time(p)).collect();

    // Water-filling, slowest task first. When the bottleneck saturates
    // (its staircase has no reachable improvement), spare pins flow to the
    // next-slowest improvable task: harmless for the session makespan and
    // required when the same allocation is reused as a *static* width
    // assignment by the non-session baseline.
    loop {
        let mut order: Vec<usize> = (0..tasks.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(times[i]));
        let mut granted = false;
        for &idx in &order {
            let step = tasks[idx].pin_step();
            if step == 0 || step > spare {
                continue;
            }
            // Find the next allocation at which this task strictly
            // improves.
            let mut extra = step;
            let mut improved = None;
            while pins[idx] + extra <= tasks[idx].max_pins() && extra <= spare {
                let t = tasks[idx].time(pins[idx] + extra);
                if t < times[idx] {
                    improved = Some((extra, t));
                    break;
                }
                extra += step;
            }
            if let Some((extra, t)) = improved {
                pins[idx] += extra;
                spare -= extra;
                times[idx] = t;
                granted = true;
                break;
            }
        }
        if !granted {
            break;
        }
    }

    Some(Allocation {
        pins,
        times,
        fixed_pins: fixed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TestTask;

    #[test]
    fn single_task_gets_as_much_as_it_can_use() {
        let t = TestTask::scan("x", 100, &[100, 100, 100, 100], 10, 10, false);
        let alloc = allocate_session(&[&t], 100).unwrap();
        assert!(alloc.pins[0] >= 8, "{alloc:?}");
        assert!(alloc.total_pins() <= 100);
    }

    #[test]
    fn infeasible_when_minimums_exceed_budget() {
        let a = TestTask::functional("a", 10, 50, 50);
        let b = TestTask::functional("b", 10, 50, 50);
        assert!(allocate_session(&[&a, &b], 10).is_none());
    }

    #[test]
    fn bottleneck_is_served_before_others() {
        // With pins for only one task to saturate, the slow task wins.
        let slow = TestTask::scan("slow", 1000, &[2000], 10, 10, true);
        let fast = TestTask::scan("fast", 10, &[20], 2, 2, true);
        let alloc = allocate_session(&[&slow, &fast], 10).unwrap();
        assert!(
            alloc.pins[0] > alloc.pins[1],
            "slow task should get more pins: {:?}",
            alloc.pins
        );
        // With room for both, spare pins also flow to the fast task.
        let roomy = allocate_session(&[&slow, &fast], 24).unwrap();
        assert!(roomy.pins[1] >= alloc.pins[1]);
        assert!(roomy.makespan() <= alloc.makespan());
    }

    #[test]
    fn shared_pin_group_charged_once() {
        let b1 = TestTask::bist("a", 100);
        let b2 = TestTask::bist("b", 200);
        let alloc = allocate_session(&[&b1, &b2], 10).unwrap();
        assert_eq!(alloc.fixed_pins, 7);
        assert_eq!(alloc.makespan(), 200);
    }

    #[test]
    fn makespan_is_max_of_times() {
        let a = TestTask::bist("a", 100);
        let f = TestTask::functional("f", 10, 8, 8);
        let alloc = allocate_session(&[&a, &f], 30).unwrap();
        assert_eq!(alloc.makespan(), alloc.times.iter().copied().max().unwrap());
    }

    #[test]
    fn allocation_never_exceeds_budget() {
        let tasks = crate::task::dsc_like_tasks();
        let refs: Vec<&TestTask> = tasks.iter().collect();
        for budget in [20, 40, 80, 160] {
            if let Some(a) = allocate_session(&refs, budget) {
                assert!(a.total_pins() <= budget, "budget {budget}: {a:?}");
            }
        }
    }
}
