//! Core → wrapper → chip pattern translation.
//!
//! The wrapper generator threads each TAM wire through `[input cells…]
//! [internal chains…] [output cells…]`; translation places core-level
//! stimulus/response bits at the corresponding flop positions and
//! re-serialises per the workspace scan convention (stream bit `k` ↔
//! chain flop `L-1-k`).

use crate::corelevel::ScanVector;
use crate::cycle::{CyclePattern, PinState};
use crate::PatternError;
use std::fmt;
use steac_sim::Logic;
use steac_wrapper::WrapperPlan;

/// A wrapper-level scan vector: one load/expect stream per wrapper chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WrapperVector {
    /// Shift-in stream per wrapper chain.
    pub loads: Vec<Vec<Logic>>,
    /// Expected shift-out stream per wrapper chain (`X` = masked).
    pub expects: Vec<Vec<Logic>>,
}

/// Translates a core-level scan vector onto the wrapper chains of
/// `plan`.
///
/// PI values fill the input cells (consumed in chain order, matching the
/// wrapper generator's assignment); internal chain loads land on their
/// `internal_indices` positions; expected POs fill the output cells.
/// Input-cell positions of the expect stream are masked (they capture
/// chip-side garbage during the capture pulse).
///
/// # Errors
///
/// Returns [`PatternError::Shape`] if the vector's chain count, chain
/// lengths or pin counts disagree with the plan.
pub fn scan_to_wrapper(v: &ScanVector, plan: &WrapperPlan) -> Result<WrapperVector, PatternError> {
    let plan_ins: usize = plan.chains.iter().map(|c| c.in_cells).sum();
    let plan_outs: usize = plan.chains.iter().map(|c| c.out_cells).sum();
    if v.pi.len() != plan_ins {
        return Err(PatternError::Shape {
            context: "PI values vs plan input cells",
            expected: plan_ins,
            got: v.pi.len(),
        });
    }
    if v.expect_po.len() != plan_outs {
        return Err(PatternError::Shape {
            context: "PO expects vs plan output cells",
            expected: plan_outs,
            got: v.expect_po.len(),
        });
    }
    let mut next_pi = 0usize;
    let mut next_po = 0usize;
    let mut loads = Vec::with_capacity(plan.chains.len());
    let mut expects = Vec::with_capacity(plan.chains.len());
    for chain in &plan.chains {
        let mut stim_flops: Vec<Logic> = Vec::with_capacity(chain.total_len());
        let mut exp_flops: Vec<Logic> = Vec::with_capacity(chain.total_len());
        // Input cells.
        for _ in 0..chain.in_cells {
            stim_flops.push(v.pi[next_pi]);
            exp_flops.push(Logic::X);
            next_pi += 1;
        }
        // Internal chains.
        for (pos, &idx) in chain.internal_indices.iter().enumerate() {
            let expected_len = chain.internal_lengths[pos];
            let load = v.loads.get(idx).ok_or(PatternError::Shape {
                context: "internal chain index vs core loads",
                expected: v.loads.len(),
                got: idx,
            })?;
            if load.len() != expected_len {
                return Err(PatternError::Shape {
                    context: "internal chain length",
                    expected: expected_len,
                    got: load.len(),
                });
            }
            let unload = &v.expect_unload[idx];
            if unload.len() != expected_len {
                return Err(PatternError::Shape {
                    context: "internal unload length",
                    expected: expected_len,
                    got: unload.len(),
                });
            }
            // Stream bit k of the core chain sits at flop L-1-k; in flop
            // order that is load[L-1-j] for flop j.
            for j in 0..expected_len {
                stim_flops.push(load[expected_len - 1 - j]);
                exp_flops.push(unload[expected_len - 1 - j]);
            }
        }
        // Output cells.
        for _ in 0..chain.out_cells {
            stim_flops.push(Logic::X);
            exp_flops.push(v.expect_po[next_po]);
            next_po += 1;
        }
        // Serialise: stream bit k corresponds to flop L-1-k.
        stim_flops.reverse();
        exp_flops.reverse();
        loads.push(stim_flops);
        expects.push(exp_flops);
    }
    Ok(WrapperVector { loads, expects })
}

/// Port names of a generated wrapper, as produced by
/// `steac_wrapper::gen::wrap_core`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WrapperPorts {
    /// `wsi[k]` pin names.
    pub wsi: Vec<String>,
    /// `wso[k]` pin names.
    pub wso: Vec<String>,
    /// Shift-enable pin.
    pub w_se: String,
    /// Capture-enable pin.
    pub w_capture: String,
    /// Update-enable pin.
    pub w_update: String,
    /// Intest mode pin.
    pub w_intest: String,
    /// Wrapper clock pin.
    pub wck: String,
}

impl WrapperPorts {
    /// Conventional names for a wrapper of `width` chains.
    #[must_use]
    pub fn conventional(width: usize) -> Self {
        WrapperPorts {
            wsi: (0..width).map(|k| format!("wsi[{k}]")).collect(),
            wso: (0..width).map(|k| format!("wso[{k}]")).collect(),
            w_se: "w_se".to_string(),
            w_capture: "w_capture".to_string(),
            w_update: "w_update".to_string(),
            w_intest: "w_intest".to_string(),
            wck: "wck".to_string(),
        }
    }
}

/// Expands wrapper-level scan vectors into a cycle-based pattern:
/// setup, then per vector *shift / update / capture*, with each unload
/// overlapped with the next load, and a final unload pass.
///
/// Cycle count is `1 + p·(L+2) + L` for `p` vectors and maximum chain
/// length `L` — the `(1 + max(si,so))·p + min(si,so)` wrapper model plus
/// one setup cycle and the 2-cycle update/capture overhead per vector
/// that a real 1500 wrapper needs.
#[must_use]
pub fn wrapper_vectors_to_cycles(vectors: &[WrapperVector], ports: &WrapperPorts) -> CyclePattern {
    let width = ports.wsi.len();
    let mut pins: Vec<String> = vec![
        ports.wck.clone(),
        ports.w_se.clone(),
        ports.w_capture.clone(),
        ports.w_update.clone(),
        ports.w_intest.clone(),
    ];
    pins.extend(ports.wsi.iter().cloned());
    pins.extend(ports.wso.iter().cloned());
    let mut p = CyclePattern::new(pins);
    let chain_len = vectors
        .iter()
        .flat_map(|v| v.loads.iter().map(Vec::len))
        .max()
        .unwrap_or(0);

    let mk_row = |se: PinState,
                  cap: PinState,
                  upd: PinState,
                  ck: PinState,
                  si: Vec<PinState>,
                  so: Vec<PinState>| {
        let mut row = vec![ck, se, cap, upd, PinState::Drive1];
        row.extend(si);
        row.extend(so);
        row
    };
    let idle_si = vec![PinState::DontCare; width];
    let idle_so = vec![PinState::DontCare; width];

    // Setup cycle: enter intest, everything quiet.
    p.push_cycle(mk_row(
        PinState::Drive0,
        PinState::Drive0,
        PinState::Drive0,
        PinState::Drive0,
        idle_si.clone(),
        idle_so.clone(),
    ))
    .expect("row width is constructed to match");

    // Strobe timing: the ATE compares at end-of-cycle, after the clock
    // pulse. Unload bit 0 is therefore observed on the *capture* cycle
    // (the captured value sits on `wso` right after the capture pulse),
    // and shift cycle `k` observes unload bit `k + 1`.
    let shift_phase = |p: &mut CyclePattern,
                       load: Option<&WrapperVector>,
                       unload: Option<&WrapperVector>| {
        for k in 0..chain_len {
            let si: Vec<PinState> = (0..width)
                .map(|c| match load {
                    Some(v) => PinState::from_drive(v.loads[c].get(k).copied().unwrap_or(Logic::X)),
                    None => PinState::DontCare,
                })
                .collect();
            let so: Vec<PinState> = (0..width)
                .map(|c| match unload {
                    Some(v) => {
                        PinState::from_expect(v.expects[c].get(k + 1).copied().unwrap_or(Logic::X))
                    }
                    None => PinState::DontCare,
                })
                .collect();
            p.push_cycle(mk_row(
                PinState::Drive1,
                PinState::Drive0,
                PinState::Drive0,
                PinState::Pulse,
                si,
                so,
            ))
            .expect("constructed row");
        }
    };

    for (i, v) in vectors.iter().enumerate() {
        let unload = if i > 0 { Some(&vectors[i - 1]) } else { None };
        shift_phase(&mut p, Some(v), unload);
        // Update (latch the stimulus into the functional side).
        p.push_cycle(mk_row(
            PinState::Drive0,
            PinState::Drive0,
            PinState::Drive1,
            PinState::Drive0,
            idle_si.clone(),
            idle_so.clone(),
        ))
        .expect("constructed row");
        // Capture; unload bit 0 of this vector is strobed here.
        let so_cap: Vec<PinState> = (0..width)
            .map(|c| PinState::from_expect(v.expects[c].first().copied().unwrap_or(Logic::X)))
            .collect();
        p.push_cycle(mk_row(
            PinState::Drive0,
            PinState::Drive1,
            PinState::Drive0,
            PinState::Pulse,
            idle_si.clone(),
            so_cap,
        ))
        .expect("constructed row");
    }
    // Final unload.
    if let Some(last) = vectors.last() {
        shift_phase(&mut p, None, Some(last));
    }
    p
}

/// One core's cycle stream within a chip-level session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionStream {
    /// Session index.
    pub session: usize,
    /// Core name.
    pub core: String,
    /// First TAM wire assigned to this core.
    pub tam_offset: usize,
    /// The wrapper-level cycle pattern.
    pub pattern: CyclePattern,
}

/// A chip-level pattern set: per-session streams with TAM pin mapping.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ChipPatternSet {
    /// `(session, merged streams)` in execution order.
    pub sessions: Vec<(usize, Vec<SessionStream>)>,
}

impl ChipPatternSet {
    /// Cycles of one session: the longest member stream.
    #[must_use]
    pub fn session_cycles(&self, session: usize) -> u64 {
        self.sessions
            .iter()
            .find(|(s, _)| *s == session)
            .map(|(_, streams)| {
                streams
                    .iter()
                    .map(|st| st.pattern.cycle_count())
                    .max()
                    .unwrap_or(0)
            })
            .unwrap_or(0)
    }

    /// Total chip test cycles: sessions run back-to-back.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.sessions
            .iter()
            .map(|(s, _)| self.session_cycles(*s))
            .sum()
    }
}

impl fmt::Display for ChipPatternSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "chip pattern set: {} cycles total", self.total_cycles())?;
        for (s, streams) in &self.sessions {
            writeln!(f, "  session {s}: {} cycles", self.session_cycles(*s))?;
            for st in streams {
                writeln!(
                    f,
                    "    {:<12} {:>9} cycles on TAM wires {}+",
                    st.core,
                    st.pattern.cycle_count(),
                    st.tam_offset
                )?;
            }
        }
        Ok(())
    }
}

/// Merges per-core wrapper streams into a chip-level set: renames
/// `wsi[k]`/`wso[k]` to `tam_in[offset+k]`/`tam_out[offset+k]` and
/// groups by session.
#[must_use]
pub fn merge_sessions(mut streams: Vec<SessionStream>) -> ChipPatternSet {
    for st in &mut streams {
        for pin in &mut st.pattern.pins {
            if let Some(rest) = pin.strip_prefix("wsi[") {
                if let Some(k) = rest.strip_suffix(']').and_then(|s| s.parse::<usize>().ok()) {
                    *pin = format!("tam_in[{}]", st.tam_offset + k);
                }
            } else if let Some(rest) = pin.strip_prefix("wso[") {
                if let Some(k) = rest.strip_suffix(']').and_then(|s| s.parse::<usize>().ok()) {
                    *pin = format!("tam_out[{}]", st.tam_offset + k);
                }
            }
        }
    }
    let mut sessions: Vec<(usize, Vec<SessionStream>)> = Vec::new();
    streams.sort_by_key(|s| s.session);
    for st in streams {
        match sessions.iter_mut().find(|(s, _)| *s == st.session) {
            Some((_, v)) => v.push(st),
            None => sessions.push((st.session, vec![st])),
        }
    }
    ChipPatternSet { sessions }
}

#[cfg(test)]
mod tests {
    use super::*;
    use steac_wrapper::chain::balance_fixed;

    #[test]
    fn scan_to_wrapper_places_bits_correctly() {
        // One chain: [in][int f0,f1][out], internal chain of 2.
        let plan = balance_fixed(&[2], 1, 1, 1);
        let mut v = ScanVector::shaped(&[2], 1, 1);
        use Logic::{One, Zero};
        v.pi = vec![One];
        v.loads[0] = vec![One, Zero]; // bit0 -> internal flop1, bit1 -> flop0
        v.expect_unload[0] = vec![Zero, One];
        v.expect_po = vec![One];
        let w = scan_to_wrapper(&v, &plan).unwrap();
        // Flop order: [in=1, f0=load[1]=0, f1=load[0]=1, out=X];
        // stream = reversed = [X, 1, 0, 1].
        assert_eq!(w.loads[0], vec![Logic::X, One, Zero, One]);
        // Expect flops: [X, unload[1]=1, unload[0]=0, po=1] reversed:
        assert_eq!(w.expects[0], vec![One, Zero, One, Logic::X]);
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let plan = balance_fixed(&[2], 1, 1, 1);
        let v = ScanVector::shaped(&[2], 3, 1); // wrong PI count
        assert!(matches!(
            scan_to_wrapper(&v, &plan),
            Err(PatternError::Shape { .. })
        ));
    }

    #[test]
    fn cycle_expansion_counts() {
        let plan = balance_fixed(&[2], 1, 1, 1);
        let v = ScanVector::shaped(&[2], 1, 1);
        let w = scan_to_wrapper(&v, &plan).unwrap();
        let ports = WrapperPorts::conventional(1);
        let p = wrapper_vectors_to_cycles(&[w.clone(), w], &ports);
        // 1 setup + 2*(4 shift + update + capture) + 4 final unload = 17.
        assert_eq!(p.cycle_count(), 1 + 2 * (4 + 2) + 4);
    }

    #[test]
    fn merge_renames_tam_pins_and_sums_sessions() {
        let mk = |session, core: &str, offset, cycles: usize| {
            let mut pat = CyclePattern::new(vec!["wsi[0]".to_string(), "wso[0]".to_string()]);
            for _ in 0..cycles {
                pat.push_cycle(vec![PinState::Drive0, PinState::DontCare])
                    .unwrap();
            }
            SessionStream {
                session,
                core: core.to_string(),
                tam_offset: offset,
                pattern: pat,
            }
        };
        let set = merge_sessions(vec![
            mk(0, "usb", 0, 10),
            mk(0, "tv", 12, 4),
            mk(1, "jpeg", 0, 7),
        ]);
        assert_eq!(set.session_cycles(0), 10);
        assert_eq!(set.session_cycles(1), 7);
        assert_eq!(set.total_cycles(), 17);
        let tv = &set.sessions[0].1[1];
        assert_eq!(tv.pattern.pins[0], "tam_in[12]");
        assert_eq!(tv.pattern.pins[1], "tam_out[12]");
    }
}
