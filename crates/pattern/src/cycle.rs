//! Cycle-based patterns and the ATE cycle player.
//!
//! The batch player treats every pattern chunk — one pattern per
//! simulation lane, [`PLAYBACK_LANE_GROUPS`]` * 64` patterns per chunk
//! by default — as an independent work unit over the shared
//! compiled program and hands the chunks to [`Exec::dispatch`] as an
//! [`steac_sim::ExecWork`]: the one [`apply_cycle_patterns_batch`]
//! entry point plays them inline (`Exec::serial()`), across cores
//! (`Exec::threads(..)`) or across `steac-worker` **processes**
//! (`Exec::processes(..)`) — in process mode the compiled program, the
//! lane-group width, pin bindings and force state ship once per worker
//! over the [`steac_sim::wire`] format and pattern chunks are the unit
//! payloads. The per-pattern [`MismatchReport`]s merge in pattern order
//! on every backend, so playback is bit-identical to a serial run at
//! every thread and worker count — and at every lane-group width,
//! because forces replicate per 64-lane group and padding lanes follow
//! lane 0.
//!
//! Real ATE flows never hold a full pattern set in memory — patterns
//! are translated and applied as they arrive — so next to the
//! materialized batch entry sits the **streaming player**:
//! [`stream_cycle_patterns`] pulls owned [`CyclePattern`]s from an
//! iterator (typically the receiving end of a bounded channel fed by a
//! generator thread), validates them incrementally against the shape
//! the first pattern fixed, groups them into lane-width chunks, and
//! plays them through [`steac_sim::Exec::dispatch_stream`] on the same
//! five backends. Reports reach the caller's sink strictly in pattern
//! order and are byte-identical to the materialized flow — chunk
//! boundaries are invisible because every verdict is per-pattern and
//! cycle indices are pattern-local — while peak memory is bounded by
//! the pipeline depth, never the set size. The streaming path encodes
//! the *same* job block as the materialized one, so a worker's
//! content-addressed program cache (and the remote fleet's
//! one-program-per-host guarantee) covers both flavours of the same
//! job.

use crate::PatternError;
use std::fmt;
use std::sync::{Arc, Mutex};
use steac_netlist::NetId;
use steac_sim::shard::{self, PoolError};
use steac_sim::{
    wire, Exec, ExecWork, Logic, PackedLogic, SimError, SimProgram, Simulator, StreamWork,
};

/// Per-pin state in one tester cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PinState {
    /// Drive logic 0.
    Drive0,
    /// Drive logic 1.
    Drive1,
    /// Release (high impedance).
    DriveZ,
    /// Don't care / keep previous.
    #[default]
    DontCare,
    /// Apply a full clock pulse (0 → 1 → 0) this cycle.
    Pulse,
    /// Compare for logic 0.
    ExpectL,
    /// Compare for logic 1.
    ExpectH,
}

impl PinState {
    /// STIL-style pattern character.
    #[must_use]
    pub fn to_char(self) -> char {
        match self {
            PinState::Drive0 => '0',
            PinState::Drive1 => '1',
            PinState::DriveZ => 'Z',
            PinState::DontCare => 'X',
            PinState::Pulse => 'P',
            PinState::ExpectL => 'L',
            PinState::ExpectH => 'H',
        }
    }

    /// Parses a pattern character (case-insensitive).
    #[must_use]
    pub fn from_char(c: char) -> Option<Self> {
        match c.to_ascii_uppercase() {
            '0' => Some(PinState::Drive0),
            '1' => Some(PinState::Drive1),
            'Z' => Some(PinState::DriveZ),
            'X' => Some(PinState::DontCare),
            'P' => Some(PinState::Pulse),
            'L' => Some(PinState::ExpectL),
            'H' => Some(PinState::ExpectH),
            _ => None,
        }
    }

    /// Drive value, if this state drives.
    #[must_use]
    pub fn drive(self) -> Option<Logic> {
        match self {
            PinState::Drive0 => Some(Logic::Zero),
            PinState::Drive1 => Some(Logic::One),
            PinState::DriveZ => Some(Logic::Z),
            _ => None,
        }
    }

    /// Expected value, if this state compares.
    #[must_use]
    pub fn expect(self) -> Option<Logic> {
        match self {
            PinState::ExpectL => Some(Logic::Zero),
            PinState::ExpectH => Some(Logic::One),
            _ => None,
        }
    }

    /// Converts a stimulus logic value into a drive state.
    #[must_use]
    pub fn from_drive(v: Logic) -> Self {
        match v {
            Logic::Zero => PinState::Drive0,
            Logic::One => PinState::Drive1,
            Logic::Z => PinState::DriveZ,
            Logic::X => PinState::DontCare,
        }
    }

    /// Converts an expected logic value into a compare state.
    #[must_use]
    pub fn from_expect(v: Logic) -> Self {
        match v {
            Logic::Zero => PinState::ExpectL,
            Logic::One => PinState::ExpectH,
            _ => PinState::DontCare,
        }
    }
}

impl fmt::Display for PinState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

/// A cycle-based pattern: a pin list and one row of [`PinState`]s per
/// tester cycle.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CyclePattern {
    /// Pin names, fixed for all cycles.
    pub pins: Vec<String>,
    /// Cycle rows; each row has `pins.len()` states.
    pub cycles: Vec<Vec<PinState>>,
}

impl CyclePattern {
    /// Creates an empty pattern over the given pins.
    #[must_use]
    pub fn new(pins: Vec<String>) -> Self {
        CyclePattern {
            pins,
            cycles: Vec::new(),
        }
    }

    /// Appends one cycle.
    ///
    /// # Errors
    ///
    /// Returns [`PatternError::Shape`] if the row width differs from the
    /// pin list.
    pub fn push_cycle(&mut self, row: Vec<PinState>) -> Result<(), PatternError> {
        if row.len() != self.pins.len() {
            return Err(PatternError::Shape {
                context: "cycle row",
                expected: self.pins.len(),
                got: row.len(),
            });
        }
        self.cycles.push(row);
        Ok(())
    }

    /// Index of a pin.
    #[must_use]
    pub fn pin_index(&self, name: &str) -> Option<usize> {
        self.pins.iter().position(|p| p == name)
    }

    /// Number of tester cycles.
    #[must_use]
    pub fn cycle_count(&self) -> u64 {
        self.cycles.len() as u64
    }

    /// Appends all cycles of `other` (pin lists must match).
    ///
    /// # Errors
    ///
    /// Returns [`PatternError::Shape`] on pin-list mismatch.
    pub fn append(&mut self, other: &CyclePattern) -> Result<(), PatternError> {
        if self.pins != other.pins {
            return Err(PatternError::Shape {
                context: "pattern concatenation",
                expected: self.pins.len(),
                got: other.pins.len(),
            });
        }
        self.cycles.extend(other.cycles.iter().cloned());
        Ok(())
    }
}

/// Result of playing a pattern against the simulator.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MismatchReport {
    /// `(cycle, pin, expected, observed)` for every failed compare.
    pub mismatches: Vec<(usize, String, char, char)>,
    /// Number of compares performed.
    pub compares: u64,
}

impl MismatchReport {
    /// `true` when every compare passed.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// Result of a batched playback run: one [`MismatchReport`] per
/// pattern, plus the dispatch bookkeeping for the run. Every
/// verdict-bearing field is backend-invariant; `process_fallbacks` is
/// nonzero only when a process backend fell back in-thread under
/// [`steac_sim::Fallback::InThread`] (the verdicts are unaffected, the
/// degradation is just recorded instead of silent).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BatchPlayback {
    /// One report per pattern, in batch order.
    pub reports: Vec<MismatchReport>,
    /// Times this run's process dispatch fell back to the in-thread
    /// pool (0 or 1; exactly this call's count, not a shared total).
    pub process_fallbacks: usize,
}

impl BatchPlayback {
    /// `true` when every compare of every pattern passed.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.reports.iter().all(MismatchReport::passed)
    }
}

/// Mismatch detail lines printed before the `(+N more)` tail.
const DISPLAYED_MISMATCHES: usize = 10;

impl fmt::Display for MismatchReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} compares, {} mismatches",
            self.compares,
            self.mismatches.len()
        )?;
        for (cyc, pin, exp, obs) in self.mismatches.iter().take(DISPLAYED_MISMATCHES) {
            write!(f, "\n  cycle {cyc}: {pin} expected {exp} observed {obs}")?;
        }
        if self.mismatches.len() > DISPLAYED_MISMATCHES {
            write!(
                f,
                "\n  (+{} more)",
                self.mismatches.len() - DISPLAYED_MISMATCHES
            )?;
        }
        Ok(())
    }
}

/// Plays a cycle pattern on the simulator, exactly as an ATE would:
/// drive states are applied, `P` pins get a full clock pulse after the
/// other pins settle, and `L`/`H` pins are compared at the end of the
/// cycle (before the next cycle's drives).
///
/// # Errors
///
/// Returns [`PatternError::UnknownPin`] for pins missing on the module
/// and propagates simulator errors.
pub fn apply_cycle_pattern(
    sim: &mut Simulator,
    pattern: &CyclePattern,
) -> Result<MismatchReport, PatternError> {
    let nets = resolve_pins(sim, &pattern.pins)?;
    let mut report = MismatchReport::default();
    for (ci, row) in pattern.cycles.iter().enumerate() {
        // Drive phase.
        let mut pulses = Vec::new();
        for (pi, state) in row.iter().enumerate() {
            if let Some(v) = state.drive() {
                sim.set(nets[pi], v);
            } else if *state == PinState::Pulse {
                sim.set(nets[pi], Logic::Zero);
                pulses.push(nets[pi]);
            }
        }
        sim.settle()?;
        // Clock phase.
        if !pulses.is_empty() {
            sim.clock_cycle_multi(&pulses)?;
        }
        // Compare phase. `observe` records all 64 lanes when the
        // simulator is grading faults (PPSFP), and returns lane 0 for
        // the scalar comparison here.
        for (pi, state) in row.iter().enumerate() {
            if let Some(expected) = state.expect() {
                report.compares += 1;
                let observed = sim.observe(nets[pi]);
                if observed.is_known() && observed != expected {
                    report.mismatches.push((
                        ci,
                        pattern.pins[pi].clone(),
                        PinState::from_expect(expected).to_char(),
                        observed.to_char(),
                    ));
                } else if !observed.is_known() {
                    // An unknown where a value is expected is a fail on
                    // real ATE too.
                    report.mismatches.push((
                        ci,
                        pattern.pins[pi].clone(),
                        PinState::from_expect(expected).to_char(),
                        observed.to_char(),
                    ));
                }
            }
        }
    }
    Ok(report)
}

/// Resolves pattern pin names to nets via the simulator's compiled
/// program.
fn resolve_pins(sim: &Simulator, pins: &[String]) -> Result<Vec<NetId>, PatternError> {
    pins.iter()
        .map(|name| {
            sim.program()
                .port_net(name)
                .ok_or_else(|| PatternError::UnknownPin { name: name.clone() })
        })
        .collect()
}

/// Plays one chunk of patterns — up to one per simulation lane of the
/// `N`-group executor — from the state `sim` is currently in. Returns
/// one report per pattern in chunk order.
fn play_chunk<const N: usize>(
    sim: &mut Simulator<N>,
    nets: &[NetId],
    pins: &[String],
    chunk: &[&CyclePattern],
) -> Result<Vec<MismatchReport>, PatternError> {
    let cycles = chunk.first().map_or(0, |p| p.cycles.len());
    play_cycles(sim, nets, pins, chunk.len(), cycles, |l, ci, pi| {
        chunk[l].cycles[ci][pi]
    })
}

/// The lane-parallel play core: `lanes` patterns of `cycles` cycles
/// each, with the per-(lane, cycle, pin) state supplied by `state` —
/// so the dispatcher plays straight out of borrowed [`CyclePattern`]s
/// while the worker plays out of one flat decode buffer, and neither
/// materializes the other's representation. Returns one report per
/// lane in lane order.
fn play_cycles<const N: usize>(
    sim: &mut Simulator<N>,
    nets: &[NetId],
    pins: &[String],
    lanes: usize,
    cycles: usize,
    state: impl Fn(usize, usize, usize) -> PinState,
) -> Result<Vec<MismatchReport>, PatternError> {
    use steac_sim::packed::{mask_any, mask_bit, mask_none, mask_set_bit};

    let width = Simulator::<N>::WIDTH;
    let mut reports: Vec<MismatchReport> = vec![MismatchReport::default(); lanes];
    for ci in 0..cycles {
        // Drive phase: build one packed word per pin; lanes that
        // don't drive this cycle keep their previous value.
        let mut pulses = Vec::new();
        for (pi, &net) in nets.iter().enumerate() {
            let pulse_lanes = (0..lanes)
                .filter(|&l| state(l, ci, pi) == PinState::Pulse)
                .count();
            if pulse_lanes != 0 && pulse_lanes != lanes {
                return Err(PatternError::Shape {
                    context: "batch pulse alignment",
                    expected: lanes,
                    got: pulse_lanes,
                });
            }
            if pulse_lanes == lanes {
                sim.set(net, Logic::Zero);
                pulses.push(net);
                continue;
            }
            let mut driven = PackedLogic::<N>::ALL_X;
            let mut drive_mask = mask_none::<N>();
            for l in 0..lanes {
                if let Some(v) = state(l, ci, pi).drive() {
                    driven.set_lane(l, v);
                    mask_set_bit(&mut drive_mask, l);
                }
            }
            if mask_any(&drive_mask) {
                // Lanes beyond the chunk follow lane 0 so spare lanes
                // never oscillate differently from real ones.
                if lanes < width && mask_bit(&drive_mask, 0) {
                    let v0 = driven.lane(0);
                    for l in lanes..width {
                        driven.set_lane(l, v0);
                        mask_set_bit(&mut drive_mask, l);
                    }
                }
                let merged = driven.select(sim.get_packed(net), drive_mask);
                sim.set_packed(net, merged);
            }
        }
        sim.settle()?;
        // Clock phase.
        if !pulses.is_empty() {
            sim.clock_cycle_multi(&pulses)?;
        }
        // Compare phase, per lane.
        for (pi, &net) in nets.iter().enumerate() {
            let packed = sim.get_packed(net);
            for (l, report) in reports.iter_mut().enumerate() {
                if let Some(expected) = state(l, ci, pi).expect() {
                    report.compares += 1;
                    let observed = packed.lane(l);
                    if !observed.is_known() || observed != expected {
                        report.mismatches.push((
                            ci,
                            pins[pi].clone(),
                            PinState::from_expect(expected).to_char(),
                            observed.to_char(),
                        ));
                    }
                }
            }
        }
    }
    Ok(reports)
}

/// The default lane-group width for cycle playback: 1 group = 64
/// lanes. Playback is settle-bound, not compare-bound, and benchmarks
/// (BENCH_6 `serial_playback`) show the narrow width beats
/// [`steac_sim::DEFAULT_LANE_GROUPS`] (256 lanes) by ~18% on the JPEG
/// workload — wide words only pay off when most lanes carry work
/// per instruction, which fault grading guarantees and playback does
/// not. Grading keeps [`steac_sim::DEFAULT_LANE_GROUPS`]; use
/// [`apply_cycle_patterns_batch_wide`] to pin a different width.
pub const PLAYBACK_LANE_GROUPS: usize = 1;

/// Plays cycle patterns one per simulation lane —
/// [`PLAYBACK_LANE_GROUPS`]` * 64` patterns per pass — and
/// returns a [`BatchPlayback`] with one [`MismatchReport`] per pattern —
/// the batched ATE playback path (a tester floor applying the same
/// timing program to hundreds of dies at once). Larger batches become
/// independent chunks dispatched on `exec` — inline, across cores or
/// across `steac-worker` processes; reports are byte-identical on every
/// backend and at every lane-group width
/// (see [`apply_cycle_patterns_batch_wide`]).
///
/// All patterns of a batch must share the *shape* that fixes the timing
/// program: the same pin list, the same cycle count, and `P` (pulse) on
/// the same pins in the same cycles — clock pulses are timeline events
/// common to all lanes. Drive values and compare positions may differ
/// freely per pattern.
///
/// Every chunk plays on a worker-local clone of `sim`, reset to the
/// all-`X` state first, so every pattern observes power-on semantics
/// (reset your patterns' preambles accordingly); forces applied to `sim`
/// (fault injection) carry into every clone — including across the wire
/// into worker processes. `sim` itself is not mutated.
///
/// # Errors
///
/// Returns [`PatternError::Shape`] when pin lists, cycle counts or pulse
/// positions disagree, [`PatternError::UnknownPin`] for pins missing on
/// the module, and propagates simulator errors (lowest-indexed failing
/// chunk, deterministically). Process-backend failures surface as
/// [`SimError::Worker`] wrapped in [`PatternError::Sim`] under
/// [`steac_sim::Fallback::Fail`], and are otherwise recomputed
/// in-thread (counted on the `Exec`).
pub fn apply_cycle_patterns_batch(
    exec: &Exec,
    sim: &Simulator,
    patterns: &[&CyclePattern],
) -> Result<BatchPlayback, PatternError> {
    apply_cycle_patterns_batch_wide(exec, sim, patterns, PLAYBACK_LANE_GROUPS)
}

/// [`apply_cycle_patterns_batch`] with an explicit lane-group width:
/// each work unit plays up to `64 * groups` patterns on one
/// `groups`-wide executor. Only the monomorphized widths in
/// [`steac_sim::SUPPORTED_LANE_GROUPS`] are accepted. Reports are
/// byte-identical across widths: chunk size only changes how the work
/// is cut, forces on `sim` replicate into every 64-lane group, and
/// padding lanes mirror lane 0.
///
/// # Errors
///
/// Everything [`apply_cycle_patterns_batch`] raises, plus
/// [`SimError::UnsupportedWidth`] (wrapped in [`PatternError::Sim`])
/// for widths with no compiled kernel.
pub fn apply_cycle_patterns_batch_wide(
    exec: &Exec,
    sim: &Simulator,
    patterns: &[&CyclePattern],
    groups: usize,
) -> Result<BatchPlayback, PatternError> {
    match groups {
        1 => batch_n::<1>(exec, sim, patterns),
        2 => batch_n::<2>(exec, sim, patterns),
        4 => batch_n::<4>(exec, sim, patterns),
        8 => batch_n::<8>(exec, sim, patterns),
        _ => Err(PatternError::Sim(SimError::UnsupportedWidth { groups })),
    }
}

fn batch_n<const N: usize>(
    exec: &Exec,
    sim: &Simulator,
    patterns: &[&CyclePattern],
) -> Result<BatchPlayback, PatternError> {
    let width = Simulator::<N>::WIDTH;
    let Some(first) = validate_batch(patterns, width)? else {
        return Ok(BatchPlayback::default());
    };
    let nets = resolve_pins(sim, &first.pins)?;
    // The dispatcher simulator is the narrow lane-0 view; its 64-lane
    // force state replicates into every group of the wide executors so
    // fault injection means the same thing at every width.
    let forces: Vec<(NetId, u64, PackedLogic<1>)> = sim
        .export_forces()
        .into_iter()
        .map(|(net, mask, values)| (net, mask[0], values))
        .collect();
    let work = PlaybackWork::<N> {
        sim,
        forces,
        pins: &first.pins,
        nets: &nets,
        chunks: patterns.chunks(width).collect(),
    };
    let dispatched = exec.dispatch(&work)?;
    Ok(BatchPlayback {
        process_fallbacks: dispatched.fallback_count(),
        reports: dispatched.units.into_iter().flatten().collect(),
    })
}

/// Bookkeeping of a streaming playback run — the reports themselves
/// were handed to the sink, one per pattern, in pattern order, as
/// chunks finished. The verdict-bearing stream is backend-invariant
/// and byte-identical to [`apply_cycle_patterns_batch`] on the same
/// patterns; only `process_fallbacks` reflects how the run went.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StreamPlayback {
    /// Patterns played (= reports delivered to the sink).
    pub patterns: usize,
    /// Shipped batches this run recomputed in-thread under
    /// [`steac_sim::Fallback::InThread`] (a streaming run ships many
    /// batches, so unlike [`BatchPlayback`] this can exceed 1).
    pub process_fallbacks: usize,
}

/// Plays cycle patterns **as they are produced**, without ever
/// materializing the set: the streaming sibling of
/// [`apply_cycle_patterns_batch`]. Patterns are pulled from `patterns`
/// (typically the receiving end of a bounded channel fed by a
/// generator thread), validated incrementally, grouped into lane-width
/// chunks, and dispatched through [`Exec::dispatch_stream`]; `sink`
/// receives one [`MismatchReport`] per pattern, **strictly in pattern
/// order**, byte-identical to what the materialized flow would have
/// put in [`BatchPlayback::reports`] — on every backend, at any chunk
/// size. Peak memory follows the pipeline depth (bounded windows of
/// owned patterns in flight), never the stream length.
///
/// The first pattern fixes the shape — pin list, cycle count, pulse
/// timeline — that the materialized validator enforces batch-wide;
/// every later pattern is checked against it as it is pulled, raising
/// the same typed [`PatternError::Shape`] values.
///
/// # Errors
///
/// Everything [`apply_cycle_patterns_batch`] raises, with streaming
/// delivery semantics: the sink has already received an in-order
/// prefix of the reports when an error surfaces (a mid-stream shape
/// violation truncates the stream at the offending pattern's chunk).
pub fn stream_cycle_patterns<I, S>(
    exec: &Exec,
    sim: &Simulator,
    patterns: I,
    sink: S,
) -> Result<StreamPlayback, PatternError>
where
    I: Iterator<Item = CyclePattern> + Send,
    S: FnMut(MismatchReport),
{
    stream_cycle_patterns_wide(exec, sim, patterns, PLAYBACK_LANE_GROUPS, usize::MAX, sink)
}

/// [`stream_cycle_patterns`] with an explicit lane-group width and
/// chunk size: each work unit plays up to `chunk` patterns (clamped to
/// the `64 * groups` lanes one pass holds) on one `groups`-wide
/// executor. Reports are byte-identical across chunk sizes and widths —
/// chunk boundaries only change how the stream is cut, never a
/// verdict — which `tests/exec_matrix.rs` and the proptests pin down.
///
/// # Errors
///
/// Everything [`stream_cycle_patterns`] raises, plus
/// [`SimError::UnsupportedWidth`] (wrapped in [`PatternError::Sim`])
/// for widths with no compiled kernel.
pub fn stream_cycle_patterns_wide<I, S>(
    exec: &Exec,
    sim: &Simulator,
    patterns: I,
    groups: usize,
    chunk: usize,
    sink: S,
) -> Result<StreamPlayback, PatternError>
where
    I: Iterator<Item = CyclePattern> + Send,
    S: FnMut(MismatchReport),
{
    match groups {
        1 => stream_n::<1, _, _>(exec, sim, patterns, chunk, sink),
        2 => stream_n::<2, _, _>(exec, sim, patterns, chunk, sink),
        4 => stream_n::<4, _, _>(exec, sim, patterns, chunk, sink),
        8 => stream_n::<8, _, _>(exec, sim, patterns, chunk, sink),
        _ => Err(PatternError::Sim(SimError::UnsupportedWidth { groups })),
    }
}

fn stream_n<const N: usize, I, S>(
    exec: &Exec,
    sim: &Simulator,
    mut patterns: I,
    chunk: usize,
    mut sink: S,
) -> Result<StreamPlayback, PatternError>
where
    I: Iterator<Item = CyclePattern> + Send,
    S: FnMut(MismatchReport),
{
    let width = Simulator::<N>::WIDTH;
    let chunk = chunk.clamp(1, width);
    // The first pattern fixes the shape every later one must share —
    // and names the pins, which the job block binds to nets once.
    let Some(first) = patterns.next() else {
        return Ok(StreamPlayback::default());
    };
    for row in &first.cycles {
        if row.len() != first.pins.len() {
            return Err(PatternError::Shape {
                context: "cycle row",
                expected: first.pins.len(),
                got: row.len(),
            });
        }
    }
    let pins = first.pins.clone();
    let cycles = first.cycles.len();
    let nets = resolve_pins(sim, &pins)?;
    // Same force export as the materialized path: the dispatcher
    // simulator's 64-lane force state replicates into every group.
    let forces: Vec<(NetId, u64, PackedLogic<1>)> = sim
        .export_forces()
        .into_iter()
        .map(|(net, mask, values)| (net, mask[0], values))
        .collect();
    let work = StreamPlaybackWork::<N> {
        sim,
        forces,
        pins: &pins,
        nets: &nets,
    };
    // A mid-stream shape violation cannot surface through the unit
    // iterator (units are infallible values), so the chunker records it
    // here and truncates the stream; checked after dispatch drains.
    let poisoned: Mutex<Option<PatternError>> = Mutex::new(None);
    let feed = ValidatedChunks {
        patterns,
        pins: &pins,
        cycles,
        chunk,
        pending: Some(first),
        poisoned: &poisoned,
        done: false,
    };
    let mut delivered = 0usize;
    let dispatched = exec.dispatch_stream(&work, feed, |reports: Vec<MismatchReport>| {
        for report in reports {
            sink(report);
            delivered += 1;
        }
    });
    // A dispatch error always precedes the truncation point, so it is
    // the lower-indexed failure and wins over a validation poison.
    let dispatched = dispatched?;
    if let Some(e) = poisoned.into_inner().expect("no panics hold the lock") {
        return Err(e);
    }
    Ok(StreamPlayback {
        patterns: delivered,
        process_fallbacks: dispatched.fallback_count(),
    })
}

/// The streaming chunker/validator: groups pulled patterns into
/// `chunk`-sized units, checking each against the shape the first
/// pattern fixed (same typed [`PatternError::Shape`] contexts as
/// [`validate_batch`]) and each chunk's pulse alignment — *before* any
/// simulation, exactly like the materialized validator. The first
/// violation poisons the shared cell and ends the stream.
struct ValidatedChunks<'a, I> {
    patterns: I,
    pins: &'a [String],
    cycles: usize,
    chunk: usize,
    pending: Option<CyclePattern>,
    poisoned: &'a Mutex<Option<PatternError>>,
    done: bool,
}

impl<I> ValidatedChunks<'_, I> {
    fn check(&self, p: &CyclePattern) -> Result<(), PatternError> {
        if p.pins != self.pins {
            return Err(PatternError::Shape {
                context: "batch pin list",
                expected: self.pins.len(),
                got: p.pins.len(),
            });
        }
        if p.cycles.len() != self.cycles {
            return Err(PatternError::Shape {
                context: "batch cycle count",
                expected: self.cycles,
                got: p.cycles.len(),
            });
        }
        for row in &p.cycles {
            if row.len() != p.pins.len() {
                return Err(PatternError::Shape {
                    context: "cycle row",
                    expected: p.pins.len(),
                    got: row.len(),
                });
            }
        }
        Ok(())
    }

    fn poison(&mut self, e: PatternError) {
        *self.poisoned.lock().expect("no panics hold the lock") = Some(e);
        self.done = true;
    }
}

impl<I: Iterator<Item = CyclePattern>> Iterator for ValidatedChunks<'_, I> {
    type Item = Vec<CyclePattern>;

    fn next(&mut self) -> Option<Vec<CyclePattern>> {
        if self.done {
            return None;
        }
        let mut out = Vec::with_capacity(self.chunk);
        if let Some(p) = self.pending.take() {
            out.push(p);
        }
        while out.len() < self.chunk {
            let Some(p) = self.patterns.next() else {
                self.done = true;
                break;
            };
            if let Err(e) = self.check(&p) {
                self.poison(e);
                break;
            }
            out.push(p);
        }
        if out.is_empty() {
            return None;
        }
        let refs: Vec<&CyclePattern> = out.iter().collect();
        if let Err(e) = check_pulse_alignment(&refs) {
            // The materialized validator rejects before playing; the
            // streaming one rejects the offending chunk whole.
            self.poison(e);
            return None;
        }
        Some(out)
    }
}

/// The [`StreamWork`] description of streaming playback: one unit per
/// owned pattern chunk, the *same* job block as [`PlaybackWork`] (so
/// the worker program cache and the fleet's one-program-per-host
/// guarantee cover both flavours), per-chunk [`MismatchReport`] lists
/// as unit results.
struct StreamPlaybackWork<'a, const N: usize> {
    sim: &'a Simulator,
    forces: Vec<(NetId, u64, PackedLogic<1>)>,
    pins: &'a [String],
    nets: &'a [NetId],
}

impl<const N: usize> StreamWork for StreamPlaybackWork<'_, N> {
    type Unit = Vec<CyclePattern>;
    type Output = Vec<MismatchReport>;
    type Error = PatternError;

    fn kind(&self) -> u16 {
        WIRE_KIND
    }

    fn encode_job(&self) -> Vec<u8> {
        encode_playback_job(
            self.sim.program(),
            N as u8,
            self.pins,
            self.nets,
            &self.forces,
        )
    }

    fn encode_unit(&self, unit: &Vec<CyclePattern>) -> Vec<u8> {
        let refs: Vec<&CyclePattern> = unit.iter().collect();
        encode_pattern_chunk(&refs)
    }

    fn run_unit_local(
        &self,
        unit: &Vec<CyclePattern>,
    ) -> Result<Vec<MismatchReport>, PatternError> {
        let mut wsim = Simulator::<N>::from_program(self.sim.program_arc().clone());
        wsim.import_forces_replicated(&self.forces);
        let refs: Vec<&CyclePattern> = unit.iter().collect();
        play_chunk(&mut wsim, self.nets, self.pins, &refs)
    }

    fn decode_result(
        &self,
        unit: &Vec<CyclePattern>,
        bytes: &[u8],
    ) -> Result<Vec<MismatchReport>, String> {
        let reports = decode_reports(bytes).map_err(|e| format!("result: {e}"))?;
        if reports.len() != unit.len() {
            return Err(format!(
                "result has {} reports for {} patterns",
                reports.len(),
                unit.len()
            ));
        }
        Ok(reports)
    }

    fn pool_error(&self, error: PoolError) -> PatternError {
        PatternError::Sim(SimError::from(error))
    }
}

/// Checks the batch shares the shape that fixes the timing program —
/// pin lists, cycle counts, row widths, per-chunk pulse alignment — and
/// returns the reference pattern. Both dispatch flavours validate here,
/// *before* any simulation, so a shape-invalid batch raises the same
/// typed [`PatternError::Shape`] whether it would have played in-thread
/// or shipped to worker processes (and the wire encoding can rely on
/// uniform row widths).
fn validate_batch<'a>(
    patterns: &[&'a CyclePattern],
    width: usize,
) -> Result<Option<&'a CyclePattern>, PatternError> {
    let Some(&first) = patterns.first() else {
        return Ok(None);
    };
    for p in patterns {
        if p.pins != first.pins {
            return Err(PatternError::Shape {
                context: "batch pin list",
                expected: first.pins.len(),
                got: p.pins.len(),
            });
        }
        if p.cycles.len() != first.cycles.len() {
            return Err(PatternError::Shape {
                context: "batch cycle count",
                expected: first.cycles.len(),
                got: p.cycles.len(),
            });
        }
        for row in &p.cycles {
            if row.len() != p.pins.len() {
                return Err(PatternError::Shape {
                    context: "cycle row",
                    expected: p.pins.len(),
                    got: row.len(),
                });
            }
        }
    }
    for chunk in patterns.chunks(width) {
        check_pulse_alignment(chunk)?;
    }
    Ok(Some(first))
}

/// The [`ExecWork`] description of batched playback: one unit per
/// `64 * N`-pattern chunk, a job block carrying the compiled program +
/// lane-group width + pin bindings + force state, and per-chunk
/// [`MismatchReport`] lists as unit results.
struct PlaybackWork<'a, const N: usize> {
    sim: &'a Simulator,
    forces: Vec<(NetId, u64, PackedLogic<1>)>,
    pins: &'a [String],
    nets: &'a [NetId],
    chunks: Vec<&'a [&'a CyclePattern]>,
}

impl<const N: usize> ExecWork for PlaybackWork<'_, N> {
    type Output = Vec<MismatchReport>;
    type Error = PatternError;

    fn kind(&self) -> u16 {
        WIRE_KIND
    }

    fn unit_count(&self) -> usize {
        self.chunks.len()
    }

    fn encode_job(&self) -> Vec<u8> {
        encode_playback_job(
            self.sim.program(),
            N as u8,
            self.pins,
            self.nets,
            &self.forces,
        )
    }

    fn encode_unit(&self, unit: usize) -> Vec<u8> {
        encode_pattern_chunk(self.chunks[unit])
    }

    fn run_unit_local(&self, unit: usize) -> Result<Vec<MismatchReport>, PatternError> {
        let mut wsim = Simulator::<N>::from_program(self.sim.program_arc().clone());
        wsim.import_forces_replicated(&self.forces);
        play_chunk(&mut wsim, self.nets, self.pins, self.chunks[unit])
    }

    fn decode_result(&self, unit: usize, bytes: &[u8]) -> Result<Vec<MismatchReport>, String> {
        let reports = decode_reports(bytes).map_err(|e| format!("result: {e}"))?;
        // One report per pattern, positionally: a miscounted result
        // would misattribute every later report, so it is rejected like
        // any other malformed worker result.
        if reports.len() != self.chunks[unit].len() {
            return Err(format!(
                "result has {} reports for {} patterns",
                reports.len(),
                self.chunks[unit].len()
            ));
        }
        Ok(reports)
    }

    fn pool_error(&self, error: PoolError) -> PatternError {
        PatternError::Sim(SimError::from(error))
    }
}

// ---------- wire codecs + worker-side job ----------

/// Work-unit kind the worker-side job registry routes to
/// [`open_wire_job`]: one playback chunk of up to `64 * groups`
/// patterns.
pub const WIRE_KIND: u16 = 2;

/// Job block: compiled program, lane-group width, pin bindings
/// (name + net) and the dispatcher simulator's 64-lane force state
/// (fault injection carries into every worker, replicated per lane
/// group, matching the in-thread semantics).
fn encode_playback_job(
    program: &SimProgram,
    groups: u8,
    pins: &[String],
    nets: &[NetId],
    forces: &[(NetId, u64, PackedLogic<1>)],
) -> Vec<u8> {
    let mut w = wire::WireWriter::new();
    w.put_block(&wire::encode_program(program));
    w.put_u8(groups);
    w.put_usize(pins.len());
    for (pin, net) in pins.iter().zip(nets) {
        w.put_str(pin);
        w.put_u32(net.0);
    }
    w.put_usize(forces.len());
    for (net, mask, values) in forces {
        w.put_u32(net.0);
        w.put_u64(*mask);
        w.put_u64(values.ones[0]);
        w.put_u64(values.unknowns[0]);
    }
    w.finish()
}

/// Unit payload: the cycle rows of up to one chunk's worth of patterns
/// (the pin list lives in the job; rows are STIL-style state characters).
fn encode_pattern_chunk(chunk: &[&CyclePattern]) -> Vec<u8> {
    let mut w = wire::WireWriter::new();
    let states: usize = chunk.iter().map(|p| p.cycles.len() * p.pins.len()).sum();
    w.reserve(8 * (1 + chunk.len()) + states);
    w.put_usize(chunk.len());
    for p in chunk {
        w.put_usize(p.cycles.len());
        for row in &p.cycles {
            for state in row {
                w.put_u8(state.to_char() as u8);
            }
        }
    }
    w.finish()
}

fn encode_reports(reports: &[MismatchReport]) -> Vec<u8> {
    let mut w = wire::WireWriter::new();
    w.put_usize(reports.len());
    for r in reports {
        w.put_u64(r.compares);
        w.put_usize(r.mismatches.len());
        for (cycle, pin, expected, observed) in &r.mismatches {
            w.put_usize(*cycle);
            w.put_str(pin);
            w.put_u8(*expected as u8);
            w.put_u8(*observed as u8);
        }
    }
    w.finish()
}

fn decode_reports(bytes: &[u8]) -> Result<Vec<MismatchReport>, wire::WireError> {
    let mut r = wire::WireReader::new(bytes);
    let count = r.get_count("report count", 16)?;
    let mut reports = Vec::with_capacity(count);
    for _ in 0..count {
        let compares = r.get_u64("report compares")?;
        let mism_count = r.get_count("mismatch count", 18)?;
        let mut mismatches = Vec::with_capacity(mism_count);
        for _ in 0..mism_count {
            let cycle = r.get_usize("mismatch cycle")?;
            let pin = r.get_str("mismatch pin")?;
            let expected = char::from(r.get_u8("mismatch expected")?);
            let observed = char::from(r.get_u8("mismatch observed")?);
            mismatches.push((cycle, pin, expected, observed));
        }
        reports.push(MismatchReport {
            mismatches,
            compares,
        });
    }
    r.finish()?;
    Ok(reports)
}

/// Raises, at validation time, exactly the pulse-alignment error
/// [`play_chunk`] would raise mid-play — scanning cycles then pins,
/// chunk by chunk — so both dispatch flavours reject misaligned batches
/// with the same typed [`PatternError::Shape`] before any simulation
/// runs. (Workers and the in-thread player still check, as defense in
/// depth against bytes that bypassed validation.)
fn check_pulse_alignment(chunk: &[&CyclePattern]) -> Result<(), PatternError> {
    let cycles = chunk.first().map_or(0, |p| p.cycles.len());
    let pins = chunk.first().map_or(0, |p| p.pins.len());
    for ci in 0..cycles {
        for pi in 0..pins {
            let pulse_lanes = chunk
                .iter()
                .filter(|p| p.cycles[ci][pi] == PinState::Pulse)
                .count();
            if pulse_lanes != 0 && pulse_lanes != chunk.len() {
                return Err(PatternError::Shape {
                    context: "batch pulse alignment",
                    expected: chunk.len(),
                    got: pulse_lanes,
                });
            }
        }
    }
    Ok(())
}

/// An opened playback job inside a worker process, monomorphized to
/// the lane-group width the job header requested.
///
/// Units decode into one flat pattern-major scratch buffer reused
/// across units — no [`CyclePattern`] (and no per-pattern pin-list
/// clone, ~hundreds of `String`s on real designs) is ever materialized
/// on the worker side; [`play_cycles`] reads states straight out of
/// the buffer.
struct PlaybackJob<const N: usize> {
    sim: Simulator<N>,
    pins: Vec<String>,
    nets: Vec<NetId>,
    /// `[pattern][cycle][pin]`, reused across units.
    scratch: Vec<PinState>,
}

impl<const N: usize> shard::WireJob for PlaybackJob<N> {
    fn run_unit(&mut self, unit: &[u8]) -> Result<Vec<u8>, String> {
        let width = Simulator::<N>::WIDTH;
        let pin_count = self.pins.len();
        let fail = |e: wire::WireError| format!("pattern unit: {e}");
        let mut r = wire::WireReader::new(unit);
        let count = r.get_count("pattern count", 8).map_err(fail)?;
        if count > width {
            return Err(format!(
                "pattern unit has {count} patterns, a pass holds {width}"
            ));
        }
        self.scratch.clear();
        let mut chunk_cycles = 0;
        for lane in 0..count {
            let cycles = r.get_count("pattern cycles", pin_count).map_err(fail)?;
            // play_cycles walks every pattern over the first one's
            // timeline, so a ragged chunk would index out of bounds.
            if lane == 0 {
                chunk_cycles = cycles;
                self.scratch.reserve(count * cycles * pin_count);
            } else if cycles != chunk_cycles {
                return Err(format!(
                    "pattern unit is ragged: {cycles} cycles vs {chunk_cycles} in pattern 0"
                ));
            }
            for _ in 0..cycles * pin_count {
                let b = r.get_u8("pattern state").map_err(fail)?;
                let state = PinState::from_char(char::from(b))
                    .ok_or_else(|| format!("invalid pattern state byte {b:#04x}"))?;
                self.scratch.push(state);
            }
        }
        r.finish().map_err(fail)?;
        let mut wsim = self.sim.clone();
        wsim.reset_to_x();
        let stride = chunk_cycles * pin_count;
        let scratch = &self.scratch;
        let reports = play_cycles(
            &mut wsim,
            &self.nets,
            &self.pins,
            count,
            chunk_cycles,
            |l, ci, pi| scratch[l * stride + ci * pin_count + pi],
        )
        .map_err(|e| e.to_string())?;
        Ok(encode_reports(&reports))
    }
}

/// Decodes a [`WIRE_KIND`] job block into the executable playback job —
/// the `steac-worker` side of [`apply_cycle_patterns_batch`]'s process
/// backend.
///
/// # Errors
///
/// A diagnostic on corrupt job bytes.
pub fn open_wire_job(job: &[u8]) -> Result<Box<dyn shard::WireJob>, String> {
    let fail = |e: wire::WireError| format!("playback job: {e}");
    let mut r = wire::WireReader::new(job);
    let program = wire::decode_program(r.get_block("playback job program").map_err(fail)?)
        .map_err(|e| format!("playback job program: {e}"))?;
    let groups = r.get_u8("playback job lane groups").map_err(fail)?;
    let pin_count = r.get_count("playback job pins", 12).map_err(fail)?;
    let mut pins = Vec::with_capacity(pin_count);
    let mut nets = Vec::with_capacity(pin_count);
    for _ in 0..pin_count {
        pins.push(r.get_str("playback job pin name").map_err(fail)?);
        let net = r.get_u32("playback job pin net").map_err(fail)?;
        if net as usize >= program.net_count {
            return Err(format!("playback job pin net {net} out of range"));
        }
        nets.push(NetId(net));
    }
    let force_count = r.get_count("playback job forces", 28).map_err(fail)?;
    let mut forces = Vec::with_capacity(force_count);
    for _ in 0..force_count {
        let net = r.get_u32("playback job force net").map_err(fail)?;
        if net as usize >= program.net_count {
            return Err(format!("playback job force net {net} out of range"));
        }
        let mask = r.get_u64("playback job force mask").map_err(fail)?;
        let ones = r.get_u64("playback job force ones").map_err(fail)?;
        let unknowns = r.get_u64("playback job force unknowns").map_err(fail)?;
        forces.push((
            NetId(net),
            mask,
            PackedLogic {
                ones: [ones],
                unknowns: [unknowns],
            },
        ));
    }
    r.finish().map_err(fail)?;
    let program = Arc::new(program);
    match groups as usize {
        1 => Ok(open_job_n::<1>(program, pins, nets, &forces)),
        2 => Ok(open_job_n::<2>(program, pins, nets, &forces)),
        4 => Ok(open_job_n::<4>(program, pins, nets, &forces)),
        8 => Ok(open_job_n::<8>(program, pins, nets, &forces)),
        _ => Err(format!(
            "playback job lane-group width {groups} unsupported"
        )),
    }
}

fn open_job_n<const N: usize>(
    program: Arc<SimProgram>,
    pins: Vec<String>,
    nets: Vec<NetId>,
    forces: &[(NetId, u64, PackedLogic<1>)],
) -> Box<dyn shard::WireJob> {
    let mut sim = Simulator::<N>::from_program(program);
    sim.import_forces_replicated(forces);
    Box::new(PlaybackJob::<N> {
        sim,
        pins,
        nets,
        scratch: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use steac_netlist::{GateKind, NetlistBuilder};

    fn exec() -> Exec {
        Exec::from_env()
    }

    #[test]
    fn char_round_trip() {
        for s in [
            PinState::Drive0,
            PinState::Drive1,
            PinState::DriveZ,
            PinState::DontCare,
            PinState::Pulse,
            PinState::ExpectL,
            PinState::ExpectH,
        ] {
            assert_eq!(PinState::from_char(s.to_char()), Some(s));
        }
        assert_eq!(PinState::from_char('q'), None);
    }

    #[test]
    fn push_cycle_validates_width() {
        let mut p = CyclePattern::new(vec!["a".to_string(), "b".to_string()]);
        assert!(p.push_cycle(vec![PinState::Drive0]).is_err());
        assert!(p
            .push_cycle(vec![PinState::Drive0, PinState::ExpectH])
            .is_ok());
        assert_eq!(p.cycle_count(), 1);
    }

    #[test]
    fn player_runs_a_flop_pattern() {
        let mut b = NetlistBuilder::new("m");
        let d = b.input("d");
        let ck = b.input("ck");
        let q = b.gate(GateKind::Dff, &[d, ck]);
        b.output("q", q);
        let m = b.finish().unwrap();
        let mut sim: Simulator = Simulator::new(&m).unwrap();

        let mut p = CyclePattern::new(vec!["d".to_string(), "ck".to_string(), "q".to_string()]);
        use PinState::*;
        p.push_cycle(vec![Drive1, Pulse, ExpectH]).unwrap();
        p.push_cycle(vec![Drive0, Pulse, ExpectL]).unwrap();
        p.push_cycle(vec![Drive1, DontCare, ExpectL]).unwrap(); // no clock: q holds
        let rep = apply_cycle_pattern(&mut sim, &p).unwrap();
        assert!(rep.passed(), "{rep}");
        assert_eq!(rep.compares, 3);
    }

    #[test]
    fn player_reports_mismatches_with_location() {
        let mut b = NetlistBuilder::new("m");
        let a = b.input("a");
        let y = b.gate(GateKind::Inv, &[a]);
        b.output("y", y);
        let m = b.finish().unwrap();
        let mut sim: Simulator = Simulator::new(&m).unwrap();
        let mut p = CyclePattern::new(vec!["a".to_string(), "y".to_string()]);
        use PinState::*;
        p.push_cycle(vec![Drive1, ExpectH]).unwrap(); // wrong: INV(1)=0
        let rep = apply_cycle_pattern(&mut sim, &p).unwrap();
        assert!(!rep.passed());
        assert_eq!(rep.mismatches[0].0, 0);
        assert_eq!(rep.mismatches[0].1, "y");
    }

    #[test]
    fn unknown_pin_is_an_error() {
        let mut b = NetlistBuilder::new("m");
        let a = b.input("a");
        b.output("y", a);
        let m = b.finish().unwrap();
        let mut sim: Simulator = Simulator::new(&m).unwrap();
        let p = CyclePattern::new(vec!["ghost".to_string()]);
        assert!(matches!(
            apply_cycle_pattern(&mut sim, &p),
            Err(PatternError::UnknownPin { .. })
        ));
    }

    /// A DFF module and a pattern over (d, ck, q) with per-pattern data.
    fn flop_module() -> steac_netlist::Module {
        let mut b = NetlistBuilder::new("m");
        let d = b.input("d");
        let ck = b.input("ck");
        let q = b.gate(GateKind::Dff, &[d, ck]);
        b.output("q", q);
        b.finish().unwrap()
    }

    fn flop_pattern(bits: &[Logic]) -> CyclePattern {
        let mut p = CyclePattern::new(vec!["d".to_string(), "ck".to_string(), "q".to_string()]);
        for &bit in bits {
            p.push_cycle(vec![
                PinState::from_drive(bit),
                PinState::Pulse,
                PinState::from_expect(bit),
            ])
            .unwrap();
        }
        p
    }

    #[test]
    fn batch_player_matches_scalar_per_pattern() {
        use Logic::{One, Zero};
        let m = flop_module();
        let data: Vec<Vec<Logic>> = (0..6u32)
            .map(|i| {
                (0..5)
                    .map(|k| if (i >> (k % 3)) & 1 == 1 { One } else { Zero })
                    .collect()
            })
            .collect();
        let patterns: Vec<CyclePattern> = data.iter().map(|d| flop_pattern(d)).collect();
        let refs: Vec<&CyclePattern> = patterns.iter().collect();
        let sim: Simulator = Simulator::new(&m).unwrap();
        let batch = apply_cycle_patterns_batch(&exec(), &sim, &refs)
            .unwrap()
            .reports;
        assert_eq!(batch.len(), patterns.len());
        for (i, p) in patterns.iter().enumerate() {
            let mut scalar_sim = Simulator::new(&m).unwrap();
            let scalar = apply_cycle_pattern(&mut scalar_sim, p).unwrap();
            assert_eq!(batch[i].compares, scalar.compares, "pattern {i}");
            assert_eq!(batch[i].mismatches, scalar.mismatches, "pattern {i}");
            assert!(batch[i].passed(), "pattern {i}: {}", batch[i]);
        }
    }

    #[test]
    fn batch_player_reports_per_lane_mismatches() {
        use Logic::{One, Zero};
        let m = flop_module();
        let good = flop_pattern(&[One, Zero]);
        // Corrupt the second pattern's expectation only.
        let mut bad = flop_pattern(&[One, Zero]);
        bad.cycles[1][2] = PinState::ExpectH;
        let sim: Simulator = Simulator::new(&m).unwrap();
        let reports = apply_cycle_patterns_batch(&exec(), &sim, &[&good, &bad])
            .unwrap()
            .reports;
        assert!(reports[0].passed(), "{}", reports[0]);
        assert!(!reports[1].passed());
        assert_eq!(reports[1].mismatches[0].1, "q");
    }

    #[test]
    fn batch_player_validates_shape() {
        let m = flop_module();
        let sim: Simulator = Simulator::new(&m).unwrap();
        use Logic::{One, Zero};
        let a = flop_pattern(&[One]);
        let b = flop_pattern(&[One, Zero]);
        assert!(matches!(
            apply_cycle_patterns_batch(&exec(), &sim, &[&a, &b]),
            Err(PatternError::Shape {
                context: "batch cycle count",
                ..
            })
        ));
        // Misaligned pulse: pattern c clocks in cycle 0, a does not.
        let mut c = flop_pattern(&[One]);
        c.cycles[0][1] = PinState::Drive0;
        assert!(matches!(
            apply_cycle_patterns_batch(&exec(), &sim, &[&a, &c]),
            Err(PatternError::Shape {
                context: "batch pulse alignment",
                ..
            })
        ));
    }

    #[test]
    fn batch_player_empty_is_ok() {
        let m = flop_module();
        let sim: Simulator = Simulator::new(&m).unwrap();
        let empty = apply_cycle_patterns_batch(&exec(), &sim, &[]).unwrap();
        assert!(empty.reports.is_empty());
        assert!(empty.passed());
    }

    /// Sharded playback returns the same reports, in the same order, at
    /// every thread count (the merge-by-chunk-index contract), including
    /// batches spanning several chunks.
    #[test]
    fn batch_player_is_thread_count_invariant() {
        use Logic::{One, Zero};
        let m = flop_module();
        let patterns: Vec<CyclePattern> = (0..150u32)
            .map(|i| {
                let bits: Vec<Logic> = (0..4)
                    .map(|k| if (i >> (k % 5)) & 1 == 1 { One } else { Zero })
                    .collect();
                let mut p = flop_pattern(&bits);
                if i == 77 {
                    // One deliberately failing pattern, to exercise the
                    // mismatch merge too.
                    p.cycles[2][2] = PinState::ExpectH;
                    p.cycles[2][0] = PinState::Drive0;
                }
                p
            })
            .collect();
        let refs: Vec<&CyclePattern> = patterns.iter().collect();
        let sim: Simulator = Simulator::new(&m).unwrap();
        let baseline = apply_cycle_patterns_batch(&Exec::serial(), &sim, &refs).unwrap();
        assert!(!baseline.passed());
        for t in 1..=8 {
            let threaded = Exec::threads(steac_sim::Threads::exact(t));
            let sharded = apply_cycle_patterns_batch(&threaded, &sim, &refs).unwrap();
            assert_eq!(sharded, baseline, "{t} threads");
        }
    }

    /// A ragged unit (patterns with different cycle counts) must come
    /// back as a typed unit error from the worker-side decoder, never a
    /// panic — `play_chunk` walks every pattern over pattern 0's
    /// timeline. Also pins the report wire codec round trip.
    #[test]
    fn worker_rejects_ragged_pattern_units() {
        use Logic::{One, Zero};
        let m = flop_module();
        let sim: Simulator = Simulator::new(&m).unwrap();
        let one = flop_pattern(&[One]);
        let two = flop_pattern(&[One, Zero]);
        let nets = resolve_pins(&sim, &one.pins).unwrap();
        let mut job = open_wire_job(&encode_playback_job(
            sim.program(),
            1,
            &one.pins,
            &nets,
            &[],
        ))
        .unwrap();
        // Hand-assemble a ragged unit: a 1-cycle pattern followed by a
        // 2-cycle pattern (the dispatcher's validate_batch would reject
        // this, so it can only arrive via corrupt or hostile bytes).
        let mut w = wire::WireWriter::new();
        w.put_usize(2);
        for p in [&one, &two] {
            w.put_usize(p.cycles.len());
            for row in &p.cycles {
                for state in row {
                    w.put_u8(state.to_char() as u8);
                }
            }
        }
        let err = job.run_unit(&w.finish()).unwrap_err();
        assert!(err.contains("ragged"), "{err}");
        // A well-formed unit on the same job round-trips its reports.
        let unit = encode_pattern_chunk(&[&two, &two]);
        let reports = decode_reports(&job.run_unit(&unit).unwrap()).unwrap();
        assert_eq!(reports.len(), 2);
        assert!(reports.iter().all(MismatchReport::passed));
        assert_eq!(reports[0].compares, 2);
    }

    /// The streaming player's reports are byte-identical to the
    /// materialized batch at every chunk size — chunk boundaries must
    /// be invisible in the report stream.
    #[test]
    fn streaming_matches_materialized_at_every_chunk_size() {
        use Logic::{One, Zero};
        let m = flop_module();
        let patterns: Vec<CyclePattern> = (0..150u32)
            .map(|i| {
                let bits: Vec<Logic> = (0..4)
                    .map(|k| if (i >> (k % 5)) & 1 == 1 { One } else { Zero })
                    .collect();
                let mut p = flop_pattern(&bits);
                if i % 49 == 7 {
                    p.cycles[2][2] = PinState::ExpectH;
                    p.cycles[2][0] = PinState::Drive0;
                }
                p
            })
            .collect();
        let refs: Vec<&CyclePattern> = patterns.iter().collect();
        let sim: Simulator = Simulator::new(&m).unwrap();
        let baseline = apply_cycle_patterns_batch(&Exec::serial(), &sim, &refs).unwrap();
        assert!(!baseline.passed());
        for exec in [Exec::serial(), Exec::threads(steac_sim::Threads::exact(3))] {
            for chunk in [1, 7, 64, usize::MAX] {
                let mut streamed = Vec::new();
                let run = stream_cycle_patterns_wide(
                    &exec,
                    &sim,
                    patterns.iter().cloned(),
                    PLAYBACK_LANE_GROUPS,
                    chunk,
                    |r| streamed.push(r),
                )
                .unwrap();
                assert_eq!(run.patterns, patterns.len(), "{exec} chunk {chunk}");
                assert_eq!(streamed, baseline.reports, "{exec} chunk {chunk}");
            }
        }
    }

    /// Mid-stream shape violations raise the same typed errors the
    /// materialized validator raises, after an in-order prefix of clean
    /// reports has already been delivered.
    #[test]
    fn streaming_validates_incrementally() {
        use Logic::{One, Zero};
        let m = flop_module();
        let sim: Simulator = Simulator::new(&m).unwrap();
        let good = flop_pattern(&[One, Zero]);
        let short = flop_pattern(&[One]);
        let mut sunk = 0usize;
        let err = stream_cycle_patterns(
            &Exec::serial(),
            &sim,
            vec![good.clone(), good.clone(), short].into_iter(),
            |_| sunk += 1,
        )
        .unwrap_err();
        assert!(
            matches!(
                err,
                PatternError::Shape {
                    context: "batch cycle count",
                    ..
                }
            ),
            "{err}"
        );
        assert!(sunk <= 2, "only the clean prefix may be delivered");
        // Misaligned pulse inside a chunk: rejected before simulation.
        let mut unclocked = flop_pattern(&[One, Zero]);
        unclocked.cycles[0][1] = PinState::Drive0;
        let err = stream_cycle_patterns(
            &Exec::serial(),
            &sim,
            vec![good.clone(), unclocked].into_iter(),
            |_| {},
        )
        .unwrap_err();
        assert!(
            matches!(
                err,
                PatternError::Shape {
                    context: "batch pulse alignment",
                    ..
                }
            ),
            "{err}"
        );
        // An empty stream is a clean no-op.
        let run = stream_cycle_patterns(&Exec::serial(), &sim, std::iter::empty(), |_| {}).unwrap();
        assert_eq!(run, StreamPlayback::default());
    }

    #[test]
    fn display_truncates_with_a_more_tail() {
        let mut rep = MismatchReport::default();
        for i in 0..14 {
            rep.mismatches.push((i, "q".to_string(), 'H', 'L'));
            rep.compares += 1;
        }
        let s = rep.to_string();
        assert!(s.contains("cycle 9"), "{s}");
        assert!(!s.contains("cycle 10:"), "{s}");
        assert!(s.contains("(+4 more)"), "{s}");
        // No tail when everything fits.
        rep.mismatches.truncate(10);
        assert!(!rep.to_string().contains("more"), "{rep}");
    }
}
