//! Cycle-based patterns and the ATE cycle player.
//!
//! The batch player treats every 64-pattern chunk as an independent work
//! unit over the shared compiled program, fanning chunks across cores
//! through [`steac_sim::shard`] and merging the per-pattern
//! [`MismatchReport`]s in pattern order — sharded playback is
//! bit-identical to single-threaded playback at every thread count.

use crate::PatternError;
use std::fmt;
use steac_netlist::NetId;
use steac_sim::{shard, Logic, Simulator, Threads};

/// Per-pin state in one tester cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PinState {
    /// Drive logic 0.
    Drive0,
    /// Drive logic 1.
    Drive1,
    /// Release (high impedance).
    DriveZ,
    /// Don't care / keep previous.
    #[default]
    DontCare,
    /// Apply a full clock pulse (0 → 1 → 0) this cycle.
    Pulse,
    /// Compare for logic 0.
    ExpectL,
    /// Compare for logic 1.
    ExpectH,
}

impl PinState {
    /// STIL-style pattern character.
    #[must_use]
    pub fn to_char(self) -> char {
        match self {
            PinState::Drive0 => '0',
            PinState::Drive1 => '1',
            PinState::DriveZ => 'Z',
            PinState::DontCare => 'X',
            PinState::Pulse => 'P',
            PinState::ExpectL => 'L',
            PinState::ExpectH => 'H',
        }
    }

    /// Parses a pattern character (case-insensitive).
    #[must_use]
    pub fn from_char(c: char) -> Option<Self> {
        match c.to_ascii_uppercase() {
            '0' => Some(PinState::Drive0),
            '1' => Some(PinState::Drive1),
            'Z' => Some(PinState::DriveZ),
            'X' => Some(PinState::DontCare),
            'P' => Some(PinState::Pulse),
            'L' => Some(PinState::ExpectL),
            'H' => Some(PinState::ExpectH),
            _ => None,
        }
    }

    /// Drive value, if this state drives.
    #[must_use]
    pub fn drive(self) -> Option<Logic> {
        match self {
            PinState::Drive0 => Some(Logic::Zero),
            PinState::Drive1 => Some(Logic::One),
            PinState::DriveZ => Some(Logic::Z),
            _ => None,
        }
    }

    /// Expected value, if this state compares.
    #[must_use]
    pub fn expect(self) -> Option<Logic> {
        match self {
            PinState::ExpectL => Some(Logic::Zero),
            PinState::ExpectH => Some(Logic::One),
            _ => None,
        }
    }

    /// Converts a stimulus logic value into a drive state.
    #[must_use]
    pub fn from_drive(v: Logic) -> Self {
        match v {
            Logic::Zero => PinState::Drive0,
            Logic::One => PinState::Drive1,
            Logic::Z => PinState::DriveZ,
            Logic::X => PinState::DontCare,
        }
    }

    /// Converts an expected logic value into a compare state.
    #[must_use]
    pub fn from_expect(v: Logic) -> Self {
        match v {
            Logic::Zero => PinState::ExpectL,
            Logic::One => PinState::ExpectH,
            _ => PinState::DontCare,
        }
    }
}

impl fmt::Display for PinState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

/// A cycle-based pattern: a pin list and one row of [`PinState`]s per
/// tester cycle.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CyclePattern {
    /// Pin names, fixed for all cycles.
    pub pins: Vec<String>,
    /// Cycle rows; each row has `pins.len()` states.
    pub cycles: Vec<Vec<PinState>>,
}

impl CyclePattern {
    /// Creates an empty pattern over the given pins.
    #[must_use]
    pub fn new(pins: Vec<String>) -> Self {
        CyclePattern {
            pins,
            cycles: Vec::new(),
        }
    }

    /// Appends one cycle.
    ///
    /// # Errors
    ///
    /// Returns [`PatternError::Shape`] if the row width differs from the
    /// pin list.
    pub fn push_cycle(&mut self, row: Vec<PinState>) -> Result<(), PatternError> {
        if row.len() != self.pins.len() {
            return Err(PatternError::Shape {
                context: "cycle row",
                expected: self.pins.len(),
                got: row.len(),
            });
        }
        self.cycles.push(row);
        Ok(())
    }

    /// Index of a pin.
    #[must_use]
    pub fn pin_index(&self, name: &str) -> Option<usize> {
        self.pins.iter().position(|p| p == name)
    }

    /// Number of tester cycles.
    #[must_use]
    pub fn cycle_count(&self) -> u64 {
        self.cycles.len() as u64
    }

    /// Appends all cycles of `other` (pin lists must match).
    ///
    /// # Errors
    ///
    /// Returns [`PatternError::Shape`] on pin-list mismatch.
    pub fn append(&mut self, other: &CyclePattern) -> Result<(), PatternError> {
        if self.pins != other.pins {
            return Err(PatternError::Shape {
                context: "pattern concatenation",
                expected: self.pins.len(),
                got: other.pins.len(),
            });
        }
        self.cycles.extend(other.cycles.iter().cloned());
        Ok(())
    }
}

/// Result of playing a pattern against the simulator.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MismatchReport {
    /// `(cycle, pin, expected, observed)` for every failed compare.
    pub mismatches: Vec<(usize, String, char, char)>,
    /// Number of compares performed.
    pub compares: u64,
}

impl MismatchReport {
    /// `true` when every compare passed.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// Mismatch detail lines printed before the `(+N more)` tail.
const DISPLAYED_MISMATCHES: usize = 10;

impl fmt::Display for MismatchReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} compares, {} mismatches",
            self.compares,
            self.mismatches.len()
        )?;
        for (cyc, pin, exp, obs) in self.mismatches.iter().take(DISPLAYED_MISMATCHES) {
            write!(f, "\n  cycle {cyc}: {pin} expected {exp} observed {obs}")?;
        }
        if self.mismatches.len() > DISPLAYED_MISMATCHES {
            write!(
                f,
                "\n  (+{} more)",
                self.mismatches.len() - DISPLAYED_MISMATCHES
            )?;
        }
        Ok(())
    }
}

/// Plays a cycle pattern on the simulator, exactly as an ATE would:
/// drive states are applied, `P` pins get a full clock pulse after the
/// other pins settle, and `L`/`H` pins are compared at the end of the
/// cycle (before the next cycle's drives).
///
/// # Errors
///
/// Returns [`PatternError::UnknownPin`] for pins missing on the module
/// and propagates simulator errors.
pub fn apply_cycle_pattern(
    sim: &mut Simulator,
    pattern: &CyclePattern,
) -> Result<MismatchReport, PatternError> {
    let nets = resolve_pins(sim, &pattern.pins)?;
    let mut report = MismatchReport::default();
    for (ci, row) in pattern.cycles.iter().enumerate() {
        // Drive phase.
        let mut pulses = Vec::new();
        for (pi, state) in row.iter().enumerate() {
            if let Some(v) = state.drive() {
                sim.set(nets[pi], v);
            } else if *state == PinState::Pulse {
                sim.set(nets[pi], Logic::Zero);
                pulses.push(nets[pi]);
            }
        }
        sim.settle()?;
        // Clock phase.
        if !pulses.is_empty() {
            sim.clock_cycle_multi(&pulses)?;
        }
        // Compare phase. `observe` records all 64 lanes when the
        // simulator is grading faults (PPSFP), and returns lane 0 for
        // the scalar comparison here.
        for (pi, state) in row.iter().enumerate() {
            if let Some(expected) = state.expect() {
                report.compares += 1;
                let observed = sim.observe(nets[pi]);
                if observed.is_known() && observed != expected {
                    report.mismatches.push((
                        ci,
                        pattern.pins[pi].clone(),
                        PinState::from_expect(expected).to_char(),
                        observed.to_char(),
                    ));
                } else if !observed.is_known() {
                    // An unknown where a value is expected is a fail on
                    // real ATE too.
                    report.mismatches.push((
                        ci,
                        pattern.pins[pi].clone(),
                        PinState::from_expect(expected).to_char(),
                        observed.to_char(),
                    ));
                }
            }
        }
    }
    Ok(report)
}

/// Resolves pattern pin names to nets via the simulator's compiled
/// program.
fn resolve_pins(sim: &Simulator, pins: &[String]) -> Result<Vec<NetId>, PatternError> {
    pins.iter()
        .map(|name| {
            sim.program()
                .port_net(name)
                .ok_or_else(|| PatternError::UnknownPin { name: name.clone() })
        })
        .collect()
}

/// Plays one chunk of up to [`steac_sim::LANES`] patterns on one
/// executor, one pattern per lane, from the state `sim` is currently in.
/// Returns one report per pattern in chunk order.
fn play_chunk(
    sim: &mut Simulator,
    nets: &[NetId],
    pins: &[String],
    chunk: &[&CyclePattern],
) -> Result<Vec<MismatchReport>, PatternError> {
    use steac_sim::{PackedLogic, LANES};

    let mut reports: Vec<MismatchReport> = vec![MismatchReport::default(); chunk.len()];
    let cycles = chunk.first().map_or(0, |p| p.cycles.len());
    for ci in 0..cycles {
        // Drive phase: build one packed word per pin; lanes that
        // don't drive this cycle keep their previous value.
        let mut pulses = Vec::new();
        for (pi, &net) in nets.iter().enumerate() {
            let pulse_lanes = chunk
                .iter()
                .filter(|p| p.cycles[ci][pi] == PinState::Pulse)
                .count();
            if pulse_lanes != 0 && pulse_lanes != chunk.len() {
                return Err(PatternError::Shape {
                    context: "batch pulse alignment",
                    expected: chunk.len(),
                    got: pulse_lanes,
                });
            }
            if pulse_lanes == chunk.len() {
                sim.set(net, Logic::Zero);
                pulses.push(net);
                continue;
            }
            let mut driven = PackedLogic::ALL_X;
            let mut drive_mask = 0u64;
            for (l, p) in chunk.iter().enumerate() {
                if let Some(v) = p.cycles[ci][pi].drive() {
                    driven.set_lane(l, v);
                    drive_mask |= 1 << l;
                }
            }
            if drive_mask != 0 {
                // Lanes beyond the chunk follow lane 0 so spare lanes
                // never oscillate differently from real ones.
                if chunk.len() < LANES && drive_mask & 1 != 0 {
                    let v0 = driven.lane(0);
                    for l in chunk.len()..LANES {
                        driven.set_lane(l, v0);
                        drive_mask |= 1 << l;
                    }
                }
                let merged = driven.select(sim.get_packed(net), drive_mask);
                sim.set_packed(net, merged);
            }
        }
        sim.settle()?;
        // Clock phase.
        if !pulses.is_empty() {
            sim.clock_cycle_multi(&pulses)?;
        }
        // Compare phase, per lane.
        for (pi, &net) in nets.iter().enumerate() {
            let packed = sim.get_packed(net);
            for (l, p) in chunk.iter().enumerate() {
                if let Some(expected) = p.cycles[ci][pi].expect() {
                    let report = &mut reports[l];
                    report.compares += 1;
                    let observed = packed.lane(l);
                    if !observed.is_known() || observed != expected {
                        report.mismatches.push((
                            ci,
                            pins[pi].clone(),
                            PinState::from_expect(expected).to_char(),
                            observed.to_char(),
                        ));
                    }
                }
            }
        }
    }
    Ok(reports)
}

/// Plays up to 64 cycle patterns per pass, one per simulation lane, and
/// returns one [`MismatchReport`] per pattern — the batched ATE playback
/// path (a tester floor applying the same timing program to 64 dies at
/// once). Batches larger than [`steac_sim::LANES`] become independent
/// 64-pattern chunks fanned across cores with the default thread count
/// ([`Threads::from_env`]).
///
/// All patterns of a batch must share the *shape* that fixes the timing
/// program: the same pin list, the same cycle count, and `P` (pulse) on
/// the same pins in the same cycles — clock pulses are timeline events
/// common to all lanes. Drive values and compare positions may differ
/// freely per pattern.
///
/// Every chunk plays on a worker-local clone of `sim`, reset to the
/// all-`X` state first, so every pattern observes power-on semantics
/// (reset your patterns' preambles accordingly); forces applied to `sim`
/// (fault injection) carry into every clone. `sim` itself is not
/// mutated.
///
/// # Errors
///
/// Returns [`PatternError::Shape`] when pin lists, cycle counts or pulse
/// positions disagree, [`PatternError::UnknownPin`] for pins missing on
/// the module, and propagates simulator errors (lowest-indexed failing
/// chunk, deterministically).
pub fn apply_cycle_patterns_batch(
    sim: &Simulator,
    patterns: &[&CyclePattern],
) -> Result<Vec<MismatchReport>, PatternError> {
    apply_cycle_patterns_batch_with(sim, patterns, Threads::from_env())
}

/// [`apply_cycle_patterns_batch`] with an explicit worker count.
///
/// # Errors
///
/// As [`apply_cycle_patterns_batch`].
pub fn apply_cycle_patterns_batch_with(
    sim: &Simulator,
    patterns: &[&CyclePattern],
    threads: Threads,
) -> Result<Vec<MismatchReport>, PatternError> {
    use steac_sim::LANES;

    let Some(first) = patterns.first() else {
        return Ok(Vec::new());
    };
    for p in patterns {
        if p.pins != first.pins {
            return Err(PatternError::Shape {
                context: "batch pin list",
                expected: first.pins.len(),
                got: p.pins.len(),
            });
        }
        if p.cycles.len() != first.cycles.len() {
            return Err(PatternError::Shape {
                context: "batch cycle count",
                expected: first.cycles.len(),
                got: p.cycles.len(),
            });
        }
    }
    let nets = resolve_pins(sim, &first.pins)?;
    let chunks: Vec<&[&CyclePattern]> = patterns.chunks(LANES).collect();
    let per_chunk = shard::run_fallible(threads, chunks.len(), |ci| {
        let mut wsim = sim.clone();
        wsim.reset_to_x();
        play_chunk(&mut wsim, &nets, &first.pins, chunks[ci])
    })?;
    Ok(per_chunk.into_iter().flatten().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use steac_netlist::{GateKind, NetlistBuilder};

    #[test]
    fn char_round_trip() {
        for s in [
            PinState::Drive0,
            PinState::Drive1,
            PinState::DriveZ,
            PinState::DontCare,
            PinState::Pulse,
            PinState::ExpectL,
            PinState::ExpectH,
        ] {
            assert_eq!(PinState::from_char(s.to_char()), Some(s));
        }
        assert_eq!(PinState::from_char('q'), None);
    }

    #[test]
    fn push_cycle_validates_width() {
        let mut p = CyclePattern::new(vec!["a".to_string(), "b".to_string()]);
        assert!(p.push_cycle(vec![PinState::Drive0]).is_err());
        assert!(p
            .push_cycle(vec![PinState::Drive0, PinState::ExpectH])
            .is_ok());
        assert_eq!(p.cycle_count(), 1);
    }

    #[test]
    fn player_runs_a_flop_pattern() {
        let mut b = NetlistBuilder::new("m");
        let d = b.input("d");
        let ck = b.input("ck");
        let q = b.gate(GateKind::Dff, &[d, ck]);
        b.output("q", q);
        let m = b.finish().unwrap();
        let mut sim = Simulator::new(&m).unwrap();

        let mut p = CyclePattern::new(vec!["d".to_string(), "ck".to_string(), "q".to_string()]);
        use PinState::*;
        p.push_cycle(vec![Drive1, Pulse, ExpectH]).unwrap();
        p.push_cycle(vec![Drive0, Pulse, ExpectL]).unwrap();
        p.push_cycle(vec![Drive1, DontCare, ExpectL]).unwrap(); // no clock: q holds
        let rep = apply_cycle_pattern(&mut sim, &p).unwrap();
        assert!(rep.passed(), "{rep}");
        assert_eq!(rep.compares, 3);
    }

    #[test]
    fn player_reports_mismatches_with_location() {
        let mut b = NetlistBuilder::new("m");
        let a = b.input("a");
        let y = b.gate(GateKind::Inv, &[a]);
        b.output("y", y);
        let m = b.finish().unwrap();
        let mut sim = Simulator::new(&m).unwrap();
        let mut p = CyclePattern::new(vec!["a".to_string(), "y".to_string()]);
        use PinState::*;
        p.push_cycle(vec![Drive1, ExpectH]).unwrap(); // wrong: INV(1)=0
        let rep = apply_cycle_pattern(&mut sim, &p).unwrap();
        assert!(!rep.passed());
        assert_eq!(rep.mismatches[0].0, 0);
        assert_eq!(rep.mismatches[0].1, "y");
    }

    #[test]
    fn unknown_pin_is_an_error() {
        let mut b = NetlistBuilder::new("m");
        let a = b.input("a");
        b.output("y", a);
        let m = b.finish().unwrap();
        let mut sim = Simulator::new(&m).unwrap();
        let p = CyclePattern::new(vec!["ghost".to_string()]);
        assert!(matches!(
            apply_cycle_pattern(&mut sim, &p),
            Err(PatternError::UnknownPin { .. })
        ));
    }

    /// A DFF module and a pattern over (d, ck, q) with per-pattern data.
    fn flop_module() -> steac_netlist::Module {
        let mut b = NetlistBuilder::new("m");
        let d = b.input("d");
        let ck = b.input("ck");
        let q = b.gate(GateKind::Dff, &[d, ck]);
        b.output("q", q);
        b.finish().unwrap()
    }

    fn flop_pattern(bits: &[Logic]) -> CyclePattern {
        let mut p = CyclePattern::new(vec!["d".to_string(), "ck".to_string(), "q".to_string()]);
        for &bit in bits {
            p.push_cycle(vec![
                PinState::from_drive(bit),
                PinState::Pulse,
                PinState::from_expect(bit),
            ])
            .unwrap();
        }
        p
    }

    #[test]
    fn batch_player_matches_scalar_per_pattern() {
        use Logic::{One, Zero};
        let m = flop_module();
        let data: Vec<Vec<Logic>> = (0..6u32)
            .map(|i| {
                (0..5)
                    .map(|k| if (i >> (k % 3)) & 1 == 1 { One } else { Zero })
                    .collect()
            })
            .collect();
        let patterns: Vec<CyclePattern> = data.iter().map(|d| flop_pattern(d)).collect();
        let refs: Vec<&CyclePattern> = patterns.iter().collect();
        let sim = Simulator::new(&m).unwrap();
        let batch = apply_cycle_patterns_batch(&sim, &refs).unwrap();
        assert_eq!(batch.len(), patterns.len());
        for (i, p) in patterns.iter().enumerate() {
            let mut scalar_sim = Simulator::new(&m).unwrap();
            let scalar = apply_cycle_pattern(&mut scalar_sim, p).unwrap();
            assert_eq!(batch[i].compares, scalar.compares, "pattern {i}");
            assert_eq!(batch[i].mismatches, scalar.mismatches, "pattern {i}");
            assert!(batch[i].passed(), "pattern {i}: {}", batch[i]);
        }
    }

    #[test]
    fn batch_player_reports_per_lane_mismatches() {
        use Logic::{One, Zero};
        let m = flop_module();
        let good = flop_pattern(&[One, Zero]);
        // Corrupt the second pattern's expectation only.
        let mut bad = flop_pattern(&[One, Zero]);
        bad.cycles[1][2] = PinState::ExpectH;
        let sim = Simulator::new(&m).unwrap();
        let reports = apply_cycle_patterns_batch(&sim, &[&good, &bad]).unwrap();
        assert!(reports[0].passed(), "{}", reports[0]);
        assert!(!reports[1].passed());
        assert_eq!(reports[1].mismatches[0].1, "q");
    }

    #[test]
    fn batch_player_validates_shape() {
        let m = flop_module();
        let sim = Simulator::new(&m).unwrap();
        use Logic::{One, Zero};
        let a = flop_pattern(&[One]);
        let b = flop_pattern(&[One, Zero]);
        assert!(matches!(
            apply_cycle_patterns_batch(&sim, &[&a, &b]),
            Err(PatternError::Shape {
                context: "batch cycle count",
                ..
            })
        ));
        // Misaligned pulse: pattern c clocks in cycle 0, a does not.
        let mut c = flop_pattern(&[One]);
        c.cycles[0][1] = PinState::Drive0;
        assert!(matches!(
            apply_cycle_patterns_batch(&sim, &[&a, &c]),
            Err(PatternError::Shape {
                context: "batch pulse alignment",
                ..
            })
        ));
    }

    #[test]
    fn batch_player_empty_is_ok() {
        let m = flop_module();
        let sim = Simulator::new(&m).unwrap();
        assert!(apply_cycle_patterns_batch(&sim, &[]).unwrap().is_empty());
    }

    /// Sharded playback returns the same reports, in the same order, at
    /// every thread count (the merge-by-chunk-index contract), including
    /// batches spanning several chunks.
    #[test]
    fn batch_player_is_thread_count_invariant() {
        use Logic::{One, Zero};
        let m = flop_module();
        let patterns: Vec<CyclePattern> = (0..150u32)
            .map(|i| {
                let bits: Vec<Logic> = (0..4)
                    .map(|k| if (i >> (k % 5)) & 1 == 1 { One } else { Zero })
                    .collect();
                let mut p = flop_pattern(&bits);
                if i == 77 {
                    // One deliberately failing pattern, to exercise the
                    // mismatch merge too.
                    p.cycles[2][2] = PinState::ExpectH;
                    p.cycles[2][0] = PinState::Drive0;
                }
                p
            })
            .collect();
        let refs: Vec<&CyclePattern> = patterns.iter().collect();
        let sim = Simulator::new(&m).unwrap();
        let baseline = apply_cycle_patterns_batch_with(&sim, &refs, Threads::single()).unwrap();
        assert!(baseline.iter().any(|r| !r.passed()));
        for t in 2..=8 {
            let sharded = apply_cycle_patterns_batch_with(&sim, &refs, Threads::exact(t)).unwrap();
            assert_eq!(sharded, baseline, "{t} threads");
        }
    }

    #[test]
    fn display_truncates_with_a_more_tail() {
        let mut rep = MismatchReport::default();
        for i in 0..14 {
            rep.mismatches.push((i, "q".to_string(), 'H', 'L'));
            rep.compares += 1;
        }
        let s = rep.to_string();
        assert!(s.contains("cycle 9"), "{s}");
        assert!(!s.contains("cycle 10:"), "{s}");
        assert!(s.contains("(+4 more)"), "{s}");
        // No tail when everything fits.
        rep.mismatches.truncate(10);
        assert!(!rep.to_string().contains("more"), "{rep}");
    }
}
