//! The Pattern Translator of the STEAC flow.
//!
//! The paper: *"The core test patterns are generated at the core level.
//! After the cores are wrapped, the test patterns must be translated to
//! the wrapper level and then to the chip level. The test patterns are
//! cycle based, which can be applied by external ATE easily."*
//!
//! * [`cycle`] — cycle-based pattern representation ([`CyclePattern`])
//!   and the ATE *cycle player* that applies patterns to the gate-level
//!   simulator and compares responses,
//! * [`corelevel`] — core-level scan vectors ([`ScanVector`]),
//! * [`translate`] — core → wrapper translation (mapping PI/PO and
//!   internal chains onto balanced wrapper chains) and wrapper → chip
//!   merging across TAM assignments and sessions,
//! * [`ate`] — ATE text export with repeat compression and cycle
//!   accounting.

pub mod ate;
pub mod corelevel;
pub mod cycle;
pub mod translate;

pub use ate::{export_ate, AteStats};
pub use corelevel::ScanVector;
pub use cycle::{
    apply_cycle_pattern, apply_cycle_patterns_batch, apply_cycle_patterns_batch_wide,
    stream_cycle_patterns, stream_cycle_patterns_wide, BatchPlayback, CyclePattern, MismatchReport,
    PinState, StreamPlayback, PLAYBACK_LANE_GROUPS,
};
pub use translate::{
    merge_sessions, scan_to_wrapper, wrapper_vectors_to_cycles, ChipPatternSet, SessionStream,
    WrapperPorts,
};

use std::fmt;

/// Errors from pattern handling.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PatternError {
    /// A vector has the wrong number of entries for its pin list or
    /// chain configuration.
    Shape {
        /// What was being translated.
        context: &'static str,
        /// Expected element count.
        expected: usize,
        /// Found element count.
        got: usize,
    },
    /// A pin referenced by a pattern does not exist on the module.
    UnknownPin {
        /// Pin name.
        name: String,
    },
    /// Simulation failed while playing a pattern.
    Sim(steac_sim::SimError),
}

impl fmt::Display for PatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternError::Shape {
                context,
                expected,
                got,
            } => write!(f, "{context}: expected {expected} entries, got {got}"),
            PatternError::UnknownPin { name } => write!(f, "unknown pin `{name}`"),
            PatternError::Sim(e) => write!(f, "simulation: {e}"),
        }
    }
}

impl std::error::Error for PatternError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PatternError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<steac_sim::SimError> for PatternError {
    fn from(e: steac_sim::SimError) -> Self {
        PatternError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = PatternError::Shape {
            context: "scan load",
            expected: 4,
            got: 3,
        };
        assert!(e.to_string().contains("scan load"));
    }
}
