//! Core-level scan vectors, as ATPG would emit them.

use steac_sim::Logic;

/// One core-level scan test vector.
///
/// Bit ordering follows the workspace scan convention: bit `k` of a
/// chain's load/unload stream corresponds to flop `L-1-k` of that chain
/// (first bit shifted in travels to the deepest flop).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ScanVector {
    /// Stimulus per internal chain (index = chain index).
    pub loads: Vec<Vec<Logic>>,
    /// Primary-input values, indexed like the core's functional inputs.
    pub pi: Vec<Logic>,
    /// Expected primary-output values, indexed like the core's
    /// functional outputs (`X` = masked).
    pub expect_po: Vec<Logic>,
    /// Expected capture values per internal chain.
    pub expect_unload: Vec<Vec<Logic>>,
}

impl ScanVector {
    /// Creates a vector shaped for the given chain lengths and pin
    /// counts, all entries `X`.
    #[must_use]
    pub fn shaped(chain_lengths: &[usize], pi: usize, po: usize) -> Self {
        ScanVector {
            loads: chain_lengths.iter().map(|&l| vec![Logic::X; l]).collect(),
            pi: vec![Logic::X; pi],
            expect_po: vec![Logic::X; po],
            expect_unload: chain_lengths.iter().map(|&l| vec![Logic::X; l]).collect(),
        }
    }

    /// Total scan cells loaded by this vector.
    #[must_use]
    pub fn total_load_bits(&self) -> usize {
        self.loads.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shaped_dimensions() {
        let v = ScanVector::shaped(&[5, 3], 4, 2);
        assert_eq!(v.loads.len(), 2);
        assert_eq!(v.loads[0].len(), 5);
        assert_eq!(v.pi.len(), 4);
        assert_eq!(v.expect_po.len(), 2);
        assert_eq!(v.total_load_bits(), 8);
    }
}
