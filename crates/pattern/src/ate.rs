//! ATE text export: renders cycle patterns in a WGL-style tabular format
//! with repeat compression, plus the statistics the tester floor cares
//! about.

use crate::cycle::CyclePattern;
use std::fmt::Write as _;

/// Export statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AteStats {
    /// Tester cycles represented.
    pub cycles: u64,
    /// Emitted vector lines (after repeat compression).
    pub lines: u64,
    /// Number of compare operations.
    pub compares: u64,
}

/// Renders the pattern; returns the text and its statistics.
///
/// Identical consecutive rows collapse into `REPEAT n` annotations,
/// which is how cycle-based ATE formats keep `Loop`-generated functional
/// blocks (the DSC's 235,696 JPEG patterns) manageable.
#[must_use]
pub fn export_ate(name: &str, pattern: &CyclePattern) -> (String, AteStats) {
    let mut out = String::new();
    let _ = writeln!(out, "pattern {name};");
    let _ = writeln!(out, "pins {};", pattern.pins.join(" "));
    let mut lines = 0u64;
    let mut compares = 0u64;
    let mut i = 0usize;
    while i < pattern.cycles.len() {
        let row = &pattern.cycles[i];
        let mut run = 1usize;
        while i + run < pattern.cycles.len() && pattern.cycles[i + run] == *row {
            run += 1;
        }
        let chars: String = row.iter().map(|s| s.to_char()).collect();
        compares += row.iter().filter(|s| s.expect().is_some()).count() as u64 * run as u64;
        if run > 1 {
            let _ = writeln!(out, "v {chars} repeat {run};");
        } else {
            let _ = writeln!(out, "v {chars};");
        }
        lines += 1;
        i += run;
    }
    let _ = writeln!(out, "end;");
    (
        out,
        AteStats {
            cycles: pattern.cycle_count(),
            lines,
            compares,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle::PinState;

    #[test]
    fn repeat_compression_collapses_runs() {
        let mut p = CyclePattern::new(vec!["a".to_string()]);
        for _ in 0..100 {
            p.push_cycle(vec![PinState::Drive1]).unwrap();
        }
        p.push_cycle(vec![PinState::Drive0]).unwrap();
        let (text, stats) = export_ate("t", &p);
        assert_eq!(stats.cycles, 101);
        assert_eq!(stats.lines, 2);
        assert!(text.contains("repeat 100"), "{text}");
    }

    #[test]
    fn compare_counting_scales_with_repeats() {
        let mut p = CyclePattern::new(vec!["a".to_string(), "y".to_string()]);
        for _ in 0..10 {
            p.push_cycle(vec![PinState::Drive1, PinState::ExpectH])
                .unwrap();
        }
        let (_, stats) = export_ate("t", &p);
        assert_eq!(stats.compares, 10);
    }

    #[test]
    fn header_lists_pins() {
        let p = CyclePattern::new(vec!["ck".to_string(), "d".to_string()]);
        let (text, _) = export_ate("quick", &p);
        assert!(text.starts_with("pattern quick;"), "{text}");
        assert!(text.contains("pins ck d;"), "{text}");
    }
}
