//! Test Controller generation.
//!
//! STEAC generates a chip-level Test Controller that sequences test
//! sessions and distributes wrapper control to the cores; the paper
//! reports it at "about 371 gates" on the DSC chip. The controller built
//! here contains, as a real gate netlist:
//!
//! * a session counter with one-hot session decode (`next_session`
//!   advances; `trst_n` returns to session 0),
//! * a 16-bit test-cycle counter (watchdog/diagnostic readout),
//! * a shift-bit counter plus a four-state wrapper-timing FSM able to
//!   sequence shift → capture → update autonomously (`auto_mode = 1`),
//!   or to pass the ATE-driven `t_se` / `t_capture` / `t_update` lines
//!   through (`auto_mode = 0`; the DSC flow is ATE-driven, "cycle based,
//!   which can be applied by external ATE easily"),
//! * per-core gating of wrapper controls by session membership,
//! * a `bist_start` level per memory-BIST controller, raised in the BIST
//!   session.

use steac_netlist::{GateKind, Module, NetId, NetlistBuilder, NetlistError};

/// Per-core control requirements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreControl {
    /// Core name (used in port names).
    pub name: String,
    /// Sessions (0-based) in which the core is under test.
    pub active_sessions: Vec<usize>,
    /// Whether the core receives scan-enable gating.
    pub uses_scan: bool,
}

/// Controller configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ControllerSpec {
    /// Number of test sessions.
    pub sessions: usize,
    /// Cores to control.
    pub cores: Vec<CoreControl>,
    /// Width of the test-cycle counter.
    pub cycle_counter_bits: usize,
    /// Width of the shift-bit counter used by the autonomous FSM.
    pub shift_counter_bits: usize,
    /// Number of memory-BIST controllers to start.
    pub bist_interfaces: usize,
}

impl ControllerSpec {
    /// Configuration matching the paper's DSC chip: 3 sessions, 3 wrapped
    /// cores, one shared BIST controller.
    #[must_use]
    pub fn dsc() -> Self {
        ControllerSpec {
            sessions: 3,
            cores: vec![
                CoreControl {
                    name: "usb".to_string(),
                    active_sessions: vec![0],
                    uses_scan: true,
                },
                CoreControl {
                    name: "tv".to_string(),
                    active_sessions: vec![0, 1],
                    uses_scan: true,
                },
                CoreControl {
                    name: "jpeg".to_string(),
                    active_sessions: vec![2],
                    uses_scan: false,
                },
            ],
            cycle_counter_bits: 16,
            shift_counter_bits: 10,
            bist_interfaces: 1,
        }
    }

    fn session_bits(&self) -> usize {
        (usize::BITS - (self.sessions.max(2) - 1).leading_zeros()) as usize
    }
}

/// Builds a counter with enable; returns the flop output nets (LSB first).
fn counter(
    b: &mut NetlistBuilder,
    bits: usize,
    enable: NetId,
    clear_n: NetId,
    ck: NetId,
    prefix: &str,
) -> Vec<NetId> {
    let mut q: Vec<NetId> = Vec::with_capacity(bits);
    for i in 0..bits {
        q.push(b.net(&format!("{prefix}_q{i}")));
    }
    let mut carry = enable;
    for (i, &qi) in q.iter().enumerate() {
        let d = b.gate(GateKind::Xor2, &[qi, carry]);
        if i + 1 < bits {
            carry = b.gate(GateKind::And2, &[carry, qi]);
        }
        b.gate_into(GateKind::DffR, &[d, ck, clear_n], qi);
    }
    q
}

/// Generates the Test Controller netlist for `spec`.
///
/// Ports: `tck`, `trst_n`, `test_mode`, `next_session`, `auto_mode`,
/// `t_se`, `t_capture`, `t_update` inputs; `session[s]` one-hot outputs;
/// per core `<name>_se` / `<name>_capture` / `<name>_update` /
/// `<name>_intest`; `bist_start[j]`; `cycle_count[k]` diagnostics.
///
/// # Errors
///
/// Propagates netlist construction errors (none expected for valid
/// specs).
///
/// # Panics
///
/// Panics if `spec.sessions == 0` or a core references a session out of
/// range.
pub fn controller_module(spec: &ControllerSpec) -> Result<Module, NetlistError> {
    assert!(spec.sessions > 0, "need at least one session");
    for c in &spec.cores {
        for &s in &c.active_sessions {
            assert!(
                s < spec.sessions,
                "core {} session {s} out of range",
                c.name
            );
        }
    }
    let mut b = NetlistBuilder::new("steac_test_controller");
    let tck = b.input("tck");
    let trst_n = b.input("trst_n");
    let test_mode = b.input("test_mode");
    let next_session = b.input("next_session");
    let auto_mode = b.input("auto_mode");
    let t_se = b.input("t_se");
    let t_capture = b.input("t_capture");
    let t_update = b.input("t_update");

    // --- Session counter + one-hot decode. ---
    let sbits = spec.session_bits();
    let sq = counter(&mut b, sbits, next_session, trst_n, tck, "sess");
    // Binary session select for the TAM multiplexer.
    for (i, &q) in sq.iter().enumerate() {
        b.output(&format!("session_bin[{i}]"), q);
    }
    let sinv: Vec<NetId> = sq.iter().map(|&q| b.gate(GateKind::Inv, &[q])).collect();
    let mut session_lines: Vec<NetId> = Vec::with_capacity(spec.sessions);
    for s in 0..spec.sessions {
        let lits: Vec<NetId> = (0..sbits)
            .map(|i| if (s >> i) & 1 == 1 { sq[i] } else { sinv[i] })
            .collect();
        let line = b.and_tree(&lits);
        session_lines.push(line);
        b.output(&format!("session[{s}]"), line);
    }

    // --- Test cycle counter (counts while in test mode). ---
    let cq = counter(
        &mut b,
        spec.cycle_counter_bits,
        test_mode,
        trst_n,
        tck,
        "cyc",
    );
    for (i, &q) in cq.iter().enumerate() {
        b.output(&format!("cycle_count[{i}]"), q);
    }

    // --- Autonomous wrapper-timing FSM. ---
    // State encoding: 00 idle, 01 shift, 10 capture, 11 update.
    let s0 = b.net("fsm_s0");
    let s1 = b.net("fsm_s1");
    let in_idle = {
        let n0 = b.gate(GateKind::Inv, &[s0]);
        let n1 = b.gate(GateKind::Inv, &[s1]);
        b.gate(GateKind::And2, &[n0, n1])
    };
    let in_shift = {
        let n1 = b.gate(GateKind::Inv, &[s1]);
        b.gate(GateKind::And2, &[s0, n1])
    };
    let in_capture = {
        let n0 = b.gate(GateKind::Inv, &[s0]);
        b.gate(GateKind::And2, &[n0, s1])
    };
    let in_update = b.gate(GateKind::And2, &[s0, s1]);

    // Shift counter runs in SHIFT state, clears otherwise (via enable +
    // AND-masked feedback).
    let shq = counter(
        &mut b,
        spec.shift_counter_bits,
        in_shift,
        trst_n,
        tck,
        "shift",
    );
    let shift_tc = b.and_tree(&shq);

    // Next-state logic.
    // next_s0 = idle&test_mode | shift&~tc&1 ... derive per transition:
    // idle -> shift (test_mode), shift -> capture (tc), capture -> update,
    // update -> shift.
    let not_tc = b.gate(GateKind::Inv, &[shift_tc]);
    let stay_shift = b.gate(GateKind::And2, &[in_shift, not_tc]);
    let idle_to_shift = b.gate(GateKind::And2, &[in_idle, test_mode]);
    let to_shift = {
        let a = b.gate(GateKind::Or2, &[idle_to_shift, in_update]);
        b.gate(GateKind::Or2, &[a, stay_shift])
    };
    let to_capture = b.gate(GateKind::And2, &[in_shift, shift_tc]);
    let to_update = in_capture;
    let next_s0 = b.gate(GateKind::Or2, &[to_shift, to_update]);
    let next_s1 = b.gate(GateKind::Or2, &[to_capture, to_update]);
    b.gate_into(GateKind::DffR, &[next_s0, tck, trst_n], s0);
    b.gate_into(GateKind::DffR, &[next_s1, tck, trst_n], s1);

    // Control source selection: ATE lines or FSM lines.
    let se_src = b.gate(GateKind::Mux2, &[t_se, in_shift, auto_mode]);
    let cap_src = b.gate(GateKind::Mux2, &[t_capture, in_capture, auto_mode]);
    let upd_src = b.gate(GateKind::Mux2, &[t_update, in_update, auto_mode]);

    // --- Per-core gating. ---
    for core in &spec.cores {
        let sess: Vec<NetId> = core
            .active_sessions
            .iter()
            .map(|&s| session_lines[s])
            .collect();
        let member = b.or_tree(&sess);
        let enable = b.gate(GateKind::And2, &[member, test_mode]);
        b.output(&format!("{}_intest", core.name), enable);
        if core.uses_scan {
            let se = b.gate(GateKind::And2, &[enable, se_src]);
            b.output(&format!("{}_se", core.name), se);
        }
        let cap = b.gate(GateKind::And2, &[enable, cap_src]);
        b.output(&format!("{}_capture", core.name), cap);
        let upd = b.gate(GateKind::And2, &[enable, upd_src]);
        b.output(&format!("{}_update", core.name), upd);
    }

    // --- BIST start levels (BIST runs in the last session). ---
    let bist_session = session_lines[spec.sessions - 1];
    for j in 0..spec.bist_interfaces {
        let start = b.gate(GateKind::And2, &[bist_session, test_mode]);
        b.output(&format!("bist_start[{j}]"), start);
    }

    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use steac_netlist::AreaReport;
    use steac_sim::{Logic, Simulator};

    #[test]
    fn dsc_controller_area_matches_paper_band() {
        let m = controller_module(&ControllerSpec::dsc()).unwrap();
        let area = AreaReport::for_module(&m).total_ge();
        // Paper: "about 371 gates". Accept a ±12% engineering band.
        assert!(
            (area - 371.0).abs() / 371.0 < 0.12,
            "controller area {area} GE vs paper 371"
        );
    }

    fn setup(sim: &mut Simulator) {
        for p in [
            "tck",
            "test_mode",
            "next_session",
            "auto_mode",
            "t_se",
            "t_capture",
            "t_update",
        ] {
            sim.set_by_name(p, Logic::Zero).unwrap();
        }
        sim.set_by_name("trst_n", Logic::Zero).unwrap();
        sim.settle().unwrap();
        sim.set_by_name("trst_n", Logic::One).unwrap();
        sim.settle().unwrap();
    }

    #[test]
    fn sessions_advance_in_order() {
        let m = controller_module(&ControllerSpec::dsc()).unwrap();
        let mut sim: Simulator = Simulator::new(&m).unwrap();
        setup(&mut sim);
        assert_eq!(sim.get_by_name("session[0]").unwrap(), Logic::One);
        assert_eq!(sim.get_by_name("session[1]").unwrap(), Logic::Zero);
        sim.set_by_name("next_session", Logic::One).unwrap();
        sim.clock_cycle_by_name("tck").unwrap();
        sim.set_by_name("next_session", Logic::Zero).unwrap();
        sim.settle().unwrap();
        assert_eq!(sim.get_by_name("session[0]").unwrap(), Logic::Zero);
        assert_eq!(sim.get_by_name("session[1]").unwrap(), Logic::One);
    }

    #[test]
    fn core_controls_follow_session_membership() {
        let m = controller_module(&ControllerSpec::dsc()).unwrap();
        let mut sim: Simulator = Simulator::new(&m).unwrap();
        setup(&mut sim);
        sim.set_by_name("test_mode", Logic::One).unwrap();
        sim.set_by_name("t_se", Logic::One).unwrap();
        sim.settle().unwrap();
        // Session 0: USB and TV active, JPEG not.
        assert_eq!(sim.get_by_name("usb_se").unwrap(), Logic::One);
        assert_eq!(sim.get_by_name("tv_se").unwrap(), Logic::One);
        assert_eq!(sim.get_by_name("usb_intest").unwrap(), Logic::One);
        assert_eq!(sim.get_by_name("jpeg_intest").unwrap(), Logic::Zero);
        // Advance to session 2: JPEG active, BIST started.
        for _ in 0..2 {
            sim.set_by_name("next_session", Logic::One).unwrap();
            sim.clock_cycle_by_name("tck").unwrap();
            sim.set_by_name("next_session", Logic::Zero).unwrap();
        }
        sim.settle().unwrap();
        assert_eq!(sim.get_by_name("usb_se").unwrap(), Logic::Zero);
        assert_eq!(sim.get_by_name("jpeg_intest").unwrap(), Logic::One);
        assert_eq!(sim.get_by_name("bist_start[0]").unwrap(), Logic::One);
    }

    #[test]
    fn cycle_counter_counts_only_in_test_mode() {
        let m = controller_module(&ControllerSpec::dsc()).unwrap();
        let mut sim: Simulator = Simulator::new(&m).unwrap();
        setup(&mut sim);
        for _ in 0..3 {
            sim.clock_cycle_by_name("tck").unwrap();
        }
        assert_eq!(sim.get_by_name("cycle_count[0]").unwrap(), Logic::Zero);
        sim.set_by_name("test_mode", Logic::One).unwrap();
        for _ in 0..3 {
            sim.clock_cycle_by_name("tck").unwrap();
        }
        // 3 = 0b11: bits 0 and 1 set.
        assert_eq!(sim.get_by_name("cycle_count[0]").unwrap(), Logic::One);
        assert_eq!(sim.get_by_name("cycle_count[1]").unwrap(), Logic::One);
        assert_eq!(sim.get_by_name("cycle_count[2]").unwrap(), Logic::Zero);
    }

    #[test]
    fn ate_driven_controls_pass_through() {
        let m = controller_module(&ControllerSpec::dsc()).unwrap();
        let mut sim: Simulator = Simulator::new(&m).unwrap();
        setup(&mut sim);
        sim.set_by_name("test_mode", Logic::One).unwrap();
        sim.set_by_name("t_capture", Logic::One).unwrap();
        sim.settle().unwrap();
        assert_eq!(sim.get_by_name("usb_capture").unwrap(), Logic::One);
        sim.set_by_name("t_capture", Logic::Zero).unwrap();
        sim.settle().unwrap();
        assert_eq!(sim.get_by_name("usb_capture").unwrap(), Logic::Zero);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_session_panics() {
        let spec = ControllerSpec {
            sessions: 2,
            cores: vec![CoreControl {
                name: "x".to_string(),
                active_sessions: vec![5],
                uses_scan: false,
            }],
            cycle_counter_bits: 4,
            shift_counter_bits: 4,
            bist_interfaces: 0,
        };
        let _ = controller_module(&spec);
    }
}
