//! Test control-IO sharing.
//!
//! The DSC chip's three large cores need 19 control IOs unshared: "6 clock
//! signals, 4 reset signals, 7 test enable signals, and 2 SE signals. With
//! shared test IOs, the test control IO counts are reduced." This module
//! implements the sharing optimizer: compatible control signals are merged
//! onto common pins subject to electrical/protocol rules.
//!
//! Sharing rules (each switchable in [`SharePolicy`]):
//!
//! * **Scan enables** are timing-identical across cores → one pin.
//! * **Resets** may be asserted together during test → one pin.
//! * **Clocks** share only within the same frequency class; when the SOC
//!   generates IP clocks from an internal PLL (the DSC does), all clock
//!   pins collapse to the PLL reference.
//! * **Test enables** select which core is under test; with a session
//!   controller on chip they are generated from the session counter, so
//!   the pins reduce to `ceil(log2(sessions + 1))` session-select pins
//!   (or stay per-core when `te_via_controller` is off).

use std::collections::BTreeMap;
use std::fmt;

/// Electrical class of a control signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ControlClass {
    /// Clock with a frequency class in MHz (signals in different classes
    /// never share).
    Clock {
        /// Frequency class used for compatibility.
        freq_mhz: u32,
    },
    /// Asynchronous reset.
    Reset,
    /// Scan enable.
    ScanEnable,
    /// Test enable / test mode select.
    TestEnable,
}

impl fmt::Display for ControlClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ControlClass::Clock { freq_mhz } => write!(f, "clock@{freq_mhz}MHz"),
            ControlClass::Reset => f.write_str("reset"),
            ControlClass::ScanEnable => f.write_str("scan-enable"),
            ControlClass::TestEnable => f.write_str("test-enable"),
        }
    }
}

/// One core-level control signal that needs a chip pin unless shared.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ControlSignal {
    /// Owning core.
    pub core: String,
    /// Signal name within the core.
    pub name: String,
    /// Sharing class.
    pub class: ControlClass,
}

impl ControlSignal {
    /// Convenience constructor.
    #[must_use]
    pub fn new(core: &str, name: &str, class: ControlClass) -> Self {
        ControlSignal {
            core: core.to_string(),
            name: name.to_string(),
            class,
        }
    }
}

/// Sharing policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharePolicy {
    /// Merge all scan enables onto one pin.
    pub share_scan_enables: bool,
    /// Merge all resets onto one pin.
    pub share_resets: bool,
    /// Merge clocks within the same frequency class.
    pub share_clocks_same_freq: bool,
    /// All IP clocks come from an internal PLL: a single reference pin
    /// serves every clock (the DSC arrangement).
    pub pll_generated_clocks: bool,
    /// Generate test enables from the on-chip session controller; pin
    /// cost becomes `ceil(log2(sessions + 1))`.
    pub te_via_controller: bool,
    /// Number of test sessions (used with `te_via_controller`).
    pub sessions: usize,
}

impl Default for SharePolicy {
    fn default() -> Self {
        SharePolicy {
            share_scan_enables: true,
            share_resets: true,
            share_clocks_same_freq: true,
            pll_generated_clocks: false,
            te_via_controller: false,
            sessions: 1,
        }
    }
}

impl SharePolicy {
    /// The DSC configuration: PLL clocks, controller-generated TEs.
    #[must_use]
    pub fn dsc(sessions: usize) -> Self {
        SharePolicy {
            share_scan_enables: true,
            share_resets: true,
            share_clocks_same_freq: true,
            pll_generated_clocks: true,
            te_via_controller: true,
            sessions,
        }
    }

    /// No sharing at all (the "unshared" baseline that yields 19 pins on
    /// the DSC).
    #[must_use]
    pub fn unshared() -> Self {
        SharePolicy {
            share_scan_enables: false,
            share_resets: false,
            share_clocks_same_freq: false,
            pll_generated_clocks: false,
            te_via_controller: false,
            sessions: 1,
        }
    }
}

/// A group of signals sharing one chip pin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShareGroup {
    /// Name of the resulting chip pin.
    pub pin: String,
    /// The member signals (`core/name`).
    pub members: Vec<String>,
}

/// Result of control sharing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShareReport {
    /// Pin count without sharing (one per signal; the paper's 19).
    pub unshared_pins: usize,
    /// Pin groups after sharing.
    pub groups: Vec<ShareGroup>,
    /// Extra pins introduced by the policy (session-select pins when test
    /// enables are controller-generated).
    pub extra_pins: usize,
}

impl ShareReport {
    /// Total chip pins after sharing.
    #[must_use]
    pub fn shared_pins(&self) -> usize {
        self.groups.len() + self.extra_pins
    }

    /// Pins saved by sharing.
    #[must_use]
    pub fn saved(&self) -> usize {
        self.unshared_pins.saturating_sub(self.shared_pins())
    }
}

impl fmt::Display for ShareReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "control IOs: {} unshared -> {} shared (saved {})",
            self.unshared_pins,
            self.shared_pins(),
            self.saved()
        )?;
        for g in &self.groups {
            writeln!(f, "  {}: {}", g.pin, g.members.join(", "))?;
        }
        if self.extra_pins > 0 {
            writeln!(f, "  + {} session-select pin(s)", self.extra_pins)?;
        }
        Ok(())
    }
}

/// Groups control signals onto shared pins under `policy`.
///
/// Identical `(core, name)` pairs are the same physical pin and are
/// deduplicated first (e.g. a core's scan task and functional task both
/// listing its clock).
#[must_use]
pub fn share_controls(signals: &[ControlSignal], policy: &SharePolicy) -> ShareReport {
    let mut dedup: Vec<ControlSignal> = Vec::with_capacity(signals.len());
    for s in signals {
        if !dedup.iter().any(|d| d.core == s.core && d.name == s.name) {
            dedup.push(s.clone());
        }
    }
    let signals: &[ControlSignal] = &dedup;
    let unshared_pins = signals.len();
    let mut groups: Vec<ShareGroup> = Vec::new();
    let mut extra_pins = 0usize;

    let mut clock_bins: BTreeMap<Option<u32>, Vec<String>> = BTreeMap::new();
    let mut resets: Vec<String> = Vec::new();
    let mut ses: Vec<String> = Vec::new();
    let mut tes: Vec<String> = Vec::new();
    let mut solo = 0usize;

    for s in signals {
        let label = format!("{}/{}", s.core, s.name);
        match s.class {
            ControlClass::Clock { freq_mhz } => {
                let key = if policy.pll_generated_clocks {
                    None // one bin for everything
                } else if policy.share_clocks_same_freq {
                    Some(freq_mhz)
                } else {
                    // Unique bin per signal.
                    solo += 1;
                    clock_bins
                        .entry(Some(u32::MAX - solo as u32))
                        .or_default()
                        .push(label);
                    continue;
                };
                clock_bins.entry(key).or_default().push(label);
            }
            ControlClass::Reset => resets.push(label),
            ControlClass::ScanEnable => ses.push(label),
            ControlClass::TestEnable => tes.push(label),
        }
    }

    for (key, members) in clock_bins {
        let pin = match key {
            None => "clk_pll_ref".to_string(),
            Some(f) if f < u32::MAX - 1_000_000 => format!("clk_{f}mhz"),
            _ => format!("clk_dedicated_{}", groups.len()),
        };
        groups.push(ShareGroup { pin, members });
    }
    push_class(&mut groups, resets, policy.share_resets, "rst");
    push_class(&mut groups, ses, policy.share_scan_enables, "se");
    if policy.te_via_controller {
        if !tes.is_empty() {
            // Pins replaced by session-select inputs to the controller.
            let n = (usize::BITS - policy.sessions.max(1).leading_zeros()) as usize;
            extra_pins = n.max(1);
        }
    } else {
        push_class(&mut groups, tes, false, "te");
    }

    ShareReport {
        unshared_pins,
        groups,
        extra_pins,
    }
}

fn push_class(groups: &mut Vec<ShareGroup>, members: Vec<String>, merge: bool, base: &str) {
    if members.is_empty() {
        return;
    }
    if merge {
        groups.push(ShareGroup {
            pin: base.to_string(),
            members,
        });
    } else {
        for (i, m) in members.into_iter().enumerate() {
            groups.push(ShareGroup {
                pin: format!("{base}_{i}"),
                members: vec![m],
            });
        }
    }
}

/// The DSC control inventory from the paper: 6 clocks, 4 resets, 7 test
/// enables, 2 scan enables = 19 pins unshared.
///
/// USB: 4 clock domains, 3 resets, 6 test signals, 1 SE. TV: 1 clock,
/// 1 reset, 1 TE, 1 SE. JPEG: 1 clock.
#[must_use]
pub fn dsc_control_inventory() -> Vec<ControlSignal> {
    let mut v = Vec::new();
    for (i, f) in [48, 12, 480, 60].iter().enumerate() {
        v.push(ControlSignal::new(
            "USB",
            &format!("ck{i}"),
            ControlClass::Clock { freq_mhz: *f },
        ));
    }
    for i in 0..3 {
        v.push(ControlSignal::new(
            "USB",
            &format!("rst{i}"),
            ControlClass::Reset,
        ));
    }
    for i in 0..6 {
        v.push(ControlSignal::new(
            "USB",
            &format!("test{i}"),
            ControlClass::TestEnable,
        ));
    }
    v.push(ControlSignal::new("USB", "se", ControlClass::ScanEnable));
    v.push(ControlSignal::new(
        "TV",
        "ck",
        ControlClass::Clock { freq_mhz: 27 },
    ));
    v.push(ControlSignal::new("TV", "rst", ControlClass::Reset));
    v.push(ControlSignal::new("TV", "te", ControlClass::TestEnable));
    v.push(ControlSignal::new("TV", "se", ControlClass::ScanEnable));
    v.push(ControlSignal::new(
        "JPEG",
        "ck",
        ControlClass::Clock { freq_mhz: 54 },
    ));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dsc_inventory_matches_paper_breakdown() {
        let inv = dsc_control_inventory();
        assert_eq!(inv.len(), 19, "paper: 19 total control IOs");
        let count = |c: fn(&ControlClass) -> bool| inv.iter().filter(|s| c(&s.class)).count();
        assert_eq!(
            count(|c| matches!(c, ControlClass::Clock { .. })),
            6,
            "6 clock signals"
        );
        assert_eq!(count(|c| matches!(c, ControlClass::Reset)), 4, "4 resets");
        assert_eq!(
            count(|c| matches!(c, ControlClass::TestEnable)),
            7,
            "7 test enables"
        );
        assert_eq!(
            count(|c| matches!(c, ControlClass::ScanEnable)),
            2,
            "2 SE signals"
        );
    }

    #[test]
    fn unshared_policy_keeps_19_pins() {
        let rep = share_controls(&dsc_control_inventory(), &SharePolicy::unshared());
        assert_eq!(rep.unshared_pins, 19);
        assert_eq!(rep.shared_pins(), 19);
        assert_eq!(rep.saved(), 0);
    }

    #[test]
    fn dsc_policy_reduces_pins_substantially() {
        let rep = share_controls(&dsc_control_inventory(), &SharePolicy::dsc(3));
        // 1 PLL ref + 1 rst + 1 se + 2 session-select = 5.
        assert_eq!(rep.shared_pins(), 5, "{rep}");
        assert!(rep.saved() >= 14);
    }

    #[test]
    fn same_freq_clocks_share_without_pll() {
        let signals = vec![
            ControlSignal::new("A", "ck", ControlClass::Clock { freq_mhz: 100 }),
            ControlSignal::new("B", "ck", ControlClass::Clock { freq_mhz: 100 }),
            ControlSignal::new("C", "ck", ControlClass::Clock { freq_mhz: 50 }),
        ];
        let rep = share_controls(&signals, &SharePolicy::default());
        // Two frequency classes -> two pins.
        assert_eq!(rep.shared_pins(), 2);
    }

    #[test]
    fn te_pins_stay_per_core_without_controller() {
        let signals = vec![
            ControlSignal::new("A", "te", ControlClass::TestEnable),
            ControlSignal::new("B", "te", ControlClass::TestEnable),
        ];
        let rep = share_controls(&signals, &SharePolicy::default());
        assert_eq!(rep.shared_pins(), 2);
        let rep2 = share_controls(
            &signals,
            &SharePolicy {
                te_via_controller: true,
                sessions: 3,
                ..SharePolicy::default()
            },
        );
        // ceil(log2(4)) = 2 session-select pins, no TE pins.
        assert_eq!(rep2.shared_pins(), 2);
        assert_eq!(rep2.extra_pins, 2);
    }

    #[test]
    fn report_display_lists_groups() {
        let rep = share_controls(&dsc_control_inventory(), &SharePolicy::dsc(3));
        let text = rep.to_string();
        assert!(text.contains("clk_pll_ref"), "{text}");
        assert!(text.contains("USB/se"), "{text}");
    }
}
