//! Chip test-IO budget arithmetic.
//!
//! The paper's central scheduling observation: *"When the test IO resource
//! constraint is considered, parallel testing may not be better than
//! serial testing. This is because more test control IOs are needed for
//! parallel testing, so fewer IO pins can be used as the test data IOs
//! (i.e., TAM IOs)."*
//!
//! [`PinBudget`] turns a control-pin count into an available TAM width:
//! every TAM wire needs a stimulus pin *and* a response pin, so
//! `tam_width = (test_pins - reserved - control_pins) / 2`.

use std::fmt;

/// The chip's test-usable pin budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PinBudget {
    /// Chip pins available in test mode (functional pins are reusable as
    /// test pins through pad muxing).
    pub test_pins: usize,
    /// Pins that can never carry test data (PLL reference, power control,
    /// the global test-mode pin itself...).
    pub reserved: usize,
}

impl PinBudget {
    /// Budget with no reserved pins.
    #[must_use]
    pub fn new(test_pins: usize) -> Self {
        PinBudget {
            test_pins,
            reserved: 0,
        }
    }

    /// Budget with reserved pins.
    #[must_use]
    pub fn with_reserved(test_pins: usize, reserved: usize) -> Self {
        PinBudget {
            test_pins,
            reserved,
        }
    }

    /// Pins left for test data after control pins are allocated.
    #[must_use]
    pub fn data_pins(&self, control_pins: usize) -> usize {
        self.test_pins
            .saturating_sub(self.reserved)
            .saturating_sub(control_pins)
    }

    /// Maximum TAM width (wire pairs) given `control_pins` in use: each
    /// TAM wire consumes one input pin and one output pin.
    #[must_use]
    pub fn tam_width(&self, control_pins: usize) -> usize {
        self.data_pins(control_pins) / 2
    }
}

impl fmt::Display for PinBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} test pins ({} reserved)",
            self.test_pins, self.reserved
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tam_width_shrinks_with_control_pins() {
        let b = PinBudget::with_reserved(180, 2);
        // The paper's DSC: 19 unshared control pins.
        let wide = b.tam_width(6); // shared controls
        let narrow = b.tam_width(19); // unshared controls
        assert!(wide > narrow, "{wide} vs {narrow}");
        assert_eq!(narrow, (180 - 2 - 19) / 2);
    }

    #[test]
    fn saturating_at_zero() {
        let b = PinBudget::new(10);
        assert_eq!(b.data_pins(20), 0);
        assert_eq!(b.tam_width(20), 0);
    }

    #[test]
    fn display_mentions_reserved() {
        let b = PinBudget::with_reserved(100, 4);
        assert!(b.to_string().contains("4 reserved"));
    }
}
