//! TAM bus and TAM multiplexer generation.
//!
//! The DSC chip uses a multiplexed TAM: chip test-data pins carry each
//! session's active cores' wrapper chains; between sessions the TAM
//! multiplexer re-routes the pins. The paper reports the TAM multiplexer
//! at "about 132 gates".
//!
//! Stimulus wires (`tam_in`) are broadcast to all cores (pure wiring — the
//! wrapper of a deselected core ignores its `wsi` pins), so the gate cost
//! sits in the response path: one session-selected multiplexer tree per
//! `tam_out` wire.

use std::fmt;
use steac_netlist::{Module, NetlistBuilder, NetlistError};

/// One core's TAM assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TamCoreSpec {
    /// Core name (used in port names).
    pub name: String,
    /// Number of TAM wires assigned.
    pub wires: usize,
    /// First TAM wire index used by this core.
    pub offset: usize,
    /// Session in which the core's responses drive the TAM outputs.
    pub session: usize,
}

/// TAM multiplexer configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TamSpec {
    /// Chip TAM width (wire pairs).
    pub width: usize,
    /// Number of sessions (selects are `ceil(log2(sessions))` bits).
    pub sessions: usize,
    /// Core assignments.
    pub cores: Vec<TamCoreSpec>,
}

impl TamSpec {
    fn sel_bits(&self) -> usize {
        (usize::BITS - (self.sessions.max(2) - 1).leading_zeros()) as usize
    }
}

impl fmt::Display for TamSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "TAM width {} over {} sessions",
            self.width, self.sessions
        )?;
        for c in &self.cores {
            writeln!(
                f,
                "  {}: wires [{}..{}) in session {}",
                c.name,
                c.offset,
                c.offset + c.wires,
                c.session
            )?;
        }
        Ok(())
    }
}

/// Generates the TAM output multiplexer.
///
/// Ports: `sel[b]` session-select inputs, `<core>_wso[k]` response inputs
/// per core, `tam_out[k]` outputs.
///
/// # Errors
///
/// Propagates netlist construction errors.
///
/// # Panics
///
/// Panics if a core's wire range exceeds the TAM width or two cores in
/// the same session overlap on a wire.
pub fn tam_mux_module(spec: &TamSpec) -> Result<Module, NetlistError> {
    for c in &spec.cores {
        assert!(
            c.offset + c.wires <= spec.width,
            "core {} wires [{}, {}) exceed TAM width {}",
            c.name,
            c.offset,
            c.offset + c.wires,
            spec.width
        );
        assert!(
            c.session < spec.sessions,
            "core {} session out of range",
            c.name
        );
    }
    // Overlap check per (session, wire).
    let mut owner: Vec<Vec<Option<usize>>> = vec![vec![None; spec.width]; spec.sessions];
    for (ci, c) in spec.cores.iter().enumerate() {
        for (k, slot) in owner[c.session]
            .iter_mut()
            .enumerate()
            .skip(c.offset)
            .take(c.wires)
        {
            assert!(
                slot.is_none(),
                "TAM wire {k} in session {} claimed twice",
                c.session
            );
            *slot = Some(ci);
        }
    }

    let mut b = NetlistBuilder::new("steac_tam_mux");
    let sel: Vec<_> = (0..spec.sel_bits())
        .map(|i| b.input(&format!("sel[{i}]")))
        .collect();
    // Response inputs per core.
    let mut core_in: Vec<Vec<steac_netlist::NetId>> = Vec::with_capacity(spec.cores.len());
    for c in &spec.cores {
        core_in.push(
            (0..c.wires)
                .map(|k| b.input(&format!("{}_wso[{k}]", c.name)))
                .collect(),
        );
    }
    let tie = b.tie0();
    for k in 0..spec.width {
        // Per-session source for this wire (tie-0 when unused).
        let sources: Vec<steac_netlist::NetId> = (0..spec.sessions)
            .map(|s| match owner[s][k] {
                Some(ci) => core_in[ci][k - spec.cores[ci].offset],
                None => tie,
            })
            .collect();
        let out = b.mux_tree(&sources, &sel);
        // Output buffer: the TAM wire drives a pad.
        let buffered = b.gate(steac_netlist::GateKind::Buf, &[out]);
        b.output(&format!("tam_out[{k}]"), buffered);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use steac_netlist::AreaReport;
    use steac_sim::{Logic, Simulator};

    /// A DSC-like TAM: 16 wires, 3 sessions, three cores.
    fn dsc_like() -> TamSpec {
        TamSpec {
            width: 16,
            sessions: 3,
            cores: vec![
                TamCoreSpec {
                    name: "usb".to_string(),
                    wires: 12,
                    offset: 0,
                    session: 0,
                },
                TamCoreSpec {
                    name: "tv".to_string(),
                    wires: 4,
                    offset: 12,
                    session: 0,
                },
                TamCoreSpec {
                    name: "tv2".to_string(),
                    wires: 16,
                    offset: 0,
                    session: 1,
                },
                TamCoreSpec {
                    name: "jpeg".to_string(),
                    wires: 16,
                    offset: 0,
                    session: 2,
                },
            ],
        }
    }

    #[test]
    fn area_is_in_the_paper_band() {
        let m = tam_mux_module(&dsc_like()).unwrap();
        let area = AreaReport::for_module(&m).total_ge();
        // Paper: "about 132 gates" for the TAM multiplexer.
        assert!(
            (area - 132.0).abs() / 132.0 < 0.2,
            "TAM mux area {area} GE vs paper 132"
        );
    }

    #[test]
    fn routing_follows_session_select() {
        let spec = TamSpec {
            width: 2,
            sessions: 2,
            cores: vec![
                TamCoreSpec {
                    name: "a".to_string(),
                    wires: 2,
                    offset: 0,
                    session: 0,
                },
                TamCoreSpec {
                    name: "b".to_string(),
                    wires: 2,
                    offset: 0,
                    session: 1,
                },
            ],
        };
        let m = tam_mux_module(&spec).unwrap();
        let mut sim: Simulator = Simulator::new(&m).unwrap();
        sim.set_by_name("a_wso[0]", Logic::One).unwrap();
        sim.set_by_name("a_wso[1]", Logic::Zero).unwrap();
        sim.set_by_name("b_wso[0]", Logic::Zero).unwrap();
        sim.set_by_name("b_wso[1]", Logic::One).unwrap();
        sim.set_by_name("sel[0]", Logic::Zero).unwrap();
        sim.settle().unwrap();
        assert_eq!(sim.get_by_name("tam_out[0]").unwrap(), Logic::One);
        assert_eq!(sim.get_by_name("tam_out[1]").unwrap(), Logic::Zero);
        sim.set_by_name("sel[0]", Logic::One).unwrap();
        sim.settle().unwrap();
        assert_eq!(sim.get_by_name("tam_out[0]").unwrap(), Logic::Zero);
        assert_eq!(sim.get_by_name("tam_out[1]").unwrap(), Logic::One);
    }

    #[test]
    fn unused_session_wire_reads_zero() {
        let spec = TamSpec {
            width: 1,
            sessions: 2,
            cores: vec![TamCoreSpec {
                name: "a".to_string(),
                wires: 1,
                offset: 0,
                session: 0,
            }],
        };
        let m = tam_mux_module(&spec).unwrap();
        let mut sim: Simulator = Simulator::new(&m).unwrap();
        sim.set_by_name("a_wso[0]", Logic::One).unwrap();
        sim.set_by_name("sel[0]", Logic::One).unwrap(); // session 1: nothing
        sim.settle().unwrap();
        assert_eq!(sim.get_by_name("tam_out[0]").unwrap(), Logic::Zero);
    }

    #[test]
    #[should_panic(expected = "claimed twice")]
    fn overlapping_same_session_wires_panic() {
        let spec = TamSpec {
            width: 2,
            sessions: 1,
            cores: vec![
                TamCoreSpec {
                    name: "a".to_string(),
                    wires: 2,
                    offset: 0,
                    session: 0,
                },
                TamCoreSpec {
                    name: "b".to_string(),
                    wires: 1,
                    offset: 1,
                    session: 0,
                },
            ],
        };
        let _ = tam_mux_module(&spec);
    }

    #[test]
    fn display_shows_assignments() {
        let text = dsc_like().to_string();
        assert!(text.contains("usb"), "{text}");
        assert!(text.contains("[0..12)"), "{text}");
    }
}
