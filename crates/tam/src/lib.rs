//! Test Access Mechanism (TAM), Test Controller and test-IO management
//! for the STEAC platform.
//!
//! The paper's §3 quantifies three artifacts this crate generates and
//! models:
//!
//! * the **TAM multiplexer** ("about 132 gates") — [`bus`],
//! * the **Test Controller** ("about 371 gates", session sequencing) —
//!   [`controller`],
//! * the **test-IO budget**: "more test control IOs are needed for
//!   parallel testing, so fewer IO pins can be used as the test data IOs
//!   (i.e., TAM IOs)" — [`iopin`] — and the control-IO sharing that
//!   reduced the DSC's 19 control pins — [`share`].

pub mod bus;
pub mod controller;
pub mod iopin;
pub mod share;

pub use bus::{tam_mux_module, TamCoreSpec, TamSpec};
pub use controller::{controller_module, ControllerSpec, CoreControl};
pub use iopin::PinBudget;
pub use share::{
    share_controls, ControlClass, ControlSignal, ShareGroup, SharePolicy, ShareReport,
};

#[cfg(test)]
mod tests {
    #[test]
    fn crate_links() {
        // The public items are exercised in module tests; this guards the
        // re-export surface.
        let _ = crate::PinBudget::new(180);
    }
}
