//! STEAC — SOC Test Aid Console.
//!
//! The test-integration platform of *"SOC Testing Methodology and
//! Practice"* (DATE 2005). The platform consists of the four modules of
//! the paper's Fig. 1 — the STIL Parser, the Core Test Scheduler, the
//! Test Insertion tool and the Pattern Translators — plus the BRAINS
//! memory-BIST compiler integrated per Fig. 4:
//!
//! ```text
//!   core STIL files ──► STIL Parser ──► Core Test Scheduler ──┐
//!          (steac-stil)        (steac-sched + steac-tam)      │
//!                                                             ▼
//!   DFT-ready netlist ◄── Test Insertion ◄── scheduling results
//!      (steac-netlist)  (steac-wrapper + steac-tam)           │
//!                                                             ▼
//!   chip-level ATE patterns ◄── Pattern Translator (steac-pattern)
//!                                        │
//!                                        ▼  verification (compile-then-execute)
//!   SimProgram IR ◄── levelize netlist once ── steac-sim
//!        │  flat instruction stream over one packed value buffer
//!        ▼
//!   64-lane packed execution: batch playback, PPSFP fault grading
//! ```
//!
//! [`flow::run_flow`] executes the whole pipeline; [`insert::insert_dft`]
//! performs netlist-level insertion on its own; [`report`] renders the
//! integration reports the paper's §3 quotes (test time, control IOs,
//! DFT area, overhead).
//!
//! Every simulation-backed step (scan-pattern verification, BIST fault
//! grading, wrapper equivalence) rides `steac-sim`'s compiled pipeline:
//! the flat netlist is levelized **once** into a `SimProgram` — a
//! contiguous instruction stream over a single flat value buffer — and
//! then executed with 64 packed 4-value lanes per pass, so pattern sets
//! play 64 patterns at a time and fault simulation grades a good machine
//! plus 63 faulty machines per pass (with fault dropping).
//!
//! # Example
//!
//! ```
//! use steac::flow::{run_flow, CoreSource, FlowInput};
//!
//! # fn main() -> Result<(), steac::FlowError> {
//! let stil = r#"
//! STIL 1.0;
//! Signals { ck In; d In; q Out; si In { ScanIn; } so Out { ScanOut; } se In; }
//! SignalGroups { clocks = 'ck'; scan_enables = 'se'; pi = 'd'; po = 'q'; }
//! ScanStructures { ScanChain "c0" { ScanLength 16; ScanIn si; ScanOut so; } }
//! Procedures { "load_unload" { Shift { V { si=#; so=#; ck=P; } } } }
//! Pattern scan { Loop 10 { Call "load_unload"; } }
//! "#;
//! let input = FlowInput {
//!     cores: vec![CoreSource::new("tiny", stil)],
//!     ..FlowInput::default()
//! };
//! let result = run_flow(&input)?;
//! assert_eq!(result.infos.len(), 1);
//! assert!(result.schedule.total_cycles > 0);
//! # Ok(())
//! # }
//! ```

pub mod flow;
pub mod insert;
pub mod report;

pub use flow::{run_flow, CoreSource, FlowInput, FlowResult, StageTiming};
pub use insert::{insert_dft, InsertSpec, InsertionReport};

use std::fmt;

/// Errors from the STEAC platform.
#[derive(Debug)]
#[non_exhaustive]
pub enum FlowError {
    /// STIL parsing or extraction failed for a core.
    Stil {
        /// The core whose STIL failed.
        core: String,
        /// Underlying error.
        source: steac_stil::StilError,
    },
    /// Netlist generation/insertion failed.
    Netlist(steac_netlist::NetlistError),
    /// BIST compilation failed.
    Bist(steac_membist::BistError),
    /// The scheduler found no feasible schedule; the payload says why
    /// (which tasks do not fit, or which budget ran out).
    Infeasible(steac_sched::ScheduleError),
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Stil { core, source } => {
                write!(f, "STIL for core `{core}`: {source}")
            }
            FlowError::Netlist(e) => write!(f, "netlist: {e}"),
            FlowError::Bist(e) => write!(f, "BIST: {e}"),
            FlowError::Infeasible(e) => {
                write!(f, "no feasible test schedule: {e}")
            }
        }
    }
}

impl std::error::Error for FlowError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FlowError::Stil { source, .. } => Some(source),
            FlowError::Netlist(e) => Some(e),
            FlowError::Bist(e) => Some(e),
            FlowError::Infeasible(e) => Some(e),
        }
    }
}

impl From<steac_sched::ScheduleError> for FlowError {
    fn from(e: steac_sched::ScheduleError) -> Self {
        FlowError::Infeasible(e)
    }
}

impl From<steac_netlist::NetlistError> for FlowError {
    fn from(e: steac_netlist::NetlistError) -> Self {
        FlowError::Netlist(e)
    }
}

impl From<steac_membist::BistError> for FlowError {
    fn from(e: steac_membist::BistError) -> Self {
        FlowError::Bist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_names_the_core() {
        let e = FlowError::Stil {
            core: "usb".to_string(),
            source: steac_stil::StilError::Unresolved {
                name: "x".to_string(),
                context: "test".to_string(),
            },
        };
        assert!(e.to_string().contains("usb"));
    }
}
