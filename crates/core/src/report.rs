//! Integration reports: the numbers the paper's §3 quotes, rendered for
//! humans and for the experiment harness.

use crate::flow::FlowResult;
use crate::insert::InsertionReport;
use std::fmt::Write as _;
use steac_sched::report::{render_nonsession, render_sessions};

/// Renders the flow result: Table-1-style core info, the schedules, the
/// BIST summary and stage timings (Fig. 1 trace).
#[must_use]
pub fn render_flow(result: &FlowResult) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "=== STEAC flow report ===");
    let _ = writeln!(out, "-- core test information (STIL Parser) --");
    for info in &result.infos {
        let _ = writeln!(out, "  {info}");
    }
    let _ = writeln!(out, "-- schedules (Core Test Scheduler) --");
    out.push_str(&render_sessions(&result.schedule, &result.tasks));
    match &result.nonsession {
        Ok(ns) => out.push_str(&render_nonsession(ns, &result.tasks)),
        Err(e) => {
            let _ = writeln!(out, "non-session schedule: infeasible ({e})");
        }
    }
    match &result.serial {
        Ok(s) => {
            let _ = writeln!(out, "serial reference: {} cycles", s.makespan);
        }
        Err(e) => {
            let _ = writeln!(out, "serial reference: infeasible ({e})");
        }
    }
    if let Some(bist) = &result.bist {
        let _ = writeln!(out, "-- BRAINS (Fig. 4 integration) --");
        out.push_str(&bist.to_string());
    }
    let _ = writeln!(out, "-- stage timings --");
    for t in &result.timings {
        let _ = writeln!(out, "  {:<16} {:?}", t.stage, t.elapsed);
    }
    let _ = writeln!(out, "  total            {:?}", result.total_runtime());
    out
}

/// Renders the insertion report against the paper's §3 area figures.
#[must_use]
pub fn render_insertion(report: &InsertionReport, chip_logic_ge: f64) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "=== test insertion report ===");
    let _ = writeln!(
        out,
        "WBR cell: {:.1} GE (paper: 26 NAND2-equivalents)",
        report.wbr_cell_ge
    );
    let _ = writeln!(
        out,
        "WBR cells inserted: {} ({:.0} GE total)",
        report.wbr_cells,
        report.wbr_total_ge()
    );
    let _ = writeln!(
        out,
        "Test Controller: {:.0} GE (paper: ~371 gates)",
        report.controller_ge
    );
    let _ = writeln!(
        out,
        "TAM multiplexer: {:.0} GE (paper: ~132 gates)",
        report.tam_mux_ge
    );
    let _ = writeln!(
        out,
        "controller + mux overhead: {:.2}% of {:.0} GE chip logic (paper: ~0.3%)",
        report.overhead_percent(chip_logic_ge),
        chip_logic_ge
    );
    for w in &report.wrapped {
        let _ = writeln!(
            out,
            "  {}: {} chains, {} boundary cells",
            w.module_name, w.width, w.boundary_cells
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::flow::{run_flow, CoreSource, FlowInput};

    #[test]
    fn flow_report_contains_all_sections() {
        let stil = r#"
STIL 1.0;
Signals { ck In; d In; q Out; si In { ScanIn; } so Out { ScanOut; } se In; }
SignalGroups { clocks = 'ck'; scan_enables = 'se'; pi = 'd'; po = 'q'; }
ScanStructures { ScanChain "c" { ScanLength 8; ScanIn si; ScanOut so; } }
Procedures { "load_unload" { Shift { V { si=#; ck=P; } } } }
Pattern p { Loop 5 { Call "load_unload"; } }
"#;
        let input = FlowInput {
            cores: vec![CoreSource::new("tiny", stil)],
            ..FlowInput::default()
        };
        let r = run_flow(&input).unwrap();
        let text = super::render_flow(&r);
        assert!(text.contains("STIL Parser"), "{text}");
        assert!(text.contains("session-based schedule"), "{text}");
        assert!(text.contains("stage timings"), "{text}");
    }
}
