//! The Fig. 1 flow: STIL parsing → scheduling → (optional) insertion →
//! pattern accounting, with per-stage wall-clock timings (the paper
//! quotes "5 minutes, using a SUN Blade 1000").

use crate::FlowError;
use std::time::{Duration, Instant};
use steac_membist::{BistDesign, Brains};
use steac_sched::{
    schedule_nonsession, schedule_serial, schedule_sessions, ChipConfig, NonSessionSchedule,
    ScheduleError, SessionSchedule, TestTask,
};
use steac_stil::{parse_stil, CoreTestInfo};
use steac_tam::{ControlClass, ControlSignal};

/// One core's inputs to the flow.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreSource {
    /// Core name.
    pub name: String,
    /// STIL test-information text (as emitted by ATPG).
    pub stil_text: String,
    /// Scheduling power weight of the core's scan test.
    pub scan_power: f64,
    /// Scheduling power weight of the core's functional test.
    pub func_power: f64,
    /// Control-signal inventory override; when `None` the inventory is
    /// derived from the STIL well-known groups.
    pub controls: Option<Vec<ControlSignal>>,
}

impl CoreSource {
    /// A core with default power weights.
    #[must_use]
    pub fn new(name: &str, stil_text: &str) -> Self {
        CoreSource {
            name: name.to_string(),
            stil_text: stil_text.to_string(),
            scan_power: 1.0,
            func_power: 1.0,
            controls: None,
        }
    }

    /// Sets the power weights.
    #[must_use]
    pub fn with_powers(mut self, scan: f64, func: f64) -> Self {
        self.scan_power = scan;
        self.func_power = func;
        self
    }

    /// Overrides the control inventory.
    #[must_use]
    pub fn with_controls(mut self, controls: Vec<ControlSignal>) -> Self {
        self.controls = Some(controls);
        self
    }
}

/// Inputs to the STEAC flow.
#[derive(Debug, Clone, Default)]
pub struct FlowInput {
    /// The cores.
    pub cores: Vec<CoreSource>,
    /// Chip-level scheduling configuration.
    pub config: ChipConfig,
    /// The BRAINS compiler, pre-loaded with the chip's memories (Fig. 4
    /// integration); `None` for SOCs without embedded memories.
    pub bist: Option<Brains>,
    /// Power weight per BIST sequencer group (defaults to 0.5 each).
    pub bist_powers: Vec<f64>,
}

/// Wall-clock timing of one flow stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageTiming {
    /// Stage name.
    pub stage: &'static str,
    /// Elapsed time.
    pub elapsed: Duration,
}

/// Everything the flow produces.
#[derive(Debug, Clone)]
pub struct FlowResult {
    /// Parsed per-core test information (Table 1 material).
    pub infos: Vec<CoreTestInfo>,
    /// The generated test tasks, in order: per-core scan, per-core
    /// functional, then BIST groups.
    pub tasks: Vec<TestTask>,
    /// The session-based schedule (STEAC's output).
    pub schedule: SessionSchedule,
    /// The non-session baseline for comparison. `Err` when the static
    /// architecture cannot test this chip at all — a legitimate outcome
    /// (the paper's point is that static control pinning costs pins),
    /// so it does not fail the flow.
    pub nonsession: Result<NonSessionSchedule, ScheduleError>,
    /// The idealised serial reference, same contract as `nonsession`.
    pub serial: Result<NonSessionSchedule, ScheduleError>,
    /// The compiled BIST design, when memories were supplied.
    pub bist: Option<BistDesign>,
    /// Per-stage timings.
    pub timings: Vec<StageTiming>,
}

impl FlowResult {
    /// Total flow runtime.
    #[must_use]
    pub fn total_runtime(&self) -> Duration {
        self.timings.iter().map(|t| t.elapsed).sum()
    }
}

/// Derives a control inventory from STIL-extracted info (one entry per
/// clock/reset/SE/TE pin).
fn controls_from_info(info: &CoreTestInfo) -> Vec<ControlSignal> {
    let mut v = Vec::new();
    for (i, c) in info.clocks.iter().enumerate() {
        let _ = c;
        v.push(ControlSignal::new(
            &info.name,
            &info.clocks[i],
            ControlClass::Clock { freq_mhz: 100 },
        ));
    }
    for r in &info.resets {
        v.push(ControlSignal::new(&info.name, r, ControlClass::Reset));
    }
    for s in &info.scan_enables {
        v.push(ControlSignal::new(&info.name, s, ControlClass::ScanEnable));
    }
    for t in &info.test_enables {
        v.push(ControlSignal::new(&info.name, t, ControlClass::TestEnable));
    }
    v
}

/// Runs the flow: parse STIL, build tasks (cores + BIST), schedule, and
/// time every stage.
///
/// # Errors
///
/// Returns [`FlowError::Stil`] for malformed core STIL,
/// [`FlowError::Bist`] for BIST compilation problems, and
/// [`FlowError::Infeasible`] when no schedule satisfies the constraints.
pub fn run_flow(input: &FlowInput) -> Result<FlowResult, FlowError> {
    let mut timings = Vec::new();

    // --- Stage 1: STIL Parser. ---
    let t0 = Instant::now();
    let mut infos = Vec::with_capacity(input.cores.len());
    for core in &input.cores {
        let file = parse_stil(&core.stil_text).map_err(|source| FlowError::Stil {
            core: core.name.clone(),
            source,
        })?;
        let info =
            CoreTestInfo::from_stil(&core.name, &file).map_err(|source| FlowError::Stil {
                core: core.name.clone(),
                source,
            })?;
        infos.push(info);
    }
    timings.push(StageTiming {
        stage: "stil_parse",
        elapsed: t0.elapsed(),
    });

    // --- Stage 2: BRAINS compilation (Fig. 4). ---
    let t0 = Instant::now();
    let bist = match &input.bist {
        Some(b) => Some(b.compile()?),
        None => None,
    };
    timings.push(StageTiming {
        stage: "brains_compile",
        elapsed: t0.elapsed(),
    });

    // --- Stage 3: Core Test Scheduler. ---
    let t0 = Instant::now();
    let mut tasks = Vec::new();
    for (core, info) in input.cores.iter().zip(&infos) {
        let controls = core
            .controls
            .clone()
            .unwrap_or_else(|| controls_from_info(info));
        if info.has_scan() && info.scan_patterns > 0 {
            tasks.push(
                TestTask::scan(
                    &core.name,
                    info.scan_patterns,
                    &info.scan_chains,
                    info.functional_inputs,
                    info.functional_outputs,
                    false,
                )
                .with_controls(controls.clone())
                .with_power(core.scan_power),
            );
        }
        if info.functional_patterns > 0 {
            // Functional tests need the clock(s) and test enables only.
            let func_controls: Vec<ControlSignal> = controls
                .iter()
                .filter(|c| {
                    matches!(
                        c.class,
                        ControlClass::Clock { .. } | ControlClass::TestEnable
                    )
                })
                .cloned()
                .collect();
            tasks.push(
                TestTask::functional(
                    &core.name,
                    info.functional_patterns,
                    info.functional_inputs,
                    info.functional_outputs,
                )
                .with_controls(func_controls)
                .with_power(core.func_power),
            );
        }
    }
    if let Some(b) = &bist {
        for (j, &cycles) in b.sequencer_cycles.iter().enumerate() {
            let power = input.bist_powers.get(j).copied().unwrap_or(0.5);
            tasks.push(TestTask::bist(&format!("group{j}"), cycles).with_power(power));
        }
    }
    let schedule = schedule_sessions(&tasks, &input.config)?;
    let nonsession = schedule_nonsession(&tasks, &input.config);
    let serial = schedule_serial(&tasks, &input.config);
    timings.push(StageTiming {
        stage: "schedule",
        elapsed: t0.elapsed(),
    });

    Ok(FlowResult {
        infos,
        tasks,
        schedule,
        nonsession,
        serial,
        bist,
        timings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY: &str = r#"
STIL 1.0;
Signals { ck In; rst In; se In; d0 In; d1 In; q0 Out;
          si In { ScanIn; } so Out { ScanOut; } }
SignalGroups { clocks = 'ck'; resets = 'rst'; scan_enables = 'se';
               pi = 'd0 + d1'; po = 'q0'; }
ScanStructures { ScanChain "c" { ScanLength 32; ScanIn si; ScanOut so; } }
Procedures { "load_unload" { Shift { V { si=#; so=#; ck=P; } } } }
Pattern scan { Loop 50 { Call "load_unload"; } }
Pattern func { Loop 1000 { V { d0=1; ck=P; } } }
"#;

    #[test]
    fn flow_produces_tasks_and_schedule() {
        let input = FlowInput {
            cores: vec![CoreSource::new("tiny", TINY)],
            ..FlowInput::default()
        };
        let r = run_flow(&input).unwrap();
        assert_eq!(r.infos.len(), 1);
        assert_eq!(r.tasks.len(), 2, "one scan + one functional task");
        assert!(r.schedule.total_cycles > 0);
        assert!(r.nonsession.expect("feasible baseline").makespan > 0);
        assert_eq!(r.timings.len(), 3);
    }

    #[test]
    fn flow_with_bist_adds_group_tasks() {
        use steac_membist::{MemorySpec, SramConfig};
        let mut brains = Brains::new();
        brains.add_memory(MemorySpec::new("m0", SramConfig::single_port(256, 8), 0));
        let input = FlowInput {
            cores: vec![CoreSource::new("tiny", TINY)],
            bist: Some(brains),
            ..FlowInput::default()
        };
        let r = run_flow(&input).unwrap();
        assert_eq!(r.tasks.len(), 3);
        let bist = r.bist.as_ref().unwrap();
        assert_eq!(bist.sequencer_count(), 1);
        assert_eq!(bist.sequencer_cycles[0], 2560);
    }

    #[test]
    fn bad_stil_names_the_core() {
        let input = FlowInput {
            cores: vec![CoreSource::new("broken", "not stil at all")],
            ..FlowInput::default()
        };
        match run_flow(&input) {
            Err(FlowError::Stil { core, .. }) => assert_eq!(core, "broken"),
            other => panic!("expected STIL error, got {other:?}"),
        }
    }

    #[test]
    fn derived_controls_match_group_counts() {
        let input = FlowInput {
            cores: vec![CoreSource::new("tiny", TINY)],
            ..FlowInput::default()
        };
        let r = run_flow(&input).unwrap();
        let scan_task = &r.tasks[0];
        // ck + rst + se (no TE in the tiny core).
        assert_eq!(scan_task.controls.len(), 3);
    }
}
