//! Test insertion: wraps the cores, generates the Test Controller and
//! TAM multiplexer, and stitches everything into a DFT top module —
//! "the generated test circuitry is inserted into the original SOC
//! netlist automatically. A new SOC design with DFT will be ready in
//! minutes."

use crate::FlowError;
use steac_netlist::{AreaReport, Design, NetId, NetlistBuilder};
use steac_tam::{
    controller_module, tam_mux_module, ControllerSpec, CoreControl, TamCoreSpec, TamSpec,
};
use steac_wrapper::cell::wbr_cell_area_ge;
use steac_wrapper::{wrap_core, WrapOptions, WrappedCore, WrapperPlan};

/// Per-core insertion request.
#[derive(Debug, Clone, PartialEq)]
pub struct InsertSpec {
    /// Core module name in the design.
    pub core_module: String,
    /// Wrapper interface description.
    pub wrap: WrapOptions,
    /// Wrapper chain plan (from the scheduler's TAM assignment).
    pub plan: WrapperPlan,
    /// Sessions in which the core is tested.
    pub sessions_active: Vec<usize>,
    /// First chip TAM wire assigned.
    pub tam_offset: usize,
}

/// What insertion produced.
#[derive(Debug, Clone)]
pub struct InsertionReport {
    /// Wrapped-core summaries.
    pub wrapped: Vec<WrappedCore>,
    /// Name of the generated DFT top module.
    pub dft_top: String,
    /// Area of one WBR cell in GE (the paper's 26).
    pub wbr_cell_ge: f64,
    /// Total WBR cells inserted.
    pub wbr_cells: usize,
    /// Test Controller area in GE (the paper's ~371).
    pub controller_ge: f64,
    /// TAM multiplexer area in GE (the paper's ~132).
    pub tam_mux_ge: f64,
}

impl InsertionReport {
    /// Total boundary-register area.
    #[must_use]
    pub fn wbr_total_ge(&self) -> f64 {
        self.wbr_cell_ge * self.wbr_cells as f64
    }

    /// Controller + TAM mux area — the quantity the paper reports as
    /// "about 0.3%" of the chip.
    #[must_use]
    pub fn control_logic_ge(&self) -> f64 {
        self.controller_ge + self.tam_mux_ge
    }

    /// Overhead of controller + TAM mux relative to the chip logic size.
    #[must_use]
    pub fn overhead_percent(&self, chip_logic_ge: f64) -> f64 {
        if chip_logic_ge <= 0.0 {
            return 0.0;
        }
        100.0 * self.control_logic_ge() / chip_logic_ge
    }
}

/// Wraps every core in `specs`, generates the session controller and TAM
/// mux, and builds `dft_top` wiring them together. All generated modules
/// are added to `design`.
///
/// # Errors
///
/// Propagates netlist-generation failures.
pub fn insert_dft(
    design: &mut Design,
    specs: &[InsertSpec],
    sessions: usize,
    tam_width: usize,
) -> Result<InsertionReport, FlowError> {
    // 1. Wrap the cores.
    let mut wrapped = Vec::with_capacity(specs.len());
    for spec in specs {
        wrapped.push(wrap_core(
            design,
            &spec.core_module,
            &spec.plan,
            &spec.wrap,
        )?);
    }

    // 2. Test Controller.
    let ctl_spec = ControllerSpec {
        sessions,
        cores: specs
            .iter()
            .map(|s| CoreControl {
                name: s.core_module.clone(),
                active_sessions: s.sessions_active.clone(),
                uses_scan: true,
            })
            .collect(),
        cycle_counter_bits: 16,
        shift_counter_bits: 10,
        bist_interfaces: 1,
    };
    let controller = controller_module(&ctl_spec)?;
    let controller_ge = AreaReport::for_module(&controller).total_ge();
    let controller_name = controller.name.clone();
    design.add_module(controller)?;

    // 3. TAM multiplexer.
    let tam_spec = TamSpec {
        width: tam_width,
        sessions,
        cores: specs
            .iter()
            .zip(&wrapped)
            .map(|(s, w)| TamCoreSpec {
                name: s.core_module.clone(),
                wires: w.width,
                offset: s.tam_offset,
                session: *s.sessions_active.first().unwrap_or(&0),
            })
            .collect(),
    };
    let tam_mux = tam_mux_module(&tam_spec)?;
    let tam_mux_ge = AreaReport::for_module(&tam_mux).total_ge();
    let tam_mux_name = tam_mux.name.clone();
    design.add_module(tam_mux)?;

    // 4. DFT top: wrapped cores + controller + mux.
    let mut b = NetlistBuilder::new("soc_dft_top");
    let tck = b.input("tck");
    let trst_n = b.input("trst_n");
    let test_mode = b.input("test_mode");
    let next_session = b.input("next_session");
    let auto_mode = b.input("auto_mode");
    let t_se = b.input("t_se");
    let t_capture = b.input("t_capture");
    let t_update = b.input("t_update");
    let tam_in: Vec<NetId> = (0..tam_width)
        .map(|k| b.input(&format!("tam_in[{k}]")))
        .collect();
    let tie0 = b.tie0();

    // Controller instance.
    let sbits = (usize::BITS - (sessions.max(2) - 1).leading_zeros()) as usize;
    let mut ctl_conns: Vec<(String, NetId)> = vec![
        ("tck".to_string(), tck),
        ("trst_n".to_string(), trst_n),
        ("test_mode".to_string(), test_mode),
        ("next_session".to_string(), next_session),
        ("auto_mode".to_string(), auto_mode),
        ("t_se".to_string(), t_se),
        ("t_capture".to_string(), t_capture),
        ("t_update".to_string(), t_update),
    ];
    let mut sel_nets = Vec::with_capacity(sbits);
    for i in 0..sbits {
        let n = b.net(&format!("sess_bin{i}"));
        ctl_conns.push((format!("session_bin[{i}]"), n));
        sel_nets.push(n);
    }
    let mut core_ctl_nets: Vec<(NetId, NetId, NetId, NetId)> = Vec::new(); // (se, cap, upd, intest)
    for spec in specs {
        let se = b.net(&format!("{}_se_w", spec.core_module));
        let cap = b.net(&format!("{}_cap_w", spec.core_module));
        let upd = b.net(&format!("{}_upd_w", spec.core_module));
        let int = b.net(&format!("{}_int_w", spec.core_module));
        ctl_conns.push((format!("{}_se", spec.core_module), se));
        ctl_conns.push((format!("{}_capture", spec.core_module), cap));
        ctl_conns.push((format!("{}_update", spec.core_module), upd));
        ctl_conns.push((format!("{}_intest", spec.core_module), int));
        core_ctl_nets.push((se, cap, upd, int));
    }
    let bist_start = b.net("bist_start0");
    ctl_conns.push(("bist_start[0]".to_string(), bist_start));
    b.output("bist_start", bist_start);
    {
        let refs: Vec<(&str, NetId)> = ctl_conns.iter().map(|(p, n)| (p.as_str(), *n)).collect();
        b.instance("u_controller", &controller_name, &refs);
    }

    // Wrapped cores.
    let mut mux_conns: Vec<(String, NetId)> = Vec::new();
    for ((spec, w), &(se, cap, upd, int)) in specs.iter().zip(&wrapped).zip(&core_ctl_nets) {
        let mut conns: Vec<(String, NetId)> = vec![
            ("wck".to_string(), tck),
            ("w_se".to_string(), se),
            ("w_capture".to_string(), cap),
            ("w_update".to_string(), upd),
            ("w_intest".to_string(), int),
            ("w_extest".to_string(), tie0),
        ];
        for k in 0..w.width {
            conns.push((format!("wsi[{k}]"), tam_in[spec.tam_offset + k]));
            let wso = b.net(&format!("{}_wso{k}", spec.core_module));
            conns.push((format!("wso[{k}]"), wso));
            mux_conns.push((format!("{}_wso[{k}]", spec.core_module), wso));
        }
        // Functional pins surface as chip pins.
        for pin in &w.wrapped_inputs {
            let n = b.input(&format!("{}_{}", spec.core_module, pin));
            conns.push((pin.clone(), n));
        }
        for pin in &w.wrapped_outputs {
            let n = b.net(&format!("{}_{}_n", spec.core_module, pin));
            b.output(&format!("{}_{}", spec.core_module, pin), n);
            conns.push((pin.clone(), n));
        }
        for pin in &spec.wrap.passthrough_inputs {
            let n = b.input(&format!("{}_{}", spec.core_module, pin));
            conns.push((pin.clone(), n));
        }
        for pin in &spec.wrap.passthrough_outputs {
            let n = b.net(&format!("{}_{}_n", spec.core_module, pin));
            b.output(&format!("{}_{}", spec.core_module, pin), n);
            conns.push((pin.clone(), n));
        }
        let refs: Vec<(&str, NetId)> = conns.iter().map(|(p, n)| (p.as_str(), *n)).collect();
        b.instance(
            &format!("u_{}_wrapped", spec.core_module),
            &w.module_name,
            &refs,
        );
    }

    // TAM mux instance.
    for (i, &n) in sel_nets.iter().enumerate() {
        mux_conns.push((format!("sel[{i}]"), n));
    }
    for k in 0..tam_width {
        let n = b.net(&format!("tam_out{k}"));
        mux_conns.push((format!("tam_out[{k}]"), n));
        b.output(&format!("tam_out[{k}]"), n);
    }
    {
        let refs: Vec<(&str, NetId)> = mux_conns.iter().map(|(p, n)| (p.as_str(), *n)).collect();
        b.instance("u_tam_mux", &tam_mux_name, &refs);
    }

    let top = b.finish()?;
    let dft_top = top.name.clone();
    design.add_module(top)?;

    let wbr_cells = wrapped.iter().map(|w| w.boundary_cells).sum();
    Ok(InsertionReport {
        wrapped,
        dft_top,
        wbr_cell_ge: wbr_cell_area_ge(),
        wbr_cells,
        controller_ge,
        tam_mux_ge,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use steac_netlist::{GateKind, NetlistBuilder};
    use steac_wrapper::balance_fixed;

    fn small_core(name: &str) -> steac_netlist::Module {
        let mut b = NetlistBuilder::new(name);
        let a = b.input("a");
        let c = b.input("b");
        let y = b.gate(GateKind::And2, &[a, c]);
        b.output("y", y);
        b.finish().unwrap()
    }

    #[test]
    fn insertion_builds_a_complete_dft_top() {
        let mut design = Design::new();
        design.add_module(small_core("core_a")).unwrap();
        design.add_module(small_core("core_b")).unwrap();
        let specs = vec![
            InsertSpec {
                core_module: "core_a".to_string(),
                wrap: WrapOptions::default(),
                plan: balance_fixed(&[], 2, 1, 1),
                sessions_active: vec![0],
                tam_offset: 0,
            },
            InsertSpec {
                core_module: "core_b".to_string(),
                wrap: WrapOptions::default(),
                plan: balance_fixed(&[], 2, 1, 1),
                sessions_active: vec![1],
                tam_offset: 0,
            },
        ];
        let report = insert_dft(&mut design, &specs, 2, 2).unwrap();
        assert_eq!(report.wbr_cells, 6);
        assert!((report.wbr_cell_ge - 26.0).abs() < f64::EPSILON);
        assert!(report.controller_ge > 0.0);
        assert!(report.tam_mux_ge > 0.0);
        // The top must flatten cleanly (all hierarchy resolvable).
        let flat = design.flatten(&report.dft_top).unwrap();
        assert!(flat.gate_count() > 0);
        assert!(flat.drivers(None).is_ok());
    }

    #[test]
    fn dft_top_simulates_in_normal_mode() {
        use steac_sim::{Logic, Simulator};
        let mut design = Design::new();
        design.add_module(small_core("core_a")).unwrap();
        let specs = vec![InsertSpec {
            core_module: "core_a".to_string(),
            wrap: WrapOptions::default(),
            plan: balance_fixed(&[], 2, 1, 1),
            sessions_active: vec![0],
            tam_offset: 0,
        }];
        let report = insert_dft(&mut design, &specs, 2, 1).unwrap();
        let flat = design.flatten(&report.dft_top).unwrap();
        let mut sim: Simulator = Simulator::new(&flat).unwrap();
        // Functional mode: test_mode = 0, wrapper transparent.
        for p in [
            "tck",
            "test_mode",
            "next_session",
            "auto_mode",
            "t_se",
            "t_capture",
            "t_update",
        ] {
            sim.set_by_name(p, Logic::Zero).unwrap();
        }
        sim.set_by_name("trst_n", Logic::Zero).unwrap();
        sim.settle().unwrap();
        sim.set_by_name("trst_n", Logic::One).unwrap();
        sim.set_by_name("tam_in[0]", Logic::Zero).unwrap();
        sim.set_by_name("core_a_a", Logic::One).unwrap();
        sim.set_by_name("core_a_b", Logic::One).unwrap();
        sim.settle().unwrap();
        assert_eq!(sim.get_by_name("core_a_y").unwrap(), Logic::One);
        sim.set_by_name("core_a_b", Logic::Zero).unwrap();
        sim.settle().unwrap();
        assert_eq!(sim.get_by_name("core_a_y").unwrap(), Logic::Zero);
    }
}
