//! Criterion benches: runtime of the platform's heavy paths.
//!
//! The paper's only runtime claim is the Fig. 1 insertion flow ("a new
//! SOC design with DFT will be ready in minutes... in 5 minutes, using a
//! SUN Blade 1000"); `full_flow` and `dft_insertion` measure our
//! equivalents. The rest characterise the substrates.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::time::Instant;
use steac::flow::{run_flow, CoreSource, FlowInput};
use steac::insert::{insert_dft, InsertSpec};
use steac_bench::splitmix_vectors as jpeg_vectors;
use steac_dsc::{build_chip, core_stil, dsc_brains, dsc_chip_config, jpeg_core, TABLE1};
use steac_membist::faultsim::{fault_coverage, fault_coverage_serial, random_fault_list};
use steac_membist::{MarchAlgorithm, SramConfig};
use steac_sched::{schedule_nonsession, schedule_sessions};
use steac_sim::{enumerate_faults, fault, Exec, Logic, Simulator};
use steac_stil::{parse_stil, to_stil_string};
use steac_wrapper::{balance_fixed, WrapOptions};

fn dsc_flow_input() -> FlowInput {
    let (_, params) = build_chip().expect("chip builds");
    FlowInput {
        cores: params
            .iter()
            .zip(&TABLE1)
            .map(|(p, row)| CoreSource::new(row.core, &to_stil_string(&core_stil(row, p))))
            .collect(),
        config: dsc_chip_config(),
        bist: Some(dsc_brains()),
        bist_powers: vec![1.3, 0.6],
    }
}

fn bench_full_flow(c: &mut Criterion) {
    let input = dsc_flow_input();
    c.bench_function("full_flow_dsc", |b| {
        b.iter(|| run_flow(&input).expect("flow runs"))
    });
}

fn bench_dft_insertion(c: &mut Criterion) {
    c.bench_function("dft_insertion_dsc", |b| {
        b.iter_batched(
            || build_chip().expect("chip builds"),
            |(mut design, params)| {
                let specs = vec![
                    InsertSpec {
                        core_module: "usb_core".to_string(),
                        wrap: WrapOptions {
                            clock_port: Some("ck0".to_string()),
                            scan_si: params[0].scan_si.clone(),
                            scan_so: params[0].scan_so.clone(),
                            scan_se: params[0].scan_enable.clone(),
                            passthrough_inputs: params[0].clocks[1..]
                                .iter()
                                .chain(&params[0].resets)
                                .chain(&params[0].test_enables)
                                .cloned()
                                .collect(),
                            passthrough_outputs: vec![],
                        },
                        plan: balance_fixed(TABLE1[0].scan_chains, TABLE1[0].pi, TABLE1[0].po, 2),
                        sessions_active: vec![1],
                        tam_offset: 0,
                    },
                    InsertSpec {
                        core_module: "jpeg_core".to_string(),
                        wrap: WrapOptions {
                            clock_port: Some("ck".to_string()),
                            ..WrapOptions::default()
                        },
                        plan: balance_fixed(&[], TABLE1[2].pi, TABLE1[2].po, 2),
                        sessions_active: vec![2],
                        tam_offset: 2,
                    },
                ];
                insert_dft(&mut design, &specs, 3, 8).expect("insertion succeeds")
            },
            BatchSize::LargeInput,
        )
    });
}

fn bench_scheduler(c: &mut Criterion) {
    let tasks = steac_dsc::dsc_test_tasks();
    let config = dsc_chip_config();
    c.bench_function("schedule_sessions_dsc", |b| {
        b.iter(|| schedule_sessions(&tasks, &config))
    });
    c.bench_function("schedule_nonsession_dsc", |b| {
        b.iter(|| schedule_nonsession(&tasks, &config))
    });
}

fn bench_stil_parse(c: &mut Criterion) {
    let (_, params) = build_chip().expect("chip builds");
    let text = to_stil_string(&core_stil(&TABLE1[0], &params[0]));
    c.bench_function("stil_parse_usb", |b| {
        b.iter(|| parse_stil(&text).expect("parses"))
    });
}

fn bench_wrapper_balance(c: &mut Criterion) {
    c.bench_function("wrapper_balance_usb_w8", |b| {
        b.iter(|| balance_fixed(TABLE1[0].scan_chains, TABLE1[0].pi, TABLE1[0].po, 8))
    });
}

fn bench_march_faultsim(c: &mut Criterion) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let cfg = SramConfig::single_port(64, 4);
    let mut rng = StdRng::seed_from_u64(7);
    let faults = random_fault_list(&cfg, 20, &mut rng);
    let alg = MarchAlgorithm::march_c_minus();
    let exec = Exec::from_env();
    c.bench_function("march_faultsim_packed_64x4_120f", |b| {
        b.iter(|| fault_coverage(&exec, &alg, &cfg, &faults).expect("grades"))
    });
    c.bench_function("march_faultsim_serial_64x4_120f", |b| {
        b.iter(|| fault_coverage_serial(&alg, &cfg, &faults))
    });
    report_speedup(
        "march_faultsim packed vs serial",
        || fault_coverage_serial(&alg, &cfg, &faults).detected,
        || {
            fault_coverage(&exec, &alg, &cfg, &faults)
                .expect("grades")
                .detected
        },
    );
}

/// Packed (PPSFP, 63 faults + good machine per pass, fault dropping)
/// vs. serial (one full simulation per fault) stuck-at grading on the
/// DSC's JPEG core — the paper's largest functional-pattern core. The
/// recorded speedup is the packed kernel's headline number.
fn bench_gate_faultsim(c: &mut Criterion) {
    let (module, _) = jpeg_core().expect("core builds");
    let faults: Vec<fault::Fault> = enumerate_faults(&module)
        .into_iter()
        .take(2 * fault::FAULTS_PER_PASS)
        .collect();
    let pins: Vec<steac_netlist::NetId> = module
        .ports_with_dir(steac_netlist::PortDir::Input)
        .map(|p| p.net)
        .collect();
    let vectors = jpeg_vectors(&module, 16);

    let exec = Exec::from_env();
    let packed = || {
        fault::grade_vectors(&exec, &module, &faults, &pins, &vectors)
            .expect("packed grading runs")
            .detected
    };
    let serial = || {
        fault_coverage_gate_serial(&module, &faults, &pins, &vectors)
            .expect("serial grading runs")
            .detected
    };
    assert_eq!(packed(), serial(), "packed and serial gradings must agree");

    c.bench_function("gate_faultsim_packed_jpeg_126f_16v", |b| b.iter(packed));
    c.bench_function("gate_faultsim_serial_jpeg_126f_16v", |b| b.iter(serial));
    report_speedup("gate_faultsim packed vs serial (jpeg core)", serial, packed);
}

/// The serial reference grading loop (what the interpreter used to do).
fn fault_coverage_gate_serial(
    module: &steac_netlist::Module,
    faults: &[fault::Fault],
    pins: &[steac_netlist::NetId],
    vectors: &[Vec<Logic>],
) -> Result<fault::CoverageReport, steac_sim::SimError> {
    fault::fault_coverage_serial(module, faults, |sim| {
        let mut obs = Vec::new();
        for vector in vectors {
            for (&pin, &v) in pins.iter().zip(vector) {
                sim.set(pin, v);
            }
            sim.settle()?;
            obs.extend(sim.outputs());
        }
        Ok(obs)
    })
}

/// Batched (64 lanes/pass) vs scalar playback of JPEG functional
/// patterns through the ATE cycle player.
fn bench_batched_playback(c: &mut Criterion) {
    let count = 128;
    let exec = Exec::from_env();
    let (module, patterns) =
        steac_dsc::jpeg_functional_patterns(&exec, count).expect("patterns build");
    let refs: Vec<&steac_pattern::CyclePattern> = patterns.iter().collect();
    c.bench_function("jpeg_playback_batched_128p", |b| {
        b.iter(|| {
            let sim: Simulator = Simulator::new(&module).expect("sim builds");
            steac_pattern::apply_cycle_patterns_batch(&exec, &sim, &refs).expect("plays")
        })
    });
    c.bench_function("jpeg_playback_scalar_128p", |b| {
        b.iter(|| {
            // One compile per iteration, like the batched path: the
            // comparison times the kernel, not repeated compilation.
            let mut sim: Simulator = Simulator::new(&module).expect("sim builds");
            patterns
                .iter()
                .map(|p| {
                    sim.reset_to_x();
                    steac_pattern::apply_cycle_pattern(&mut sim, p).expect("plays")
                })
                .count()
        })
    });
}

/// Times both closures (median of three runs after a warm-up) and
/// prints the ratio, so the packed kernel's advantage is recorded in
/// the bench output itself.
fn report_speedup<A: PartialEq + std::fmt::Debug>(
    label: &str,
    baseline: impl Fn() -> A,
    candidate: impl Fn() -> A,
) {
    fn median_time<A>(f: &impl Fn() -> A) -> (std::time::Duration, A) {
        let mut times = Vec::with_capacity(3);
        let mut result = None;
        for _ in 0..3 {
            let t = Instant::now();
            result = Some(f());
            times.push(t.elapsed());
        }
        times.sort_unstable();
        (times[1], result.expect("ran at least once"))
    }
    // Warm both paths (allocator, caches) before the timed runs.
    let a = baseline();
    let b = candidate();
    assert_eq!(a, b, "{label}: results diverge");
    let (base, a) = median_time(&baseline);
    let (cand, b) = median_time(&candidate);
    assert_eq!(a, b, "{label}: results diverge");
    let ratio = base.as_secs_f64() / cand.as_secs_f64().max(1e-12);
    println!("{label:<44} speedup: {ratio:.1}x ({base:.2?} -> {cand:.2?})");
}

criterion_group!(
    benches,
    bench_full_flow,
    bench_dft_insertion,
    bench_scheduler,
    bench_stil_parse,
    bench_wrapper_balance,
    bench_march_faultsim,
    bench_gate_faultsim,
    bench_batched_playback
);
criterion_main!(benches);
