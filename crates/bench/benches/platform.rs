//! Criterion benches: runtime of the platform's heavy paths.
//!
//! The paper's only runtime claim is the Fig. 1 insertion flow ("a new
//! SOC design with DFT will be ready in minutes... in 5 minutes, using a
//! SUN Blade 1000"); `full_flow` and `dft_insertion` measure our
//! equivalents. The rest characterise the substrates.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use steac::flow::{run_flow, CoreSource, FlowInput};
use steac::insert::{insert_dft, InsertSpec};
use steac_dsc::{build_chip, core_stil, dsc_brains, dsc_chip_config, TABLE1};
use steac_membist::faultsim::{fault_coverage, random_fault_list};
use steac_membist::{MarchAlgorithm, SramConfig};
use steac_sched::{schedule_nonsession, schedule_sessions};
use steac_stil::{parse_stil, to_stil_string};
use steac_wrapper::{balance_fixed, WrapOptions};

fn dsc_flow_input() -> FlowInput {
    let (_, params) = build_chip().expect("chip builds");
    FlowInput {
        cores: params
            .iter()
            .zip(&TABLE1)
            .map(|(p, row)| {
                CoreSource::new(row.core, &to_stil_string(&core_stil(row, p)))
            })
            .collect(),
        config: dsc_chip_config(),
        bist: Some(dsc_brains()),
        bist_powers: vec![1.3, 0.6],
    }
}

fn bench_full_flow(c: &mut Criterion) {
    let input = dsc_flow_input();
    c.bench_function("full_flow_dsc", |b| {
        b.iter(|| run_flow(&input).expect("flow runs"))
    });
}

fn bench_dft_insertion(c: &mut Criterion) {
    c.bench_function("dft_insertion_dsc", |b| {
        b.iter_batched(
            || build_chip().expect("chip builds"),
            |(mut design, params)| {
                let specs = vec![
                    InsertSpec {
                        core_module: "usb_core".to_string(),
                        wrap: WrapOptions {
                            clock_port: Some("ck0".to_string()),
                            scan_si: params[0].scan_si.clone(),
                            scan_so: params[0].scan_so.clone(),
                            scan_se: params[0].scan_enable.clone(),
                            passthrough_inputs: params[0].clocks[1..]
                                .iter()
                                .chain(&params[0].resets)
                                .chain(&params[0].test_enables)
                                .cloned()
                                .collect(),
                            passthrough_outputs: vec![],
                        },
                        plan: balance_fixed(
                            TABLE1[0].scan_chains,
                            TABLE1[0].pi,
                            TABLE1[0].po,
                            2,
                        ),
                        sessions_active: vec![1],
                        tam_offset: 0,
                    },
                    InsertSpec {
                        core_module: "jpeg_core".to_string(),
                        wrap: WrapOptions {
                            clock_port: Some("ck".to_string()),
                            ..WrapOptions::default()
                        },
                        plan: balance_fixed(&[], TABLE1[2].pi, TABLE1[2].po, 2),
                        sessions_active: vec![2],
                        tam_offset: 2,
                    },
                ];
                insert_dft(&mut design, &specs, 3, 8).expect("insertion succeeds")
            },
            BatchSize::LargeInput,
        )
    });
}

fn bench_scheduler(c: &mut Criterion) {
    let tasks = steac_dsc::dsc_test_tasks();
    let config = dsc_chip_config();
    c.bench_function("schedule_sessions_dsc", |b| {
        b.iter(|| schedule_sessions(&tasks, &config))
    });
    c.bench_function("schedule_nonsession_dsc", |b| {
        b.iter(|| schedule_nonsession(&tasks, &config))
    });
}

fn bench_stil_parse(c: &mut Criterion) {
    let (_, params) = build_chip().expect("chip builds");
    let text = to_stil_string(&core_stil(&TABLE1[0], &params[0]));
    c.bench_function("stil_parse_usb", |b| {
        b.iter(|| parse_stil(&text).expect("parses"))
    });
}

fn bench_wrapper_balance(c: &mut Criterion) {
    c.bench_function("wrapper_balance_usb_w8", |b| {
        b.iter(|| balance_fixed(TABLE1[0].scan_chains, TABLE1[0].pi, TABLE1[0].po, 8))
    });
}

fn bench_march_faultsim(c: &mut Criterion) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let cfg = SramConfig::single_port(64, 4);
    let mut rng = StdRng::seed_from_u64(7);
    let faults = random_fault_list(&cfg, 20, &mut rng);
    let alg = MarchAlgorithm::march_c_minus();
    c.bench_function("march_c_minus_faultsim_64x4_120f", |b| {
        b.iter(|| fault_coverage(&alg, &cfg, &faults))
    });
}

criterion_group!(
    benches,
    bench_full_flow,
    bench_dft_insertion,
    bench_scheduler,
    bench_stil_parse,
    bench_wrapper_balance,
    bench_march_faultsim
);
criterion_main!(benches);
