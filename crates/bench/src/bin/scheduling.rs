//! Regenerates the paper's §3 scheduling experiment: session-based
//! (3 sessions, 4,371,194 cycles) vs non-session (4,713,935 cycles).

use steac_bench::{compare_row, header};
use steac_dsc::{dsc_chip_config, dsc_test_tasks, PAPER_NONSESSION_CYCLES, PAPER_SESSION_CYCLES};
use steac_sched::report::{render_nonsession, render_sessions};
use steac_sched::{schedule_nonsession, schedule_serial, schedule_sessions};

fn main() {
    println!("{}", header("§3 scheduling: session-based vs non-session"));
    let tasks = dsc_test_tasks();
    let config = dsc_chip_config();
    let s = schedule_sessions(&tasks, &config).expect("DSC instance is feasible");
    let ns = schedule_nonsession(&tasks, &config).expect("DSC instance is feasible");
    let serial = schedule_serial(&tasks, &config).expect("DSC instance is feasible");

    println!("{}", render_sessions(&s, &tasks));
    println!("{}", render_nonsession(&ns, &tasks));
    println!("serial reference: {} cycles\n", serial.makespan);

    println!(
        "{}",
        compare_row(
            "session-based total (cycles)",
            PAPER_SESSION_CYCLES as f64,
            s.total_cycles as f64
        )
    );
    println!(
        "{}",
        compare_row(
            "non-session total (cycles)",
            PAPER_NONSESSION_CYCLES as f64,
            ns.makespan as f64
        )
    );
    let paper_gain = 100.0 * (PAPER_NONSESSION_CYCLES - PAPER_SESSION_CYCLES) as f64
        / PAPER_NONSESSION_CYCLES as f64;
    let our_gain = 100.0 * (ns.makespan - s.total_cycles) as f64 / ns.makespan as f64;
    println!("session-based saves: paper {paper_gain:.1}%  measured {our_gain:.1}%");
    println!("sessions used: paper 3  measured {}", s.sessions.len());
}
