//! Ablation: soft-core scan-chain rebalancing ("If the IP is a soft
//! core, the scan chains can be reconfigured. The Core Test Scheduler
//! will then rebalance scan chains for each assigned TAM width.")
//!
//! The USB core's fixed 1629-flop chain dominates its scan time at every
//! width; rebalancing the same 2045 flops removes the wall.

use steac_bench::header;
use steac_dsc::TABLE1;
use steac_wrapper::chain::width_sweep;

fn main() {
    println!(
        "{}",
        header("Ablation: fixed chains vs soft-core rebalancing (USB core)")
    );
    let usb = &TABLE1[0];
    let fixed = width_sweep(usb.scan_chains, usb.pi, usb.po, usb.scan_patterns, false, 8);
    let soft = width_sweep(usb.scan_chains, usb.pi, usb.po, usb.scan_patterns, true, 8);
    println!(
        "{:>6} {:>14} {:>14} {:>8}",
        "width", "fixed (cyc)", "soft (cyc)", "gain"
    );
    for ((w, tf), (_, ts)) in fixed.iter().zip(&soft) {
        println!("{w:>6} {tf:>14} {ts:>14} {:>7.2}x", *tf as f64 / *ts as f64);
    }
    println!("\nTV encoder for comparison (balanced 577/576 chains gain little):");
    let tv = &TABLE1[1];
    let fixed = width_sweep(tv.scan_chains, tv.pi, tv.po, tv.scan_patterns, false, 4);
    let soft = width_sweep(tv.scan_chains, tv.pi, tv.po, tv.scan_patterns, true, 4);
    for ((w, tf), (_, ts)) in fixed.iter().zip(&soft) {
        println!("{w:>6} {tf:>14} {ts:>14} {:>7.2}x", *tf as f64 / *ts as f64);
    }
}
