//! Backend-vs-throughput scaling of the unified execution seam on the
//! paper's two throughput-bound workloads: PPSFP fault grading of the
//! JPEG core and batched ATE playback of its functional patterns —
//! ending with the paper's full 235,696-pattern JPEG functional set
//! driven through the process backend and a remote fleet over
//! localhost (override the pattern count with
//! `STEAC_SCALING_PATTERNS` for quick runs).
//!
//! Every row of every table runs the **same** unified entry point
//! ([`steac_sim::fault::grade_vectors`],
//! [`steac_pattern::apply_cycle_patterns_batch`]) — only the [`Exec`]
//! backend changes: serial, threads 1/2/4/8, worker processes 1/2/4,
//! remote fleets (spawn transports and `steac-worker --serve` over
//! localhost TCP). Before printing, the binary asserts that coverage
//! and mismatch reports are **bit-identical** on every backend —
//! scaling must never change a verdict, in-process, across processes
//! or across the wire.

use std::time::Instant;
use steac_bench::{header, splitmix_vectors};
use steac_dsc::{jpeg_core, jpeg_functional_patterns};
use steac_pattern::{apply_cycle_patterns_batch, CyclePattern};
use steac_sim::remote::{spawn_serve_process, ServeHandle};
use steac_sim::{enumerate_faults, fault, shard, Exec, Fallback, RemoteFleet, Simulator, Threads};

fn time<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let t = Instant::now();
    let out = f();
    (t.elapsed().as_secs_f64(), out)
}

fn print_row(backend: &str, secs: f64, base_secs: f64, work: f64, unit: &str) {
    println!(
        "{backend:>12} {:>10.0} {unit:<12} {:>8.2}x",
        work / secs.max(1e-12),
        base_secs / secs.max(1e-12),
    );
}

/// The backend table every workload iterates: serial, threads at the
/// scaling widths, and (when the worker binary is discoverable) worker
/// processes at 1/2/4. Process execs use `Fallback::Fail` so a broken
/// worker aborts the run instead of silently timing the thread pool.
fn backends() -> Vec<Exec> {
    let mut execs = vec![Exec::serial()];
    execs.extend([1, 2, 4, 8].map(|t| Exec::threads(Threads::exact(t))));
    if shard::default_worker_binary().is_some() {
        for workers in [1usize, 2, 4] {
            if let Ok(exec) = Exec::parse(&format!("processes:{workers}")) {
                execs.push(exec.with_fallback(Fallback::Fail));
            }
        }
        if let Some(fleet) = RemoteFleet::spawn_local(2) {
            execs.push(Exec::remote(fleet).with_fallback(Fallback::Fail));
        }
    } else {
        println!(
            "worker binary not found (build the root package first: `cargo build [--release]`); \
             process rows are skipped"
        );
    }
    execs
}

fn table_header() {
    println!(
        "{:>12} {:>10} {:<12} {:>9}",
        "backend", "rate", "", "speedup"
    );
}

fn main() {
    let (module, _) = jpeg_core().expect("jpeg core builds");
    let faults = enumerate_faults(&module);
    let pins: Vec<steac_netlist::NetId> = module
        .ports_with_dir(steac_netlist::PortDir::Input)
        .map(|p| p.net)
        .collect();
    let vectors = splitmix_vectors(&module, 128);

    let cores = Threads::auto().get();
    println!("host parallelism: {cores} core(s)");
    if cores < 8 {
        println!(
            "note: widths above {cores} time-share the available core(s); \
             speedup columns demonstrate determinism, not throughput, there"
        );
    }
    let execs = backends();

    println!(
        "{}",
        header("Exec scaling: JPEG fault grading (PPSFP passes, one API, every backend)")
    );
    println!(
        "{} faults, {} vectors, {} passes",
        faults.len(),
        vectors.len(),
        faults.len().div_ceil(fault::FAULTS_PER_PASS)
    );
    table_header();
    let mut baseline: Option<(f64, fault::CoverageReport)> = None;
    for exec in &execs {
        let (secs, rep) = time(|| {
            fault::grade_vectors(exec, &module, &faults, &pins, &vectors).expect("grading runs")
        });
        if let Some((base_secs, base_rep)) = &baseline {
            assert_eq!(
                &rep, base_rep,
                "coverage diverged on {exec} — dispatch changed a verdict"
            );
            print_row(
                &exec.to_string(),
                secs,
                *base_secs,
                faults.len() as f64,
                "faults/s",
            );
        } else {
            print_row(
                &exec.to_string(),
                secs,
                secs,
                faults.len() as f64,
                "faults/s",
            );
            baseline = Some((secs, rep));
        }
    }
    let (_, rep) = baseline.expect("at least one backend ran");
    println!("coverage on every backend: {rep}");

    let count = 2048;
    let (_, patterns) = jpeg_functional_patterns(&Exec::auto(), count).expect("patterns build");
    let refs: Vec<&CyclePattern> = patterns.iter().collect();
    let sim = Simulator::new(&module).expect("sim builds");
    println!(
        "{}",
        header("Exec scaling: batched ATE playback (64-pattern passes, one API, every backend)")
    );
    println!(
        "{count} two-cycle functional patterns, {} passes",
        count / 64
    );
    table_header();
    let mut play_base: Option<(f64, steac_pattern::BatchPlayback)> = None;
    for exec in &execs {
        let (secs, reports) =
            time(|| apply_cycle_patterns_batch(exec, &sim, &refs).expect("plays"));
        if let Some((base_secs, base_reports)) = &play_base {
            assert_eq!(
                &reports, base_reports,
                "mismatch reports diverged on {exec}"
            );
            print_row(
                &exec.to_string(),
                secs,
                *base_secs,
                count as f64,
                "patterns/s",
            );
        } else {
            print_row(&exec.to_string(), secs, secs, count as f64, "patterns/s");
            play_base = Some((secs, reports));
        }
    }
    let (_, playback) = play_base.expect("at least one backend ran");
    let mismatches: usize = playback.reports.iter().map(|r| r.mismatches.len()).sum();
    println!("mismatches on every backend: {mismatches}");

    // ---- full-set table: the paper's JPEG functional set ----

    let full_count: usize = std::env::var("STEAC_SCALING_PATTERNS")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(235_696);
    println!(
        "{}",
        header("Exec scaling: full JPEG ATE playback across steac-worker processes")
    );
    match shard::default_worker_binary() {
        Some(bin) => println!("worker binary: {}", bin.display()),
        None => println!("worker binary not found; process rows fall back to threads"),
    }
    println!(
        "{full_count} two-cycle functional patterns (paper set: 235,696), {} passes",
        full_count.div_ceil(64)
    );
    let (gen_secs, (_, full_patterns)) =
        time(|| jpeg_functional_patterns(&Exec::auto(), full_count).expect("patterns build"));
    println!(
        "generated at {:.0} patterns/s",
        full_count as f64 / gen_secs.max(1e-12)
    );
    let full_refs: Vec<&CyclePattern> = full_patterns.iter().collect();
    let serial = Exec::threads(Threads::single());
    let (base_secs, baseline) =
        time(|| apply_cycle_patterns_batch(&serial, &sim, &full_refs).expect("plays"));
    table_header();
    print_row(
        "threads:1",
        base_secs,
        base_secs,
        full_count as f64,
        "patterns/s",
    );
    println!("             ^ in-thread single-threaded reference");
    for workers in [1usize, 2, 4] {
        let exec = Exec::parse(&format!("processes:{workers}"))
            .expect("processes spec parses (falls back to threads without a binary)")
            .with_fallback(Fallback::Fail);
        let (secs, reports) =
            time(|| apply_cycle_patterns_batch(&exec, &sim, &full_refs).expect("plays"));
        assert_eq!(
            reports, baseline,
            "full-set reports diverged on {exec} — dispatch changed a verdict"
        );
        print_row(
            &exec.to_string(),
            secs,
            base_secs,
            full_count as f64,
            "patterns/s",
        );
    }

    // Machine-level rows over the same set: the Remote backend through
    // spawn transports (zero network), then through a two-host TCP
    // fleet of `steac-worker --serve` listeners on localhost — the
    // wire-for-wire rehearsal of a real multi-host deployment.
    if let Some(fleet) = RemoteFleet::spawn_local(2) {
        let exec = Exec::remote(fleet).with_fallback(Fallback::Fail);
        let (secs, reports) =
            time(|| apply_cycle_patterns_batch(&exec, &sim, &full_refs).expect("plays"));
        assert_eq!(
            reports, baseline,
            "full-set reports diverged on {exec} — dispatch changed a verdict"
        );
        print_row(
            "remote:spawn*2",
            secs,
            base_secs,
            full_count as f64,
            "patterns/s",
        );
    }
    if let Some(bin) = shard::default_worker_binary() {
        let servers: Vec<ServeHandle> = (0..2)
            .map_while(|_| spawn_serve_process(&bin).ok())
            .collect();
        if servers.len() == 2 {
            println!(
                "remote TCP hosts: {}",
                servers
                    .iter()
                    .map(ServeHandle::addr)
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            let fleet = RemoteFleet::tcp(servers.iter().map(|s| s.addr().to_string()))
                .expect("two addresses collected");
            let exec = Exec::remote(fleet).with_fallback(Fallback::Fail);
            let (secs, reports) =
                time(|| apply_cycle_patterns_batch(&exec, &sim, &full_refs).expect("plays"));
            assert_eq!(
                reports, baseline,
                "full-set reports diverged on {exec} — dispatch changed a verdict"
            );
            print_row(
                "remote:tcp*2",
                secs,
                base_secs,
                full_count as f64,
                "patterns/s",
            );
        } else {
            println!("could not start two --serve workers; remote TCP row skipped");
        }
    }
    let compares: u64 = baseline.reports.iter().map(|r| r.compares).sum();
    let mismatches: usize = baseline.reports.iter().map(|r| r.mismatches.len()).sum();
    println!("reports identical on every backend: {compares} compares, {mismatches} mismatches");
}
