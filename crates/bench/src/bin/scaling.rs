//! Threads-vs-throughput scaling of the sharded simulation stack on the
//! paper's two throughput-bound workloads: PPSFP fault grading of the
//! JPEG core and batched ATE playback of its functional patterns —
//! plus the process-mode table: the same playback fanned across
//! `steac-worker` **processes** at widths 1/2/4, driven by the paper's
//! full 235,696-pattern JPEG functional set (override the pattern count
//! with `STEAC_SCALING_PATTERNS` for quick runs).
//!
//! For each width the same work runs through the same sharded entry
//! points ([`steac_sim::fault::grade_vectors_with`],
//! [`steac_pattern::apply_cycle_patterns_batch_with`],
//! [`steac_pattern::apply_cycle_patterns_batch_with_pool`]); the binary
//! asserts that coverage and mismatch reports are **bit-identical** at
//! every width before printing the tables — scaling must never change a
//! verdict, in-process or across processes.

use std::time::Instant;
use steac_bench::{header, splitmix_vectors};
use steac_dsc::{jpeg_core, jpeg_functional_patterns_with};
use steac_pattern::{
    apply_cycle_patterns_batch_with, apply_cycle_patterns_batch_with_pool, CyclePattern,
};
use steac_sim::{enumerate_faults, fault, shard, Simulator, Threads};

const WIDTHS: [usize; 4] = [1, 2, 4, 8];

fn time<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let t = Instant::now();
    let out = f();
    (t.elapsed().as_secs_f64(), out)
}

fn print_row(threads: usize, secs: f64, base_secs: f64, work: f64, unit: &str) {
    println!(
        "{threads:>7} {:>10.0} {unit:<12} {:>8.2}x",
        work / secs.max(1e-12),
        base_secs / secs.max(1e-12),
    );
}

fn main() {
    let (module, _) = jpeg_core().expect("jpeg core builds");
    let faults = enumerate_faults(&module);
    let pins: Vec<steac_netlist::NetId> = module
        .ports_with_dir(steac_netlist::PortDir::Input)
        .map(|p| p.net)
        .collect();
    let vectors = splitmix_vectors(&module, 128);

    let cores = Threads::auto().get();
    println!("host parallelism: {cores} core(s)");
    if cores < WIDTHS[WIDTHS.len() - 1] {
        println!(
            "note: widths above {cores} time-share the available core(s); \
             speedup columns demonstrate determinism, not throughput, there"
        );
    }
    println!(
        "{}",
        header("Sharded scaling: JPEG fault grading (PPSFP passes across cores)")
    );
    println!(
        "{} faults, {} vectors, {} passes",
        faults.len(),
        vectors.len(),
        faults.len().div_ceil(fault::FAULTS_PER_PASS)
    );
    println!(
        "{:>7} {:>10} {:<12} {:>9}",
        "threads", "rate", "", "speedup"
    );
    let mut baseline: Option<(f64, fault::CoverageReport)> = None;
    for t in WIDTHS {
        let (secs, rep) = time(|| {
            fault::grade_vectors_with(&module, &faults, &pins, &vectors, Threads::exact(t))
                .expect("grading runs")
        });
        if let Some((base_secs, base_rep)) = &baseline {
            assert_eq!(
                &rep, base_rep,
                "coverage diverged at {t} threads — sharding changed a verdict"
            );
            print_row(t, secs, *base_secs, faults.len() as f64, "faults/s");
        } else {
            print_row(t, secs, secs, faults.len() as f64, "faults/s");
            baseline = Some((secs, rep));
        }
    }
    let (_, rep) = baseline.expect("at least one width ran");
    println!("coverage at every width: {rep}");

    let count = 2048;
    let (_, patterns) =
        jpeg_functional_patterns_with(count, Threads::auto()).expect("patterns build");
    let refs: Vec<&CyclePattern> = patterns.iter().collect();
    let sim = Simulator::new(&module).expect("sim builds");
    println!(
        "{}",
        header("Sharded scaling: batched ATE playback (64-pattern passes across cores)")
    );
    println!(
        "{count} two-cycle functional patterns, {} passes",
        count / 64
    );
    println!(
        "{:>7} {:>10} {:<12} {:>9}",
        "threads", "rate", "", "speedup"
    );
    let mut play_base: Option<(f64, Vec<steac_pattern::MismatchReport>)> = None;
    for t in WIDTHS {
        let (secs, reports) = time(|| {
            apply_cycle_patterns_batch_with(&sim, &refs, Threads::exact(t)).expect("plays")
        });
        if let Some((base_secs, base_reports)) = &play_base {
            assert_eq!(
                &reports, base_reports,
                "mismatch reports diverged at {t} threads"
            );
            print_row(t, secs, *base_secs, count as f64, "patterns/s");
        } else {
            print_row(t, secs, secs, count as f64, "patterns/s");
            play_base = Some((secs, reports));
        }
    }
    let (_, reports) = play_base.expect("at least one width ran");
    let mismatches: usize = reports.iter().map(|r| r.mismatches.len()).sum();
    println!("mismatches at every width: {mismatches}");

    // ---- process-mode table: the paper's full JPEG functional set ----

    let full_count: usize = std::env::var("STEAC_SCALING_PATTERNS")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(235_696);
    println!(
        "{}",
        header("Process-mode scaling: JPEG ATE playback across steac-worker processes")
    );
    match shard::default_worker_binary() {
        Some(bin) => println!("worker binary: {}", bin.display()),
        None => println!(
            "worker binary not found (build the root package first: `cargo build [--release]`); \
             rows below fall back to the in-thread pool"
        ),
    }
    println!(
        "{full_count} two-cycle functional patterns (paper set: 235,696), {} passes",
        full_count.div_ceil(64)
    );
    let (gen_secs, (_, full_patterns)) = time(|| {
        jpeg_functional_patterns_with(full_count, Threads::auto()).expect("patterns build")
    });
    println!(
        "generated at {:.0} patterns/s",
        full_count as f64 / gen_secs.max(1e-12)
    );
    let full_refs: Vec<&CyclePattern> = full_patterns.iter().collect();
    let (base_secs, baseline) = time(|| {
        apply_cycle_patterns_batch_with(&sim, &full_refs, Threads::single()).expect("plays")
    });
    println!(
        "{:>7} {:>10} {:<12} {:>9}",
        "workers", "rate", "", "speedup"
    );
    print_row(1, base_secs, base_secs, full_count as f64, "patterns/s");
    println!("        ^ in-thread single-threaded reference");
    for workers in [1usize, 2, 4] {
        let (secs, reports) = time(|| match shard::ProcessPool::new(workers) {
            Some(pool) => {
                apply_cycle_patterns_batch_with_pool(&sim, &full_refs, &pool).expect("plays")
            }
            None => apply_cycle_patterns_batch_with(&sim, &full_refs, Threads::from_env())
                .expect("plays"),
        });
        assert_eq!(
            reports, baseline,
            "process-mode reports diverged at {workers} workers — dispatch changed a verdict"
        );
        print_row(workers, secs, base_secs, full_count as f64, "patterns/s");
    }
    let compares: u64 = baseline.iter().map(|r| r.compares).sum();
    let mismatches: usize = baseline.iter().map(|r| r.mismatches.len()).sum();
    println!(
        "reports identical at every worker count: {compares} compares, {mismatches} mismatches"
    );
}
