//! Backend-vs-throughput scaling of the unified execution seam on the
//! paper's two throughput-bound workloads: PPSFP fault grading of the
//! JPEG core and batched ATE playback of its functional patterns —
//! ending with the paper's full 235,696-pattern JPEG functional set
//! driven through the process backend and a remote fleet over
//! localhost (override the pattern count with
//! `STEAC_SCALING_PATTERNS` for quick runs).
//!
//! Every row of every table runs the **same** unified entry point
//! ([`steac_sim::fault::grade_vectors`],
//! [`steac_pattern::apply_cycle_patterns_batch`]) — only the [`Exec`]
//! backend changes: serial, threads 1/2/4/8, worker processes 1/2/4,
//! remote fleets (spawn transports and `steac-worker --serve` over
//! localhost TCP). Before printing, the binary asserts that coverage
//! and mismatch reports are **bit-identical** on every backend —
//! scaling must never change a verdict, in-process, across processes
//! or across the wire.
//!
//! The closing table holds the backends fixed (single core, serial)
//! and sweeps the *per-core* axes instead: the optimizer pipeline
//! (on/off) × the lane-group width — playback defaults to the narrow
//! 64-lane width ([`steac_pattern::PLAYBACK_LANE_GROUPS`]) while
//! grading keeps the wide 256-lane default, a per-workload choice this
//! binary asserts — again requiring byte-identical reports in every
//! cell. A sustained-load table closes the remote story: fixed-rate
//! pattern injection (the SAIBERSOC-style drill — validate the
//! pipeline under the load you claim it takes, not just at
//! saturation) against the TCP fleet, with the fleet's bytes-shipped
//! counters proving the program crossed the wire once per host.
//!
//! A fault-model table follows: the registry's other members —
//! transition/delay grading, bridging grading, and March inter-cell
//! coupling simulation — each timed through its unified entry point on
//! the serial backend, publishing one throughput row per model next to
//! the stuck-at headline.
//!
//! A final table runs the fixed-seed SOC-zoo smoke corpus through the
//! full flow (wrap → share → schedule → grade) and publishes the
//! corpus-wide scheduling / test-time / coverage summary — the
//! standing stress workload's throughput row, on the serial backend
//! and again with grading dispatched through a two-worker spawn fleet
//! (`STEAC_ZOO_SOCS` overrides the corpus size for quick runs).
//!
//! Before any of the materialized tables, a **streaming** table plays
//! the full set — and a 10x synthetic set — through the generate→play
//! pipeline ([`steac_dsc::jpeg_playback_stream`]) without ever holding
//! the pattern set, and records the peak RSS (`VmHWM`) per row: since
//! the high-water mark is monotonic, the streaming rows running first
//! is what makes their small numbers evidence of the bounded-queue
//! memory contract. Every row carries `peak_rss_kib`.
//! Pass `--json` to also write every full-set row to `BENCH_10.json`.

use std::sync::Arc;
use std::time::{Duration, Instant};
use steac_bench::{header, splitmix_vectors};
use steac_dsc::{jpeg_core, jpeg_functional_patterns, jpeg_playback_stream};
use steac_membist::{enumerate_inter_cell_couplings, fault_coverage, MarchAlgorithm, SramConfig};
use steac_pattern::{
    apply_cycle_patterns_batch, apply_cycle_patterns_batch_wide, CyclePattern, PLAYBACK_LANE_GROUPS,
};
use steac_sim::models::{bridging, transition};
use steac_sim::remote::{spawn_serve_process, FleetStatsSnapshot, ServeHandle};
use steac_sim::{
    enumerate_faults, fault, shard, Backend, Exec, Fallback, OptConfig, RemoteFleet, SimProgram,
    Simulator, Threads, DEFAULT_LANE_GROUPS, LANES,
};
use steac_zoo::{run_corpus, RunOptions, ZooParams};

/// One machine-readable result row for `BENCH_10.json`.
struct BenchRow {
    workload: &'static str,
    backend: String,
    lanes: usize,
    opt: bool,
    rate: f64,
    /// `"patterns/s"`, `"faults/s"` or `"tasks/s"`; picks the JSON
    /// rate key.
    unit: &'static str,
    compares: u64,
    mismatches: usize,
    /// Fleet traffic counters for remote rows (program bytes vs unit
    /// bytes shipped); `None` on in-process backends.
    ship: Option<FleetStatsSnapshot>,
    /// Peak resident set (`VmHWM`) when the row was produced. The mark
    /// is process-lifetime monotonic, so the streaming rows — which run
    /// before anything materializes the full set — bound the pipeline's
    /// memory, while later rows carry the materialized set's footprint.
    peak_rss_kib: Option<u64>,
}

/// Peak resident set of this process so far (`VmHWM`), in KiB.
fn peak_rss_kib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

fn write_json(path: &str, rows: &[BenchRow]) {
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        let rate_key = match r.unit {
            "faults/s" => "faults_per_s",
            "tasks/s" => "tasks_per_s",
            _ => "patterns_per_s",
        };
        let ship = r.ship.as_ref().map_or(String::new(), |s| {
            format!(
                ", \"program_bytes\": {}, \"unit_bytes\": {}, \"programs_shipped\": {}, \
                 \"need_program_replies\": {}",
                s.program_bytes, s.unit_bytes, s.programs_shipped, s.need_program_replies
            )
        });
        let rss = r
            .peak_rss_kib
            .map_or(String::new(), |kib| format!(", \"peak_rss_kib\": {kib}"));
        out.push_str(&format!(
            "  {{\"workload\": \"{}\", \"backend\": \"{}\", \"lanes\": {}, \"opt\": {}, \
             \"{rate_key}\": {:.1}, \"compares\": {}, \"mismatches\": {}{ship}{rss}}}{sep}\n",
            r.workload, r.backend, r.lanes, r.opt, r.rate, r.compares, r.mismatches
        ));
    }
    out.push_str("]\n");
    std::fs::write(path, out).expect("benchmark JSON writes");
    println!("wrote {path}");
}

/// The fleet inside a remote exec — panics on any other backend, which
/// would be a bug in this binary's plumbing.
fn fleet_of(exec: &Exec) -> &RemoteFleet {
    match exec.backend() {
        Backend::Remote(fleet) => fleet,
        _ => panic!("expected a remote backend, got {exec}"),
    }
}

fn time<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let t = Instant::now();
    let out = f();
    (t.elapsed().as_secs_f64(), out)
}

/// Best-of-`n` timing for the volatile local rows: on a box where the
/// driver, the workers, and the OS share one core, a single pass can
/// randomly pay 2-3x in scheduler interleave, so the committed artifact
/// takes the fastest of `n` identical passes (and asserts the repeats
/// agree bit-for-bit while it is at it).
fn best_of<T: PartialEq + std::fmt::Debug>(n: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let (mut best_secs, first) = time(&mut f);
    for _ in 1..n.max(1) {
        let (secs, repeat) = time(&mut f);
        assert_eq!(repeat, first, "a repeated pass changed the result");
        best_secs = best_secs.min(secs);
    }
    (best_secs, first)
}

fn print_row(backend: &str, secs: f64, base_secs: f64, work: f64, unit: &str) {
    println!(
        "{backend:>12} {:>10.0} {unit:<12} {:>8.2}x",
        work / secs.max(1e-12),
        base_secs / secs.max(1e-12),
    );
}

/// The backend table every workload iterates: serial, threads at the
/// scaling widths, and (when the worker binary is discoverable) worker
/// processes at 1/2/4. Process execs use `Fallback::Fail` so a broken
/// worker aborts the run instead of silently timing the thread pool.
fn backends() -> Vec<Exec> {
    let mut execs = vec![Exec::serial()];
    execs.extend([1, 2, 4, 8].map(|t| Exec::threads(Threads::exact(t))));
    if shard::default_worker_binary().is_some() {
        for workers in [1usize, 2, 4] {
            if let Ok(exec) = Exec::parse(&format!("processes:{workers}")) {
                execs.push(exec.with_fallback(Fallback::Fail));
            }
        }
        if let Some(fleet) = RemoteFleet::spawn_local(2) {
            execs.push(Exec::remote(fleet).with_fallback(Fallback::Fail));
        }
    } else {
        println!(
            "worker binary not found (build the root package first: `cargo build [--release]`); \
             process rows are skipped"
        );
    }
    execs
}

fn table_header() {
    println!(
        "{:>12} {:>10} {:<12} {:>9}",
        "backend", "rate", "", "speedup"
    );
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let mut rows: Vec<BenchRow> = Vec::new();
    let default_lanes = LANES * DEFAULT_LANE_GROUPS;
    let play_lanes = LANES * PLAYBACK_LANE_GROUPS;
    // The per-workload width choice is part of the measured contract:
    // settle-bound playback defaults narrow, compare-dense grading
    // stays wide (BENCH_6 per-core sweep is the evidence).
    assert_eq!(play_lanes, 64, "playback must default to the narrow width");
    assert_eq!(default_lanes, 256, "grading must keep the wide default");
    let (module, _) = jpeg_core().expect("jpeg core builds");
    let faults = enumerate_faults(&module);
    let pins: Vec<steac_netlist::NetId> = module
        .ports_with_dir(steac_netlist::PortDir::Input)
        .map(|p| p.net)
        .collect();
    let vectors = splitmix_vectors(&module, 128);

    let cores = Threads::auto().get();
    println!("host parallelism: {cores} core(s)");
    if cores < 8 {
        println!(
            "note: widths above {cores} time-share the available core(s); \
             speedup columns demonstrate determinism, not throughput, there"
        );
    }
    let execs = backends();

    println!(
        "{}",
        header("Exec scaling: JPEG fault grading (PPSFP passes, one API, every backend)")
    );
    println!(
        "{} faults, {} vectors, {} passes",
        faults.len(),
        vectors.len(),
        faults.len().div_ceil(fault::FAULTS_PER_PASS)
    );
    table_header();
    let mut baseline: Option<(f64, fault::CoverageReport)> = None;
    for exec in &execs {
        let (secs, rep) = time(|| {
            fault::grade_vectors(exec, &module, &faults, &pins, &vectors).expect("grading runs")
        });
        if let Some((base_secs, base_rep)) = &baseline {
            assert_eq!(
                &rep, base_rep,
                "coverage diverged on {exec} — dispatch changed a verdict"
            );
            print_row(
                &exec.to_string(),
                secs,
                *base_secs,
                faults.len() as f64,
                "faults/s",
            );
        } else {
            print_row(
                &exec.to_string(),
                secs,
                secs,
                faults.len() as f64,
                "faults/s",
            );
            baseline = Some((secs, rep));
        }
    }
    let (_, rep) = baseline.expect("at least one backend ran");
    println!("coverage on every backend: {rep}");

    let count = 2048;
    let (_, patterns) = jpeg_functional_patterns(&Exec::auto(), count).expect("patterns build");
    let refs: Vec<&CyclePattern> = patterns.iter().collect();
    let sim: Simulator = Simulator::new(&module).expect("sim builds");
    println!(
        "{}",
        header("Exec scaling: batched ATE playback (one API, every backend)")
    );
    println!(
        "{count} two-cycle functional patterns, {} lanes/pass, {} passes",
        play_lanes,
        count.div_ceil(play_lanes)
    );
    table_header();
    let mut play_base: Option<(f64, steac_pattern::BatchPlayback)> = None;
    for exec in &execs {
        let (secs, reports) =
            time(|| apply_cycle_patterns_batch(exec, &sim, &refs).expect("plays"));
        if let Some((base_secs, base_reports)) = &play_base {
            assert_eq!(
                &reports, base_reports,
                "mismatch reports diverged on {exec}"
            );
            print_row(
                &exec.to_string(),
                secs,
                *base_secs,
                count as f64,
                "patterns/s",
            );
        } else {
            print_row(&exec.to_string(), secs, secs, count as f64, "patterns/s");
            play_base = Some((secs, reports));
        }
    }
    let (_, playback) = play_base.expect("at least one backend ran");
    let mismatches: usize = playback.reports.iter().map(|r| r.mismatches.len()).sum();
    println!("mismatches on every backend: {mismatches}");

    let full_count: usize = std::env::var("STEAC_SCALING_PATTERNS")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(235_696);

    // ---- streaming pipeline: generate→play under bounded queues ----
    //
    // These rows run BEFORE anything materializes the full set: `VmHWM`
    // is a process-lifetime high-water mark, so sampling the streaming
    // rows first is what makes their peak-RSS numbers evidence that
    // pipeline memory is bounded by queue depth — the materialized
    // tables below push the mark to the full set's footprint and it
    // never comes back down. The 10x synthetic set (same generator,
    // ten times the pattern count) proves the bound does not move with
    // set size.
    println!(
        "{}",
        header("Streaming pipeline: generate->play, bounded queues, nothing materialized")
    );
    let sim_opt = sim.program().opt.enabled;
    let stream_exec = Exec::threads(Threads::exact(4));
    for (workload, n) in [
        ("jpeg_streaming_playback", full_count),
        ("jpeg_streaming_playback_10x", full_count * 10),
    ] {
        let (secs, rep) = time(|| jpeg_playback_stream(&stream_exec, n).expect("streams"));
        assert_eq!(rep.patterns, n, "streaming must play the whole set");
        assert_eq!(rep.mismatches, 0, "streaming playback must be clean");
        let rss = peak_rss_kib();
        println!(
            "{workload:>28}: {n} patterns in {secs:.2}s ({:.0} patterns/s), peak RSS {}",
            n as f64 / secs.max(1e-12),
            rss.map_or("n/a".to_string(), |k| format!(
                "{:.1} MiB",
                k as f64 / 1024.0
            )),
        );
        rows.push(BenchRow {
            workload,
            backend: stream_exec.to_string(),
            lanes: play_lanes,
            opt: sim_opt,
            rate: n as f64 / secs.max(1e-12),
            unit: "patterns/s",
            compares: rep.compares,
            mismatches: rep.mismatches,
            ship: None,
            peak_rss_kib: rss,
        });
    }

    // ---- full-set table: the paper's JPEG functional set ----

    println!(
        "{}",
        header("Exec scaling: full JPEG ATE playback across steac-worker processes")
    );
    match shard::default_worker_binary() {
        Some(bin) => println!("worker binary: {}", bin.display()),
        None => println!("worker binary not found; process rows fall back to threads"),
    }
    println!(
        "{full_count} two-cycle functional patterns (paper set: 235,696), {} lanes/pass, {} passes",
        play_lanes,
        full_count.div_ceil(play_lanes)
    );
    let (gen_secs, (_, full_patterns)) =
        time(|| jpeg_functional_patterns(&Exec::auto(), full_count).expect("patterns build"));
    println!(
        "generated at {:.0} patterns/s",
        full_count as f64 / gen_secs.max(1e-12)
    );
    let full_refs: Vec<&CyclePattern> = full_patterns.iter().collect();
    let serial = Exec::threads(Threads::single());
    // Best-of-2 here: the first pass over the freshly generated set
    // also pays every first-touch page fault, which would otherwise
    // charge cold-memory noise to this reference row alone.
    let (base_secs, baseline) = best_of(2, || {
        apply_cycle_patterns_batch(&serial, &sim, &full_refs).expect("plays")
    });
    let full_compares: u64 = baseline.reports.iter().map(|r| r.compares).sum();
    let full_mismatches: usize = baseline.reports.iter().map(|r| r.mismatches.len()).sum();
    table_header();
    print_row(
        "threads:1",
        base_secs,
        base_secs,
        full_count as f64,
        "patterns/s",
    );
    println!("             ^ in-thread single-threaded reference");
    rows.push(BenchRow {
        workload: "jpeg_full_playback",
        backend: "threads:1".to_string(),
        lanes: play_lanes,
        opt: sim_opt,
        rate: full_count as f64 / base_secs.max(1e-12),
        unit: "patterns/s",
        compares: full_compares,
        mismatches: full_mismatches,
        ship: None,
        peak_rss_kib: peak_rss_kib(),
    });
    for workers in [1usize, 2, 4] {
        let exec = Exec::parse(&format!("processes:{workers}"))
            .expect("processes spec parses (falls back to threads without a binary)")
            .with_fallback(Fallback::Fail);
        let (secs, reports) = best_of(3, || {
            apply_cycle_patterns_batch(&exec, &sim, &full_refs).expect("plays")
        });
        assert_eq!(
            reports, baseline,
            "full-set reports diverged on {exec} — dispatch changed a verdict"
        );
        print_row(
            &exec.to_string(),
            secs,
            base_secs,
            full_count as f64,
            "patterns/s",
        );
        rows.push(BenchRow {
            workload: "jpeg_full_playback",
            backend: exec.to_string(),
            lanes: play_lanes,
            opt: sim_opt,
            rate: full_count as f64 / secs.max(1e-12),
            unit: "patterns/s",
            compares: full_compares,
            mismatches: full_mismatches,
            ship: None,
            peak_rss_kib: peak_rss_kib(),
        });
    }

    // Machine-level rows over the same set: the Remote backend through
    // spawn transports (zero network), then through a two-host TCP
    // fleet of `steac-worker --serve` listeners on localhost — the
    // wire-for-wire rehearsal of a real multi-host deployment.
    if let Some(fleet) = RemoteFleet::spawn_local(2) {
        let exec = Exec::remote(fleet).with_fallback(Fallback::Fail);
        let (secs, reports) =
            time(|| apply_cycle_patterns_batch(&exec, &sim, &full_refs).expect("plays"));
        assert_eq!(
            reports, baseline,
            "full-set reports diverged on {exec} — dispatch changed a verdict"
        );
        print_row(
            "remote:spawn*2",
            secs,
            base_secs,
            full_count as f64,
            "patterns/s",
        );
        let ship = fleet_of(&exec).stats();
        println!(
            "             ^ shipped {} program bytes ({} ships, one-shot workers) + {} unit bytes",
            ship.program_bytes, ship.programs_shipped, ship.unit_bytes
        );
        rows.push(BenchRow {
            workload: "jpeg_full_playback",
            backend: "remote:spawn*2".to_string(),
            lanes: play_lanes,
            opt: sim_opt,
            rate: full_count as f64 / secs.max(1e-12),
            unit: "patterns/s",
            compares: full_compares,
            mismatches: full_mismatches,
            ship: Some(ship),
            peak_rss_kib: peak_rss_kib(),
        });
    }
    if let Some(bin) = shard::default_worker_binary() {
        let servers: Vec<ServeHandle> = (0..2)
            .map_while(|_| spawn_serve_process(&bin).ok())
            .collect();
        if servers.len() == 2 {
            println!(
                "remote TCP hosts: {}",
                servers
                    .iter()
                    .map(ServeHandle::addr)
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            let fleet = RemoteFleet::tcp(servers.iter().map(|s| s.addr().to_string()))
                .expect("two addresses collected");
            let exec = Exec::remote(fleet).with_fallback(Fallback::Fail);
            let (secs, reports) =
                time(|| apply_cycle_patterns_batch(&exec, &sim, &full_refs).expect("plays"));
            assert_eq!(
                reports, baseline,
                "full-set reports diverged on {exec} — dispatch changed a verdict"
            );
            print_row(
                "remote:tcp*2",
                secs,
                base_secs,
                full_count as f64,
                "patterns/s",
            );
            let fleet = fleet_of(&exec);
            let ship = fleet.stats();
            println!(
                "             ^ shipped {} program bytes ({} ships for {} hosts) + {} unit bytes \
                 over {} requests",
                ship.program_bytes,
                ship.programs_shipped,
                fleet.hosts(),
                ship.unit_bytes,
                ship.requests
            );
            // The content-addressed cache contract, measured, not
            // assumed: one program ship per host on a clean run.
            assert_eq!(
                ship.programs_shipped as usize,
                fleet.hosts(),
                "the program must ship exactly once per host: {ship:?}"
            );
            assert_eq!(
                ship.need_program_replies, 0,
                "a clean run never draws a cache miss: {ship:?}"
            );
            for (endpoint, status) in fleet.statuses() {
                match status {
                    Ok(status) => println!("worker {endpoint}: {status}"),
                    Err(e) => println!("worker {endpoint}: status unavailable ({e})"),
                }
            }
            rows.push(BenchRow {
                workload: "jpeg_full_playback",
                backend: "remote:tcp*2".to_string(),
                lanes: play_lanes,
                opt: sim_opt,
                rate: full_count as f64 / secs.max(1e-12),
                unit: "patterns/s",
                compares: full_compares,
                mismatches: full_mismatches,
                ship: Some(ship),
                peak_rss_kib: peak_rss_kib(),
            });

            // ---- sustained load: fixed-rate injection on the fleet ----
            //
            // The burst rows above measure saturation throughput; real
            // ATE floors (and the SAIBERSOC argument) care whether the
            // pipeline *sustains* a declared rate. Inject fixed-size
            // batches on a fixed schedule at 75% of the measured burst
            // rate and require the aggregate rate to hold — persistent
            // backlog means the claim was false. Individual slot misses
            // are reported but tolerated: when the injector shares one
            // core with the workers, any scheduler hiccup slips a slot
            // without the fleet actually falling behind.
            println!(
                "{}",
                header("Sustained load: fixed-rate injection over the TCP fleet")
            );
            let burst_rate = full_count as f64 / secs.max(1e-12);
            let batch = 4096.min(full_count.max(1));
            let target_rate = burst_rate * 0.75;
            let interval = Duration::from_secs_f64(batch as f64 / target_rate.max(1e-9));
            let batches: Vec<&[&CyclePattern]> = full_refs.chunks(batch).collect();
            println!(
                "{} batches of {batch} patterns injected every {:.0} ms \
                 (target {target_rate:.0} patterns/s, 75% of burst)",
                batches.len(),
                interval.as_secs_f64() * 1e3
            );
            let mut on_time = 0usize;
            let t0 = Instant::now();
            for (i, chunk) in batches.iter().enumerate() {
                let slot = interval * i as u32;
                if let Some(wait) = slot.checked_sub(t0.elapsed()) {
                    std::thread::sleep(wait);
                }
                let reports = apply_cycle_patterns_batch(&exec, &sim, chunk).expect("plays");
                assert_eq!(
                    reports.reports,
                    baseline.reports[i * batch..(i * batch + chunk.len())],
                    "sustained-load batch {i} diverged from the serial baseline"
                );
                if t0.elapsed() <= slot + interval {
                    on_time += 1;
                }
            }
            let sustained_secs = t0.elapsed().as_secs_f64();
            let sustained_rate = full_count as f64 / sustained_secs.max(1e-12);
            println!(
                "sustained {sustained_rate:.0} patterns/s over {sustained_secs:.2}s, \
                 {on_time}/{} batches cleared within their slot",
                batches.len()
            );
            assert!(
                sustained_rate >= target_rate * 0.9,
                "the fleet fell behind the declared injection rate: \
                 sustained {sustained_rate:.0} < 90% of target {target_rate:.0}"
            );
            let sustained_ship = fleet.stats();
            assert_eq!(
                sustained_ship.need_program_replies, 0,
                "the cache must hold across sustained batches: {sustained_ship:?}"
            );
            rows.push(BenchRow {
                workload: "jpeg_sustained_playback",
                backend: "remote:tcp*2".to_string(),
                lanes: play_lanes,
                opt: sim_opt,
                rate: sustained_rate,
                unit: "patterns/s",
                compares: full_compares,
                mismatches: full_mismatches,
                ship: Some(sustained_ship),
                peak_rss_kib: peak_rss_kib(),
            });
        } else {
            println!("could not start two --serve workers; remote TCP row skipped");
        }
    }
    println!(
        "reports identical on every backend: {full_compares} compares, \
         {full_mismatches} mismatches"
    );

    // ---- per-core tables: optimizer pipeline × lane-group width ----
    //
    // Backends held fixed (serial, one core); what varies is how much
    // work each pass does. Gate-level PPSFP grading of the full JPEG
    // fault set is the headline: the whole-netlist contract keeps
    // fold/CSE/DCE inert (every net is a fault site), so what the
    // optimizer buys here is the verified-schedule single-sweep settle
    // plus cache-friendly slot renumbering, and the wide kernel carries
    // 4x the faults per pass. Reports must be byte-identical in every
    // cell — the optimizer and the wide kernel may only change speed,
    // never a verdict.
    println!(
        "{}",
        header("Per-core scaling: optimizer pipeline x lane-group width (serial backend)")
    );
    let opt_stats = SimProgram::compile_with(&module, &OptConfig::default())
        .expect("opt compile")
        .opt;
    println!(
        "optimizer: {} -> {} instructions ({} folded, {} CSE-merged, {} dead removed), \
         scheduled={}",
        opt_stats.instrs_before,
        opt_stats.instrs_after,
        opt_stats.folded,
        opt_stats.cse_merged,
        opt_stats.dce_removed,
        opt_stats.scheduled,
    );
    let serial_exec = Exec::serial();
    println!(
        "JPEG fault grading, {} faults x {} vectors:",
        faults.len(),
        vectors.len()
    );
    println!(
        "{:>12} {:>6} {:>10} {:<12} {:>8}",
        "program", "lanes", "rate", "", "speedup"
    );
    // `grade_vectors_wide` compiles through the STEAC_OPT-gated entry
    // point, so the env var is the honest way to pin each cell's
    // pipeline — exactly what a deployment would set.
    let mut grade_cells: Vec<(bool, usize, f64)> = Vec::new();
    let mut grade_cell_base: Option<(f64, fault::CoverageReport)> = None;
    for is_opt in [false, true] {
        std::env::set_var("STEAC_OPT", if is_opt { "1" } else { "0" });
        for groups in [1usize, DEFAULT_LANE_GROUPS] {
            let label = if is_opt { "optimized" } else { "unoptimized" };
            let (secs, rep) = time(|| {
                fault::grade_vectors_wide(&serial_exec, &module, &faults, &pins, &vectors, groups)
                    .expect("grading runs")
            });
            let base = if let Some((base, base_rep)) = &grade_cell_base {
                assert_eq!(
                    &rep, base_rep,
                    "coverage diverged at opt={is_opt} groups={groups}"
                );
                *base
            } else {
                grade_cell_base = Some((secs, rep));
                secs
            };
            println!(
                "{label:>12} {:>6} {:>10.0} {:<12} {:>7.2}x",
                LANES * groups,
                faults.len() as f64 / secs.max(1e-12),
                "faults/s",
                base / secs.max(1e-12),
            );
            grade_cells.push((is_opt, LANES * groups, secs));
            rows.push(BenchRow {
                workload: "jpeg_grading",
                backend: "serial".to_string(),
                lanes: LANES * groups,
                opt: is_opt,
                rate: faults.len() as f64 / secs.max(1e-12),
                unit: "faults/s",
                compares: faults.len() as u64,
                mismatches: 0,
                ship: None,
                peak_rss_kib: peak_rss_kib(),
            });
        }
    }
    std::env::remove_var("STEAC_OPT");
    let narrow_raw = grade_cells[0].2;
    let wide_opt = grade_cells
        .iter()
        .find(|(o, l, _)| *o && *l == default_lanes)
        .expect("opt wide cell ran")
        .2;
    let headline = narrow_raw / wide_opt.max(1e-12);
    println!(
        "single-core grading speedup, optimized @ {default_lanes} lanes vs unoptimized @ \
         {LANES} lanes: {headline:.2}x"
    );

    // The same sweep over full-set playback. Playback passes spend most
    // of their time on per-pattern lane packing and per-PO compares
    // (width-invariant scalar work), so the cells mostly show that the
    // wide kernel costs nothing where it cannot win.
    println!("full-set JPEG playback, {full_count} patterns:");
    let raw = Arc::new(SimProgram::compile_unoptimized(&module).expect("unoptimized compile"));
    let opt =
        Arc::new(SimProgram::compile_with(&module, &OptConfig::default()).expect("opt compile"));
    let mut play_cells: Vec<(bool, usize, f64)> = Vec::new();
    let mut cell_base: Option<(f64, steac_pattern::BatchPlayback)> = None;
    println!(
        "{:>12} {:>6} {:>10} {:<12} {:>8}",
        "program", "lanes", "rate", "", "speedup"
    );
    for (label, is_opt, program) in [("unoptimized", false, &raw), ("optimized", true, &opt)] {
        for groups in [1usize, DEFAULT_LANE_GROUPS] {
            let psim: Simulator = Simulator::from_program(Arc::clone(program));
            let (secs, reports) = time(|| {
                apply_cycle_patterns_batch_wide(&serial_exec, &psim, &full_refs, groups)
                    .expect("plays")
            });
            let base = if let Some((base, base_reports)) = &cell_base {
                assert_eq!(
                    &reports, base_reports,
                    "reports diverged at opt={is_opt} groups={groups}"
                );
                *base
            } else {
                cell_base = Some((secs, reports));
                secs
            };
            println!(
                "{label:>12} {:>6} {:>10.0} {:<12} {:>7.2}x",
                LANES * groups,
                full_count as f64 / secs.max(1e-12),
                "patterns/s",
                base / secs.max(1e-12),
            );
            play_cells.push((is_opt, LANES * groups, secs));
            rows.push(BenchRow {
                workload: "jpeg_full_playback",
                backend: "serial".to_string(),
                lanes: LANES * groups,
                opt: is_opt,
                rate: full_count as f64 / secs.max(1e-12),
                unit: "patterns/s",
                compares: full_compares,
                mismatches: full_mismatches,
                ship: None,
                peak_rss_kib: peak_rss_kib(),
            });
        }
    }

    // ---- fault-model registry: per-model grading throughput ----
    //
    // The registry's other members, each through its own unified entry
    // point on the serial backend at the wide grading default:
    // transition/delay and bridging on the JPEG core, inter-cell
    // coupling March simulation on an SRAM sized so the fault list is
    // comparable. One committed row per model sits next to the
    // stuck-at headline above.
    println!(
        "{}",
        header("Fault-model registry: per-model grading throughput (serial backend)")
    );
    println!(
        "{:>12} {:>10} {:<12} {:>9}",
        "model", "rate", "", "detected"
    );
    let tfaults = transition::enumerate_transition_faults(&module);
    let (tsecs, trep) = time(|| {
        transition::grade_transitions(&serial_exec, &module, &tfaults, &pins, &vectors)
            .expect("transition grading runs")
    });
    println!(
        "{:>12} {:>10.0} {:<12} {:>6}/{}",
        "transition",
        tfaults.len() as f64 / tsecs.max(1e-12),
        "faults/s",
        trep.detected,
        trep.total
    );
    rows.push(BenchRow {
        workload: "transition_grading",
        backend: "serial".to_string(),
        lanes: default_lanes,
        opt: sim_opt,
        rate: tfaults.len() as f64 / tsecs.max(1e-12),
        unit: "faults/s",
        compares: tfaults.len() as u64,
        mismatches: 0,
        ship: None,
        peak_rss_kib: peak_rss_kib(),
    });
    let bfaults = bridging::enumerate_bridges(&module).expect("jpeg core compiles");
    let (bsecs, brep) = time(|| {
        bridging::grade_bridges(&serial_exec, &module, &bfaults, &pins, &vectors)
            .expect("bridging grading runs")
    });
    println!(
        "{:>12} {:>10.0} {:<12} {:>6}/{}",
        "bridging",
        bfaults.len() as f64 / bsecs.max(1e-12),
        "faults/s",
        brep.detected,
        brep.total
    );
    rows.push(BenchRow {
        workload: "bridging_grading",
        backend: "serial".to_string(),
        lanes: default_lanes,
        opt: sim_opt,
        rate: bfaults.len() as f64 / bsecs.max(1e-12),
        unit: "faults/s",
        compares: bfaults.len() as u64,
        mismatches: 0,
        ship: None,
        peak_rss_kib: peak_rss_kib(),
    });
    let sram = SramConfig::single_port(256, 8);
    let couplings = enumerate_inter_cell_couplings(&sram);
    let march = MarchAlgorithm::march_c_minus();
    let (csecs, crep) = time(|| {
        fault_coverage(&serial_exec, &march, &sram, &couplings).expect("coupling march runs")
    });
    println!(
        "{:>12} {:>10.0} {:<12} {:>6}/{}",
        "coupling",
        couplings.len() as f64 / csecs.max(1e-12),
        "faults/s",
        crep.detected,
        crep.total
    );
    rows.push(BenchRow {
        workload: "coupling_march",
        backend: "serial".to_string(),
        lanes: default_lanes,
        opt: sim_opt,
        rate: couplings.len() as f64 / csecs.max(1e-12),
        unit: "faults/s",
        compares: couplings.len() as u64,
        mismatches: 0,
        ship: None,
        peak_rss_kib: peak_rss_kib(),
    });

    // ---- SOC zoo: the corpus-wide scheduling / test-time / coverage
    // table, and the standing stress workload's throughput row ----
    //
    // Every SOC runs the full flow (wrap-verify → control sharing →
    // session scheduling → seeded patterns → fault grading) with all
    // scheduler invariants checked; a single violation or infeasible
    // instance aborts the run. The gated rate is flow throughput in
    // scheduled tasks per second on the serial backend.
    println!(
        "{}",
        header("SOC zoo: full flow over the fixed-seed smoke corpus")
    );
    let zoo_socs: usize = std::env::var("STEAC_ZOO_SOCS")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(ZooParams::smoke().socs);
    let zoo_params = ZooParams {
        socs: zoo_socs,
        ..ZooParams::smoke()
    };
    let zoo_opts = RunOptions {
        grade: true,
        vectors: 48,
        ..RunOptions::default()
    };
    let (zoo_secs, zoo_report) =
        time(
            || match run_corpus(&zoo_params, &Exec::serial(), &zoo_opts) {
                Ok(r) => r,
                Err((index, e)) => panic!("zoo soc{index:03} infeasible: {e}"),
            },
        );
    println!("{zoo_report}");
    assert_eq!(
        zoo_report.violations(),
        0,
        "the smoke corpus must schedule without invariant violations"
    );
    let zoo_tasks = zoo_report.total_tasks();
    let zoo_rate = zoo_tasks as f64 / zoo_secs.max(1e-12);
    println!(
        "{} SOCs, {zoo_tasks} tasks through the full flow in {zoo_secs:.2}s \
         ({zoo_rate:.0} tasks/s, serial backend)",
        zoo_report.rows.len()
    );
    rows.push(BenchRow {
        workload: "zoo_scheduling",
        backend: "serial".to_string(),
        lanes: 0,
        opt: sim_opt,
        rate: zoo_rate,
        unit: "tasks/s",
        compares: zoo_tasks as u64,
        mismatches: 0,
        ship: None,
        peak_rss_kib: peak_rss_kib(),
    });

    // The same corpus with grading dispatched through a two-worker
    // spawn fleet — the standing stress workload as a *remote*
    // customer of the exec seam. Scheduling stays in-process (it is
    // not an Exec workload); only the grading inner loops ship to the
    // fleet, and the corpus summary must come back identical.
    if let Some(fleet) = RemoteFleet::spawn_local(2) {
        let remote = Exec::remote(fleet).with_fallback(Fallback::Fail);
        let (rsecs, rreport) = time(|| match run_corpus(&zoo_params, &remote, &zoo_opts) {
            Ok(r) => r,
            Err((index, e)) => panic!("zoo soc{index:03} infeasible on {remote}: {e}"),
        });
        assert_eq!(rreport.violations(), 0);
        let serial_cov: Vec<Option<f64>> = zoo_report.rows.iter().map(|r| r.coverage).collect();
        let remote_cov: Vec<Option<f64>> = rreport.rows.iter().map(|r| r.coverage).collect();
        assert_eq!(
            remote_cov, serial_cov,
            "remote grading changed a corpus coverage verdict"
        );
        let remote_rate = zoo_tasks as f64 / rsecs.max(1e-12);
        println!(
            "remote fleet: {zoo_tasks} tasks in {rsecs:.2}s \
             ({remote_rate:.0} tasks/s, remote:spawn*2, identical coverage)"
        );
        rows.push(BenchRow {
            workload: "zoo_scheduling",
            backend: "remote:spawn*2".to_string(),
            lanes: 0,
            opt: sim_opt,
            rate: remote_rate,
            unit: "tasks/s",
            compares: zoo_tasks as u64,
            mismatches: 0,
            ship: None,
            peak_rss_kib: peak_rss_kib(),
        });
    } else {
        println!("worker binary not found; the remote zoo row is skipped");
    }

    if json {
        write_json("BENCH_10.json", &rows);
    }
}
