//! Fig. 1: the full STEAC flow on the DSC chip — STIL parse, BRAINS,
//! scheduling, netlist-level test insertion and pattern accounting —
//! with wall-clock timings (the paper: "in 5 minutes, using a SUN Blade
//! 1000 workstation with dual 750MHz processors and 2GB RAM").

use std::time::Instant;
use steac::flow::{run_flow, CoreSource, FlowInput};
use steac::insert::{insert_dft, InsertSpec};
use steac::report::{render_flow, render_insertion};
use steac_bench::header;
use steac_dsc::{build_chip, core_stil, dsc_brains, dsc_chip_config, DSC_CHIP_LOGIC_GE, TABLE1};
use steac_stil::to_stil_string;
use steac_tam::{ControlClass, ControlSignal};
use steac_wrapper::{balance_fixed, WrapOptions};

fn main() {
    println!(
        "{}",
        header("Fig. 1: STEAC test integration flow on the DSC")
    );
    let wall = Instant::now();

    // ATPG role: emit the STIL files.
    let (mut design, params) = build_chip().expect("chip builds");
    let stil_texts: Vec<String> = params
        .iter()
        .zip(&TABLE1)
        .map(|(p, row)| to_stil_string(&core_stil(row, p)))
        .collect();

    // Control inventories (paper §3 detail).
    let usb_controls: Vec<ControlSignal> = (0..4)
        .map(|i| {
            ControlSignal::new(
                "USB",
                &format!("ck{i}"),
                ControlClass::Clock { freq_mhz: 48 },
            )
        })
        .chain((0..3).map(|i| ControlSignal::new("USB", &format!("rst{i}"), ControlClass::Reset)))
        .chain(std::iter::once(ControlSignal::new(
            "USB",
            "se",
            ControlClass::ScanEnable,
        )))
        .chain(
            (0..6)
                .map(|i| ControlSignal::new("USB", &format!("test{i}"), ControlClass::TestEnable)),
        )
        .collect();

    let input = FlowInput {
        cores: vec![
            CoreSource::new("USB", &stil_texts[0])
                .with_powers(1.0, 1.0)
                .with_controls(usb_controls),
            CoreSource::new("TV", &stil_texts[1]).with_powers(0.3, 1.1),
            CoreSource::new("JPEG", &stil_texts[2]).with_powers(1.0, 1.4),
        ],
        config: dsc_chip_config(),
        bist: Some(dsc_brains()),
        bist_powers: vec![1.3, 0.6],
    };
    let result = run_flow(&input).expect("flow runs");
    println!("{}", render_flow(&result));

    // Test insertion on the real netlists, using the schedule's widths.
    let t0 = Instant::now();
    let specs = vec![
        InsertSpec {
            core_module: "usb_core".to_string(),
            wrap: WrapOptions {
                clock_port: Some("ck0".to_string()),
                scan_si: params[0].scan_si.clone(),
                scan_so: params[0].scan_so.clone(),
                scan_se: params[0].scan_enable.clone(),
                passthrough_inputs: params[0].clocks[1..]
                    .iter()
                    .chain(&params[0].resets)
                    .chain(&params[0].test_enables)
                    .cloned()
                    .collect(),
                passthrough_outputs: vec![],
            },
            plan: balance_fixed(TABLE1[0].scan_chains, TABLE1[0].pi, TABLE1[0].po, 2),
            sessions_active: vec![1],
            tam_offset: 0,
        },
        InsertSpec {
            core_module: "tv_core".to_string(),
            wrap: WrapOptions {
                clock_port: Some("ck".to_string()),
                scan_si: params[1].scan_si.clone(),
                scan_so: params[1].scan_so.clone(),
                scan_se: params[1].scan_enable.clone(),
                passthrough_inputs: params[1]
                    .resets
                    .iter()
                    .chain(&params[1].test_enables)
                    .cloned()
                    .collect(),
                // q[39] doubles as chain 1's scan-out.
                passthrough_outputs: vec![],
            },
            // PO count excludes the shared scan-out pin.
            plan: balance_fixed(TABLE1[1].scan_chains, TABLE1[1].pi, TABLE1[1].po - 1, 3),
            sessions_active: vec![0],
            tam_offset: 2,
        },
        InsertSpec {
            core_module: "jpeg_core".to_string(),
            wrap: WrapOptions {
                clock_port: Some("ck".to_string()),
                ..WrapOptions::default()
            },
            plan: balance_fixed(&[], TABLE1[2].pi, TABLE1[2].po, 2),
            sessions_active: vec![2],
            tam_offset: 5,
        },
    ];
    let report = insert_dft(&mut design, &specs, 3, 16).expect("insertion succeeds");
    let insert_elapsed = t0.elapsed();
    println!("{}", render_insertion(&report, DSC_CHIP_LOGIC_GE));
    println!("insertion wall-clock: {insert_elapsed:?}");
    println!(
        "\ntotal flow wall-clock: {:?} (paper: ~5 minutes on a 2002 SUN Blade 1000)",
        wall.elapsed()
    );
}
