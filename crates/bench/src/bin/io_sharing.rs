//! Regenerates the paper's §3 test-IO analysis: "The total test IOs of
//! the three large cores are 19, including 6 clock signals, 4 reset
//! signals, 7 test enable signals, and 2 SE signals. With shared test
//! IOs, the test control IO counts are reduced."

use steac_bench::header;
use steac_tam::share::dsc_control_inventory;
use steac_tam::{share_controls, ControlClass, PinBudget, SharePolicy};

fn main() {
    println!("{}", header("§3 test control IOs and sharing"));
    let inv = dsc_control_inventory();
    let count = |f: fn(&ControlClass) -> bool| inv.iter().filter(|s| f(&s.class)).count();
    println!(
        "unshared inventory: {} total = {} clocks + {} resets + {} test enables + {} SE",
        inv.len(),
        count(|c| matches!(c, ControlClass::Clock { .. })),
        count(|c| matches!(c, ControlClass::Reset)),
        count(|c| matches!(c, ControlClass::TestEnable)),
        count(|c| matches!(c, ControlClass::ScanEnable)),
    );
    println!("(paper: 19 = 6 + 4 + 7 + 2)\n");

    let unshared = share_controls(&inv, &SharePolicy::unshared());
    let shared = share_controls(&inv, &SharePolicy::dsc(3));
    println!("-- unshared --\n{unshared}");
    println!("-- shared (PLL clocks, controller-decoded TEs, 3 sessions) --\n{shared}");

    let budget = PinBudget::with_reserved(280, 2);
    println!(
        "TAM width available: unshared {} wires, shared {} wires",
        budget.tam_width(4 + unshared.shared_pins()),
        budget.tam_width(4 + shared.shared_pins())
    );
}
