//! Fig. 3: the DSC test-chip block diagram.

use steac_bench::header;
use steac_dsc::{build_chip, ChipInventory, DSC_CHIP_LOGIC_GE};
use steac_netlist::AreaReport;

fn main() {
    println!("{}", header("Fig. 3: block diagram of the DSC test chip"));
    let inv = ChipInventory::new();
    println!("{}", inv.render());
    println!("declared chip logic: {:.0} GE", inv.total_logic_ge());
    assert_eq!(inv.total_logic_ge(), DSC_CHIP_LOGIC_GE);
    println!("\nembedded SRAMs:");
    for (name, geom) in &inv.memories {
        println!("  {name:<10} {geom}");
    }
    let (design, _) = build_chip().expect("chip builds");
    let area = AreaReport::for_design(&design, "dsc_chip").expect("area");
    println!(
        "\nassembled netlist: {} explicit cells, {:.0} GE total (incl. declared)",
        area.cell_count(),
        area.total_ge()
    );
}
