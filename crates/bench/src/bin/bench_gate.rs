//! Benchmark regression gate: compares a fresh `scaling --json` dump
//! against a committed baseline and fails loudly on throughput loss.
//!
//! ```sh
//! cargo run --release -p steac-bench --bin bench_gate -- BENCH_7.json BENCH_8.json
//! cargo run ... -- BENCH_7.json BENCH_8.json --threshold 0.25
//! ```
//!
//! Both files hold the row schema `scaling --json` writes: one JSON
//! object per line with `workload`, `backend` and a `patterns_per_s` /
//! `faults_per_s` / `tasks_per_s` rate (extra keys are ignored, so
//! schema growth never breaks old baselines). Rows collapse to their **max rate per
//! `(workload, backend)` pair** — the per-core sweeps record several
//! lane/optimizer cells per pair, and the gate guards the best
//! configuration, not an arbitrary cell. The rules:
//!
//! * a pair present in both files must not lose more than the
//!   threshold (default 25%) of its baseline rate,
//! * a pair only in the current file is new coverage — reported,
//!   never failing,
//! * a pair only in the baseline is a **failure**: a benchmark that
//!   silently stops running is a regression in disguise.
//!
//! Exit code 0 when every pair holds, 1 on any regression or missing
//! pair, 2 on usage/parse errors.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// Max rate per `(workload, backend)`, keyed for deterministic output.
type RateMap = BTreeMap<(String, String), f64>;

/// Pulls `"key": "value"` out of one JSON object line.
fn str_field(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\": \"");
    let start = line.find(&tag)? + tag.len();
    line[start..]
        .find('"')
        .map(|end| line[start..start + end].to_string())
}

/// Pulls `"key": <number>` out of one JSON object line.
fn num_field(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\": ");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parses a `scaling --json` dump into max-rate-per-pair form.
///
/// # Errors
///
/// A diagnostic naming the offending line when a row carries no
/// workload, backend or rate — a malformed dump must not pass as "no
/// regressions".
fn parse_rates(name: &str, text: &str) -> Result<RateMap, String> {
    let mut rates = RateMap::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        if !line.starts_with('{') {
            continue;
        }
        let workload = str_field(line, "workload")
            .ok_or_else(|| format!("{name}: row without a workload: {line}"))?;
        let backend = str_field(line, "backend")
            .ok_or_else(|| format!("{name}: row without a backend: {line}"))?;
        let rate = num_field(line, "patterns_per_s")
            .or_else(|| num_field(line, "faults_per_s"))
            .or_else(|| num_field(line, "tasks_per_s"))
            .ok_or_else(|| format!("{name}: row without a rate: {line}"))?;
        let slot = rates.entry((workload, backend)).or_insert(f64::MIN);
        *slot = slot.max(rate);
    }
    if rates.is_empty() {
        return Err(format!("{name}: no benchmark rows found"));
    }
    Ok(rates)
}

/// Applies the gate rules; returns the failure lines (empty = pass)
/// and prints the per-pair verdicts.
fn gate(baseline: &RateMap, current: &RateMap, threshold: f64) -> Vec<String> {
    let mut failures = Vec::new();
    for ((workload, backend), &base) in baseline {
        let key = (workload.clone(), backend.clone());
        match current.get(&key) {
            None => {
                println!("MISSING  {workload} / {backend}: baseline {base:.1}, no current row");
                failures.push(format!("{workload} / {backend} disappeared from the run"));
            }
            Some(&now) => {
                let floor = base * (1.0 - threshold);
                let delta = (now - base) / base * 100.0;
                if now < floor {
                    println!(
                        "FAIL     {workload} / {backend}: {base:.1} -> {now:.1} ({delta:+.1}%, \
                         floor {floor:.1})"
                    );
                    failures.push(format!(
                        "{workload} / {backend} lost {:.1}% (allowed {:.0}%)",
                        -delta,
                        threshold * 100.0
                    ));
                } else {
                    println!(
                        "ok       {workload} / {backend}: {base:.1} -> {now:.1} ({delta:+.1}%)"
                    );
                }
            }
        }
    }
    for ((workload, backend), &now) in current {
        if !baseline.contains_key(&(workload.clone(), backend.clone())) {
            println!("new      {workload} / {backend}: {now:.1} (no baseline; informational)");
        }
    }
    failures
}

fn run() -> Result<Vec<String>, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut threshold = 0.25;
    let mut files = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--threshold" {
            threshold = it
                .next()
                .and_then(|t| t.parse().ok())
                .filter(|t| (0.0..1.0).contains(t))
                .ok_or("--threshold needs a value in [0, 1)")?;
        } else {
            files.push(arg.clone());
        }
    }
    let [baseline_path, current_path] = files.as_slice() else {
        return Err("usage: bench_gate <baseline.json> <current.json> [--threshold 0.25]".into());
    };
    let read =
        |path: &str| std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"));
    let baseline = parse_rates(baseline_path, &read(baseline_path)?)?;
    let current = parse_rates(current_path, &read(current_path)?)?;
    println!(
        "gating {current_path} against {baseline_path} (max {:.0}% loss per workload/backend)",
        threshold * 100.0
    );
    Ok(gate(&baseline, &current, threshold))
}

fn main() -> ExitCode {
    match run() {
        Ok(failures) if failures.is_empty() => {
            println!("benchmark gate: PASS");
            ExitCode::SUCCESS
        }
        Ok(failures) => {
            eprintln!("benchmark gate: FAIL");
            for f in &failures {
                eprintln!("  {f}");
            }
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("bench_gate: {e}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = r#"[
  {"workload": "play", "backend": "serial", "lanes": 64, "opt": true, "patterns_per_s": 100.0, "compares": 1, "mismatches": 0},
  {"workload": "play", "backend": "serial", "lanes": 256, "opt": true, "patterns_per_s": 80.0, "compares": 1, "mismatches": 0},
  {"workload": "grade", "backend": "serial", "lanes": 256, "opt": true, "faults_per_s": 500.0, "compares": 1, "mismatches": 0},
  {"workload": "zoo", "backend": "serial", "lanes": 0, "opt": true, "tasks_per_s": 40.0, "compares": 1, "mismatches": 0}
]"#;

    #[test]
    fn pairs_collapse_to_their_max_rate() {
        let rates = parse_rates("base", BASE).unwrap();
        assert_eq!(
            rates[&("play".to_string(), "serial".to_string())],
            100.0,
            "the 64-lane cell is the pair's best"
        );
        assert_eq!(rates[&("grade".to_string(), "serial".to_string())], 500.0);
    }

    #[test]
    fn losses_within_threshold_pass_and_beyond_fail() {
        let base = parse_rates("base", BASE).unwrap();
        let ok = r#"{"workload": "play", "backend": "serial", "patterns_per_s": 76.0}
{"workload": "grade", "backend": "serial", "faults_per_s": 1000.0}
{"workload": "zoo", "backend": "serial", "tasks_per_s": 40.0}"#;
        let current = parse_rates("cur", ok).unwrap();
        assert!(gate(&base, &current, 0.25).is_empty());
        let bad = r#"{"workload": "play", "backend": "serial", "patterns_per_s": 74.0}
{"workload": "grade", "backend": "serial", "faults_per_s": 500.0}
{"workload": "zoo", "backend": "serial", "tasks_per_s": 40.0}"#;
        let current = parse_rates("cur", bad).unwrap();
        let failures = gate(&base, &current, 0.25);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("play"), "{failures:?}");
    }

    #[test]
    fn new_rows_are_ignored_and_missing_rows_fail() {
        let base = parse_rates("base", BASE).unwrap();
        let current = parse_rates(
            "cur",
            r#"{"workload": "play", "backend": "serial", "patterns_per_s": 100.0}
{"workload": "zoo", "backend": "serial", "tasks_per_s": 40.0}
{"workload": "play", "backend": "remote:tcp*2", "patterns_per_s": 5.0}"#,
        )
        .unwrap();
        let failures = gate(&base, &current, 0.25);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("grade"), "{failures:?}");
    }

    #[test]
    fn rows_with_extra_keys_still_parse() {
        let line = r#"{"workload": "play", "backend": "remote:tcp*2", "lanes": 64, "opt": true, "patterns_per_s": 63090.2, "compares": 1, "mismatches": 0, "program_bytes": 59000, "unit_bytes": 1000000, "programs_shipped": 2, "need_program_replies": 0}"#;
        let rates = parse_rates("cur", line).unwrap();
        assert_eq!(
            rates[&("play".to_string(), "remote:tcp*2".to_string())],
            63090.2
        );
    }

    #[test]
    fn malformed_rows_are_errors_not_passes() {
        assert!(parse_rates("x", r#"{"workload": "play"}"#).is_err());
        assert!(parse_rates("x", "[]").is_err());
    }
}
