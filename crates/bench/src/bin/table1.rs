//! Regenerates the paper's Table 1 from the DSC core models through the
//! full STIL round trip (emit → print → parse → extract).

use steac_bench::header;
use steac_dsc::{core_stil, jpeg_core, tv_core, usb_core, TABLE1};
use steac_stil::{parse_stil, to_stil_string, CoreTestInfo};

fn main() {
    println!("{}", header("Table 1: Test information of the cores"));
    println!(
        "{:<6} {:>4} {:>4} {:>4} {:>4}  {:<28} {:>12}",
        "Core", "TI", "TO", "PI", "PO", "Scan chains (lengths)", "Patterns"
    );
    let cores = [
        (usb_core().expect("usb").1, &TABLE1[0]),
        (tv_core().expect("tv").1, &TABLE1[1]),
        (jpeg_core().expect("jpeg").1, &TABLE1[2]),
    ];
    for (params, row) in &cores {
        let stil_text = to_stil_string(&core_stil(row, params));
        let parsed = parse_stil(&stil_text).expect("generated STIL parses");
        let info = CoreTestInfo::from_stil(row.core, &parsed).expect("info extracts");
        let chains = if info.scan_chains.is_empty() {
            "No scan".to_string()
        } else {
            format!(
                "{} ({})",
                info.scan_chains.len(),
                info.scan_chains
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        };
        let pats = match (info.scan_patterns, info.functional_patterns) {
            (s, 0) => format!("{s} (Scan)"),
            (0, f) => format!("{f} (Func.)"),
            (s, f) => format!("{s} (Scan) + {f} (Func.)"),
        };
        println!(
            "{:<6} {:>4} {:>4} {:>4} {:>4}  {:<28} {:>12}",
            row.core,
            info.test_inputs,
            info.test_outputs,
            info.functional_inputs,
            info.functional_outputs,
            chains,
            pats
        );
        assert_eq!(info.test_inputs, row.ti);
        assert_eq!(info.test_outputs, row.to);
    }
    println!("\n(all values extracted from generated+reparsed STIL; asserts enforce Table 1)");
}
