//! Ablation: how the session budget changes the DSC schedule (the paper
//! picked 3 sessions after "trying several scheduling approaches").

use steac_bench::header;
use steac_dsc::{dsc_chip_config, dsc_test_tasks};
use steac_sched::schedule_sessions;

fn main() {
    println!(
        "{}",
        header("Ablation: session-count sweep on the DSC instance")
    );
    let tasks = dsc_test_tasks();
    println!(
        "{:>12} {:>14} {:>10}",
        "max sessions", "total cycles", "used"
    );
    for max_sessions in 1..=6 {
        let config = steac_sched::ChipConfig {
            max_sessions,
            ..dsc_chip_config()
        };
        match schedule_sessions(&tasks, &config) {
            Err(_) => println!("{max_sessions:>12} {:>14} {:>10}", "infeasible", "-"),
            Ok(s) => println!(
                "{max_sessions:>12} {:>14} {:>10}",
                s.total_cycles,
                s.sessions.len()
            ),
        }
    }
    println!("\n(the paper's chosen point is 3 sessions)");
}
