//! Regenerates the paper's §3 area figures: WBR cell 26 NAND2-equiv,
//! Test Controller ~371 gates, TAM multiplexer ~132 gates, overhead
//! ~0.3% of the chip logic.

use steac_bench::{compare_row, header};
use steac_dsc::DSC_CHIP_LOGIC_GE;
use steac_netlist::AreaReport;
use steac_tam::{controller_module, tam_mux_module, ControllerSpec, TamCoreSpec, TamSpec};
use steac_wrapper::cell::{wbr_cell_area_ge, wbr_cell_module};

fn main() {
    println!("{}", header("§3 DFT area (gate equivalents, NAND2 = 1.0)"));
    let wbr = wbr_cell_area_ge();
    println!("{}", compare_row("WBR cell (GE)", 26.0, wbr));

    let controller = controller_module(&ControllerSpec::dsc()).expect("controller");
    let ctl_ge = AreaReport::for_module(&controller).total_ge();
    println!("{}", compare_row("Test Controller (GE)", 371.0, ctl_ge));

    // The DSC TAM: 16 wires, 3 sessions, the three cores multiplexed.
    let tam = TamSpec {
        width: 16,
        sessions: 3,
        cores: vec![
            TamCoreSpec {
                name: "usb".into(),
                wires: 12,
                offset: 0,
                session: 0,
            },
            TamCoreSpec {
                name: "tv".into(),
                wires: 4,
                offset: 12,
                session: 0,
            },
            TamCoreSpec {
                name: "tv2".into(),
                wires: 16,
                offset: 0,
                session: 1,
            },
            TamCoreSpec {
                name: "jpeg".into(),
                wires: 16,
                offset: 0,
                session: 2,
            },
        ],
    };
    let mux = tam_mux_module(&tam).expect("tam mux");
    let mux_ge = AreaReport::for_module(&mux).total_ge();
    println!("{}", compare_row("TAM multiplexer (GE)", 132.0, mux_ge));

    let overhead = 100.0 * (ctl_ge + mux_ge) / DSC_CHIP_LOGIC_GE;
    println!(
        "{}",
        compare_row("controller+mux overhead (%)", 0.3, overhead)
    );

    println!("\nWBR cell netlist breakdown:");
    println!("{}", AreaReport::for_module(&wbr_cell_module().unwrap()));
    println!("Controller breakdown:");
    println!("{}", AreaReport::for_module(&controller));
}
