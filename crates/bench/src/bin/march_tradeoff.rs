//! Ablation: March algorithm trade-off — test time vs measured fault
//! coverage (the BRAINS "evaluate the memory test efficiency among
//! different designs" feature).

use rand::rngs::StdRng;
use rand::SeedableRng;
use steac_bench::header;
use steac_membist::faultsim::{fault_coverage, random_fault_list};
use steac_membist::{MarchAlgorithm, SramConfig};
use steac_sim::Exec;

fn main() {
    println!(
        "{}",
        header("Ablation: March algorithm time/coverage trade-off")
    );
    let exec = Exec::from_env();
    let cfg = SramConfig::single_port(64, 4);
    let mut rng = StdRng::seed_from_u64(2005);
    let faults = random_fault_list(&cfg, 80, &mut rng);
    println!(
        "{:<10} {:>5} {:>12} {:>10}  escapes by class",
        "algorithm", "kN", "cycles@8K", "coverage"
    );
    for alg in MarchAlgorithm::library() {
        let rep = fault_coverage(&exec, &alg, &cfg, &faults).expect("March grading dispatches");
        let escapes: Vec<String> = rep
            .escapes_by_class
            .iter()
            .map(|(c, n)| format!("{c}={n}"))
            .collect();
        println!(
            "{:<10} {:>4}N {:>12} {:>9.2}%  {}",
            alg.name,
            alg.complexity(),
            alg.cycles(8192),
            rep.coverage_percent(),
            escapes.join(" ")
        );
    }
    println!(
        "\n({} faults sampled per run: SAF/TF/CFin/CFid/CFst/AF classes)",
        faults.len()
    );
}
