//! Fig. 2: the shared memory-BIST architecture — one controller, one
//! sequencer per group, one TPG per memory, 7-signal tester interface.

use steac_bench::header;
use steac_dsc::dsc_brains;
use steac_membist::{MarchAlgorithm, BIST_IF_SIGNALS};

fn main() {
    println!(
        "{}",
        header("Fig. 2: BIST architecture for multiple memory cores")
    );
    let brains = dsc_brains();
    let design = brains.compile().expect("BIST compiles");
    println!(
        "tester interface ({} signals): {}",
        BIST_IF_SIGNALS.len(),
        BIST_IF_SIGNALS.join(" ")
    );
    println!("algorithm: {}", MarchAlgorithm::march_c_minus());
    println!();
    println!("{design}");
    println!(
        "area: controller {:.0} GE + sequencers {:.0} GE + TPGs {:.0} GE = {:.0} GE",
        design.controller_area,
        design.sequencer_area,
        design.tpg_area,
        design.total_area_ge()
    );
    println!(
        "test time: serial {} cycles, parallel {} cycles ({}x speedup)",
        design.total_cycles_serial,
        design.total_cycles_parallel,
        design.total_cycles_serial as f64 / design.total_cycles_parallel.max(1) as f64
    );
    println!("\nmeasured fault coverage (sampled fault lists):");
    let coverage = brains
        .evaluate_coverage(&steac_sim::Exec::from_env(), 25, 2005)
        .expect("coverage dispatches");
    for r in coverage {
        println!("  {r}");
    }
}
