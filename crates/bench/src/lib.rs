//! Shared helpers for the experiment harness.
//!
//! Every table and figure of the paper has a binary in `src/bin/` that
//! regenerates it (see DESIGN.md §3 for the index and EXPERIMENTS.md for
//! recorded paper-vs-measured results):
//!
//! | Binary | Paper artifact |
//! |--------|----------------|
//! | `table1` | Table 1 — core test information |
//! | `scheduling` | §3 — session-based 4,371,194 vs non-session 4,713,935 cycles |
//! | `io_sharing` | §3 — 19 test control IOs, reduced by sharing |
//! | `area_overhead` | §3 — WBR 26 GE, controller ~371, TAM mux ~132, ~0.3% |
//! | `fig1_flow` | Fig. 1 — the full STEAC flow on the DSC chip (+ runtime) |
//! | `fig2_bist` | Fig. 2 — the shared BIST architecture |
//! | `fig3_chip` | Fig. 3 — the DSC block diagram |
//! | `fig4_integration` | Fig. 4 — BRAINS integrated into STEAC |
//! | `rebalance` | ablation — soft-core scan-chain rebalancing |
//! | `march_tradeoff` | ablation — March algorithm time/coverage trade-off |
//! | `session_sweep` | ablation — session-count sweep |

use std::fmt::Write as _;

/// Formats a paper-vs-measured comparison row.
#[must_use]
pub fn compare_row(label: &str, paper: f64, measured: f64) -> String {
    let delta = if paper != 0.0 {
        100.0 * (measured - paper) / paper
    } else {
        0.0
    };
    let mut s = String::new();
    if paper.abs() < 10.0 {
        let _ = write!(
            s,
            "{label:<34} paper {paper:>12.3}   measured {measured:>12.3}   delta {delta:>+7.2}%"
        );
    } else {
        let _ = write!(
            s,
            "{label:<34} paper {paper:>12.0}   measured {measured:>12.0}   delta {delta:>+7.2}%"
        );
    }
    s
}

/// Section header for harness output.
#[must_use]
pub fn header(title: &str) -> String {
    format!("\n==== {title} ====\n")
}

/// Deterministic pseudo-random input vectors (SplitMix64) over a
/// module's input ports — the shared stimulus for the fault-grading
/// bench and the scaling harness, so their workloads stay comparable.
#[must_use]
pub fn splitmix_vectors(
    module: &steac_netlist::Module,
    count: usize,
) -> Vec<Vec<steac_sim::Logic>> {
    let n = module.ports_with_dir(steac_netlist::PortDir::Input).count();
    (0..count)
        .map(|k| {
            (0..n)
                .map(|i| {
                    let mut z = (k as u64)
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(i as u64);
                    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                    steac_sim::Logic::from(z >> 17 & 1 == 1)
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compare_row_formats_delta() {
        let row = compare_row("x", 100.0, 105.0);
        assert!(row.contains("+5.00%"), "{row}");
    }
}
