//! Behavioural SRAM models with injectable functional faults.
//!
//! The DSC chip embeds "tens of single-port and two-port synchronous
//! SRAMs with different sizes"; BRAINS grades March algorithms against
//! the standard functional fault models on these models:
//!
//! * **SAF** — stuck-at fault: a cell permanently holds 0 or 1,
//! * **TF** — transition fault: a cell cannot make a 0→1 (or 1→0)
//!   transition,
//! * **CFin** — inversion coupling: an aggressor transition inverts the
//!   victim,
//! * **CFid** — idempotent coupling: an aggressor transition forces the
//!   victim to a fixed value,
//! * **CFst** — state coupling: writing the aggressor into a given state
//!   forces the victim,
//! * **AF** — address-decoder faults (no access / multi access / other
//!   access).

use std::fmt;

/// Port configuration of an SRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortKind {
    /// One read/write port.
    SinglePort,
    /// One read port plus one write port usable in the same cycle.
    TwoPort,
}

impl fmt::Display for PortKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PortKind::SinglePort => f.write_str("SP"),
            PortKind::TwoPort => f.write_str("2P"),
        }
    }
}

/// Geometry of an SRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SramConfig {
    /// Number of words.
    pub words: usize,
    /// Word width in bits.
    pub width: usize,
    /// Port configuration.
    pub ports: PortKind,
}

impl SramConfig {
    /// Single-port configuration.
    #[must_use]
    pub fn single_port(words: usize, width: usize) -> Self {
        SramConfig {
            words,
            width,
            ports: PortKind::SinglePort,
        }
    }

    /// Two-port configuration.
    #[must_use]
    pub fn two_port(words: usize, width: usize) -> Self {
        SramConfig {
            words,
            width,
            ports: PortKind::TwoPort,
        }
    }

    /// Capacity in bits.
    #[must_use]
    pub fn bits(&self) -> usize {
        self.words * self.width
    }

    /// Address bus width.
    #[must_use]
    pub fn addr_bits(&self) -> usize {
        (usize::BITS - (self.words.max(2) - 1).leading_zeros()) as usize
    }
}

impl fmt::Display for SramConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{} {}", self.words, self.width, self.ports)
    }
}

/// An injectable functional memory fault. Cell coordinates are
/// `(address, bit)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemFault {
    /// Stuck-at: the cell always reads `value` and cannot be changed.
    StuckAt {
        /// Word address of the faulty cell.
        addr: usize,
        /// Bit position of the faulty cell.
        bit: usize,
        /// The stuck value.
        value: bool,
    },
    /// Transition fault: the cell cannot transition in the given
    /// direction (`rising = true`: 0→1 fails).
    Transition {
        /// Word address of the faulty cell.
        addr: usize,
        /// Bit position of the faulty cell.
        bit: usize,
        /// Failing direction.
        rising: bool,
    },
    /// Inversion coupling: when the aggressor makes the `rising`
    /// transition, the victim inverts.
    CouplingInversion {
        /// Aggressor cell.
        aggressor: (usize, usize),
        /// Victim cell.
        victim: (usize, usize),
        /// Triggering aggressor transition direction.
        rising: bool,
    },
    /// Idempotent coupling: when the aggressor makes the `rising`
    /// transition, the victim is forced to `forced`.
    CouplingIdempotent {
        /// Aggressor cell.
        aggressor: (usize, usize),
        /// Victim cell.
        victim: (usize, usize),
        /// Triggering aggressor transition direction.
        rising: bool,
        /// Value forced onto the victim.
        forced: bool,
    },
    /// State coupling: whenever the aggressor is written into state
    /// `state`, the victim is forced to `forced`.
    CouplingState {
        /// Aggressor cell.
        aggressor: (usize, usize),
        /// Victim cell.
        victim: (usize, usize),
        /// Aggressor state that triggers the fault.
        state: bool,
        /// Value forced onto the victim.
        forced: bool,
    },
    /// Address decoder: `addr` cannot be accessed (writes lost, reads
    /// return 0).
    AfNoAccess {
        /// Unreachable address.
        addr: usize,
    },
    /// Address decoder: accessing `addr` also accesses `also`.
    AfMultiAccess {
        /// The address as issued.
        addr: usize,
        /// The additional address hit by the decoder.
        also: usize,
    },
    /// Address decoder: accessing `addr` actually accesses `other`.
    AfOtherAccess {
        /// The address as issued.
        addr: usize,
        /// The address actually accessed.
        other: usize,
    },
}

impl MemFault {
    /// Convenience: stuck-at fault.
    #[must_use]
    pub fn stuck_at(addr: usize, bit: usize, value: bool) -> Self {
        MemFault::StuckAt { addr, bit, value }
    }

    /// Convenience: up-transition fault (cell cannot go 0→1).
    #[must_use]
    pub fn transition_up(addr: usize, bit: usize) -> Self {
        MemFault::Transition {
            addr,
            bit,
            rising: true,
        }
    }

    /// Short class label (`SAF`, `TF`, `CFin`, ...).
    #[must_use]
    pub fn class(&self) -> &'static str {
        match self {
            MemFault::StuckAt { .. } => "SAF",
            MemFault::Transition { .. } => "TF",
            MemFault::CouplingInversion { .. } => "CFin",
            MemFault::CouplingIdempotent { .. } => "CFid",
            MemFault::CouplingState { .. } => "CFst",
            MemFault::AfNoAccess { .. }
            | MemFault::AfMultiAccess { .. }
            | MemFault::AfOtherAccess { .. } => "AF",
        }
    }
}

/// A behavioural SRAM with at most one injected fault (single-fault
/// assumption, as in standard memory test theory).
#[derive(Debug, Clone)]
pub struct Sram {
    config: SramConfig,
    /// Cell array, bit-packed per word into `u64` limbs — widths ≤ 64
    /// are supported, which covers the DSC inventory.
    data: Vec<u64>,
    fault: Option<MemFault>,
}

impl Sram {
    /// A fault-free memory with all cells `0` (BIST initialises contents
    /// anyway; March tests start with a write element).
    ///
    /// # Panics
    ///
    /// Panics if `config.width > 64` or `config.words == 0`.
    #[must_use]
    pub fn new(config: SramConfig) -> Self {
        assert!(config.width <= 64, "model supports widths up to 64 bits");
        assert!(config.words > 0, "memory must have at least one word");
        Sram {
            config,
            data: vec![0; config.words],
            fault: None,
        }
    }

    /// A memory with one injected fault.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range fault coordinates (programming error in the
    /// fault-list generator) or unsupported geometry.
    #[must_use]
    pub fn with_fault(config: SramConfig, fault: MemFault) -> Self {
        let mut m = Self::new(config);
        m.check_fault(&fault);
        m.fault = Some(fault);
        m
    }

    fn check_fault(&self, fault: &MemFault) {
        let cell_ok = |(a, b): (usize, usize)| {
            assert!(
                a < self.config.words && b < self.config.width,
                "fault cell ({a},{b}) out of range for {}",
                self.config
            );
        };
        match *fault {
            MemFault::StuckAt { addr, bit, .. } | MemFault::Transition { addr, bit, .. } => {
                cell_ok((addr, bit));
            }
            MemFault::CouplingInversion {
                aggressor, victim, ..
            }
            | MemFault::CouplingIdempotent {
                aggressor, victim, ..
            }
            | MemFault::CouplingState {
                aggressor, victim, ..
            } => {
                cell_ok(aggressor);
                cell_ok(victim);
                assert!(aggressor != victim, "aggressor and victim must differ");
            }
            MemFault::AfNoAccess { addr } => assert!(addr < self.config.words),
            MemFault::AfMultiAccess { addr, also } => {
                assert!(addr < self.config.words && also < self.config.words && addr != also);
            }
            MemFault::AfOtherAccess { addr, other } => {
                assert!(addr < self.config.words && other < self.config.words && addr != other);
            }
        }
    }

    /// The geometry.
    #[must_use]
    pub fn config(&self) -> SramConfig {
        self.config
    }

    fn mask(&self) -> u64 {
        if self.config.width == 64 {
            u64::MAX
        } else {
            (1u64 << self.config.width) - 1
        }
    }

    fn get_bit(&self, addr: usize, bit: usize) -> bool {
        (self.data[addr] >> bit) & 1 == 1
    }

    fn set_bit(&mut self, addr: usize, bit: usize, v: bool) {
        if v {
            self.data[addr] |= 1 << bit;
        } else {
            self.data[addr] &= !(1 << bit);
        }
    }

    /// Raw write of a word into the cell array, honouring cell-level
    /// faults (SAF/TF) per bit, then applying coupling disturbances.
    ///
    /// Coupling effects fire *after* the word has latched (the
    /// disturbance follows the write), which makes the semantics
    /// independent of bit ordering within the word.
    fn write_cells(&mut self, addr: usize, value: u64) {
        let mut transitions: Vec<(usize, bool)> = Vec::new();
        for bit in 0..self.config.width {
            let new = (value >> bit) & 1 == 1;
            let old = self.get_bit(addr, bit);
            // Cell-level write faults.
            let mut effective = new;
            match self.fault {
                Some(MemFault::StuckAt {
                    addr: fa,
                    bit: fb,
                    value,
                }) if fa == addr && fb == bit => effective = value,
                Some(MemFault::Transition {
                    addr: fa,
                    bit: fb,
                    rising,
                }) if fa == addr && fb == bit => {
                    if rising && !old && new {
                        effective = false; // 0->1 fails
                    } else if !rising && old && !new {
                        effective = true; // 1->0 fails
                    }
                }
                _ => {}
            }
            self.set_bit(addr, bit, effective);
            if effective != old {
                transitions.push((bit, effective));
            }
        }
        // Coupling side effects after the word latches.
        for (bit, now) in transitions {
            self.aggressor_transition((addr, bit), now);
        }
        if let Some(MemFault::CouplingState {
            aggressor,
            victim,
            state,
            forced,
        }) = self.fault
        {
            if aggressor.0 == addr {
                let now = self.get_bit(aggressor.0, aggressor.1);
                if now == state {
                    self.set_bit(victim.0, victim.1, forced);
                }
            }
        }
    }

    fn aggressor_transition(&mut self, cell: (usize, usize), now: bool) {
        match self.fault {
            Some(MemFault::CouplingInversion {
                aggressor,
                victim,
                rising,
            }) if aggressor == cell && now == rising => {
                let v = self.get_bit(victim.0, victim.1);
                self.set_bit(victim.0, victim.1, !v);
            }
            Some(MemFault::CouplingIdempotent {
                aggressor,
                victim,
                rising,
                forced,
            }) if aggressor == cell && now == rising => {
                self.set_bit(victim.0, victim.1, forced);
            }
            _ => {}
        }
    }

    /// Writes `value` to `addr` through the (possibly faulty) decoder.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn write(&mut self, addr: usize, value: u64) {
        assert!(addr < self.config.words, "address {addr} out of range");
        let value = value & self.mask();
        match self.fault {
            Some(MemFault::AfNoAccess { addr: fa }) if fa == addr => { /* write lost */ }
            Some(MemFault::AfMultiAccess { addr: fa, also }) if fa == addr => {
                self.write_cells(addr, value);
                self.write_cells(also, value);
            }
            Some(MemFault::AfOtherAccess { addr: fa, other }) if fa == addr => {
                self.write_cells(other, value);
            }
            _ => self.write_cells(addr, value),
        }
    }

    /// Reads `addr` through the (possibly faulty) decoder.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    #[must_use]
    pub fn read(&self, addr: usize) -> u64 {
        assert!(addr < self.config.words, "address {addr} out of range");
        let raw = match self.fault {
            Some(MemFault::AfNoAccess { addr: fa }) if fa == addr => 0,
            Some(MemFault::AfOtherAccess { addr: fa, other }) if fa == addr => self.data[other],
            Some(MemFault::AfMultiAccess { addr: fa, also }) if fa == addr => {
                // Wired-AND of the two selected rows (typical CMOS
                // bit-line behaviour).
                self.data[addr] & self.data[also]
            }
            _ => self.data[addr],
        };
        let mut value = raw & self.mask();
        // A stuck cell reads stuck regardless of the array content.
        if let Some(MemFault::StuckAt {
            addr: fa,
            bit,
            value: v,
        }) = self.fault
        {
            if fa == addr {
                if v {
                    value |= 1 << bit;
                } else {
                    value &= !(1 << bit);
                }
            }
        }
        value
    }

    /// Simultaneous read+write for two-port memories (write takes effect
    /// after the read returns, write-after-read semantics).
    ///
    /// # Panics
    ///
    /// Panics if the memory is single-port or addresses are out of range.
    pub fn read_write(&mut self, raddr: usize, waddr: usize, value: u64) -> u64 {
        assert_eq!(
            self.config.ports,
            PortKind::TwoPort,
            "read_write needs a two-port memory"
        );
        let out = self.read(raddr);
        self.write(waddr, value);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_read_write() {
        let mut m = Sram::new(SramConfig::single_port(16, 8));
        m.write(3, 0xA5);
        assert_eq!(m.read(3), 0xA5);
        assert_eq!(m.read(4), 0);
    }

    #[test]
    fn width_mask_applies() {
        let mut m = Sram::new(SramConfig::single_port(4, 4));
        m.write(0, 0xFF);
        assert_eq!(m.read(0), 0x0F);
    }

    #[test]
    fn stuck_at_zero_never_reads_one() {
        let mut m = Sram::with_fault(
            SramConfig::single_port(8, 8),
            MemFault::stuck_at(2, 3, false),
        );
        m.write(2, 0xFF);
        assert_eq!(m.read(2), 0xFF & !(1 << 3));
    }

    #[test]
    fn transition_up_fault_blocks_only_rising() {
        let mut m = Sram::with_fault(SramConfig::single_port(8, 8), MemFault::transition_up(1, 0));
        m.write(1, 0x00);
        m.write(1, 0x01); // 0->1 on bit 0 fails
        assert_eq!(m.read(1) & 1, 0);
        // Other bits and 1->0 unaffected.
        m.write(1, 0xFE);
        assert_eq!(m.read(1), 0xFE);
        m.write(1, 0x00);
        assert_eq!(m.read(1), 0x00);
    }

    #[test]
    fn coupling_inversion_fires_on_aggressor_transition() {
        let mut m = Sram::with_fault(
            SramConfig::single_port(8, 8),
            MemFault::CouplingInversion {
                aggressor: (0, 0),
                victim: (1, 0),
                rising: true,
            },
        );
        m.write(1, 0x00);
        m.write(0, 0x01); // aggressor 0->1: victim inverts to 1
        assert_eq!(m.read(1) & 1, 1);
        m.write(0, 0x00); // falling: no effect
        assert_eq!(m.read(1) & 1, 1);
    }

    #[test]
    fn coupling_idempotent_forces_value() {
        let mut m = Sram::with_fault(
            SramConfig::single_port(8, 8),
            MemFault::CouplingIdempotent {
                aggressor: (2, 1),
                victim: (5, 1),
                rising: false,
                forced: true,
            },
        );
        m.write(5, 0x00);
        m.write(2, 0x02);
        m.write(2, 0x00); // 1->0 on aggressor triggers
        assert_eq!((m.read(5) >> 1) & 1, 1);
    }

    #[test]
    fn coupling_state_forces_while_written() {
        let mut m = Sram::with_fault(
            SramConfig::single_port(8, 8),
            MemFault::CouplingState {
                aggressor: (0, 0),
                victim: (3, 0),
                state: true,
                forced: false,
            },
        );
        m.write(3, 0x01);
        m.write(0, 0x01); // aggressor written to 1: victim forced to 0
        assert_eq!(m.read(3) & 1, 0);
    }

    #[test]
    fn af_no_access_loses_writes() {
        let mut m = Sram::with_fault(
            SramConfig::single_port(8, 8),
            MemFault::AfNoAccess { addr: 4 },
        );
        m.write(4, 0xFF);
        assert_eq!(m.read(4), 0);
    }

    #[test]
    fn af_other_access_redirects() {
        let mut m = Sram::with_fault(
            SramConfig::single_port(8, 8),
            MemFault::AfOtherAccess { addr: 2, other: 6 },
        );
        m.write(2, 0x55);
        assert_eq!(m.read(2), 0x55); // reads follow the same redirect
        assert_eq!(m.read(6), 0x55); // actually stored at 6
                                     // Direct write to 6 shows up at faulty address 2 as well.
        m.write(6, 0xAA);
        assert_eq!(m.read(2), 0xAA);
    }

    #[test]
    fn af_multi_access_wired_and() {
        let mut m = Sram::with_fault(
            SramConfig::single_port(8, 8),
            MemFault::AfMultiAccess { addr: 1, also: 3 },
        );
        m.write(3, 0x0F);
        m.write(1, 0xFF); // writes both 1 and 3
        assert_eq!(m.read(3), 0xFF);
        m.write(3, 0x0F);
        assert_eq!(m.read(1), 0x0F); // wired-AND of rows 1 and 3
    }

    #[test]
    fn two_port_read_write_same_cycle() {
        let mut m = Sram::new(SramConfig::two_port(8, 8));
        m.write(0, 0x11);
        let out = m.read_write(0, 1, 0x22);
        assert_eq!(out, 0x11);
        assert_eq!(m.read(1), 0x22);
    }

    #[test]
    #[should_panic(expected = "two-port")]
    fn single_port_rejects_read_write() {
        let mut m = Sram::new(SramConfig::single_port(8, 8));
        let _ = m.read_write(0, 1, 0);
    }

    #[test]
    fn class_labels() {
        assert_eq!(MemFault::stuck_at(0, 0, true).class(), "SAF");
        assert_eq!(MemFault::AfNoAccess { addr: 0 }.class(), "AF");
    }
}
