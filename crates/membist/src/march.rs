//! March test algorithms: DSL, notation parser and the standard library.
//!
//! A March test is a sequence of *March elements*; each element walks the
//! address space in a direction (⇑ up, ⇓ down, ⇕ either) applying a fixed
//! sequence of read/write operations at every address. Complexity is
//! quoted as the operation count per address, e.g. March C− is a 10N
//! test.

use crate::BistError;
use std::fmt;

/// One read/write operation within a March element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MarchOp {
    /// Read, expect background 0.
    R0,
    /// Read, expect background 1.
    R1,
    /// Write background 0.
    W0,
    /// Write background 1.
    W1,
}

impl MarchOp {
    /// `true` for reads.
    #[must_use]
    pub fn is_read(self) -> bool {
        matches!(self, MarchOp::R0 | MarchOp::R1)
    }

    /// The data value involved (expected for reads, written for writes).
    #[must_use]
    pub fn value(self) -> bool {
        matches!(self, MarchOp::R1 | MarchOp::W1)
    }
}

impl fmt::Display for MarchOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarchOp::R0 => f.write_str("r0"),
            MarchOp::R1 => f.write_str("r1"),
            MarchOp::W0 => f.write_str("w0"),
            MarchOp::W1 => f.write_str("w1"),
        }
    }
}

/// Address order of a March element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Ascending addresses (⇑).
    Up,
    /// Descending addresses (⇓).
    Down,
    /// Either order is allowed (⇕); simulated ascending.
    Any,
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Direction::Up => f.write_str("up"),
            Direction::Down => f.write_str("down"),
            Direction::Any => f.write_str("any"),
        }
    }
}

/// One March element: a direction and an op sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MarchElement {
    /// Address order.
    pub dir: Direction,
    /// Operations applied at each address.
    pub ops: Vec<MarchOp>,
}

impl fmt::Display for MarchElement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ops: Vec<String> = self.ops.iter().map(ToString::to_string).collect();
        write!(f, "{}({})", self.dir, ops.join(","))
    }
}

/// A complete March algorithm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MarchAlgorithm {
    /// Algorithm name (e.g. `"March C-"`).
    pub name: String,
    /// Elements in order.
    pub elements: Vec<MarchElement>,
}

impl MarchAlgorithm {
    /// Operation count per address — the `k` of a `kN` test.
    #[must_use]
    pub fn complexity(&self) -> usize {
        self.elements.iter().map(|e| e.ops.len()).sum()
    }

    /// Total BIST cycles for a memory of `words` addresses (one op per
    /// cycle, the usual synchronous-SRAM BIST assumption).
    #[must_use]
    pub fn cycles(&self, words: usize) -> u64 {
        self.complexity() as u64 * words as u64
    }

    /// Parses the ASCII notation used by the BRAINS shell:
    /// `"{any(w0); up(r0,w1); up(r1,w0); down(r0,w1); down(r1,w0); any(r0)}"`.
    ///
    /// # Errors
    ///
    /// Returns [`BistError::MarchSyntax`] with the offending fragment.
    pub fn parse(name: &str, notation: &str) -> Result<Self, BistError> {
        let inner = notation
            .trim()
            .strip_prefix('{')
            .and_then(|s| s.strip_suffix('}'))
            .ok_or(BistError::MarchSyntax {
                fragment: notation.trim().to_string(),
                expected: "braces around the element list",
            })?;
        let mut elements = Vec::new();
        for elem in inner.split(';') {
            let elem = elem.trim();
            if elem.is_empty() {
                continue;
            }
            let open = elem.find('(').ok_or(BistError::MarchSyntax {
                fragment: elem.to_string(),
                expected: "direction(ops)",
            })?;
            let dir = match &elem[..open] {
                "up" | "^" => Direction::Up,
                "down" | "v" => Direction::Down,
                "any" | "b" => Direction::Any,
                other => {
                    return Err(BistError::MarchSyntax {
                        fragment: other.to_string(),
                        expected: "`up`, `down` or `any`",
                    })
                }
            };
            let close = elem.rfind(')').ok_or(BistError::MarchSyntax {
                fragment: elem.to_string(),
                expected: "closing parenthesis",
            })?;
            let mut ops = Vec::new();
            for op in elem[open + 1..close].split(',') {
                let op = op.trim();
                ops.push(match op {
                    "r0" => MarchOp::R0,
                    "r1" => MarchOp::R1,
                    "w0" => MarchOp::W0,
                    "w1" => MarchOp::W1,
                    other => {
                        return Err(BistError::MarchSyntax {
                            fragment: other.to_string(),
                            expected: "r0, r1, w0 or w1",
                        })
                    }
                });
            }
            if ops.is_empty() {
                return Err(BistError::MarchSyntax {
                    fragment: elem.to_string(),
                    expected: "at least one operation",
                });
            }
            elements.push(MarchElement { dir, ops });
        }
        if elements.is_empty() {
            return Err(BistError::MarchSyntax {
                fragment: notation.to_string(),
                expected: "at least one element",
            });
        }
        Ok(MarchAlgorithm {
            name: name.to_string(),
            elements,
        })
    }

    /// MATS+ — 5N: `{any(w0); up(r0,w1); down(r1,w0)}`. Detects all SAFs
    /// and AFs.
    #[must_use]
    pub fn mats_plus() -> Self {
        Self::parse("MATS+", "{any(w0); up(r0,w1); down(r1,w0)}").expect("static notation")
    }

    /// March X — 6N: detects SAFs, AFs, TFs and unlinked CFins.
    #[must_use]
    pub fn march_x() -> Self {
        Self::parse("March X", "{any(w0); up(r0,w1); down(r1,w0); any(r0)}")
            .expect("static notation")
    }

    /// March Y — 8N: March X plus linked TF detection.
    #[must_use]
    pub fn march_y() -> Self {
        Self::parse(
            "March Y",
            "{any(w0); up(r0,w1,r1); down(r1,w0,r0); any(r0)}",
        )
        .expect("static notation")
    }

    /// March C− — 10N: the workhorse; detects SAFs, AFs, TFs, and all
    /// unlinked CFins, CFids and CFsts. The DSC chip's memories are
    /// tested with this by default.
    #[must_use]
    pub fn march_c_minus() -> Self {
        Self::parse(
            "March C-",
            "{any(w0); up(r0,w1); up(r1,w0); down(r0,w1); down(r1,w0); any(r0)}",
        )
        .expect("static notation")
    }

    /// March A — 15N: adds linked-fault coverage.
    #[must_use]
    pub fn march_a() -> Self {
        Self::parse(
            "March A",
            "{any(w0); up(r0,w1,w0,w1); up(r1,w0,w1); down(r1,w0,w1,w0); down(r0,w1,w0)}",
        )
        .expect("static notation")
    }

    /// March B — 17N: March A plus TF-linked coverage.
    #[must_use]
    pub fn march_b() -> Self {
        Self::parse(
            "March B",
            "{any(w0); up(r0,w1,r1,w0,r0,w1); up(r1,w0,w1); down(r1,w0,w1,w0); down(r0,w1,w0)}",
        )
        .expect("static notation")
    }

    /// March LR — 14N: targets realistic linked faults.
    #[must_use]
    pub fn march_lr() -> Self {
        Self::parse(
            "March LR",
            "{any(w0); down(r0,w1); up(r1,w0,r0,w1); up(r1,w0); up(r0,w1,r1,w0); any(r0)}",
        )
        .expect("static notation")
    }

    /// March SS — 22N: detects all simple static faults.
    #[must_use]
    pub fn march_ss() -> Self {
        Self::parse(
            "March SS",
            "{any(w0); up(r0,r0,w0,r0,w1); up(r1,r1,w1,r1,w0); \
              down(r0,r0,w0,r0,w1); down(r1,r1,w1,r1,w0); any(r0)}",
        )
        .expect("static notation")
    }

    /// The algorithm library indexed by shell name.
    #[must_use]
    pub fn by_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().replace([' ', '_'], "-").as_str() {
            "mats+" | "mats-plus" => Some(Self::mats_plus()),
            "march-x" => Some(Self::march_x()),
            "march-y" => Some(Self::march_y()),
            "march-c-" | "march-c-minus" | "marchc-" => Some(Self::march_c_minus()),
            "march-a" => Some(Self::march_a()),
            "march-b" => Some(Self::march_b()),
            "march-lr" => Some(Self::march_lr()),
            "march-ss" => Some(Self::march_ss()),
            _ => None,
        }
    }

    /// All library algorithms (for sweeps and reports).
    #[must_use]
    pub fn library() -> Vec<Self> {
        vec![
            Self::mats_plus(),
            Self::march_x(),
            Self::march_y(),
            Self::march_c_minus(),
            Self::march_a(),
            Self::march_b(),
            Self::march_lr(),
            Self::march_ss(),
        ]
    }
}

impl fmt::Display for MarchAlgorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let elems: Vec<String> = self.elements.iter().map(ToString::to_string).collect();
        write!(
            f,
            "{} ({}N): {{{}}}",
            self.name,
            self.complexity(),
            elems.join("; ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complexities_match_the_literature() {
        assert_eq!(MarchAlgorithm::mats_plus().complexity(), 5);
        assert_eq!(MarchAlgorithm::march_x().complexity(), 6);
        assert_eq!(MarchAlgorithm::march_y().complexity(), 8);
        assert_eq!(MarchAlgorithm::march_c_minus().complexity(), 10);
        assert_eq!(MarchAlgorithm::march_a().complexity(), 15);
        assert_eq!(MarchAlgorithm::march_b().complexity(), 17);
        assert_eq!(MarchAlgorithm::march_lr().complexity(), 14);
        assert_eq!(MarchAlgorithm::march_ss().complexity(), 22);
    }

    #[test]
    fn cycles_scale_linearly() {
        let c = MarchAlgorithm::march_c_minus();
        assert_eq!(c.cycles(8192), 81_920);
    }

    #[test]
    fn parse_rejects_bad_notation() {
        assert!(MarchAlgorithm::parse("x", "up(r0)").is_err()); // no braces
        assert!(MarchAlgorithm::parse("x", "{sideways(r0)}").is_err());
        assert!(MarchAlgorithm::parse("x", "{up(r2)}").is_err());
        assert!(MarchAlgorithm::parse("x", "{}").is_err());
        assert!(MarchAlgorithm::parse("x", "{up()}").is_err());
    }

    #[test]
    fn display_round_trips_through_parse() {
        for alg in MarchAlgorithm::library() {
            let shown = alg.to_string();
            let notation = &shown[shown.find('{').unwrap()..];
            let reparsed = MarchAlgorithm::parse(&alg.name, notation).unwrap();
            assert_eq!(reparsed, alg, "{shown}");
        }
    }

    #[test]
    fn by_name_lookup_is_tolerant() {
        assert!(MarchAlgorithm::by_name("March C-").is_some());
        assert!(MarchAlgorithm::by_name("march_c_minus").is_some());
        assert!(MarchAlgorithm::by_name("MATS+").is_some());
        assert!(MarchAlgorithm::by_name("nonsense").is_none());
    }
}
