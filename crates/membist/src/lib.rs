//! BRAINS — the memory BIST compiler of the STEAC platform.
//!
//! The paper (Fig. 2): *"The tester can access all the on-chip memories
//! via a single shared BIST Controller, while one or more Sequencers can
//! be used to generate March-based test algorithms. Each Test Pattern
//! Generator (TPG) attached to the memory will translate the March-based
//! test commands to the respective RAM signals. With our automatic memory
//! BIST generation system, BRAINS, one can generate the BIST circuit
//! using the GUI or command shell, and evaluate the memory test efficiency
//! among different designs easily."*
//!
//! This crate provides all of it:
//!
//! * [`march`] — the March-algorithm DSL (notation parser, complexity,
//!   cycle counts) and a library of standard algorithms (MATS+,
//!   March C−, March X/Y/A/B, March LR, March SS),
//! * [`memory`] — behavioural single-port and two-port synchronous SRAM
//!   models with injectable functional faults (SAF, TF, CFin, CFid,
//!   CFst, AF),
//! * [`faultsim`] — March fault simulation and coverage grading,
//! * [`sequencer`], [`tpg`], [`controller`] — the Fig. 2 hardware, both
//!   as behavioural command streams and as generated gate netlists,
//! * [`brains`] — the compiler: memory list + policy → BIST design with
//!   area, test time and measured coverage,
//! * [`shell`] — the BRAINS command-shell front end.
//!
//! # Example
//!
//! ```
//! use steac_membist::march::MarchAlgorithm;
//! use steac_membist::memory::{MemFault, SramConfig};
//! use steac_membist::faultsim::fault_coverage;
//! use steac_sim::Exec;
//!
//! # fn main() -> Result<(), steac_sim::SimError> {
//! let alg = MarchAlgorithm::march_c_minus();
//! assert_eq!(alg.complexity(), 10); // 10N
//! let cfg = SramConfig::single_port(1024, 8);
//! let faults = vec![
//!     MemFault::stuck_at(3, 0, true),
//!     MemFault::transition_up(17, 2),
//! ];
//! // One Exec value picks the backend: serial, threads or processes.
//! let report = fault_coverage(&Exec::from_env(), &alg, &cfg, &faults)?;
//! assert_eq!(report.coverage_percent(), 100.0);
//! # Ok(())
//! # }
//! ```

pub mod background;
pub mod brains;
pub mod controller;
pub mod diagnose;
pub mod faultsim;
pub mod march;
pub mod memory;
pub mod sequencer;
pub mod shell;
pub mod tpg;
pub mod wire;

pub use background::{
    background_coverage, run_march_with_backgrounds, standard_backgrounds, DataBackground,
};
pub use brains::{BistDesign, Brains, MemorySpec, SequencerPolicy};
pub use controller::{controller_netlist, BIST_IF_SIGNALS};
pub use diagnose::{
    coupling_dictionary, failure_log, first_failure, implicated_memories, march_signature,
    rank_candidates, signature_distance, FailureSite, MemDictionary,
};
pub use faultsim::{
    enumerate_inter_cell_couplings, fault_coverage, fault_coverage_wide, faults_per_walk,
    run_march, MemCoverageReport, FAULTS_PER_PASS,
};
pub use march::{Direction, MarchAlgorithm, MarchElement, MarchOp};
pub use memory::{MemFault, PortKind, Sram, SramConfig};
pub use sequencer::{sequencer_netlist, BistCommand, Sequencer};
pub use tpg::{tpg_netlist, RamSignals};

use std::fmt;

/// Errors from the BRAINS subsystem.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BistError {
    /// March notation failed to parse.
    MarchSyntax {
        /// Offending fragment.
        fragment: String,
        /// What was expected.
        expected: &'static str,
    },
    /// A shell command is unknown or malformed.
    Shell {
        /// The command line.
        line: String,
        /// Explanation.
        reason: String,
    },
    /// A referenced memory/algorithm does not exist.
    Unknown {
        /// What kind of thing is missing.
        what: &'static str,
        /// Its name.
        name: String,
    },
    /// Netlist generation failed.
    Netlist(steac_netlist::NetlistError),
}

impl fmt::Display for BistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BistError::MarchSyntax { fragment, expected } => {
                write!(f, "march syntax error at `{fragment}`: expected {expected}")
            }
            BistError::Shell { line, reason } => {
                write!(f, "shell command `{line}`: {reason}")
            }
            BistError::Unknown { what, name } => write!(f, "unknown {what} `{name}`"),
            BistError::Netlist(e) => write!(f, "netlist generation: {e}"),
        }
    }
}

impl std::error::Error for BistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BistError::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<steac_netlist::NetlistError> for BistError {
    fn from(e: steac_netlist::NetlistError) -> Self {
        BistError::Netlist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        let e = BistError::Unknown {
            what: "memory",
            name: "sram9".to_string(),
        };
        assert!(e.to_string().contains("sram9"));
    }
}
