//! The Test Pattern Generator (TPG): per-memory adapter translating
//! March commands into RAM pin activity and comparing read data
//! (Fig. 2's "TPG" boxes).

use crate::march::MarchOp;
use crate::memory::{PortKind, SramConfig};
use steac_netlist::{GateKind, Module, NetlistBuilder, NetlistError};

/// RAM pin activity for one BIST cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RamSignals {
    /// Word address driven on the address bus.
    pub addr: usize,
    /// Data bus value (background pattern).
    pub data: u64,
    /// Write enable, active low (`false` = writing).
    pub web: bool,
    /// Chip enable, active low (`false` = selected).
    pub ceb: bool,
    /// Expected read data, when the op is a read.
    pub expected: Option<u64>,
}

/// Translates one March command into RAM signals for `config`.
#[must_use]
pub fn translate(op: MarchOp, addr: usize, config: &SramConfig) -> RamSignals {
    let mask = if config.width == 64 {
        u64::MAX
    } else {
        (1u64 << config.width) - 1
    };
    let bg = if op.value() { mask } else { 0 };
    RamSignals {
        addr,
        data: bg,
        web: op.is_read(),
        ceb: false,
        expected: op.is_read().then_some(bg),
    }
}

/// Generates the TPG hardware for one memory: background data expansion,
/// write-enable decode and the read comparator (XOR reduce + pass/fail
/// flop).
///
/// Ports: `op_read`, `op_value`, `bck`, `brst_n`, `q[k]` (RAM read
/// data) inputs; `d[k]`, `web`, `ceb`, `fail` outputs. Two-port
/// memories additionally get `web2` for the write port.
///
/// # Errors
///
/// Propagates netlist construction errors.
pub fn tpg_netlist(config: &SramConfig) -> Result<Module, NetlistError> {
    let mut b = NetlistBuilder::new(format!(
        "steac_tpg_{}x{}_{}",
        config.words, config.width, config.ports
    ));
    let op_read = b.input("op_read");
    let op_value = b.input("op_value");
    let bck = b.input("bck");
    let brst_n = b.input("brst_n");
    let q = b.input_bus("q", config.width);

    // Background expansion: every data bit equals op_value.
    for i in 0..config.width {
        let d = b.gate(GateKind::Buf, &[op_value]);
        b.output(&format!("d[{i}]"), d);
    }
    // web: high (inactive) while reading.
    let web = b.gate(GateKind::Buf, &[op_read]);
    b.output("web", web);
    if config.ports == PortKind::TwoPort {
        let web2 = b.gate(GateKind::Buf, &[op_read]);
        b.output("web2", web2);
    }
    let ceb = b.tie0();
    b.output("ceb", ceb);

    // Comparator: any read bit != op_value while op_read sets the sticky
    // fail flop.
    let diffs: Vec<_> = q
        .iter()
        .map(|&bit| b.gate(GateKind::Xor2, &[bit, op_value]))
        .collect();
    let any_diff = b.or_tree(&diffs);
    let mismatch = b.gate(GateKind::And2, &[any_diff, op_read]);
    let fail = b.net("fail_q");
    let fail_next = b.gate(GateKind::Or2, &[fail, mismatch]);
    b.gate_into(GateKind::DffR, &[fail_next, bck, brst_n], fail);
    b.output("fail", fail);

    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use steac_netlist::AreaReport;
    use steac_sim::{Logic, Simulator};

    #[test]
    fn translate_write_ops() {
        let cfg = SramConfig::single_port(256, 8);
        let s = translate(MarchOp::W1, 7, &cfg);
        assert_eq!(s.addr, 7);
        assert_eq!(s.data, 0xFF);
        assert!(!s.web);
        assert!(s.expected.is_none());
    }

    #[test]
    fn translate_read_ops() {
        let cfg = SramConfig::single_port(256, 8);
        let s = translate(MarchOp::R0, 31, &cfg);
        assert!(s.web);
        assert_eq!(s.expected, Some(0));
    }

    #[test]
    fn netlist_fail_flag_is_sticky() {
        let cfg = SramConfig::single_port(16, 4);
        let m = tpg_netlist(&cfg).unwrap();
        let mut sim: Simulator = Simulator::new(&m).unwrap();
        for p in ["op_read", "op_value", "bck"] {
            sim.set_by_name(p, Logic::Zero).unwrap();
        }
        for i in 0..4 {
            sim.set_by_name(&format!("q[{i}]"), Logic::Zero).unwrap();
        }
        sim.set_by_name("brst_n", Logic::Zero).unwrap();
        sim.settle().unwrap();
        sim.set_by_name("brst_n", Logic::One).unwrap();
        // Read expecting 0 with q = 0: no fail.
        sim.set_by_name("op_read", Logic::One).unwrap();
        sim.clock_cycle_by_name("bck").unwrap();
        assert_eq!(sim.get_by_name("fail").unwrap(), Logic::Zero);
        // Corrupt one bit: fail latches.
        sim.set_by_name("q[2]", Logic::One).unwrap();
        sim.clock_cycle_by_name("bck").unwrap();
        assert_eq!(sim.get_by_name("fail").unwrap(), Logic::One);
        // And stays, even after the mismatch goes away.
        sim.set_by_name("q[2]", Logic::Zero).unwrap();
        sim.clock_cycle_by_name("bck").unwrap();
        assert_eq!(sim.get_by_name("fail").unwrap(), Logic::One);
    }

    #[test]
    fn two_port_gets_second_write_enable() {
        let m = tpg_netlist(&SramConfig::two_port(16, 4)).unwrap();
        assert!(m.port("web2").is_some());
        let sp = tpg_netlist(&SramConfig::single_port(16, 4)).unwrap();
        assert!(sp.port("web2").is_none());
    }

    #[test]
    fn area_scales_with_width() {
        let narrow = AreaReport::for_module(&tpg_netlist(&SramConfig::single_port(16, 4)).unwrap())
            .total_ge();
        let wide = AreaReport::for_module(&tpg_netlist(&SramConfig::single_port(16, 32)).unwrap())
            .total_ge();
        assert!(wide > narrow);
    }
}
