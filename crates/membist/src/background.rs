//! Data-background extension for word-oriented memories.
//!
//! Solid-background March tests cannot observe intra-word coupling
//! faults whose forced value coincides with the background (see the
//! escape test in [`crate::faultsim`]): aggressor and victim bits of one
//! word are always written together. The standard remedy — and the
//! extension BRAINS applies for word-oriented SRAMs — is to repeat the
//! March test under a set of *data backgrounds* (solid, checkerboard,
//! column-stripe, ...) such that every intra-word bit pair receives both
//! polarities. `log2(width) + 1` backgrounds suffice for pairwise
//! coverage.

use crate::march::{Direction, MarchAlgorithm, MarchOp};
use crate::memory::{MemFault, Sram, SramConfig};
use std::fmt;

/// A data background: the word written for `w0`/`w1` ops (`w1` writes
/// the complement of `w0`'s pattern... by convention `pattern` is what
/// `w1` writes and its complement what `w0` writes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DataBackground {
    /// Bit pattern applied on `w1` (complemented on `w0`).
    pub pattern: u64,
    /// Descriptive name.
    pub name: &'static str,
}

impl fmt::Display for DataBackground {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({:#06x})", self.name, self.pattern)
    }
}

/// The standard pairwise-covering background set for a `width`-bit word:
/// solid plus stripes of period 2, 4, 8, ... (`log2(width) + 1` entries).
#[must_use]
pub fn standard_backgrounds(width: usize) -> Vec<DataBackground> {
    let mask = if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    let mut out = vec![DataBackground {
        pattern: mask,
        name: "solid",
    }];
    let names = [
        "stripe2", "stripe4", "stripe8", "stripe16", "stripe32", "stripe64",
    ];
    let mut period = 2usize;
    let mut ni = 0;
    while period <= width.max(2) && ni < names.len() {
        // Alternating blocks of period/2 ones and zeros: ...11001100.
        let mut p = 0u64;
        for bit in 0..width.min(64) {
            if (bit / (period / 2)).is_multiple_of(2) {
                p |= 1 << bit;
            }
        }
        out.push(DataBackground {
            pattern: p & mask,
            name: names[ni],
        });
        period *= 2;
        ni += 1;
    }
    out
}

/// Runs `alg` once per background; a read mismatch under any background
/// detects the fault. Total cycles = `backgrounds.len() × kN`.
#[must_use]
pub fn run_march_with_backgrounds(
    alg: &MarchAlgorithm,
    mem: &mut Sram,
    backgrounds: &[DataBackground],
) -> bool {
    let mask = crate::faultsim::word_mask(&mem.config());
    for bg in backgrounds {
        let one = bg.pattern & mask;
        let zero = !bg.pattern & mask;
        for element in &alg.elements {
            let addrs: Box<dyn Iterator<Item = usize>> = match element.dir {
                Direction::Up | Direction::Any => Box::new(0..mem.config().words),
                Direction::Down => Box::new((0..mem.config().words).rev()),
            };
            for addr in addrs {
                for &op in &element.ops {
                    match op {
                        MarchOp::W0 => mem.write(addr, zero),
                        MarchOp::W1 => mem.write(addr, one),
                        MarchOp::R0 => {
                            if mem.read(addr) != zero {
                                return true;
                            }
                        }
                        MarchOp::R1 => {
                            if mem.read(addr) != one {
                                return true;
                            }
                        }
                    }
                }
            }
        }
    }
    false
}

/// Coverage of the multi-background test over a fault list.
#[must_use]
pub fn background_coverage(
    alg: &MarchAlgorithm,
    config: &SramConfig,
    faults: &[MemFault],
    backgrounds: &[DataBackground],
) -> (usize, usize) {
    let mut detected = 0;
    for &fault in faults {
        let mut mem = Sram::with_fault(*config, fault);
        if run_march_with_backgrounds(alg, &mut mem, backgrounds) {
            detected += 1;
        }
    }
    (detected, faults.len())
}

/// Test time multiplier: cycles per address with `n` backgrounds.
#[must_use]
pub fn background_cycles(alg: &MarchAlgorithm, words: usize, backgrounds: usize) -> u64 {
    alg.cycles(words) * backgrounds as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faultsim::run_march;

    const CFG: SramConfig = SramConfig {
        words: 32,
        width: 8,
        ports: crate::memory::PortKind::SinglePort,
    };

    #[test]
    fn background_set_size_is_logarithmic() {
        assert_eq!(standard_backgrounds(1).len(), 2);
        assert_eq!(standard_backgrounds(8).len(), 4); // solid + 2,4,8
        assert_eq!(standard_backgrounds(16).len(), 5);
        assert_eq!(standard_backgrounds(32).len(), 6);
    }

    #[test]
    fn solid_background_is_all_ones() {
        let bgs = standard_backgrounds(8);
        assert_eq!(bgs[0].pattern, 0xFF);
        assert_eq!(bgs[0].name, "solid");
        // stripe2 alternates bits: 0b01010101.
        assert_eq!(bgs[1].pattern, 0x55);
        // stripe4 alternates pairs: 0b00110011.
        assert_eq!(bgs[2].pattern, 0x33);
    }

    /// Every adjacent bit pair receives opposite values under at least
    /// one background — the pairwise-coverage property.
    #[test]
    fn backgrounds_separate_every_bit_pair() {
        for width in [2usize, 4, 8, 16, 32] {
            let bgs = standard_backgrounds(width);
            for i in 0..width {
                for j in (i + 1)..width {
                    let separated = bgs
                        .iter()
                        .any(|bg| ((bg.pattern >> i) & 1) != ((bg.pattern >> j) & 1));
                    assert!(separated, "width {width}: bits {i},{j} never separated");
                }
            }
        }
    }

    /// The masked intra-word CFid that escapes solid-background March C−
    /// is caught with the standard background set.
    #[test]
    fn intra_word_cfid_caught_with_backgrounds() {
        let fault = MemFault::CouplingIdempotent {
            aggressor: (5, 0),
            victim: (5, 1),
            rising: true,
            forced: true,
        };
        let alg = MarchAlgorithm::march_c_minus();
        // Escapes under solid background...
        let mut solid = Sram::with_fault(CFG, fault);
        assert!(!run_march(&alg, &mut solid), "premise: solid-only escape");
        // ...caught with the background set (stripe2 writes bit0 and
        // bit1 with opposite values).
        let mut multi = Sram::with_fault(CFG, fault);
        let bgs = standard_backgrounds(CFG.width);
        assert!(
            run_march_with_backgrounds(&alg, &mut multi, &bgs),
            "background extension must detect the intra-word CFid"
        );
    }

    #[test]
    fn clean_memory_still_passes() {
        let alg = MarchAlgorithm::march_c_minus();
        let bgs = standard_backgrounds(CFG.width);
        let mut mem = Sram::new(CFG);
        assert!(!run_march_with_backgrounds(&alg, &mut mem, &bgs));
    }

    #[test]
    fn coverage_and_cycles_account() {
        let alg = MarchAlgorithm::march_c_minus();
        let bgs = standard_backgrounds(CFG.width);
        let faults = vec![
            MemFault::stuck_at(3, 2, true),
            MemFault::CouplingIdempotent {
                aggressor: (7, 3),
                victim: (7, 4),
                rising: true,
                forced: true,
            },
        ];
        let (det, total) = background_coverage(&alg, &CFG, &faults, &bgs);
        assert_eq!((det, total), (2, 2));
        assert_eq!(
            background_cycles(&alg, 1024, bgs.len()),
            10 * 1024 * bgs.len() as u64
        );
    }

    /// All intra-word coupling polarities over random cell pairs are
    /// caught with backgrounds (the theory the extension exists for).
    #[test]
    fn random_intra_word_couplings_all_caught() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let alg = MarchAlgorithm::march_c_minus();
        let bgs = standard_backgrounds(CFG.width);
        for _ in 0..60 {
            let addr = rng.gen_range(0..CFG.words);
            let b1 = rng.gen_range(0..CFG.width);
            let mut b2 = rng.gen_range(0..CFG.width);
            while b2 == b1 {
                b2 = rng.gen_range(0..CFG.width);
            }
            let fault = MemFault::CouplingIdempotent {
                aggressor: (addr, b1),
                victim: (addr, b2),
                rising: rng.gen(),
                forced: rng.gen(),
            };
            let mut mem = Sram::with_fault(CFG, fault);
            assert!(
                run_march_with_backgrounds(&alg, &mut mem, &bgs),
                "escaped: {fault:?}"
            );
        }
    }
}
