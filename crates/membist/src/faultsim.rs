//! March fault simulation: runs an algorithm against a faulty memory
//! model and grades coverage over a fault list.

use crate::march::{Direction, MarchAlgorithm, MarchOp};
use crate::memory::{MemFault, Sram, SramConfig};
use rand::Rng;
use std::collections::BTreeMap;
use std::fmt;

/// Runs `alg` on `mem`; returns `true` if any read mismatches its
/// expected background value (fault detected).
#[must_use]
pub fn run_march(alg: &MarchAlgorithm, mem: &mut Sram) -> bool {
    let words = mem.config().words;
    let mask = if mem.config().width == 64 {
        u64::MAX
    } else {
        (1u64 << mem.config().width) - 1
    };
    for element in &alg.elements {
        let addrs: Box<dyn Iterator<Item = usize>> = match element.dir {
            Direction::Up | Direction::Any => Box::new(0..words),
            Direction::Down => Box::new((0..words).rev()),
        };
        for addr in addrs {
            for &op in &element.ops {
                match op {
                    MarchOp::W0 => mem.write(addr, 0),
                    MarchOp::W1 => mem.write(addr, mask),
                    MarchOp::R0 => {
                        if mem.read(addr) != 0 {
                            return true;
                        }
                    }
                    MarchOp::R1 => {
                        if mem.read(addr) != mask {
                            return true;
                        }
                    }
                }
            }
        }
    }
    false
}

/// Coverage of an algorithm over a fault list on one memory geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemCoverageReport {
    /// Algorithm name.
    pub algorithm: String,
    /// Memory geometry description.
    pub memory: String,
    /// Total faults simulated.
    pub total: usize,
    /// Faults detected.
    pub detected: usize,
    /// Escapes per fault class.
    pub escapes_by_class: BTreeMap<&'static str, usize>,
    /// The escaped faults (for diagnosis).
    pub escaped: Vec<MemFault>,
}

impl MemCoverageReport {
    /// Coverage in percent (100 for an empty list).
    #[must_use]
    pub fn coverage_percent(&self) -> f64 {
        if self.total == 0 {
            100.0
        } else {
            100.0 * self.detected as f64 / self.total as f64
        }
    }
}

impl fmt::Display for MemCoverageReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} on {}: {}/{} detected ({:.2}%)",
            self.algorithm,
            self.memory,
            self.detected,
            self.total,
            self.coverage_percent()
        )?;
        if !self.escapes_by_class.is_empty() {
            write!(f, " escapes:")?;
            for (class, n) in &self.escapes_by_class {
                write!(f, " {class}={n}")?;
            }
        }
        Ok(())
    }
}

/// Simulates every fault in `faults` (single-fault assumption) under
/// `alg` and reports coverage.
#[must_use]
pub fn fault_coverage(
    alg: &MarchAlgorithm,
    config: &SramConfig,
    faults: &[MemFault],
) -> MemCoverageReport {
    let mut detected = 0usize;
    let mut escaped = Vec::new();
    let mut escapes_by_class: BTreeMap<&'static str, usize> = BTreeMap::new();
    for &fault in faults {
        let mut mem = Sram::with_fault(*config, fault);
        if run_march(alg, &mut mem) {
            detected += 1;
        } else {
            *escapes_by_class.entry(fault.class()).or_insert(0) += 1;
            escaped.push(fault);
        }
    }
    MemCoverageReport {
        algorithm: alg.name.clone(),
        memory: config.to_string(),
        total: faults.len(),
        detected,
        escaped,
        escapes_by_class,
    }
}

/// Generates a random fault list over all classes with `per_class`
/// faults each (deduplicated cells are not required — the single-fault
/// assumption means every entry is simulated independently).
pub fn random_fault_list<R: Rng>(
    config: &SramConfig,
    per_class: usize,
    rng: &mut R,
) -> Vec<MemFault> {
    let mut out = Vec::with_capacity(per_class * 6);
    let cell = |rng: &mut R| -> (usize, usize) {
        (rng.gen_range(0..config.words), rng.gen_range(0..config.width))
    };
    for _ in 0..per_class {
        let (a, b) = cell(rng);
        out.push(MemFault::StuckAt {
            addr: a,
            bit: b,
            value: rng.gen(),
        });
    }
    for _ in 0..per_class {
        let (a, b) = cell(rng);
        out.push(MemFault::Transition {
            addr: a,
            bit: b,
            rising: rng.gen(),
        });
    }
    // Inter-word pairs only: intra-word coupling faults are not
    // guaranteed detectable with the solid data backgrounds March tests
    // use (word-oriented memories need multiple backgrounds for those —
    // see the dedicated escape test), so the theory-grade fault list
    // sticks to the classically covered class.
    let distinct_pair = |rng: &mut R| -> ((usize, usize), (usize, usize)) {
        loop {
            let a = cell(rng);
            let v = cell(rng);
            if a.0 != v.0 {
                return (a, v);
            }
        }
    };
    for _ in 0..per_class {
        let (a, v) = distinct_pair(rng);
        out.push(MemFault::CouplingInversion {
            aggressor: a,
            victim: v,
            rising: rng.gen(),
        });
    }
    for _ in 0..per_class {
        let (a, v) = distinct_pair(rng);
        out.push(MemFault::CouplingIdempotent {
            aggressor: a,
            victim: v,
            rising: rng.gen(),
            forced: rng.gen(),
        });
    }
    for _ in 0..per_class {
        let (a, v) = distinct_pair(rng);
        out.push(MemFault::CouplingState {
            aggressor: a,
            victim: v,
            state: rng.gen(),
            forced: rng.gen(),
        });
    }
    if config.words >= 2 {
        for _ in 0..per_class {
            let a = rng.gen_range(0..config.words);
            let mut b = rng.gen_range(0..config.words);
            while b == a {
                b = rng.gen_range(0..config.words);
            }
            out.push(match rng.gen_range(0..3) {
                0 => MemFault::AfNoAccess { addr: a },
                1 => MemFault::AfMultiAccess { addr: a, also: b },
                _ => MemFault::AfOtherAccess { addr: a, other: b },
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const CFG: SramConfig = SramConfig {
        words: 64,
        width: 4,
        ports: crate::memory::PortKind::SinglePort,
    };

    #[test]
    fn clean_memory_passes_every_algorithm() {
        for alg in MarchAlgorithm::library() {
            let mut m = Sram::new(CFG);
            assert!(!run_march(&alg, &mut m), "{} false alarm", alg.name);
        }
    }

    #[test]
    fn march_c_minus_detects_all_standard_unlinked_faults() {
        let alg = MarchAlgorithm::march_c_minus();
        let mut rng = StdRng::seed_from_u64(42);
        let faults = random_fault_list(&CFG, 60, &mut rng);
        let rep = fault_coverage(&alg, &CFG, &faults);
        assert_eq!(
            rep.coverage_percent(),
            100.0,
            "March C- must detect all unlinked SAF/TF/CF/AF: {rep}"
        );
    }

    #[test]
    fn march_ss_also_reaches_full_coverage() {
        let alg = MarchAlgorithm::march_ss();
        let mut rng = StdRng::seed_from_u64(7);
        let faults = random_fault_list(&CFG, 40, &mut rng);
        let rep = fault_coverage(&alg, &CFG, &faults);
        assert_eq!(rep.coverage_percent(), 100.0, "{rep}");
    }

    #[test]
    fn mats_plus_catches_saf_and_af_but_misses_couplings() {
        let alg = MarchAlgorithm::mats_plus();
        let mut rng = StdRng::seed_from_u64(3);
        // SAFs and AFs: full detection.
        let safs: Vec<MemFault> = random_fault_list(&CFG, 50, &mut rng)
            .into_iter()
            .filter(|f| f.class() == "SAF" || f.class() == "AF")
            .collect();
        let rep = fault_coverage(&alg, &CFG, &safs);
        assert_eq!(rep.coverage_percent(), 100.0, "{rep}");
        // Couplings: escapes expected (MATS+ is only 5N).
        let cfs: Vec<MemFault> = random_fault_list(&CFG, 80, &mut rng)
            .into_iter()
            .filter(|f| f.class().starts_with("CF"))
            .collect();
        let rep = fault_coverage(&alg, &CFG, &cfs);
        assert!(
            rep.coverage_percent() < 100.0,
            "MATS+ should not catch every coupling fault: {rep}"
        );
        assert!(!rep.escaped.is_empty());
    }

    #[test]
    fn cheaper_algorithms_never_beat_march_ss() {
        let mut rng = StdRng::seed_from_u64(11);
        let faults = random_fault_list(&CFG, 30, &mut rng);
        let ss = fault_coverage(&MarchAlgorithm::march_ss(), &CFG, &faults);
        for alg in [MarchAlgorithm::mats_plus(), MarchAlgorithm::march_x()] {
            let rep = fault_coverage(&alg, &CFG, &faults);
            assert!(
                rep.detected <= ss.detected,
                "{} outperformed March SS",
                alg.name
            );
        }
    }

    /// Word-oriented-memory theory: an intra-word CFid whose forced value
    /// equals the background written to the victim has no observable
    /// effect under solid backgrounds — no solid-background March can
    /// see it (multi-background extensions exist for exactly this).
    #[test]
    fn intra_word_masked_cfid_escapes_solid_background_march() {
        let fault = MemFault::CouplingIdempotent {
            aggressor: (5, 0),
            victim: (5, 1), // same word
            rising: true,
            forced: true, // matches the 1-background written alongside
        };
        for alg in MarchAlgorithm::library() {
            let mut m = Sram::with_fault(CFG, fault);
            assert!(
                !run_march(&alg, &mut m),
                "{} claimed to detect a masked intra-word CFid",
                alg.name
            );
        }
        // The unmasked polarity (forced value opposite to the written
        // background) IS caught, because the disturbance follows the
        // write.
        let visible = MemFault::CouplingIdempotent {
            aggressor: (5, 0),
            victim: (5, 1),
            rising: true,
            forced: false,
        };
        let mut m = Sram::with_fault(CFG, visible);
        assert!(run_march(&MarchAlgorithm::march_c_minus(), &mut m));
    }

    #[test]
    fn report_display_contains_classes() {
        let alg = MarchAlgorithm::mats_plus();
        let faults = vec![MemFault::CouplingState {
            aggressor: (0, 0),
            victim: (1, 0),
            state: true,
            forced: true,
        }];
        let rep = fault_coverage(&alg, &CFG, &faults);
        if rep.detected == 0 {
            assert!(rep.to_string().contains("CFst"), "{rep}");
        }
    }
}
