//! March fault simulation: runs an algorithm against faulty memory
//! models and grades coverage over a fault list.
//!
//! Grading is bit-parallel (PPSFP style): faulty machines are packed
//! into lane planes — one lane-mask word group per memory cell column,
//! one lane per fault — so a single March walk grades `64 * N` faults
//! at once (`N` = lane groups, [`steac_sim::DEFAULT_LANE_GROUPS`] by
//! default). March writes are uniform across machines, so the walk
//! broadcasts them word-parallel and then applies each lane's fault
//! perturbation as a constant-time bit fix; reads compare every lane
//! against the analytic expected value in one XOR per word group.
//! Detected lanes are dropped: once every fault of a pass is caught,
//! the walk stops early.
//!
//! Each walk is an independent work unit, so [`fault_coverage`]
//! describes the walks as a [`steac_sim::ExecWork`]
//! and hands them to [`Exec::dispatch`] — serial, thread-sharded, or
//! fanned across `steac-worker` processes (walk descriptors serialized
//! by [`crate::wire`]) — and merges the per-walk detection masks in
//! fault-list order: reports are bit-identical on every backend and at
//! every lane-group width (chunk size only changes how the fault list
//! is cut).
//! Process failures follow the `Exec`'s explicit
//! [`steac_sim::Fallback`] policy, and an in-thread fallback is
//! logged and counted in [`MemCoverageReport::process_fallbacks`]
//! instead of happening silently.

use crate::march::{Direction, MarchAlgorithm, MarchOp};
use crate::memory::{MemFault, Sram, SramConfig};
use rand::Rng;
use std::collections::BTreeMap;
use std::fmt;
use steac_sim::packed::{
    mask_and, mask_andnot, mask_bit, mask_none, mask_or, mask_range, mask_set_bit, LaneMask,
};
use steac_sim::shard::{self, PoolError};
use steac_sim::{Exec, ExecWork, SimError, DEFAULT_LANE_GROUPS};

/// Faults graded per single-group (64-lane) packed March walk.
pub const FAULTS_PER_PASS: usize = 64;

/// Faults graded per packed March walk at `groups` lane groups. Unlike
/// gate-level PPSFP there is no good-machine lane: every lane holds a
/// fault, so a walk grades the full `64 * groups`.
#[must_use]
pub const fn faults_per_walk(groups: usize) -> usize {
    FAULTS_PER_PASS * groups
}

/// Runs `alg` on `mem`; returns `true` if any read mismatches its
/// expected background value (fault detected). Scalar single-machine
/// walk, used by the BIST sequencer models and as the packed kernel's
/// reference.
#[must_use]
pub fn run_march(alg: &MarchAlgorithm, mem: &mut Sram) -> bool {
    let words = mem.config().words;
    let mask = word_mask(&mem.config());
    for element in &alg.elements {
        let addrs: Box<dyn Iterator<Item = usize>> = match element.dir {
            Direction::Up | Direction::Any => Box::new(0..words),
            Direction::Down => Box::new((0..words).rev()),
        };
        for addr in addrs {
            for &op in &element.ops {
                match op {
                    MarchOp::W0 => mem.write(addr, 0),
                    MarchOp::W1 => mem.write(addr, mask),
                    MarchOp::R0 => {
                        if mem.read(addr) != 0 {
                            return true;
                        }
                    }
                    MarchOp::R1 => {
                        if mem.read(addr) != mask {
                            return true;
                        }
                    }
                }
            }
        }
    }
    false
}

/// Non-panicking bounds check mirroring [`Sram::with_fault`]'s contract:
/// `true` when every cell the fault references exists on `config` and
/// address/cell pairs are distinct. The wire layer uses this to turn
/// out-of-range faults in decoded work units into typed errors instead
/// of panics.
pub(crate) fn fault_fits(config: &SramConfig, fault: &MemFault) -> bool {
    let cell_ok = |(a, b): (usize, usize)| -> bool { a < config.words && b < config.width };
    match *fault {
        MemFault::StuckAt { addr, bit, .. } | MemFault::Transition { addr, bit, .. } => {
            cell_ok((addr, bit))
        }
        MemFault::CouplingInversion {
            aggressor, victim, ..
        }
        | MemFault::CouplingIdempotent {
            aggressor, victim, ..
        }
        | MemFault::CouplingState {
            aggressor, victim, ..
        } => cell_ok(aggressor) && cell_ok(victim) && aggressor != victim,
        MemFault::AfNoAccess { addr } => addr < config.words,
        MemFault::AfMultiAccess { addr, also } => {
            addr < config.words && also < config.words && addr != also
        }
        MemFault::AfOtherAccess { addr, other } => {
            addr < config.words && other < config.words && addr != other
        }
    }
}

/// One packed March walk over a (pre-validated) fault chunk — the pass
/// body shared by the thread-sharded path and the `steac-worker` process
/// (`crate::wire`). Returns the detected-lane mask.
pub(crate) fn run_packed_march<const N: usize>(
    alg: &MarchAlgorithm,
    config: &SramConfig,
    chunk: &[MemFault],
) -> LaneMask<N> {
    PackedFaultSim::<N>::new(*config, chunk).run_march(alg)
}

pub(crate) fn word_mask(config: &SramConfig) -> u64 {
    if config.width == 64 {
        u64::MAX
    } else {
        (1u64 << config.width) - 1
    }
}

/// `64 * N` faulty memories packed into lane planes:
/// `planes[addr * width + bit]` holds one bit per lane (per fault
/// machine). Lane semantics replicate [`Sram`]'s scalar fault behaviour
/// exactly (differentially tested).
#[derive(Debug, Clone)]
struct PackedFaultSim<const N: usize> {
    config: SramConfig,
    planes: Vec<LaneMask<N>>,
    /// `(lane, fault)` pairs of this pass.
    faults: Vec<(usize, MemFault)>,
    /// Per-address indices into `faults` that perturb writes to the
    /// address.
    write_hooks: Vec<Vec<u32>>,
    /// Per-address indices into `faults` that perturb reads of the
    /// address.
    read_hooks: Vec<Vec<u32>>,
    /// Per-address lane mask excluded from broadcast writes (decoder
    /// faults that lose or redirect the access).
    write_exclude: Vec<LaneMask<N>>,
    /// Per-address lane mask whose reads need individual evaluation.
    read_exclude: Vec<LaneMask<N>>,
    /// Lanes in use.
    active: LaneMask<N>,
}

impl<const N: usize> PackedFaultSim<N> {
    fn new(config: SramConfig, chunk: &[MemFault]) -> Self {
        assert!(
            chunk.len() <= faults_per_walk(N),
            "too many faults per pass"
        );
        assert!(config.width <= 64, "model supports widths up to 64 bits");
        assert!(config.words > 0, "memory must have at least one word");
        let mut sim = PackedFaultSim {
            config,
            planes: vec![mask_none(); config.words * config.width],
            faults: chunk.iter().copied().enumerate().collect(),
            write_hooks: vec![Vec::new(); config.words],
            read_hooks: vec![Vec::new(); config.words],
            write_exclude: vec![mask_none(); config.words],
            read_exclude: vec![mask_none(); config.words],
            active: mask_range(0, chunk.len()),
        };
        for (i, &(lane, fault)) in sim.faults.clone().iter().enumerate() {
            // Bounds contract mirrors Sram::with_fault.
            Self::validate(&config, &fault);
            let hi = i as u32;
            match fault {
                MemFault::StuckAt { addr, .. } => {
                    sim.write_hooks[addr].push(hi);
                    sim.read_hooks[addr].push(hi);
                    mask_set_bit(&mut sim.read_exclude[addr], lane);
                }
                MemFault::Transition { addr, .. } => {
                    sim.write_hooks[addr].push(hi);
                }
                MemFault::CouplingInversion { aggressor, .. }
                | MemFault::CouplingIdempotent { aggressor, .. }
                | MemFault::CouplingState { aggressor, .. } => {
                    sim.write_hooks[aggressor.0].push(hi);
                }
                MemFault::AfNoAccess { addr } => {
                    mask_set_bit(&mut sim.write_exclude[addr], lane);
                    sim.read_hooks[addr].push(hi);
                    mask_set_bit(&mut sim.read_exclude[addr], lane);
                }
                MemFault::AfMultiAccess { addr, .. } => {
                    sim.write_hooks[addr].push(hi);
                    sim.read_hooks[addr].push(hi);
                    mask_set_bit(&mut sim.read_exclude[addr], lane);
                }
                MemFault::AfOtherAccess { addr, .. } => {
                    mask_set_bit(&mut sim.write_exclude[addr], lane);
                    sim.write_hooks[addr].push(hi);
                    sim.read_hooks[addr].push(hi);
                    mask_set_bit(&mut sim.read_exclude[addr], lane);
                }
            }
        }
        sim
    }

    fn validate(config: &SramConfig, fault: &MemFault) {
        assert!(
            fault_fits(config, fault),
            "fault {fault:?} out of range for {config}"
        );
    }

    #[inline]
    fn plane(&self, addr: usize, bit: usize) -> LaneMask<N> {
        self.planes[addr * self.config.width + bit]
    }

    #[inline]
    fn get_bit(&self, addr: usize, bit: usize, lane: usize) -> bool {
        mask_bit(&self.plane(addr, bit), lane)
    }

    #[inline]
    fn set_bit(&mut self, addr: usize, bit: usize, lane: usize, v: bool) {
        let p = addr * self.config.width + bit;
        if v {
            self.planes[p][lane / 64] |= 1 << (lane % 64);
        } else {
            self.planes[p][lane / 64] &= !(1 << (lane % 64));
        }
    }

    /// Writes `value` into every lane's copy of `addr`, then applies each
    /// lane's fault perturbation (matching `Sram::write` semantics).
    fn write(&mut self, addr: usize, value: u64) {
        let value = value & word_mask(&self.config);
        // Capture the pre-write state the perturbations need.
        let hooks = self.write_hooks[addr].clone();
        let mut olds = Vec::with_capacity(hooks.len());
        for &hi in &hooks {
            let (lane, fault) = self.faults[hi as usize];
            let old = match fault {
                MemFault::Transition { addr: fa, bit, .. } => self.get_bit(fa, bit, lane),
                MemFault::CouplingInversion { aggressor, .. }
                | MemFault::CouplingIdempotent { aggressor, .. } => {
                    self.get_bit(aggressor.0, aggressor.1, lane)
                }
                _ => false,
            };
            olds.push(old);
        }
        // Broadcast the uniform write to all lanes whose decoder actually
        // reaches `addr`.
        let wmask = mask_andnot(self.active, self.write_exclude[addr]);
        for bit in 0..self.config.width {
            let p = addr * self.config.width + bit;
            for (g, &wm) in wmask.iter().enumerate() {
                if value >> bit & 1 == 1 {
                    self.planes[p][g] |= wm;
                } else {
                    self.planes[p][g] &= !wm;
                }
            }
        }
        // Per-lane perturbations (each lane holds exactly one fault).
        for (&hi, &old) in hooks.iter().zip(&olds) {
            let (lane, fault) = self.faults[hi as usize];
            match fault {
                MemFault::StuckAt {
                    addr: fa,
                    bit,
                    value: sv,
                } => {
                    self.set_bit(fa, bit, lane, sv);
                }
                MemFault::Transition {
                    addr: fa,
                    bit,
                    rising,
                } => {
                    let new = value >> bit & 1 == 1;
                    if rising && !old && new {
                        self.set_bit(fa, bit, lane, false); // 0->1 fails
                    } else if !rising && old && !new {
                        self.set_bit(fa, bit, lane, true); // 1->0 fails
                    }
                }
                MemFault::CouplingInversion {
                    aggressor,
                    victim,
                    rising,
                } => {
                    let new = value >> aggressor.1 & 1 == 1;
                    if new != old && new == rising {
                        let v = self.get_bit(victim.0, victim.1, lane);
                        self.set_bit(victim.0, victim.1, lane, !v);
                    }
                }
                MemFault::CouplingIdempotent {
                    aggressor,
                    victim,
                    rising,
                    forced,
                } => {
                    let new = value >> aggressor.1 & 1 == 1;
                    if new != old && new == rising {
                        self.set_bit(victim.0, victim.1, lane, forced);
                    }
                }
                MemFault::CouplingState {
                    aggressor,
                    victim,
                    state,
                    forced,
                } => {
                    // The aggressor bit equals the just-written value.
                    if (value >> aggressor.1 & 1 == 1) == state {
                        self.set_bit(victim.0, victim.1, lane, forced);
                    }
                }
                MemFault::AfOtherAccess { other, .. } => {
                    for bit in 0..self.config.width {
                        self.set_bit(other, bit, lane, value >> bit & 1 == 1);
                    }
                }
                MemFault::AfMultiAccess { also, .. } => {
                    for bit in 0..self.config.width {
                        self.set_bit(also, bit, lane, value >> bit & 1 == 1);
                    }
                }
                MemFault::AfNoAccess { .. } => {}
            }
        }
    }

    /// Reads `addr` in every lane and returns the mask of lanes whose
    /// value differs from `expected` (matching `Sram::read` semantics).
    fn read_mismatch(&self, addr: usize, expected: u64) -> LaneMask<N> {
        let expected = expected & word_mask(&self.config);
        let mut diff = mask_none::<N>();
        for bit in 0..self.config.width {
            let exp = if expected >> bit & 1 == 1 { !0u64 } else { 0 };
            let plane = self.plane(addr, bit);
            for g in 0..N {
                diff[g] |= plane[g] ^ exp;
            }
        }
        diff = mask_and(diff, mask_andnot(self.active, self.read_exclude[addr]));
        // Lanes whose decoder or stuck cell shapes the read individually.
        for &hi in &self.read_hooks[addr] {
            let (lane, fault) = self.faults[hi as usize];
            let word = match fault {
                MemFault::StuckAt {
                    addr: fa,
                    bit,
                    value: sv,
                } => {
                    let mut w = self.lane_word(fa, lane);
                    if sv {
                        w |= 1 << bit;
                    } else {
                        w &= !(1 << bit);
                    }
                    w
                }
                MemFault::AfNoAccess { .. } => 0,
                MemFault::AfOtherAccess { other, .. } => self.lane_word(other, lane),
                // Wired-AND of the two selected rows.
                MemFault::AfMultiAccess { also, .. } => {
                    self.lane_word(addr, lane) & self.lane_word(also, lane)
                }
                _ => unreachable!("read hooks cover read-affecting faults only"),
            };
            if word != expected {
                mask_set_bit(&mut diff, lane);
            }
        }
        diff
    }

    fn lane_word(&self, addr: usize, lane: usize) -> u64 {
        let mut w = 0u64;
        for bit in 0..self.config.width {
            w |= u64::from(mask_bit(&self.plane(addr, bit), lane)) << bit;
        }
        w
    }

    /// Runs the March walk over all lanes at once; returns the detected
    /// lane mask. Stops early once every active lane is detected (fault
    /// dropping).
    fn run_march(&mut self, alg: &MarchAlgorithm) -> LaneMask<N> {
        let words = self.config.words;
        let mask = word_mask(&self.config);
        let mut detected = mask_none::<N>();
        for element in &alg.elements {
            let addrs: Box<dyn Iterator<Item = usize>> = match element.dir {
                Direction::Up | Direction::Any => Box::new(0..words),
                Direction::Down => Box::new((0..words).rev()),
            };
            for addr in addrs {
                for &op in &element.ops {
                    match op {
                        MarchOp::W0 => self.write(addr, 0),
                        MarchOp::W1 => self.write(addr, mask),
                        MarchOp::R0 => {
                            detected = mask_or(detected, self.read_mismatch(addr, 0));
                        }
                        MarchOp::R1 => {
                            detected = mask_or(detected, self.read_mismatch(addr, mask));
                        }
                    }
                    if detected == self.active {
                        return detected; // every fault of this pass dropped
                    }
                }
            }
        }
        detected
    }
}

/// Coverage of an algorithm over a fault list on one memory geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemCoverageReport {
    /// Algorithm name.
    pub algorithm: String,
    /// Memory geometry description.
    pub memory: String,
    /// Total faults simulated.
    pub total: usize,
    /// Faults detected.
    pub detected: usize,
    /// Escapes per fault class.
    pub escapes_by_class: BTreeMap<&'static str, usize>,
    /// The escaped faults (for diagnosis).
    pub escaped: Vec<MemFault>,
    /// Times process dispatch fell back to the in-thread pool while
    /// producing this report (0 unless the `Exec` runs a process
    /// backend under [`steac_sim::Fallback::InThread`] and that
    /// dispatch failed). The verdicts are unaffected — the fallback
    /// recomputes the identical report — but the degradation is
    /// recorded instead of silent.
    pub process_fallbacks: usize,
}

impl MemCoverageReport {
    /// Coverage in percent (100 for an empty list).
    #[must_use]
    pub fn coverage_percent(&self) -> f64 {
        if self.total == 0 {
            100.0
        } else {
            100.0 * self.detected as f64 / self.total as f64
        }
    }
}

impl fmt::Display for MemCoverageReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} on {}: {}/{} detected ({:.2}%)",
            self.algorithm,
            self.memory,
            self.detected,
            self.total,
            self.coverage_percent()
        )?;
        if !self.escapes_by_class.is_empty() {
            write!(f, " escapes:")?;
            for (class, n) in &self.escapes_by_class {
                write!(f, " {class}={n}")?;
            }
        }
        if self.process_fallbacks > 0 {
            write!(
                f,
                " [process dispatch fell back in-thread x{}]",
                self.process_fallbacks
            )?;
        }
        Ok(())
    }
}

fn report_from_flags(
    alg: &MarchAlgorithm,
    config: &SramConfig,
    faults: &[MemFault],
    detected_flags: &[bool],
    process_fallbacks: usize,
) -> MemCoverageReport {
    let mut detected = 0usize;
    let mut escaped = Vec::new();
    let mut escapes_by_class: BTreeMap<&'static str, usize> = BTreeMap::new();
    for (&fault, &hit) in faults.iter().zip(detected_flags) {
        if hit {
            detected += 1;
        } else {
            *escapes_by_class.entry(fault.class()).or_insert(0) += 1;
            escaped.push(fault);
        }
    }
    MemCoverageReport {
        algorithm: alg.name.clone(),
        memory: config.to_string(),
        total: faults.len(),
        detected,
        escaped,
        escapes_by_class,
        process_fallbacks,
    }
}

/// The [`ExecWork`] description of March fault grading: one unit per
/// [`faults_per_walk`] walk, a job block carrying geometry, algorithm
/// and lane-group width ([`crate::wire`]), and lane-mask detection
/// word groups as unit results. The walk itself is infallible — errors
/// can only come from dispatch.
struct MarchWork<'a, const N: usize> {
    alg: &'a MarchAlgorithm,
    config: &'a SramConfig,
    chunks: Vec<&'a [MemFault]>,
}

impl<const N: usize> ExecWork for MarchWork<'_, N> {
    type Output = LaneMask<N>;
    type Error = SimError;

    fn kind(&self) -> u16 {
        crate::wire::WIRE_KIND
    }

    fn unit_count(&self) -> usize {
        self.chunks.len()
    }

    fn encode_job(&self) -> Vec<u8> {
        crate::wire::encode_march_job(self.alg, self.config, N as u8)
    }

    fn encode_unit(&self, unit: usize) -> Vec<u8> {
        crate::wire::encode_fault_unit(self.chunks[unit])
    }

    fn run_unit_local(&self, unit: usize) -> Result<LaneMask<N>, SimError> {
        Ok(run_packed_march(self.alg, self.config, self.chunks[unit]))
    }

    fn decode_result(&self, _unit: usize, bytes: &[u8]) -> Result<LaneMask<N>, String> {
        if bytes.len() != N * 8 {
            return Err(format!(
                "result has {} bytes, expected {}",
                bytes.len(),
                N * 8
            ));
        }
        let mut mask = mask_none::<N>();
        for (g, word) in bytes.chunks_exact(8).enumerate() {
            mask[g] = u64::from_le_bytes(word.try_into().expect("8-byte chunk"));
        }
        Ok(mask)
    }

    fn pool_error(&self, error: PoolError) -> SimError {
        error.into()
    }
}

/// Simulates every fault in `faults` (single-fault assumption) under
/// `alg` and reports coverage. Packed: 64 faults per March walk, with
/// fault dropping.
///
/// The single entry point for every backend: `exec` decides whether
/// walks run inline, across threads or across `steac-worker` processes
/// ([`Exec::dispatch`]). Merging is by walk index in every flavour, so
/// the report is byte-identical on every backend. The March walk itself
/// is infallible, so errors can only arise from process dispatch — and
/// only under [`steac_sim::Fallback::Fail`]; the default
/// [`steac_sim::Fallback::InThread`] policy recomputes in-thread and
/// records it in [`MemCoverageReport::process_fallbacks`] (this used to
/// happen silently — the silent-policy bug).
///
/// # Errors
///
/// [`SimError::Worker`] on the lowest-indexed failing walk, only under
/// [`steac_sim::Fallback::Fail`] on a process backend.
pub fn fault_coverage(
    exec: &Exec,
    alg: &MarchAlgorithm,
    config: &SramConfig,
    faults: &[MemFault],
) -> Result<MemCoverageReport, SimError> {
    fault_coverage_wide(exec, alg, config, faults, DEFAULT_LANE_GROUPS)
}

/// [`fault_coverage`] with an explicit lane-group width: each walk
/// grades `64 * groups` faults. Only the monomorphized widths in
/// [`steac_sim::SUPPORTED_LANE_GROUPS`] are accepted. The report is
/// byte-identical across widths — chunking only changes how the fault
/// list is cut into walks.
///
/// # Errors
///
/// Everything [`fault_coverage`] raises, plus
/// [`SimError::UnsupportedWidth`] for widths with no compiled kernel.
pub fn fault_coverage_wide(
    exec: &Exec,
    alg: &MarchAlgorithm,
    config: &SramConfig,
    faults: &[MemFault],
    groups: usize,
) -> Result<MemCoverageReport, SimError> {
    match groups {
        1 => coverage_n::<1>(exec, alg, config, faults),
        2 => coverage_n::<2>(exec, alg, config, faults),
        4 => coverage_n::<4>(exec, alg, config, faults),
        8 => coverage_n::<8>(exec, alg, config, faults),
        _ => Err(SimError::UnsupportedWidth { groups }),
    }
}

fn coverage_n<const N: usize>(
    exec: &Exec,
    alg: &MarchAlgorithm,
    config: &SramConfig,
    faults: &[MemFault],
) -> Result<MemCoverageReport, SimError> {
    let per_walk = faults_per_walk(N);
    let work = MarchWork::<N> {
        alg,
        config,
        chunks: faults.chunks(per_walk).collect(),
    };
    let dispatched = exec.dispatch(&work)?;
    let flags = shard::flags_from_lane_masks(faults.len(), per_walk, 0, &dispatched.units);
    Ok(report_from_flags(
        alg,
        config,
        faults,
        &flags,
        dispatched.fallback_count(),
    ))
}

/// Serial reference implementation: one full March walk per fault, as
/// the scalar model does. Kept strictly as the differential-test and
/// benchmark oracle — production callers use [`fault_coverage`] with an
/// [`Exec`].
#[doc(hidden)]
#[must_use]
pub fn fault_coverage_serial(
    alg: &MarchAlgorithm,
    config: &SramConfig,
    faults: &[MemFault],
) -> MemCoverageReport {
    let flags: Vec<bool> = faults
        .iter()
        .map(|&fault| {
            let mut mem = Sram::with_fault(*config, fault);
            run_march(alg, &mut mem)
        })
        .collect();
    report_from_flags(alg, config, faults, &flags, 0)
}

/// Enumerates the inter-cell coupling faults between vertically
/// adjacent cells — same bit column, consecutive word addresses, the
/// physical neighbours of a folded SRAM array. Each unordered neighbour
/// pair yields both aggressor directions, and each direction six
/// classically distinguished couplings: CFin on the rising and falling
/// aggressor edge, plus CFid and CFst in the two polarities whose
/// forced value tracks the trigger (the anti-tracking polarities are
/// the data-complement mirrors of these and add no diagnostic
/// resolution under solid backgrounds). `12 * width * (words - 1)`
/// faults total, in deterministic address-major order, ready for
/// [`fault_coverage`] or [`crate::diagnose::coupling_dictionary`].
#[must_use]
pub fn enumerate_inter_cell_couplings(config: &SramConfig) -> Vec<MemFault> {
    let mut out = Vec::new();
    if config.words < 2 {
        return out;
    }
    for addr in 0..config.words - 1 {
        for bit in 0..config.width {
            let lo = (addr, bit);
            let hi = (addr + 1, bit);
            for (aggressor, victim) in [(lo, hi), (hi, lo)] {
                for rising in [true, false] {
                    out.push(MemFault::CouplingInversion {
                        aggressor,
                        victim,
                        rising,
                    });
                }
                for (rising, forced) in [(true, true), (false, false)] {
                    out.push(MemFault::CouplingIdempotent {
                        aggressor,
                        victim,
                        rising,
                        forced,
                    });
                }
                for (state, forced) in [(true, true), (false, false)] {
                    out.push(MemFault::CouplingState {
                        aggressor,
                        victim,
                        state,
                        forced,
                    });
                }
            }
        }
    }
    out
}

/// Generates a random fault list over all classes with `per_class`
/// faults each (deduplicated cells are not required — the single-fault
/// assumption means every entry is simulated independently).
pub fn random_fault_list<R: Rng>(
    config: &SramConfig,
    per_class: usize,
    rng: &mut R,
) -> Vec<MemFault> {
    let mut out = Vec::with_capacity(per_class * 6);
    let cell = |rng: &mut R| -> (usize, usize) {
        (
            rng.gen_range(0..config.words),
            rng.gen_range(0..config.width),
        )
    };
    for _ in 0..per_class {
        let (a, b) = cell(rng);
        out.push(MemFault::StuckAt {
            addr: a,
            bit: b,
            value: rng.gen(),
        });
    }
    for _ in 0..per_class {
        let (a, b) = cell(rng);
        out.push(MemFault::Transition {
            addr: a,
            bit: b,
            rising: rng.gen(),
        });
    }
    // Inter-word pairs only: intra-word coupling faults are not
    // guaranteed detectable with the solid data backgrounds March tests
    // use (word-oriented memories need multiple backgrounds for those —
    // see the dedicated escape test), so the theory-grade fault list
    // sticks to the classically covered class.
    let distinct_pair = |rng: &mut R| -> ((usize, usize), (usize, usize)) {
        loop {
            let a = cell(rng);
            let v = cell(rng);
            if a.0 != v.0 {
                return (a, v);
            }
        }
    };
    for _ in 0..per_class {
        let (a, v) = distinct_pair(rng);
        out.push(MemFault::CouplingInversion {
            aggressor: a,
            victim: v,
            rising: rng.gen(),
        });
    }
    for _ in 0..per_class {
        let (a, v) = distinct_pair(rng);
        out.push(MemFault::CouplingIdempotent {
            aggressor: a,
            victim: v,
            rising: rng.gen(),
            forced: rng.gen(),
        });
    }
    for _ in 0..per_class {
        let (a, v) = distinct_pair(rng);
        out.push(MemFault::CouplingState {
            aggressor: a,
            victim: v,
            state: rng.gen(),
            forced: rng.gen(),
        });
    }
    if config.words >= 2 {
        for _ in 0..per_class {
            let a = rng.gen_range(0..config.words);
            let mut b = rng.gen_range(0..config.words);
            while b == a {
                b = rng.gen_range(0..config.words);
            }
            out.push(match rng.gen_range(0..3) {
                0 => MemFault::AfNoAccess { addr: a },
                1 => MemFault::AfMultiAccess { addr: a, also: b },
                _ => MemFault::AfOtherAccess { addr: a, other: b },
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use steac_sim::Threads;

    fn exec() -> Exec {
        Exec::from_env()
    }

    const CFG: SramConfig = SramConfig {
        words: 64,
        width: 4,
        ports: crate::memory::PortKind::SinglePort,
    };

    #[test]
    fn clean_memory_passes_every_algorithm() {
        for alg in MarchAlgorithm::library() {
            let mut m = Sram::new(CFG);
            assert!(!run_march(&alg, &mut m), "{} false alarm", alg.name);
        }
    }

    #[test]
    fn march_c_minus_detects_all_standard_unlinked_faults() {
        let alg = MarchAlgorithm::march_c_minus();
        let mut rng = StdRng::seed_from_u64(42);
        let faults = random_fault_list(&CFG, 60, &mut rng);
        let rep = fault_coverage(&exec(), &alg, &CFG, &faults).unwrap();
        assert_eq!(
            rep.coverage_percent(),
            100.0,
            "March C- must detect all unlinked SAF/TF/CF/AF: {rep}"
        );
    }

    #[test]
    fn march_ss_also_reaches_full_coverage() {
        let alg = MarchAlgorithm::march_ss();
        let mut rng = StdRng::seed_from_u64(7);
        let faults = random_fault_list(&CFG, 40, &mut rng);
        let rep = fault_coverage(&exec(), &alg, &CFG, &faults).unwrap();
        assert_eq!(rep.coverage_percent(), 100.0, "{rep}");
    }

    #[test]
    fn mats_plus_catches_saf_and_af_but_misses_couplings() {
        let alg = MarchAlgorithm::mats_plus();
        let mut rng = StdRng::seed_from_u64(3);
        // SAFs and AFs: full detection.
        let safs: Vec<MemFault> = random_fault_list(&CFG, 50, &mut rng)
            .into_iter()
            .filter(|f| f.class() == "SAF" || f.class() == "AF")
            .collect();
        let rep = fault_coverage(&exec(), &alg, &CFG, &safs).unwrap();
        assert_eq!(rep.coverage_percent(), 100.0, "{rep}");
        // Couplings: escapes expected (MATS+ is only 5N).
        let cfs: Vec<MemFault> = random_fault_list(&CFG, 80, &mut rng)
            .into_iter()
            .filter(|f| f.class().starts_with("CF"))
            .collect();
        let rep = fault_coverage(&exec(), &alg, &CFG, &cfs).unwrap();
        assert!(
            rep.coverage_percent() < 100.0,
            "MATS+ should not catch every coupling fault: {rep}"
        );
        assert!(!rep.escaped.is_empty());
    }

    #[test]
    fn cheaper_algorithms_never_beat_march_ss() {
        let mut rng = StdRng::seed_from_u64(11);
        let faults = random_fault_list(&CFG, 30, &mut rng);
        let ss = fault_coverage(&exec(), &MarchAlgorithm::march_ss(), &CFG, &faults).unwrap();
        for alg in [MarchAlgorithm::mats_plus(), MarchAlgorithm::march_x()] {
            let rep = fault_coverage(&exec(), &alg, &CFG, &faults).unwrap();
            assert!(
                rep.detected <= ss.detected,
                "{} outperformed March SS",
                alg.name
            );
        }
    }

    /// The packed kernel and the scalar walk agree fault-for-fault, over
    /// every algorithm in the library and mixed fault lists (this is the
    /// contract that lets the packed path replace the scalar one).
    #[test]
    fn packed_matches_serial_on_every_algorithm() {
        let mut rng = StdRng::seed_from_u64(2024);
        for alg in MarchAlgorithm::library() {
            for (words, width) in [(16, 1), (64, 4), (9, 8)] {
                let cfg = SramConfig::single_port(words, width);
                let faults = random_fault_list(&cfg, 12, &mut rng);
                let packed = fault_coverage(&exec(), &alg, &cfg, &faults).unwrap();
                let serial = fault_coverage_serial(&alg, &cfg, &faults);
                assert_eq!(
                    packed.detected, serial.detected,
                    "{} on {}: packed {} vs serial {}",
                    alg.name, cfg, packed, serial
                );
                assert_eq!(packed.escaped, serial.escaped, "{} on {}", alg.name, cfg);
            }
        }
    }

    /// A pass with exactly 64 faults exercises the full-lane mask path.
    #[test]
    fn full_lane_pass_and_chunking() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut faults = random_fault_list(&CFG, 30, &mut rng);
        faults.truncate(130); // 64 + 64 + 2: three passes
        let alg = MarchAlgorithm::march_c_minus();
        let packed = fault_coverage(&exec(), &alg, &CFG, &faults).unwrap();
        let serial = fault_coverage_serial(&alg, &CFG, &faults);
        assert_eq!(packed.detected, serial.detected);
        assert_eq!(packed.escaped, serial.escaped);
    }

    /// Word-oriented-memory theory: an intra-word CFid whose forced value
    /// equals the background written to the victim has no observable
    /// effect under solid backgrounds — no solid-background March can
    /// see it (multi-background extensions exist for exactly this).
    #[test]
    fn intra_word_masked_cfid_escapes_solid_background_march() {
        let fault = MemFault::CouplingIdempotent {
            aggressor: (5, 0),
            victim: (5, 1), // same word
            rising: true,
            forced: true, // matches the 1-background written alongside
        };
        for alg in MarchAlgorithm::library() {
            let mut m = Sram::with_fault(CFG, fault);
            assert!(
                !run_march(&alg, &mut m),
                "{} claimed to detect a masked intra-word CFid",
                alg.name
            );
            // Packed agrees.
            let rep = fault_coverage(&exec(), &alg, &CFG, &[fault]).unwrap();
            assert_eq!(rep.detected, 0, "{} packed disagreement", alg.name);
        }
        // The unmasked polarity (forced value opposite to the written
        // background) IS caught, because the disturbance follows the
        // write.
        let visible = MemFault::CouplingIdempotent {
            aggressor: (5, 0),
            victim: (5, 1),
            rising: true,
            forced: false,
        };
        let mut m = Sram::with_fault(CFG, visible);
        assert!(run_march(&MarchAlgorithm::march_c_minus(), &mut m));
        let rep =
            fault_coverage(&exec(), &MarchAlgorithm::march_c_minus(), &CFG, &[visible]).unwrap();
        assert_eq!(rep.detected, 1);
    }

    /// Sharded March grading reports identical coverage — including the
    /// `escaped` order — at every thread count.
    #[test]
    fn sharded_march_grading_is_thread_count_invariant() {
        let mut rng = StdRng::seed_from_u64(99);
        let faults = random_fault_list(&CFG, 40, &mut rng);
        let alg = MarchAlgorithm::mats_plus(); // leaves escapes to merge
        let baseline = fault_coverage(&Exec::serial(), &alg, &CFG, &faults).unwrap();
        for t in 1..=8 {
            let threaded = Exec::threads(Threads::exact(t));
            let sharded = fault_coverage(&threaded, &alg, &CFG, &faults).unwrap();
            assert_eq!(sharded, baseline, "{t} threads");
        }
    }

    #[test]
    fn report_display_contains_classes() {
        let alg = MarchAlgorithm::mats_plus();
        let faults = vec![MemFault::CouplingState {
            aggressor: (0, 0),
            victim: (1, 0),
            state: true,
            forced: true,
        }];
        let rep = fault_coverage(&exec(), &alg, &CFG, &faults).unwrap();
        if rep.detected == 0 {
            assert!(rep.to_string().contains("CFst"), "{rep}");
        }
    }
}
