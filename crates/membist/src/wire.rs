//! Wire codecs for March fault-simulation work units, riding the
//! versioned [`steac_sim::wire`] format family (same primitives, same
//! versioning rule — the worker-protocol envelope pins the version for
//! every byte).
//!
//! A March job carries what one walk needs besides the fault chunk: the
//! memory geometry, the algorithm and the lane-group width. Unit
//! payloads are fault chunks (tag byte + fields per fault); results are
//! one detection lane mask (`groups` little-endian `u64` words) per
//! walk, merged in fault-list order by the dispatcher exactly like the
//! thread-sharded path.

use crate::faultsim::{fault_fits, faults_per_walk, run_packed_march};
use crate::march::{Direction, MarchAlgorithm, MarchElement, MarchOp};
use crate::memory::{MemFault, PortKind, SramConfig};
use steac_sim::shard::WireJob;
use steac_sim::wire::{WireError, WireReader, WireWriter};

/// Work-unit kind the `steac-worker` binary routes to
/// [`open_wire_job`]: one packed March walk over a fault chunk.
pub const WIRE_KIND: u16 = 3;

fn put_cell(w: &mut WireWriter, cell: (usize, usize)) {
    w.put_usize(cell.0);
    w.put_usize(cell.1);
}

fn get_cell(r: &mut WireReader<'_>, context: &'static str) -> Result<(usize, usize), WireError> {
    Ok((r.get_usize(context)?, r.get_usize(context)?))
}

/// Serializes a March job block (geometry + algorithm + lane-group
/// width).
#[must_use]
pub fn encode_march_job(alg: &MarchAlgorithm, config: &SramConfig, groups: u8) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_usize(config.words);
    w.put_usize(config.width);
    w.put_u8(match config.ports {
        PortKind::SinglePort => 0,
        PortKind::TwoPort => 1,
    });
    w.put_u8(groups);
    w.put_str(&alg.name);
    w.put_usize(alg.elements.len());
    for e in &alg.elements {
        w.put_u8(match e.dir {
            Direction::Up => 0,
            Direction::Down => 1,
            Direction::Any => 2,
        });
        w.put_usize(e.ops.len());
        for op in &e.ops {
            w.put_u8(match op {
                MarchOp::R0 => 0,
                MarchOp::R1 => 1,
                MarchOp::W0 => 2,
                MarchOp::W1 => 3,
            });
        }
    }
    w.finish()
}

/// Deserializes a March job block.
///
/// # Errors
///
/// A typed [`WireError`] on truncated or corrupted bytes.
pub fn decode_march_job(bytes: &[u8]) -> Result<(MarchAlgorithm, SramConfig, u8), WireError> {
    let mut r = WireReader::new(bytes);
    let words = r.get_usize("memory words")?;
    let width = r.get_usize("memory width")?;
    if words == 0 || width == 0 || width > 64 {
        return Err(WireError::Corrupt {
            context: "memory geometry",
        });
    }
    let ports = match r.get_u8("memory ports")? {
        0 => PortKind::SinglePort,
        1 => PortKind::TwoPort,
        _ => {
            return Err(WireError::Corrupt {
                context: "memory ports",
            })
        }
    };
    let config = SramConfig {
        words,
        width,
        ports,
    };
    let groups = r.get_u8("lane groups")?;
    let name = r.get_str("algorithm name")?;
    let element_count = r.get_count("element count", 9)?;
    let mut elements = Vec::with_capacity(element_count);
    for _ in 0..element_count {
        let dir = match r.get_u8("element direction")? {
            0 => Direction::Up,
            1 => Direction::Down,
            2 => Direction::Any,
            _ => {
                return Err(WireError::Corrupt {
                    context: "element direction",
                })
            }
        };
        let op_count = r.get_count("op count", 1)?;
        let mut ops = Vec::with_capacity(op_count);
        for _ in 0..op_count {
            ops.push(match r.get_u8("march op")? {
                0 => MarchOp::R0,
                1 => MarchOp::R1,
                2 => MarchOp::W0,
                3 => MarchOp::W1,
                _ => {
                    return Err(WireError::Corrupt {
                        context: "march op",
                    })
                }
            });
        }
        elements.push(MarchElement { dir, ops });
    }
    r.finish()?;
    Ok((MarchAlgorithm { name, elements }, config, groups))
}

/// Serializes one March work unit (a chunk of the fault list).
#[must_use]
pub fn encode_fault_unit(faults: &[MemFault]) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_usize(faults.len());
    for &f in faults {
        match f {
            MemFault::StuckAt { addr, bit, value } => {
                w.put_u8(0);
                put_cell(&mut w, (addr, bit));
                w.put_bool(value);
            }
            MemFault::Transition { addr, bit, rising } => {
                w.put_u8(1);
                put_cell(&mut w, (addr, bit));
                w.put_bool(rising);
            }
            MemFault::CouplingInversion {
                aggressor,
                victim,
                rising,
            } => {
                w.put_u8(2);
                put_cell(&mut w, aggressor);
                put_cell(&mut w, victim);
                w.put_bool(rising);
            }
            MemFault::CouplingIdempotent {
                aggressor,
                victim,
                rising,
                forced,
            } => {
                w.put_u8(3);
                put_cell(&mut w, aggressor);
                put_cell(&mut w, victim);
                w.put_bool(rising);
                w.put_bool(forced);
            }
            MemFault::CouplingState {
                aggressor,
                victim,
                state,
                forced,
            } => {
                w.put_u8(4);
                put_cell(&mut w, aggressor);
                put_cell(&mut w, victim);
                w.put_bool(state);
                w.put_bool(forced);
            }
            MemFault::AfNoAccess { addr } => {
                w.put_u8(5);
                w.put_usize(addr);
            }
            MemFault::AfMultiAccess { addr, also } => {
                w.put_u8(6);
                w.put_usize(addr);
                w.put_usize(also);
            }
            MemFault::AfOtherAccess { addr, other } => {
                w.put_u8(7);
                w.put_usize(addr);
                w.put_usize(other);
            }
        }
    }
    w.finish()
}

/// Deserializes a March work unit.
///
/// # Errors
///
/// A typed [`WireError`] on truncated or corrupted bytes.
pub fn decode_fault_unit(bytes: &[u8]) -> Result<Vec<MemFault>, WireError> {
    let mut r = WireReader::new(bytes);
    let count = r.get_count("memory-fault count", 9)?;
    let mut faults = Vec::with_capacity(count);
    for _ in 0..count {
        let fault = match r.get_u8("memory-fault tag")? {
            0 => {
                let (addr, bit) = get_cell(&mut r, "stuck-at cell")?;
                MemFault::StuckAt {
                    addr,
                    bit,
                    value: r.get_bool("stuck-at value")?,
                }
            }
            1 => {
                let (addr, bit) = get_cell(&mut r, "transition cell")?;
                MemFault::Transition {
                    addr,
                    bit,
                    rising: r.get_bool("transition direction")?,
                }
            }
            2 => MemFault::CouplingInversion {
                aggressor: get_cell(&mut r, "coupling aggressor")?,
                victim: get_cell(&mut r, "coupling victim")?,
                rising: r.get_bool("coupling direction")?,
            },
            3 => MemFault::CouplingIdempotent {
                aggressor: get_cell(&mut r, "coupling aggressor")?,
                victim: get_cell(&mut r, "coupling victim")?,
                rising: r.get_bool("coupling direction")?,
                forced: r.get_bool("coupling forced value")?,
            },
            4 => MemFault::CouplingState {
                aggressor: get_cell(&mut r, "coupling aggressor")?,
                victim: get_cell(&mut r, "coupling victim")?,
                state: r.get_bool("coupling state")?,
                forced: r.get_bool("coupling forced value")?,
            },
            5 => MemFault::AfNoAccess {
                addr: r.get_usize("af address")?,
            },
            6 => MemFault::AfMultiAccess {
                addr: r.get_usize("af address")?,
                also: r.get_usize("af second address")?,
            },
            7 => MemFault::AfOtherAccess {
                addr: r.get_usize("af address")?,
                other: r.get_usize("af other address")?,
            },
            _ => {
                return Err(WireError::Corrupt {
                    context: "memory-fault tag",
                })
            }
        };
        faults.push(fault);
    }
    r.finish()?;
    Ok(faults)
}

/// An opened March job inside a worker process, monomorphized to the
/// lane-group width the job header requested.
struct MarchWireJob<const N: usize> {
    alg: MarchAlgorithm,
    config: SramConfig,
}

impl<const N: usize> WireJob for MarchWireJob<N> {
    fn run_unit(&mut self, unit: &[u8]) -> Result<Vec<u8>, String> {
        let per_walk = faults_per_walk(N);
        let chunk = decode_fault_unit(unit).map_err(|e| format!("march unit: {e}"))?;
        if chunk.len() > per_walk {
            return Err(format!(
                "march unit has {} faults, a walk holds at most {per_walk}",
                chunk.len()
            ));
        }
        for f in &chunk {
            if !fault_fits(&self.config, f) {
                return Err(format!("fault {f:?} out of range for {}", self.config));
            }
        }
        let mask = run_packed_march::<N>(&self.alg, &self.config, &chunk);
        let mut out = Vec::with_capacity(N * 8);
        for word in mask {
            out.extend_from_slice(&word.to_le_bytes());
        }
        Ok(out)
    }
}

/// Decodes a [`WIRE_KIND`] job block into the executable March job — the
/// `steac-worker` side of
/// [`fault_coverage`](crate::faultsim::fault_coverage)'s process
/// backend.
///
/// # Errors
///
/// A diagnostic on corrupt job bytes, or an unsupported lane-group
/// width.
pub fn open_wire_job(job: &[u8]) -> Result<Box<dyn WireJob>, String> {
    let (alg, config, groups) = decode_march_job(job).map_err(|e| format!("march job: {e}"))?;
    match groups as usize {
        1 => Ok(Box::new(MarchWireJob::<1> { alg, config })),
        2 => Ok(Box::new(MarchWireJob::<2> { alg, config })),
        4 => Ok(Box::new(MarchWireJob::<4> { alg, config })),
        8 => Ok(Box::new(MarchWireJob::<8> { alg, config })),
        _ => Err(format!("march job lane-group width {groups} unsupported")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faultsim::random_fault_list;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn march_job_round_trip() {
        let alg = MarchAlgorithm::march_c_minus();
        let config = SramConfig::two_port(48, 9);
        let bytes = encode_march_job(&alg, &config, 4);
        let (alg2, config2, groups) = decode_march_job(&bytes).unwrap();
        assert_eq!(alg2, alg);
        assert_eq!(config2, config);
        assert_eq!(groups, 4);
        for cut in 0..bytes.len() {
            assert!(decode_march_job(&bytes[..cut]).is_err(), "prefix {cut}");
        }
    }

    #[test]
    fn unsupported_lane_width_is_a_job_error() {
        let bytes = encode_march_job(
            &MarchAlgorithm::mats_plus(),
            &SramConfig::single_port(8, 2),
            3,
        );
        let err = match open_wire_job(&bytes) {
            Err(e) => e,
            Ok(_) => panic!("lane-group width 3 must be rejected"),
        };
        assert!(err.contains("unsupported"), "{err}");
    }

    #[test]
    fn fault_unit_round_trip_over_every_class() {
        let config = SramConfig::single_port(32, 4);
        let mut rng = StdRng::seed_from_u64(17);
        let faults = random_fault_list(&config, 6, &mut rng);
        let bytes = encode_fault_unit(&faults);
        assert_eq!(decode_fault_unit(&bytes).unwrap(), faults);
        for cut in 0..bytes.len() {
            assert!(decode_fault_unit(&bytes[..cut]).is_err(), "prefix {cut}");
        }
        let mut bad = bytes.clone();
        bad[8] = 99; // first fault tag
        assert!(matches!(
            decode_fault_unit(&bad),
            Err(WireError::Corrupt { .. })
        ));
    }

    /// Out-of-range faults are rejected with a diagnostic instead of the
    /// panic the in-process constructor is allowed to raise.
    #[test]
    fn out_of_range_fault_is_a_unit_error_not_a_panic() {
        let config = SramConfig::single_port(8, 2);
        let mut job = MarchWireJob::<1> {
            alg: MarchAlgorithm::mats_plus(),
            config,
        };
        let unit = encode_fault_unit(&[MemFault::StuckAt {
            addr: 8, // out of range
            bit: 0,
            value: true,
        }]);
        let err = job.run_unit(&unit).unwrap_err();
        assert!(err.contains("out of range"), "{err}");
    }
}
