//! The BIST Sequencer: walks a March algorithm over the address space,
//! emitting one [`BistCommand`] per cycle (Fig. 2's "Sequencer" boxes).
//!
//! The behavioural iterator is the functional reference used by fault
//! simulation and scheduling; [`sequencer_netlist`] generates the
//! corresponding hardware (address up/down counter, element and op
//! counters, done flag) for area accounting and structural checks.

use crate::march::{Direction, MarchAlgorithm, MarchOp};
use steac_netlist::{GateKind, Module, NetlistBuilder, NetlistError};

/// One cycle of BIST activity: apply `op` at `addr`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BistCommand {
    /// March operation.
    pub op: MarchOp,
    /// Word address.
    pub addr: usize,
}

/// Behavioural sequencer: an iterator over the command stream of one
/// algorithm on one address space.
#[derive(Debug, Clone)]
pub struct Sequencer {
    alg: MarchAlgorithm,
    words: usize,
    element: usize,
    addr_step: usize,
    op: usize,
}

impl Sequencer {
    /// Creates a sequencer for `alg` over `words` addresses.
    #[must_use]
    pub fn new(alg: MarchAlgorithm, words: usize) -> Self {
        Sequencer {
            alg,
            words,
            element: 0,
            addr_step: 0,
            op: 0,
        }
    }

    /// Total command count (= BIST cycles).
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.alg.cycles(self.words)
    }
}

impl Iterator for Sequencer {
    type Item = BistCommand;

    fn next(&mut self) -> Option<BistCommand> {
        let element = self.alg.elements.get(self.element)?;
        let addr = match element.dir {
            Direction::Up | Direction::Any => self.addr_step,
            Direction::Down => self.words - 1 - self.addr_step,
        };
        let op = element.ops[self.op];
        // Advance: op fastest, then address, then element.
        self.op += 1;
        if self.op == element.ops.len() {
            self.op = 0;
            self.addr_step += 1;
            if self.addr_step == self.words {
                self.addr_step = 0;
                self.element += 1;
            }
        }
        Some(BistCommand { op, addr })
    }
}

/// Generates the sequencer hardware for a memory with `addr_bits`
/// address bits running an algorithm with `elements` March elements of up
/// to `max_ops` operations each.
///
/// Ports: `bck` (BIST clock), `brst_n`, `run`; outputs `addr[k]`,
/// `op_index[k]`, `elem_index[k]`, `done`.
///
/// # Errors
///
/// Propagates netlist construction errors.
///
/// # Panics
///
/// Panics if any dimension is zero.
pub fn sequencer_netlist(
    addr_bits: usize,
    elements: usize,
    max_ops: usize,
) -> Result<Module, NetlistError> {
    assert!(addr_bits > 0 && elements > 0 && max_ops > 0);
    let mut b = NetlistBuilder::new("steac_bist_sequencer");
    let bck = b.input("bck");
    let brst_n = b.input("brst_n");
    let run = b.input("run");

    let op_bits = bits_for(max_ops);
    let elem_bits = bits_for(elements);

    // Op counter (fastest): wraps at max_ops; its wrap enables the
    // address counter; the address wrap enables the element counter.
    let (op_q, op_wrap) = wrapping_counter(&mut b, op_bits, run, brst_n, bck, "op");
    let (addr_q, addr_wrap) = wrapping_counter(&mut b, addr_bits, op_wrap, brst_n, bck, "addr");
    let elem_en = b.gate(GateKind::And2, &[op_wrap, addr_wrap]);
    let (elem_q, elem_wrap) = wrapping_counter(&mut b, elem_bits, elem_en, brst_n, bck, "elem");

    // Done latch: set when the element counter wraps past the last
    // element.
    let done = b.net("done_q");
    let done_next = b.gate(GateKind::Or2, &[done, elem_wrap]);
    b.gate_into(GateKind::DffR, &[done_next, bck, brst_n], done);

    for (i, &q) in addr_q.iter().enumerate() {
        b.output(&format!("addr[{i}]"), q);
    }
    for (i, &q) in op_q.iter().enumerate() {
        b.output(&format!("op_index[{i}]"), q);
    }
    for (i, &q) in elem_q.iter().enumerate() {
        b.output(&format!("elem_index[{i}]"), q);
    }
    b.output("done", done);
    b.finish()
}

fn bits_for(n: usize) -> usize {
    (usize::BITS - (n.max(2) - 1).leading_zeros()) as usize
}

/// Counter with enable; returns `(bits, wrap)` where `wrap` pulses with
/// the enable when all bits are 1 (terminal count).
fn wrapping_counter(
    b: &mut NetlistBuilder,
    bits: usize,
    enable: steac_netlist::NetId,
    clear_n: steac_netlist::NetId,
    ck: steac_netlist::NetId,
    prefix: &str,
) -> (Vec<steac_netlist::NetId>, steac_netlist::NetId) {
    let mut q = Vec::with_capacity(bits);
    for i in 0..bits {
        q.push(b.net(&format!("{prefix}_q{i}")));
    }
    let mut carry = enable;
    for (i, &qi) in q.iter().enumerate() {
        let d = b.gate(GateKind::Xor2, &[qi, carry]);
        if i + 1 < bits {
            carry = b.gate(GateKind::And2, &[carry, qi]);
        }
        b.gate_into(GateKind::DffR, &[d, ck, clear_n], qi);
    }
    let tc = b.and_tree(&q);
    let wrap = b.gate(GateKind::And2, &[tc, enable]);
    (q, wrap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::march::MarchAlgorithm;
    use steac_netlist::AreaReport;
    use steac_sim::{Logic, Simulator};

    #[test]
    fn command_stream_length_matches_kn() {
        let alg = MarchAlgorithm::march_c_minus();
        let seq = Sequencer::new(alg.clone(), 32);
        assert_eq!(seq.clone().count() as u64, alg.cycles(32));
        assert_eq!(seq.total_cycles(), 320);
    }

    #[test]
    fn first_element_initialises_background() {
        let alg = MarchAlgorithm::march_c_minus();
        let mut seq = Sequencer::new(alg, 4);
        // ⇕(w0): first 4 commands write 0 at ascending addresses.
        for i in 0..4 {
            let c = seq.next().unwrap();
            assert_eq!(c.op, MarchOp::W0);
            assert_eq!(c.addr, i);
        }
        // ⇑(r0,w1) at address 0 next.
        let c = seq.next().unwrap();
        assert_eq!(c.op, MarchOp::R0);
        assert_eq!(c.addr, 0);
    }

    #[test]
    fn down_elements_descend() {
        let alg = MarchAlgorithm::parse("d", "{down(r0)}").unwrap();
        let addrs: Vec<usize> = Sequencer::new(alg, 3).map(|c| c.addr).collect();
        assert_eq!(addrs, vec![2, 1, 0]);
    }

    #[test]
    fn netlist_builds_and_counts() {
        let m = sequencer_netlist(4, 6, 2).unwrap();
        let area = AreaReport::for_module(&m).total_ge();
        assert!(area > 50.0 && area < 300.0, "sequencer area {area}");

        // Drive it: after reset, run for 2 cycles (op counter has 1 bit
        // for max_ops=2) and watch the address counter tick.
        let mut sim: Simulator = Simulator::new(&m).unwrap();
        sim.set_by_name("bck", Logic::Zero).unwrap();
        sim.set_by_name("run", Logic::Zero).unwrap();
        sim.set_by_name("brst_n", Logic::Zero).unwrap();
        sim.settle().unwrap();
        sim.set_by_name("brst_n", Logic::One).unwrap();
        sim.set_by_name("run", Logic::One).unwrap();
        for _ in 0..2 {
            sim.clock_cycle_by_name("bck").unwrap();
        }
        assert_eq!(sim.get_by_name("addr[0]").unwrap(), Logic::One);
        assert_eq!(sim.get_by_name("done").unwrap(), Logic::Zero);
    }

    #[test]
    fn done_rises_after_full_walk() {
        // 1 address bit (2 words... we use full wrap), 1 element, 1 op:
        // done after op x addr wrap = 2 cycles... with 1-bit counters
        // all-ones TC means done after 2*1 cycles of run.
        let m = sequencer_netlist(1, 1, 1).unwrap();
        let mut sim: Simulator = Simulator::new(&m).unwrap();
        sim.set_by_name("bck", Logic::Zero).unwrap();
        sim.set_by_name("run", Logic::Zero).unwrap();
        sim.set_by_name("brst_n", Logic::Zero).unwrap();
        sim.settle().unwrap();
        sim.set_by_name("brst_n", Logic::One).unwrap();
        sim.set_by_name("run", Logic::One).unwrap();
        let mut done_at = None;
        for cycle in 0..8 {
            sim.clock_cycle_by_name("bck").unwrap();
            if sim.get_by_name("done").unwrap() == Logic::One {
                done_at = Some(cycle);
                break;
            }
        }
        assert!(done_at.is_some(), "sequencer never finished");
    }
}
