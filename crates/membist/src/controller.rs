//! The shared BIST Controller (Fig. 2): single tester access point for
//! all on-chip memories.
//!
//! The tester interface is the 7-signal port of the paper's figure:
//! `MBS` (BIST start), `MSI` (serial instruction in), `MBR` (BIST
//! reset), `MRD` (ready/done), `MSO` (serial status out), `MBO`
//! (pass/fail), `MBC` (BIST clock).

use steac_netlist::{GateKind, Module, NetlistBuilder, NetlistError};

/// The Fig. 2 tester interface signal names.
pub const BIST_IF_SIGNALS: [&str; 7] = ["MBS", "MSI", "MBR", "MRD", "MSO", "MBO", "MBC"];

/// Generates the shared controller for `sequencers` sequencer groups.
///
/// Behaviour implemented in gates:
///
/// * a run flop set by `MBS`, cleared by `MBR`,
/// * per-sequencer `seq_run[j]` gating,
/// * `MRD` = AND of all `seq_done[j]` inputs,
/// * `MBO` = NOR of all `seq_fail[j]` inputs (1 = pass),
/// * a status shift register (one bit per sequencer: its fail flag)
///   shifting out on `MSO` while `MSI` supplies the shift enable.
///
/// # Errors
///
/// Propagates netlist construction errors.
///
/// # Panics
///
/// Panics if `sequencers == 0`.
pub fn controller_netlist(sequencers: usize) -> Result<Module, NetlistError> {
    assert!(sequencers > 0, "controller needs at least one sequencer");
    let mut b = NetlistBuilder::new("steac_bist_controller");
    let mbs = b.input("MBS");
    let msi = b.input("MSI");
    let mbr = b.input("MBR");
    let mbc = b.input("MBC");
    let seq_done = b.input_bus("seq_done", sequencers);
    let seq_fail = b.input_bus("seq_fail", sequencers);

    // Run flop: set on MBS, asynchronously cleared by MBR (active high
    // reset -> invert into DffR's active-low pin).
    let rst_n = b.gate(GateKind::Inv, &[mbr]);
    let run = b.net("run_q");
    let run_next = b.gate(GateKind::Or2, &[run, mbs]);
    b.gate_into(GateKind::DffR, &[run_next, mbc, rst_n], run);
    for j in 0..sequencers {
        let g = b.gate(GateKind::Buf, &[run]);
        b.output(&format!("seq_run[{j}]"), g);
    }

    // Ready when every sequencer reports done.
    let mrd = b.and_tree(&seq_done);
    b.output("MRD", mrd);

    // Pass/fail: MBO = 1 when no sequencer failed.
    let any_fail = b.or_tree(&seq_fail);
    let mbo = b.gate(GateKind::Inv, &[any_fail]);
    b.output("MBO", mbo);

    // Status shift register: parallel-load fail bits when not shifting
    // (MSI low), shift towards MSO when MSI high.
    let mut prev = b.tie0();
    let mut last = prev;
    for (j, &fail) in seq_fail.iter().enumerate().take(sequencers) {
        let q = b.net(&format!("status_q{j}"));
        let d = b.gate(GateKind::Mux2, &[fail, prev, msi]);
        b.gate_into(GateKind::DffR, &[d, mbc, rst_n], q);
        prev = q;
        last = q;
    }
    let mso = b.gate(GateKind::Buf, &[last]);
    b.output("MSO", mso);

    b.finish()
}

/// Total BIST time when `per_sequencer_cycles[j]` sequencers run in
/// parallel (the Fig. 2 arrangement) vs one at a time.
#[must_use]
pub fn bist_time(per_sequencer_cycles: &[u64], parallel: bool) -> u64 {
    if parallel {
        per_sequencer_cycles.iter().copied().max().unwrap_or(0)
    } else {
        per_sequencer_cycles.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use steac_netlist::AreaReport;
    use steac_sim::{Logic, Simulator};

    #[test]
    fn interface_has_the_seven_paper_signals() {
        assert_eq!(BIST_IF_SIGNALS.len(), 7);
        let m = controller_netlist(3).unwrap();
        for sig in ["MBS", "MSI", "MBR", "MBC"] {
            assert!(m.port(sig).is_some(), "missing input {sig}");
        }
        for sig in ["MRD", "MSO", "MBO"] {
            assert!(m.port(sig).is_some(), "missing output {sig}");
        }
    }

    fn setup(m: &Module) -> Simulator {
        let mut sim: Simulator = Simulator::new(m).unwrap();
        for p in ["MBS", "MSI", "MBC"] {
            sim.set_by_name(p, Logic::Zero).unwrap();
        }
        for i in 0..2 {
            sim.set_by_name(&format!("seq_done[{i}]"), Logic::Zero)
                .unwrap();
            sim.set_by_name(&format!("seq_fail[{i}]"), Logic::Zero)
                .unwrap();
        }
        sim.set_by_name("MBR", Logic::One).unwrap();
        sim.settle().unwrap();
        sim.set_by_name("MBR", Logic::Zero).unwrap();
        sim.settle().unwrap();
        sim
    }

    #[test]
    fn start_sets_run_until_reset() {
        let m = controller_netlist(2).unwrap();
        let mut sim = setup(&m);
        assert_eq!(sim.get_by_name("seq_run[0]").unwrap(), Logic::Zero);
        sim.set_by_name("MBS", Logic::One).unwrap();
        sim.clock_cycle_by_name("MBC").unwrap();
        sim.set_by_name("MBS", Logic::Zero).unwrap();
        sim.clock_cycle_by_name("MBC").unwrap();
        assert_eq!(sim.get_by_name("seq_run[1]").unwrap(), Logic::One);
        sim.set_by_name("MBR", Logic::One).unwrap();
        sim.settle().unwrap();
        assert_eq!(sim.get_by_name("seq_run[0]").unwrap(), Logic::Zero);
    }

    #[test]
    fn ready_and_pass_fail_aggregation() {
        let m = controller_netlist(2).unwrap();
        let mut sim = setup(&m);
        assert_eq!(sim.get_by_name("MRD").unwrap(), Logic::Zero);
        sim.set_by_name("seq_done[0]", Logic::One).unwrap();
        sim.set_by_name("seq_done[1]", Logic::One).unwrap();
        sim.settle().unwrap();
        assert_eq!(sim.get_by_name("MRD").unwrap(), Logic::One);
        assert_eq!(sim.get_by_name("MBO").unwrap(), Logic::One, "pass");
        sim.set_by_name("seq_fail[1]", Logic::One).unwrap();
        sim.settle().unwrap();
        assert_eq!(sim.get_by_name("MBO").unwrap(), Logic::Zero, "fail");
    }

    #[test]
    fn status_register_shifts_fail_map_out() {
        let m = controller_netlist(2).unwrap();
        let mut sim = setup(&m);
        sim.set_by_name("seq_fail[0]", Logic::One).unwrap();
        // Parallel load (MSI low), then shift out (MSI high).
        sim.clock_cycle_by_name("MBC").unwrap();
        sim.set_by_name("MSI", Logic::One).unwrap();
        sim.settle().unwrap();
        // MSO currently shows the last stage = fail[1] = 0.
        assert_eq!(sim.get_by_name("MSO").unwrap(), Logic::Zero);
        sim.clock_cycle_by_name("MBC").unwrap();
        // After one shift, fail[0] = 1 reaches MSO.
        assert_eq!(sim.get_by_name("MSO").unwrap(), Logic::One);
    }

    #[test]
    fn bist_time_parallel_vs_serial() {
        let cycles = [80_000u64, 160_000, 40_000];
        assert_eq!(bist_time(&cycles, false), 280_000);
        assert_eq!(bist_time(&cycles, true), 160_000);
        assert_eq!(bist_time(&[], true), 0);
    }

    #[test]
    fn controller_area_is_modest() {
        let m = controller_netlist(4).unwrap();
        let area = AreaReport::for_module(&m).total_ge();
        assert!(area < 150.0, "shared controller should be small: {area}");
    }
}
