//! The BRAINS command shell.
//!
//! The paper: "one can generate the BIST circuit using the GUI or command
//! shell". This is the command-shell front end; each line is a command,
//! the return value is the text the shell prints.
//!
//! ```text
//! brains> add_memory ram0 words=8192 width=16 ports=sp group=0
//! brains> set_algorithm march_c-
//! brains> set_policy per_group
//! brains> compile
//! brains> report
//! ```

use crate::brains::{BistDesign, Brains, MemorySpec, SequencerPolicy};
use crate::march::MarchAlgorithm;
use crate::memory::{PortKind, SramConfig};
use crate::BistError;

/// Interactive BRAINS session state.
#[derive(Debug, Clone, Default)]
pub struct Shell {
    brains: Brains,
    design: Option<BistDesign>,
}

impl Shell {
    /// Fresh session.
    #[must_use]
    pub fn new() -> Self {
        Shell {
            brains: Brains::new(),
            design: None,
        }
    }

    /// The compiler state (for embedding the shell in STEAC).
    #[must_use]
    pub fn brains(&self) -> &Brains {
        &self.brains
    }

    /// The last compiled design, if any.
    #[must_use]
    pub fn design(&self) -> Option<&BistDesign> {
        self.design.as_ref()
    }

    /// Executes one command line, returning the shell output.
    ///
    /// # Errors
    ///
    /// Returns [`BistError::Shell`] for unknown/malformed commands and
    /// propagates compiler errors.
    pub fn exec(&mut self, line: &str) -> Result<String, BistError> {
        let mut parts = line.split_whitespace();
        let Some(cmd) = parts.next() else {
            return Ok(String::new());
        };
        let args: Vec<&str> = parts.collect();
        let bad = |reason: &str| BistError::Shell {
            line: line.to_string(),
            reason: reason.to_string(),
        };
        match cmd {
            "help" => Ok("commands: add_memory <name> words=N width=N ports=sp|2p \
                 [group=N] | set_algorithm <name>|{notation} | \
                 set_algorithm_for <mem> <name> | set_policy \
                 per_memory|per_group|single | set_parallel on|off | list | \
                 compile | report | coverage [n]"
                .to_string()),
            "add_memory" => {
                let name = args.first().ok_or_else(|| bad("memory name missing"))?;
                let mut words = None;
                let mut width = None;
                let mut ports = PortKind::SinglePort;
                let mut group = 0usize;
                for kv in &args[1..] {
                    let (k, v) = kv
                        .split_once('=')
                        .ok_or_else(|| bad("expected key=value"))?;
                    match k {
                        "words" => words = Some(v.parse().map_err(|_| bad("bad words"))?),
                        "width" => width = Some(v.parse().map_err(|_| bad("bad width"))?),
                        "ports" => {
                            ports = match v {
                                "sp" => PortKind::SinglePort,
                                "2p" => PortKind::TwoPort,
                                _ => return Err(bad("ports must be sp or 2p")),
                            }
                        }
                        "group" => group = v.parse().map_err(|_| bad("bad group"))?,
                        _ => return Err(bad("unknown key")),
                    }
                }
                let words = words.ok_or_else(|| bad("words= missing"))?;
                let width = width.ok_or_else(|| bad("width= missing"))?;
                let config = SramConfig {
                    words,
                    width,
                    ports,
                };
                self.brains.add_memory(MemorySpec::new(name, config, group));
                Ok(format!("added {name}: {config}"))
            }
            "set_algorithm" => {
                let rest = args.join(" ");
                let alg = if rest.starts_with('{') {
                    MarchAlgorithm::parse("custom", &rest)?
                } else {
                    MarchAlgorithm::by_name(rest.trim()).ok_or(BistError::Unknown {
                        what: "algorithm",
                        name: rest.trim().to_string(),
                    })?
                };
                let msg = format!("algorithm = {alg}");
                self.brains.algorithm(alg);
                Ok(msg)
            }
            "set_algorithm_for" => {
                let mem = args.first().ok_or_else(|| bad("memory name missing"))?;
                let name = args.get(1).ok_or_else(|| bad("algorithm missing"))?;
                let alg = MarchAlgorithm::by_name(name).ok_or(BistError::Unknown {
                    what: "algorithm",
                    name: (*name).to_string(),
                })?;
                self.brains.algorithm_for(mem, alg);
                Ok(format!("{mem} uses {name}"))
            }
            "set_policy" => {
                let p = match *args.first().ok_or_else(|| bad("policy missing"))? {
                    "per_memory" => SequencerPolicy::PerMemory,
                    "per_group" => SequencerPolicy::PerGroup,
                    "single" => SequencerPolicy::Single,
                    _ => return Err(bad("policy must be per_memory|per_group|single")),
                };
                self.brains.policy(p);
                Ok(format!("policy = {p:?}"))
            }
            "set_parallel" => {
                let on = match *args.first().ok_or_else(|| bad("on|off missing"))? {
                    "on" => true,
                    "off" => false,
                    _ => return Err(bad("expected on or off")),
                };
                self.brains.parallel(on);
                Ok(format!("parallel = {on}"))
            }
            "list" => {
                let mut out = String::new();
                for m in self.brains.memories() {
                    out.push_str(&format!("{}: {} group {}\n", m.name, m.config, m.group));
                }
                Ok(out)
            }
            "compile" => {
                let d = self.brains.compile()?;
                let msg = format!(
                    "compiled: {} sequencer(s), {:.0} GE, {} cycles",
                    d.sequencer_count(),
                    d.total_area_ge(),
                    d.total_cycles()
                );
                self.design = Some(d);
                Ok(msg)
            }
            "report" => match &self.design {
                Some(d) => Ok(d.to_string()),
                None => Err(bad("nothing compiled yet")),
            },
            "coverage" => {
                let n: usize = args
                    .first()
                    .map(|s| s.parse().map_err(|_| bad("bad sample count")))
                    .transpose()?
                    .unwrap_or(20);
                let reports = self
                    .brains
                    .evaluate_coverage(&steac_sim::Exec::from_env(), n, 2005)
                    .map_err(|e| bad(&format!("coverage dispatch failed: {e}")))?;
                let mut out = String::new();
                for r in reports {
                    out.push_str(&r.to_string());
                    out.push('\n');
                }
                Ok(out)
            }
            _ => Err(bad("unknown command (try `help`)")),
        }
    }

    /// Executes a script (one command per line, `#` comments allowed),
    /// returning concatenated output.
    ///
    /// # Errors
    ///
    /// Stops at the first failing command.
    pub fn exec_script(&mut self, script: &str) -> Result<String, BistError> {
        let mut out = String::new();
        for line in script.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            out.push_str(&self.exec(line)?);
            out.push('\n');
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_session() {
        let mut sh = Shell::new();
        let out = sh
            .exec_script(
                "# DSC-style session
                 add_memory ram0 words=8192 width=16 ports=sp group=0
                 add_memory ram1 words=8192 width=16 ports=sp group=0
                 add_memory fifo words=256 width=32 ports=2p group=1
                 set_algorithm march_c-
                 set_policy per_group
                 compile
                 report",
            )
            .expect("script runs");
        assert!(out.contains("compiled: 2 sequencer(s)"), "{out}");
        assert!(out.contains("ram0"), "{out}");
        assert!(sh.design().is_some());
    }

    #[test]
    fn custom_notation_accepted() {
        let mut sh = Shell::new();
        let out = sh
            .exec("set_algorithm {any(w0); up(r0,w1); down(r1)}")
            .unwrap();
        assert!(out.contains("custom"), "{out}");
    }

    #[test]
    fn unknown_command_is_an_error() {
        let mut sh = Shell::new();
        assert!(matches!(
            sh.exec("frobnicate"),
            Err(BistError::Shell { .. })
        ));
    }

    #[test]
    fn report_before_compile_is_an_error() {
        let mut sh = Shell::new();
        assert!(sh.exec("report").is_err());
    }

    #[test]
    fn coverage_command_runs() {
        let mut sh = Shell::new();
        sh.exec("add_memory m words=64 width=4 ports=sp").unwrap();
        let out = sh.exec("coverage 5").unwrap();
        assert!(out.contains("March C-"), "{out}");
        assert!(out.contains("100.00%"), "{out}");
    }

    #[test]
    fn bad_arguments_are_reported() {
        let mut sh = Shell::new();
        assert!(sh.exec("add_memory m words=abc width=8").is_err());
        assert!(sh.exec("add_memory m width=8").is_err());
        assert!(sh.exec("set_policy diagonal").is_err());
        assert!(sh.exec("set_algorithm no_such_march").is_err());
    }
}
