//! Failure diagnosis: from the controller's fail map to the failing
//! memory, and from a failing memory to the first offending March
//! operation.
//!
//! On the tester, `MSO` shifts out one fail bit per sequencer group
//! (see [`crate::controller`]); BRAINS maps those bits back to memory
//! instances, and re-running the March test against the behavioural
//! model pinpoints the first mismatching read — the starting point of
//! bitmap-based failure analysis.
//!
//! The second half of this module is the memory arm of the platform's
//! fault-dictionary diagnosis (`steac_sim::models::dictionary` is the
//! gate-level arm): [`coupling_dictionary`] pre-simulates a candidate
//! fault list — typically [`crate::faultsim::enumerate_inter_cell_couplings`] —
//! and records each fault's [`FailureSite`] signature under the chosen
//! March algorithm; [`rank_candidates`] then scores an observed failure
//! against every dictionary entry and returns the candidates in
//! best-match-first order.

use crate::brains::{BistDesign, PerMemory};
use crate::march::{Direction, MarchAlgorithm, MarchOp};
use crate::memory::{MemFault, Sram, SramConfig};
use std::fmt;

/// The first failing read observed while marching over a memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailureSite {
    /// Index of the March element.
    pub element: usize,
    /// Word address of the failing read.
    pub addr: usize,
    /// The read operation that failed.
    pub op: MarchOp,
    /// Observed word value.
    pub observed: u64,
    /// Expected word value.
    pub expected: u64,
}

impl FailureSite {
    /// Bit positions that differ.
    #[must_use]
    pub fn failing_bits(&self) -> Vec<usize> {
        (0..64)
            .filter(|b| ((self.observed ^ self.expected) >> b) & 1 == 1)
            .collect()
    }
}

impl fmt::Display for FailureSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "element {} {} at address {:#x}: observed {:#x}, expected {:#x} (bits {:?})",
            self.element,
            self.op,
            self.addr,
            self.observed,
            self.expected,
            self.failing_bits()
        )
    }
}

/// Runs `alg` on `mem` and returns the first failing read, if any.
#[must_use]
pub fn first_failure(alg: &MarchAlgorithm, mem: &mut Sram) -> Option<FailureSite> {
    failure_log(alg, mem).into_iter().next()
}

/// Runs `alg` on `mem` to completion and returns *every* failing read
/// in walk order — the March analogue of a tester failure bitmap. The
/// walk never stops at the first mismatch (unlike the pass/fail BIST
/// result), because the trailing failures are what give a fault its
/// distinguishable dictionary signature.
#[must_use]
pub fn failure_log(alg: &MarchAlgorithm, mem: &mut Sram) -> Vec<FailureSite> {
    let words = mem.config().words;
    let mask = if mem.config().width == 64 {
        u64::MAX
    } else {
        (1u64 << mem.config().width) - 1
    };
    let mut log = Vec::new();
    for (ei, element) in alg.elements.iter().enumerate() {
        let addrs: Box<dyn Iterator<Item = usize>> = match element.dir {
            Direction::Up | Direction::Any => Box::new(0..words),
            Direction::Down => Box::new((0..words).rev()),
        };
        for addr in addrs {
            for &op in &element.ops {
                match op {
                    MarchOp::W0 => mem.write(addr, 0),
                    MarchOp::W1 => mem.write(addr, mask),
                    MarchOp::R0 | MarchOp::R1 => {
                        let expected = if op.value() { mask } else { 0 };
                        let observed = mem.read(addr);
                        if observed != expected {
                            log.push(FailureSite {
                                element: ei,
                                addr,
                                op,
                                observed,
                                expected,
                            });
                        }
                    }
                }
            }
        }
    }
    log
}

/// The March failure signature of one candidate fault: every failing
/// read on a behavioural model carrying exactly that fault, in walk
/// order. Empty when the algorithm cannot see the fault.
#[must_use]
pub fn march_signature(
    alg: &MarchAlgorithm,
    config: &SramConfig,
    fault: MemFault,
) -> Vec<FailureSite> {
    let mut mem = Sram::with_fault(*config, fault);
    failure_log(alg, &mut mem)
}

/// A memory fault dictionary: candidate faults paired with their March
/// failure signatures, ready for [`rank_candidates`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemDictionary {
    /// Algorithm the signatures were simulated under.
    pub algorithm: String,
    /// Candidate faults, in enumeration order.
    pub faults: Vec<MemFault>,
    /// `signatures[i]` is the failure log of `faults[i]` (empty = the
    /// algorithm does not detect the fault).
    pub signatures: Vec<Vec<FailureSite>>,
}

impl MemDictionary {
    /// Candidates the algorithm detects at all.
    #[must_use]
    pub fn detected_count(&self) -> usize {
        self.signatures.iter().filter(|s| !s.is_empty()).count()
    }
}

/// Builds the fault dictionary for `faults` on `config` under `alg` by
/// simulating each candidate with [`march_signature`]. Deterministic:
/// entry order follows the fault list.
#[must_use]
pub fn coupling_dictionary(
    alg: &MarchAlgorithm,
    config: &SramConfig,
    faults: &[MemFault],
) -> MemDictionary {
    MemDictionary {
        algorithm: alg.name.clone(),
        faults: faults.to_vec(),
        signatures: faults
            .iter()
            .map(|&f| march_signature(alg, config, f))
            .collect(),
    }
}

/// Mismatch weight between two individual failure sites. Fields are
/// weighted by how sharply they localize: element (8) and address (4)
/// pin the cell, the read op (2) the data background, and each
/// differing failing-bit position (1) the column.
#[must_use]
pub fn site_distance(a: &FailureSite, b: &FailureSite) -> u32 {
    let mut d = 0u32;
    if a.element != b.element {
        d += 8;
    }
    if a.addr != b.addr {
        d += 4;
    }
    if a.op != b.op {
        d += 2;
    }
    let sym_diff = (a.observed ^ a.expected) ^ (b.observed ^ b.expected);
    d + sym_diff.count_ones()
}

/// Weight of a failure present in one log but absent from the other —
/// worse than any single-site field mismatch.
const UNMATCHED_SITE: u32 = 16;

/// Mismatch weight between an observed failure log and a dictionary
/// signature: aligned sites compare with [`site_distance`], and every
/// unmatched trailing site on either side costs [`UNMATCHED_SITE`]. An
/// undetected candidate (empty signature) can never explain an
/// observed failure and scores [`u32::MAX`].
#[must_use]
pub fn signature_distance(observed: &[FailureSite], candidate: &[FailureSite]) -> u32 {
    if candidate.is_empty() {
        return if observed.is_empty() { 0 } else { u32::MAX };
    }
    let paired: u32 = observed
        .iter()
        .zip(candidate)
        .map(|(o, c)| site_distance(o, c))
        .sum();
    let unmatched = observed.len().abs_diff(candidate.len()) as u32;
    paired.saturating_add(unmatched.saturating_mul(UNMATCHED_SITE))
}

/// Ranks the dictionary's candidates against an observed failure log:
/// returns `(fault index, distance)` pairs sorted best-first, ties
/// broken by enumeration index so the ranking is fully deterministic.
/// The true fault scores 0 when the observed log came from a fault in
/// the dictionary (same algorithm, same geometry).
#[must_use]
pub fn rank_candidates(dict: &MemDictionary, observed: &[FailureSite]) -> Vec<(usize, u32)> {
    let mut ranked: Vec<(usize, u32)> = dict
        .signatures
        .iter()
        .enumerate()
        .map(|(i, sig)| (i, signature_distance(observed, sig)))
        .collect();
    ranked.sort_by_key(|&(i, d)| (d, i));
    ranked
}

/// Maps the controller fail bits (one per sequencer group, in group
/// order) to the memories they implicate.
#[must_use]
pub fn implicated_memories<'d>(design: &'d BistDesign, seq_fail: &[bool]) -> Vec<&'d PerMemory> {
    // Group order in the design follows the sorted group keys used at
    // compile time; sequencer_cycles and per_memory share that order via
    // insertion sequence. Reconstruct group boundaries by walking
    // per_memory in order and changing groups when the sequencer index
    // advances.
    // per_memory was pushed group by group, so chunk it by the group
    // sizes implied by the sequencer count.
    let groups = design.sequencer_cycles.len();
    if groups == 0 {
        return Vec::new();
    }
    // Count memories per group by re-deriving the grouping from the
    // per-memory records: records were appended per group in order.
    // Without explicit markers we approximate by even association: walk
    // memories and assign to groups in contiguous runs recorded at
    // compile time via `group_sizes`.
    let sizes = design.group_sizes();
    let mut out = Vec::new();
    let mut idx = 0usize;
    for (g, &size) in sizes.iter().enumerate() {
        let failing = seq_fail.get(g).copied().unwrap_or(false);
        for m in &design.per_memory[idx..idx + size] {
            if failing {
                out.push(m);
            }
        }
        idx += size;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brains::{Brains, MemorySpec};
    use crate::memory::{MemFault, SramConfig};

    #[test]
    fn first_failure_locates_a_stuck_cell() {
        let cfg = SramConfig::single_port(64, 8);
        let alg = MarchAlgorithm::march_c_minus();
        let mut mem = Sram::with_fault(cfg, MemFault::stuck_at(0x21, 5, true));
        let site = first_failure(&alg, &mut mem).expect("fault detected");
        assert_eq!(site.addr, 0x21);
        assert_eq!(site.failing_bits(), vec![5]);
        // SA1 first seen by the first r0 after the w0 background.
        assert_eq!(site.op, MarchOp::R0);
        assert!(site.to_string().contains("0x21"));
    }

    #[test]
    fn clean_memory_has_no_failure_site() {
        let cfg = SramConfig::single_port(16, 4);
        let mut mem = Sram::new(cfg);
        assert!(first_failure(&MarchAlgorithm::march_c_minus(), &mut mem).is_none());
    }

    /// An injected inter-cell coupling fault's observed failure ranks
    /// its own dictionary entry first (distance 0) — and any seeded
    /// instance keeps the true site inside the top-3 candidates.
    #[test]
    fn coupling_dictionary_ranks_the_injected_fault_on_top() {
        let cfg = SramConfig::single_port(16, 4);
        let alg = MarchAlgorithm::march_c_minus();
        let candidates = crate::faultsim::enumerate_inter_cell_couplings(&cfg);
        assert_eq!(candidates.len(), 12 * cfg.width * (cfg.words - 1));
        let dict = coupling_dictionary(&alg, &cfg, &candidates);
        assert!(dict.detected_count() > 0);
        // Inject every 37th candidate and diagnose it from its observed
        // failure log alone.
        for (truth, &fault) in candidates.iter().enumerate().step_by(37) {
            let mut mem = Sram::with_fault(cfg, fault);
            let observed = failure_log(&alg, &mut mem);
            assert!(!observed.is_empty(), "March C- detects couplings");
            let ranked = rank_candidates(&dict, &observed);
            assert_eq!(ranked.len(), candidates.len());
            let pos = ranked
                .iter()
                .position(|&(i, _)| i == truth)
                .expect("true fault present");
            let (_, d) = ranked[pos];
            assert_eq!(d, 0, "true fault {fault:?} must match its own signature");
            assert!(
                pos < 3,
                "true fault {fault:?} ranked #{} (distance {d})",
                pos + 1
            );
        }
    }

    /// Signature distance weighting: element > addr > op > bits, an
    /// unmatched site outweighs any field mismatch, and an undetected
    /// candidate can never explain a failure.
    #[test]
    fn signature_distance_orders_mismatches() {
        let base = FailureSite {
            element: 1,
            addr: 5,
            op: MarchOp::R0,
            observed: 0b0010,
            expected: 0,
        };
        assert_eq!(signature_distance(&[base], &[base]), 0);
        let other_bit = FailureSite {
            observed: 0b0100,
            ..base
        };
        assert_eq!(signature_distance(&[base], &[other_bit]), 2);
        let other_addr = FailureSite { addr: 6, ..base };
        let other_element = FailureSite { element: 2, ..base };
        assert!(
            signature_distance(&[base], &[other_addr])
                < signature_distance(&[base], &[other_element])
        );
        assert!(
            signature_distance(&[base], &[other_element])
                < signature_distance(&[base], &[base, base])
        );
        assert_eq!(signature_distance(&[base], &[]), u32::MAX);
        assert_eq!(signature_distance(&[], &[]), 0);
    }

    #[test]
    fn fail_map_implicates_the_right_group() {
        let mut b = Brains::new();
        b.add_memory(MemorySpec::new("a0", SramConfig::single_port(64, 8), 0));
        b.add_memory(MemorySpec::new("a1", SramConfig::single_port(32, 8), 0));
        b.add_memory(MemorySpec::new("f0", SramConfig::two_port(16, 8), 1));
        let d = b.compile().unwrap();
        // Group 1 (the two-port FIFO) failed.
        let hits = implicated_memories(&d, &[false, true]);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].name, "f0");
        // Group 0 failed: both SP memories implicated.
        let hits = implicated_memories(&d, &[true, false]);
        assert_eq!(hits.len(), 2);
    }
}
