//! Failure diagnosis: from the controller's fail map to the failing
//! memory, and from a failing memory to the first offending March
//! operation.
//!
//! On the tester, `MSO` shifts out one fail bit per sequencer group
//! (see [`crate::controller`]); BRAINS maps those bits back to memory
//! instances, and re-running the March test against the behavioural
//! model pinpoints the first mismatching read — the starting point of
//! bitmap-based failure analysis.

use crate::brains::{BistDesign, PerMemory};
use crate::march::{Direction, MarchAlgorithm, MarchOp};
use crate::memory::Sram;
use std::fmt;

/// The first failing read observed while marching over a memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailureSite {
    /// Index of the March element.
    pub element: usize,
    /// Word address of the failing read.
    pub addr: usize,
    /// The read operation that failed.
    pub op: MarchOp,
    /// Observed word value.
    pub observed: u64,
    /// Expected word value.
    pub expected: u64,
}

impl FailureSite {
    /// Bit positions that differ.
    #[must_use]
    pub fn failing_bits(&self) -> Vec<usize> {
        (0..64)
            .filter(|b| ((self.observed ^ self.expected) >> b) & 1 == 1)
            .collect()
    }
}

impl fmt::Display for FailureSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "element {} {} at address {:#x}: observed {:#x}, expected {:#x} (bits {:?})",
            self.element,
            self.op,
            self.addr,
            self.observed,
            self.expected,
            self.failing_bits()
        )
    }
}

/// Runs `alg` on `mem` and returns the first failing read, if any.
#[must_use]
pub fn first_failure(alg: &MarchAlgorithm, mem: &mut Sram) -> Option<FailureSite> {
    let words = mem.config().words;
    let mask = if mem.config().width == 64 {
        u64::MAX
    } else {
        (1u64 << mem.config().width) - 1
    };
    for (ei, element) in alg.elements.iter().enumerate() {
        let addrs: Box<dyn Iterator<Item = usize>> = match element.dir {
            Direction::Up | Direction::Any => Box::new(0..words),
            Direction::Down => Box::new((0..words).rev()),
        };
        for addr in addrs {
            for &op in &element.ops {
                match op {
                    MarchOp::W0 => mem.write(addr, 0),
                    MarchOp::W1 => mem.write(addr, mask),
                    MarchOp::R0 | MarchOp::R1 => {
                        let expected = if op.value() { mask } else { 0 };
                        let observed = mem.read(addr);
                        if observed != expected {
                            return Some(FailureSite {
                                element: ei,
                                addr,
                                op,
                                observed,
                                expected,
                            });
                        }
                    }
                }
            }
        }
    }
    None
}

/// Maps the controller fail bits (one per sequencer group, in group
/// order) to the memories they implicate.
#[must_use]
pub fn implicated_memories<'d>(design: &'d BistDesign, seq_fail: &[bool]) -> Vec<&'d PerMemory> {
    // Group order in the design follows the sorted group keys used at
    // compile time; sequencer_cycles and per_memory share that order via
    // insertion sequence. Reconstruct group boundaries by walking
    // per_memory in order and changing groups when the sequencer index
    // advances.
    // per_memory was pushed group by group, so chunk it by the group
    // sizes implied by the sequencer count.
    let groups = design.sequencer_cycles.len();
    if groups == 0 {
        return Vec::new();
    }
    // Count memories per group by re-deriving the grouping from the
    // per-memory records: records were appended per group in order.
    // Without explicit markers we approximate by even association: walk
    // memories and assign to groups in contiguous runs recorded at
    // compile time via `group_sizes`.
    let sizes = design.group_sizes();
    let mut out = Vec::new();
    let mut idx = 0usize;
    for (g, &size) in sizes.iter().enumerate() {
        let failing = seq_fail.get(g).copied().unwrap_or(false);
        for m in &design.per_memory[idx..idx + size] {
            if failing {
                out.push(m);
            }
        }
        idx += size;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brains::{Brains, MemorySpec};
    use crate::memory::{MemFault, SramConfig};

    #[test]
    fn first_failure_locates_a_stuck_cell() {
        let cfg = SramConfig::single_port(64, 8);
        let alg = MarchAlgorithm::march_c_minus();
        let mut mem = Sram::with_fault(cfg, MemFault::stuck_at(0x21, 5, true));
        let site = first_failure(&alg, &mut mem).expect("fault detected");
        assert_eq!(site.addr, 0x21);
        assert_eq!(site.failing_bits(), vec![5]);
        // SA1 first seen by the first r0 after the w0 background.
        assert_eq!(site.op, MarchOp::R0);
        assert!(site.to_string().contains("0x21"));
    }

    #[test]
    fn clean_memory_has_no_failure_site() {
        let cfg = SramConfig::single_port(16, 4);
        let mut mem = Sram::new(cfg);
        assert!(first_failure(&MarchAlgorithm::march_c_minus(), &mut mem).is_none());
    }

    #[test]
    fn fail_map_implicates_the_right_group() {
        let mut b = Brains::new();
        b.add_memory(MemorySpec::new("a0", SramConfig::single_port(64, 8), 0));
        b.add_memory(MemorySpec::new("a1", SramConfig::single_port(32, 8), 0));
        b.add_memory(MemorySpec::new("f0", SramConfig::two_port(16, 8), 1));
        let d = b.compile().unwrap();
        // Group 1 (the two-port FIFO) failed.
        let hits = implicated_memories(&d, &[false, true]);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].name, "f0");
        // Group 0 failed: both SP memories implicated.
        let hits = implicated_memories(&d, &[true, false]);
        assert_eq!(hits.len(), 2);
    }
}
