//! The BRAINS compiler: memory inventory + policy → complete BIST design
//! with netlists, area, test time and (optionally) measured coverage.
//!
//! "Moreover, BRAINS can be integrated with a memory compiler to deliver
//! BISTed memory cores" — [`Brains::compile`] produces per-memory TPGs,
//! sequencer groups, the shared controller and a [`BistDesign`] summary
//! that STEAC's scheduler consumes as BIST test tasks.

use crate::controller::{bist_time, controller_netlist};
use crate::faultsim::{fault_coverage, random_fault_list, MemCoverageReport};
use crate::march::MarchAlgorithm;
use crate::memory::SramConfig;
use crate::sequencer::sequencer_netlist;
use crate::tpg::tpg_netlist;
use crate::BistError;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::fmt;
use steac_netlist::{AreaReport, Design};

/// One embedded memory to be BISTed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemorySpec {
    /// Instance name.
    pub name: String,
    /// Geometry.
    pub config: SramConfig,
    /// Sequencer group (memories in one group share a sequencer).
    pub group: usize,
}

impl MemorySpec {
    /// Convenience constructor.
    #[must_use]
    pub fn new(name: &str, config: SramConfig, group: usize) -> Self {
        MemorySpec {
            name: name.to_string(),
            config,
            group,
        }
    }
}

/// How sequencers are shared across memories.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SequencerPolicy {
    /// One sequencer per memory (fastest, biggest).
    PerMemory,
    /// One sequencer per [`MemorySpec::group`] (the Fig. 2 arrangement).
    PerGroup,
    /// A single sequencer for everything (smallest, slowest).
    Single,
}

/// The BRAINS compiler front-end (builder style).
#[derive(Debug, Clone)]
pub struct Brains {
    memories: Vec<MemorySpec>,
    default_alg: MarchAlgorithm,
    overrides: BTreeMap<String, MarchAlgorithm>,
    policy: SequencerPolicy,
    parallel: bool,
}

impl Default for Brains {
    fn default() -> Self {
        Self::new()
    }
}

impl Brains {
    /// New compiler with March C− and per-group sequencers (the DSC
    /// defaults).
    #[must_use]
    pub fn new() -> Self {
        Brains {
            memories: Vec::new(),
            default_alg: MarchAlgorithm::march_c_minus(),
            overrides: BTreeMap::new(),
            policy: SequencerPolicy::PerGroup,
            parallel: true,
        }
    }

    /// Adds a memory.
    pub fn add_memory(&mut self, spec: MemorySpec) -> &mut Self {
        self.memories.push(spec);
        self
    }

    /// Sets the default March algorithm.
    pub fn algorithm(&mut self, alg: MarchAlgorithm) -> &mut Self {
        self.default_alg = alg;
        self
    }

    /// Overrides the algorithm for one memory.
    pub fn algorithm_for(&mut self, memory: &str, alg: MarchAlgorithm) -> &mut Self {
        self.overrides.insert(memory.to_string(), alg);
        self
    }

    /// Sets the sequencer sharing policy.
    pub fn policy(&mut self, policy: SequencerPolicy) -> &mut Self {
        self.policy = policy;
        self
    }

    /// Run sequencers in parallel (`true`) or one at a time.
    pub fn parallel(&mut self, parallel: bool) -> &mut Self {
        self.parallel = parallel;
        self
    }

    /// The memories added so far.
    #[must_use]
    pub fn memories(&self) -> &[MemorySpec] {
        &self.memories
    }

    fn alg_for(&self, mem: &MemorySpec) -> &MarchAlgorithm {
        self.overrides.get(&mem.name).unwrap_or(&self.default_alg)
    }

    /// Compiles the BIST design.
    ///
    /// # Errors
    ///
    /// Returns [`BistError::Unknown`] when an override references a
    /// missing memory, or netlist errors.
    pub fn compile(&self) -> Result<BistDesign, BistError> {
        for name in self.overrides.keys() {
            if !self.memories.iter().any(|m| &m.name == name) {
                return Err(BistError::Unknown {
                    what: "memory",
                    name: name.clone(),
                });
            }
        }
        // Group memories by sequencer.
        let mut groups: BTreeMap<usize, Vec<&MemorySpec>> = BTreeMap::new();
        for m in &self.memories {
            let key = match self.policy {
                SequencerPolicy::PerMemory => groups.len() + 1_000_000 + groups.len(), // unique
                SequencerPolicy::PerGroup => m.group,
                SequencerPolicy::Single => 0,
            };
            // PerMemory: force a unique key per memory.
            let key = if self.policy == SequencerPolicy::PerMemory {
                1_000_000 + groups.values().map(Vec::len).sum::<usize>()
            } else {
                key
            };
            groups.entry(key).or_default().push(m);
        }

        let mut design = Design::new();
        let mut per_memory = Vec::new();
        let mut sequencer_cycles = Vec::new();
        let mut group_sizes = Vec::new();
        let mut sequencer_area = 0.0;
        let mut tpg_area = 0.0;

        for (gi, (_, members)) in groups.iter().enumerate() {
            // A sequencer covers the largest address space and the
            // longest algorithm in its group; memories with identical
            // geometry run in lock-step (broadcast), others serialise.
            let max_words = members.iter().map(|m| m.config.words).max().unwrap_or(1);
            let addr_bits = (usize::BITS - (max_words.max(2) - 1).leading_zeros()) as usize;
            let max_elems = members
                .iter()
                .map(|m| self.alg_for(m).elements.len())
                .max()
                .unwrap_or(1);
            let max_ops = members
                .iter()
                .flat_map(|m| self.alg_for(m).elements.iter().map(|e| e.ops.len()))
                .max()
                .unwrap_or(1);
            let mut seq = sequencer_netlist(addr_bits, max_elems, max_ops)?;
            seq.name = format!("seq_g{gi}");
            sequencer_area += AreaReport::for_module(&seq).total_ge();
            design.add_module(seq)?;

            // Distinct geometries within the group serialise; identical
            // ones broadcast.
            let mut geometry_cycles: BTreeMap<(usize, usize), u64> = BTreeMap::new();
            for m in members {
                let cycles = self.alg_for(m).cycles(m.config.words);
                per_memory.push(PerMemory {
                    name: m.name.clone(),
                    config: m.config,
                    algorithm: self.alg_for(m).name.clone(),
                    cycles,
                });
                let key = (m.config.words, m.config.width);
                let slot = geometry_cycles.entry(key).or_insert(0);
                *slot = (*slot).max(cycles);
                let mut tpg = tpg_netlist(&m.config)?;
                tpg.name = format!("tpg_{}", m.name);
                tpg_area += AreaReport::for_module(&tpg).total_ge();
                design.add_module(tpg)?;
            }
            sequencer_cycles.push(geometry_cycles.values().sum());
            group_sizes.push(members.len());
        }

        let controller = controller_netlist(groups.len().max(1))?;
        let controller_area = AreaReport::for_module(&controller).total_ge();
        design.add_module(controller)?;

        let serial = bist_time(&sequencer_cycles, false);
        let parallel = bist_time(&sequencer_cycles, true);
        Ok(BistDesign {
            per_memory,
            sequencer_cycles,
            group_sizes,
            controller_area,
            sequencer_area,
            tpg_area,
            total_cycles_serial: serial,
            total_cycles_parallel: parallel,
            run_parallel: self.parallel,
            netlists: design,
        })
    }

    /// Measures coverage of the configured algorithms on each distinct
    /// geometry by fault simulation of a random fault sample (the BRAINS
    /// "evaluate the memory test efficiency" feature), dispatched on
    /// `exec` like every other grading workload.
    ///
    /// # Errors
    ///
    /// Only under [`steac_sim::Fallback::Fail`] on a process backend
    /// (see [`fault_coverage`]).
    pub fn evaluate_coverage(
        &self,
        exec: &steac_sim::Exec,
        per_class: usize,
        seed: u64,
    ) -> Result<Vec<MemCoverageReport>, steac_sim::SimError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut seen: BTreeMap<(usize, usize, String), ()> = BTreeMap::new();
        let mut out = Vec::new();
        for m in &self.memories {
            let alg = self.alg_for(m);
            let key = (m.config.words, m.config.width, alg.name.clone());
            if seen.insert(key, ()).is_some() {
                continue;
            }
            // Cap the simulated geometry so evaluation stays interactive;
            // March coverage is size-independent for these fault classes.
            let sim_cfg = SramConfig {
                words: m.config.words.min(64),
                width: m.config.width.min(8),
                ports: m.config.ports,
            };
            let faults = random_fault_list(&sim_cfg, per_class, &mut rng);
            out.push(fault_coverage(exec, alg, &sim_cfg, &faults)?);
        }
        Ok(out)
    }
}

/// Per-memory compilation record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PerMemory {
    /// Memory name.
    pub name: String,
    /// Geometry.
    pub config: SramConfig,
    /// Algorithm applied.
    pub algorithm: String,
    /// BIST cycles for this memory.
    pub cycles: u64,
}

/// A compiled BIST design.
#[derive(Debug, Clone)]
pub struct BistDesign {
    /// Per-memory records.
    pub per_memory: Vec<PerMemory>,
    /// Cycles per sequencer group.
    pub sequencer_cycles: Vec<u64>,
    /// Number of memories per sequencer group (same order as
    /// [`sequencer_cycles`](Self::sequencer_cycles); `per_memory` is laid
    /// out as contiguous runs of these sizes).
    group_sizes: Vec<usize>,
    /// Controller area (GE).
    pub controller_area: f64,
    /// Total sequencer area (GE).
    pub sequencer_area: f64,
    /// Total TPG area (GE).
    pub tpg_area: f64,
    /// Total cycles when sequencers run one at a time.
    pub total_cycles_serial: u64,
    /// Total cycles when sequencers run concurrently.
    pub total_cycles_parallel: u64,
    /// Whether this design is configured for parallel operation.
    pub run_parallel: bool,
    /// Generated netlists (controller, sequencers, TPGs).
    pub netlists: Design,
}

impl BistDesign {
    /// Total BIST logic area in GE.
    #[must_use]
    pub fn total_area_ge(&self) -> f64 {
        self.controller_area + self.sequencer_area + self.tpg_area
    }

    /// The test time under the configured scheduling mode.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        if self.run_parallel {
            self.total_cycles_parallel
        } else {
            self.total_cycles_serial
        }
    }

    /// Number of sequencers.
    #[must_use]
    pub fn sequencer_count(&self) -> usize {
        self.sequencer_cycles.len()
    }

    /// Memories per sequencer group, in group order.
    #[must_use]
    pub fn group_sizes(&self) -> &[usize] {
        &self.group_sizes
    }
}

impl fmt::Display for BistDesign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "BIST design: {} memories, {} sequencer(s), {:.0} GE, {} cycles ({})",
            self.per_memory.len(),
            self.sequencer_count(),
            self.total_area_ge(),
            self.total_cycles(),
            if self.run_parallel {
                "parallel"
            } else {
                "serial"
            }
        )?;
        for m in &self.per_memory {
            writeln!(
                f,
                "  {:<12} {:>12} {:>10} {:>10} cycles",
                m.name,
                m.config.to_string(),
                m.algorithm,
                m.cycles
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_inventory() -> Vec<MemorySpec> {
        vec![
            MemorySpec::new("ram_a", SramConfig::single_port(1024, 8), 0),
            MemorySpec::new("ram_b", SramConfig::single_port(1024, 8), 0),
            MemorySpec::new("ram_c", SramConfig::two_port(512, 16), 1),
        ]
    }

    #[test]
    fn compile_produces_netlists_and_times() {
        let mut b = Brains::new();
        for m in small_inventory() {
            b.add_memory(m);
        }
        let d = b.compile().unwrap();
        assert_eq!(d.per_memory.len(), 3);
        assert_eq!(d.sequencer_count(), 2); // groups 0 and 1
                                            // Identical geometries broadcast: group 0 takes 10 * 1024 once.
        assert_eq!(d.sequencer_cycles[0], 10 * 1024);
        assert_eq!(d.sequencer_cycles[1], 10 * 512);
        assert_eq!(d.total_cycles_parallel, 10 * 1024);
        assert_eq!(d.total_cycles_serial, 10 * 1024 + 10 * 512);
        assert!(d.total_area_ge() > 0.0);
        // Netlists: 2 sequencers + 3 TPGs + controller.
        assert_eq!(d.netlists.len(), 6);
    }

    #[test]
    fn single_policy_uses_one_sequencer() {
        let mut b = Brains::new();
        for m in small_inventory() {
            b.add_memory(m);
        }
        b.policy(SequencerPolicy::Single);
        let d = b.compile().unwrap();
        assert_eq!(d.sequencer_count(), 1);
        // Two distinct geometries serialise on the one sequencer.
        assert_eq!(d.sequencer_cycles[0], 10 * 1024 + 10 * 512);
    }

    #[test]
    fn per_memory_policy_maximises_sequencers() {
        let mut b = Brains::new();
        for m in small_inventory() {
            b.add_memory(m);
        }
        b.policy(SequencerPolicy::PerMemory);
        let d = b.compile().unwrap();
        assert_eq!(d.sequencer_count(), 3);
        assert!(d.sequencer_area > 0.0);
    }

    #[test]
    fn algorithm_override_changes_cycles() {
        let mut b = Brains::new();
        b.add_memory(MemorySpec::new("ram_a", SramConfig::single_port(100, 8), 0));
        b.algorithm_for("ram_a", MarchAlgorithm::mats_plus());
        let d = b.compile().unwrap();
        assert_eq!(d.per_memory[0].cycles, 5 * 100);
        assert_eq!(d.per_memory[0].algorithm, "MATS+");
    }

    #[test]
    fn unknown_override_is_reported() {
        let mut b = Brains::new();
        b.algorithm_for("ghost", MarchAlgorithm::mats_plus());
        assert!(matches!(
            b.compile(),
            Err(BistError::Unknown { what: "memory", .. })
        ));
    }

    #[test]
    fn coverage_evaluation_is_full_for_march_c_minus() {
        let mut b = Brains::new();
        for m in small_inventory() {
            b.add_memory(m);
        }
        let reports = b
            .evaluate_coverage(&steac_sim::Exec::from_env(), 10, 99)
            .unwrap();
        assert_eq!(reports.len(), 2); // two distinct geometries
        for r in &reports {
            assert_eq!(r.coverage_percent(), 100.0, "{r}");
        }
    }

    #[test]
    fn display_lists_memories() {
        let mut b = Brains::new();
        for m in small_inventory() {
            b.add_memory(m);
        }
        let text = b.compile().unwrap().to_string();
        assert!(text.contains("ram_a"), "{text}");
        assert!(text.contains("March C-"), "{text}");
    }
}
