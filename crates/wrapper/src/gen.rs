//! Wrapper generation: builds a complete IEEE 1500-style wrapper module
//! around a core netlist according to a [`WrapperPlan`].
//!
//! The generated wrapper exposes:
//!
//! * the core's functional pins (transparent in normal mode),
//! * `wsi[k]` / `wso[k]` parallel test terminals, one pair per wrapper
//!   chain (the TAM connects here),
//! * mode/control lines `w_se`, `w_capture`, `w_update`, `w_intest`,
//!   `w_extest` and the wrapper clock `wck`.
//!
//! Mode lines are driven in parallel by STEAC's Test Controller (the DSC
//! chip reconfigures wrappers between test sessions); the serial
//! [`crate::wir`] is provided for 1500-compliant stand-alone operation.

use crate::cell::{wbr_cell_module, WBR_CELL_NAME};
use crate::chain::WrapperPlan;
use steac_netlist::{Design, Module, NetId, NetlistBuilder, NetlistError, PortDir};

/// Interface description the generator needs about a core.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WrapOptions {
    /// The core's clock input, driven from the wrapper clock `wck`
    /// (`None` for purely combinational cores).
    pub clock_port: Option<String>,
    /// Internal scan-chain scan-in ports; index = internal chain index
    /// referenced by [`WrapperPlan`].
    pub scan_si: Vec<String>,
    /// Internal scan-chain scan-out ports, same order as `scan_si`.
    pub scan_so: Vec<String>,
    /// The core's scan-enable input, driven from `w_se`.
    pub scan_se: Option<String>,
    /// Input ports wired straight through without a WBR cell (resets,
    /// test-mode pins).
    pub passthrough_inputs: Vec<String>,
    /// Output ports wired straight through without a WBR cell.
    pub passthrough_outputs: Vec<String>,
}

/// Result summary of a wrap operation.
#[derive(Debug, Clone, PartialEq)]
pub struct WrappedCore {
    /// Name of the generated wrapper module (`<core>_wrapped`).
    pub module_name: String,
    /// Number of wrapper chains (TAM width).
    pub width: usize,
    /// Total flops per wrapper chain (boundary + internal).
    pub chain_lengths: Vec<usize>,
    /// Number of WBR cells instantiated.
    pub boundary_cells: usize,
    /// Names of the wrapped functional input pins in chain order.
    pub wrapped_inputs: Vec<String>,
    /// Names of the wrapped functional output pins in chain order.
    pub wrapped_outputs: Vec<String>,
}

/// Generates `<core>_wrapped` in `design` following `plan`.
///
/// # Errors
///
/// Returns [`NetlistError::UnknownModule`] if the core is missing and
/// [`NetlistError::UnknownPort`] if `opts` references ports the core does
/// not have.
///
/// # Panics
///
/// Panics if `plan` is inconsistent with the core interface (boundary
/// cell counts must equal the number of wrapped pins; internal chain
/// indices must be in range) — these are programming errors in the
/// caller's plan computation, not data errors.
pub fn wrap_core(
    design: &mut Design,
    core: &str,
    plan: &WrapperPlan,
    opts: &WrapOptions,
) -> Result<WrappedCore, NetlistError> {
    let core_mod = design
        .module(core)
        .ok_or_else(|| NetlistError::UnknownModule {
            name: core.to_string(),
        })?;

    // Validate referenced ports exist.
    let check = |name: &str| -> Result<(), NetlistError> {
        if core_mod.port(name).is_none() {
            return Err(NetlistError::UnknownPort {
                module: core.to_string(),
                port: name.to_string(),
            });
        }
        Ok(())
    };
    if let Some(ck) = &opts.clock_port {
        check(ck)?;
    }
    if let Some(se) = &opts.scan_se {
        check(se)?;
    }
    for p in opts
        .scan_si
        .iter()
        .chain(&opts.scan_so)
        .chain(&opts.passthrough_inputs)
        .chain(&opts.passthrough_outputs)
    {
        check(p)?;
    }

    // Classify functional pins (in port order).
    let is_special_in = |n: &str| {
        opts.clock_port.as_deref() == Some(n)
            || opts.scan_se.as_deref() == Some(n)
            || opts.scan_si.iter().any(|s| s == n)
            || opts.passthrough_inputs.iter().any(|s| s == n)
    };
    let is_special_out = |n: &str| {
        opts.scan_so.iter().any(|s| s == n) || opts.passthrough_outputs.iter().any(|s| s == n)
    };
    let func_inputs: Vec<String> = core_mod
        .ports_with_dir(PortDir::Input)
        .map(|p| p.name.clone())
        .filter(|n| !is_special_in(n))
        .collect();
    let func_outputs: Vec<String> = core_mod
        .ports_with_dir(PortDir::Output)
        .map(|p| p.name.clone())
        .filter(|n| !is_special_out(n))
        .collect();

    let plan_ins: usize = plan.chains.iter().map(|c| c.in_cells).sum();
    let plan_outs: usize = plan.chains.iter().map(|c| c.out_cells).sum();
    assert_eq!(
        plan_ins,
        func_inputs.len(),
        "plan input cells ({plan_ins}) != functional inputs ({})",
        func_inputs.len()
    );
    assert_eq!(
        plan_outs,
        func_outputs.len(),
        "plan output cells ({plan_outs}) != functional outputs ({})",
        func_outputs.len()
    );
    for c in &plan.chains {
        for &idx in &c.internal_indices {
            assert!(
                idx < opts.scan_si.len() && idx < opts.scan_so.len(),
                "plan references internal chain {idx} but the core declares {}",
                opts.scan_si.len()
            );
        }
    }

    // Make sure the WBR cell module is available.
    if design.module(WBR_CELL_NAME).is_none() {
        design.add_module(wbr_cell_module()?)?;
    }

    let mut b = NetlistBuilder::new(format!("{core}_wrapped"));
    let wck = b.input("wck");
    let w_se = b.input("w_se");
    let w_capture = b.input("w_capture");
    let w_update = b.input("w_update");
    let w_intest = b.input("w_intest");
    let w_extest = b.input("w_extest");
    let tie0 = b.tie0();

    // Wrapper-side functional and passthrough ports.
    let mut core_conn: Vec<(String, NetId)> = Vec::new();
    if let Some(ck) = &opts.clock_port {
        core_conn.push((ck.clone(), wck));
    }
    if let Some(se) = &opts.scan_se {
        core_conn.push((se.clone(), w_se));
    }
    for p in &opts.passthrough_inputs {
        let n = b.input(p);
        core_conn.push((p.clone(), n));
    }
    for p in &opts.passthrough_outputs {
        let n = b.net(&format!("pt_{p}"));
        b.output(p, n);
        core_conn.push((p.clone(), n));
    }

    // Functional pins: one WBR per pin; record the cell nets for chaining.
    struct BoundaryCell {
        cti: NetId,
        cto: NetId,
    }
    let mut in_cells: Vec<BoundaryCell> = Vec::with_capacity(func_inputs.len());
    for name in &func_inputs {
        let pin = b.input(name);
        let core_side = b.net(&format!("to_core_{name}"));
        let cti = b.net(&format!("wbr_in_{name}_cti"));
        let cto = b.net(&format!("wbr_in_{name}_cto"));
        b.instance(
            &format!("wbr_in_{name}"),
            WBR_CELL_NAME,
            &[
                ("cfi", pin),
                ("cti", cti),
                ("safe", tie0),
                ("shift_en", w_se),
                ("capture_en", w_capture),
                ("update_en", w_update),
                ("safe_en", tie0),
                ("mode", w_intest),
                ("ck", wck),
                ("cfo", core_side),
                ("cto", cto),
            ],
        );
        core_conn.push((name.clone(), core_side));
        in_cells.push(BoundaryCell { cti, cto });
    }
    let mut out_cells: Vec<BoundaryCell> = Vec::with_capacity(func_outputs.len());
    for name in &func_outputs {
        let core_side = b.net(&format!("from_core_{name}"));
        let pin = b.net(&format!("pin_{name}"));
        b.output(name, pin);
        let cti = b.net(&format!("wbr_out_{name}_cti"));
        let cto = b.net(&format!("wbr_out_{name}_cto"));
        b.instance(
            &format!("wbr_out_{name}"),
            WBR_CELL_NAME,
            &[
                ("cfi", core_side),
                ("cti", cti),
                ("safe", tie0),
                ("shift_en", w_se),
                ("capture_en", w_capture),
                ("update_en", w_update),
                ("safe_en", tie0),
                ("mode", w_extest),
                ("ck", wck),
                ("cfo", pin),
                ("cto", cto),
            ],
        );
        core_conn.push((name.clone(), core_side));
        out_cells.push(BoundaryCell { cti, cto });
    }

    // Thread the wrapper chains.
    let mut next_in = 0usize;
    let mut next_out = 0usize;
    let mut chain_lengths = Vec::with_capacity(plan.width);
    for (k, cp) in plan.chains.iter().enumerate() {
        let wsi = b.input(&format!("wsi[{k}]"));
        let mut cursor = wsi;
        for cell in &in_cells[next_in..next_in + cp.in_cells] {
            // cursor drives this cell's cti.
            b.gate_into(steac_netlist::GateKind::Buf, &[cursor], cell.cti);
            cursor = cell.cto;
        }
        next_in += cp.in_cells;
        for &idx in &cp.internal_indices {
            core_conn.push((opts.scan_si[idx].clone(), cursor));
            let so_net = b.net(&format!("chain{k}_so_{idx}"));
            core_conn.push((opts.scan_so[idx].clone(), so_net));
            cursor = so_net;
        }
        for cell in &out_cells[next_out..next_out + cp.out_cells] {
            b.gate_into(steac_netlist::GateKind::Buf, &[cursor], cell.cti);
            cursor = cell.cto;
        }
        next_out += cp.out_cells;
        b.output(&format!("wso[{k}]"), cursor);
        chain_lengths.push(cp.total_len());
    }

    b.instance(
        &format!("u_{core}"),
        core,
        &core_conn
            .iter()
            .map(|(p, n)| (p.as_str(), *n))
            .collect::<Vec<_>>(),
    );

    let module: Module = b.finish()?;
    let module_name = module.name.clone();
    design.add_module(module)?;
    Ok(WrappedCore {
        module_name,
        width: plan.width,
        chain_lengths,
        boundary_cells: func_inputs.len() + func_outputs.len(),
        wrapped_inputs: func_inputs,
        wrapped_outputs: func_outputs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::balance_fixed;
    use steac_netlist::{stitch_scan, GateKind, NetlistBuilder, StitchConfig};
    use steac_sim::{scan, Logic, ScanPorts, Simulator};

    fn and_core() -> Module {
        let mut b = NetlistBuilder::new("and_core");
        let a = b.input("a");
        let c = b.input("b");
        let y = b.gate(GateKind::And2, &[a, c]);
        b.output("y", y);
        b.finish().unwrap()
    }

    #[test]
    fn wrap_combinational_core_and_run_intest() {
        let mut design = Design::new();
        design.add_module(and_core()).unwrap();
        let plan = balance_fixed(&[], 2, 1, 1);
        let wrapped = wrap_core(&mut design, "and_core", &plan, &WrapOptions::default())
            .expect("wrap succeeds");
        assert_eq!(wrapped.boundary_cells, 3);
        assert_eq!(wrapped.chain_lengths, vec![3]);

        let flat = design.flatten(&wrapped.module_name).unwrap();
        let mut sim: Simulator = Simulator::new(&flat).unwrap();
        for p in [
            "w_se",
            "w_capture",
            "w_update",
            "w_intest",
            "w_extest",
            "wck",
            "a",
            "b",
        ] {
            sim.set_by_name(p, Logic::Zero).unwrap();
        }
        sim.settle().unwrap();

        let ports = ScanPorts {
            si: vec!["wsi[0]".to_string()],
            so: vec!["wso[0]".to_string()],
            se: "w_se".to_string(),
            clock: "wck".to_string(),
        };
        // Chain order: in_a -> in_b -> out_y. Bit k of the stimulus maps
        // to flop L-1-k, so bits are [out_y, b, a] = [X, 1, 1].
        use Logic::{One, Zero, X};
        scan::shift(&mut sim, &ports, &[vec![X, One, One]]).unwrap();
        // Update the latches and enter INTEST.
        sim.set_by_name("w_intest", One).unwrap();
        sim.set_by_name("w_update", One).unwrap();
        sim.settle().unwrap();
        sim.set_by_name("w_update", Zero).unwrap();
        sim.settle().unwrap();
        // Capture the core response into the output cell.
        sim.set_by_name("w_capture", One).unwrap();
        sim.clock_cycle_by_name("wck").unwrap();
        sim.set_by_name("w_capture", Zero).unwrap();
        // Unload: response bit 0 corresponds to the deepest flop (out_y).
        let out = scan::shift(&mut sim, &ports, &[vec![Zero, Zero, Zero]]).unwrap();
        assert_eq!(out[0][0], One, "AND(1,1) must capture 1, got {:?}", out[0]);

        // Second pattern: a=1, b=0 -> 0.
        scan::shift(&mut sim, &ports, &[vec![X, Zero, One]]).unwrap();
        sim.set_by_name("w_update", One).unwrap();
        sim.settle().unwrap();
        sim.set_by_name("w_update", Zero).unwrap();
        sim.set_by_name("w_capture", One).unwrap();
        sim.clock_cycle_by_name("wck").unwrap();
        sim.set_by_name("w_capture", Zero).unwrap();
        let out = scan::shift(&mut sim, &ports, &[vec![Zero, Zero, Zero]]).unwrap();
        assert_eq!(out[0][0], Zero);
    }

    #[test]
    fn normal_mode_is_transparent() {
        let mut design = Design::new();
        design.add_module(and_core()).unwrap();
        let plan = balance_fixed(&[], 2, 1, 1);
        let wrapped = wrap_core(&mut design, "and_core", &plan, &WrapOptions::default()).unwrap();
        let flat = design.flatten(&wrapped.module_name).unwrap();
        let mut sim: Simulator = Simulator::new(&flat).unwrap();
        for p in [
            "w_se",
            "w_capture",
            "w_update",
            "w_intest",
            "w_extest",
            "wck",
        ] {
            sim.set_by_name(p, Logic::Zero).unwrap();
        }
        sim.set_by_name("a", Logic::One).unwrap();
        sim.set_by_name("b", Logic::One).unwrap();
        sim.settle().unwrap();
        assert_eq!(sim.get_by_name("y").unwrap(), Logic::One);
        sim.set_by_name("b", Logic::Zero).unwrap();
        sim.settle().unwrap();
        assert_eq!(sim.get_by_name("y").unwrap(), Logic::Zero);
    }

    #[test]
    fn wrap_sequential_core_threads_internal_chain() {
        // A 3-flop core with one scan chain.
        let mut b = NetlistBuilder::new("seq_core");
        let ck = b.input("ck");
        let d = b.input("d");
        let mut cur = d;
        for _ in 0..3 {
            cur = b.gate(GateKind::Dff, &[cur, ck]);
        }
        b.output("q", cur);
        let mut m = b.finish().unwrap();
        stitch_scan(&mut m, &StitchConfig::balanced(1)).unwrap();

        let mut design = Design::new();
        design.add_module(m).unwrap();
        let plan = balance_fixed(&[3], 1, 1, 1);
        let opts = WrapOptions {
            clock_port: Some("ck".to_string()),
            scan_si: vec!["scan_si[0]".to_string()],
            scan_so: vec!["scan_so[0]".to_string()],
            scan_se: Some("scan_se".to_string()),
            ..WrapOptions::default()
        };
        let wrapped = wrap_core(&mut design, "seq_core", &plan, &opts).unwrap();
        // 1 in + 3 internal + 1 out = 5 flops on the chain.
        assert_eq!(wrapped.chain_lengths, vec![5]);

        let flat = design.flatten(&wrapped.module_name).unwrap();
        // Boundary (2 WBR flops) + internal 3 = 5 flops total... plus
        // none others.
        assert_eq!(flat.flop_count(), 5);

        // FIFO check through the whole 5-flop path.
        let mut sim: Simulator = Simulator::new(&flat).unwrap();
        for p in [
            "w_se",
            "w_capture",
            "w_update",
            "w_intest",
            "w_extest",
            "wck",
            "d",
        ] {
            sim.set_by_name(p, Logic::Zero).unwrap();
        }
        sim.settle().unwrap();
        let ports = ScanPorts {
            si: vec!["wsi[0]".to_string()],
            so: vec!["wso[0]".to_string()],
            se: "w_se".to_string(),
            clock: "wck".to_string(),
        };
        use Logic::{One, Zero};
        let pattern = vec![One, Zero, One, One, Zero];
        scan::shift(&mut sim, &ports, std::slice::from_ref(&pattern)).unwrap();
        let out = scan::shift(&mut sim, &ports, &[vec![Zero; 5]]).unwrap();
        assert_eq!(out[0], pattern, "scan path must behave as a FIFO");
    }

    #[test]
    fn extest_drives_chip_pins_from_boundary_cells() {
        // In EXTEST the output cells drive the chip-side pins from their
        // update latches (interconnect test).
        let mut design = Design::new();
        design.add_module(and_core()).unwrap();
        let plan = balance_fixed(&[], 2, 1, 1);
        let wrapped = wrap_core(&mut design, "and_core", &plan, &WrapOptions::default()).unwrap();
        let flat = design.flatten(&wrapped.module_name).unwrap();
        let mut sim: Simulator = Simulator::new(&flat).unwrap();
        for p in [
            "w_se",
            "w_capture",
            "w_update",
            "w_intest",
            "w_extest",
            "wck",
            "a",
            "b",
        ] {
            sim.set_by_name(p, Logic::Zero).unwrap();
        }
        sim.settle().unwrap();
        let ports = ScanPorts {
            si: vec!["wsi[0]".to_string()],
            so: vec!["wso[0]".to_string()],
            se: "w_se".to_string(),
            clock: "wck".to_string(),
        };
        use Logic::{One, Zero, X};
        // Chain order in_a -> in_b -> out_y; bit k maps to flop 2-k, so
        // [out_y, b, a] = [1, X, X]: load a 1 into the output cell.
        scan::shift(&mut sim, &ports, &[vec![One, X, X]]).unwrap();
        sim.set_by_name("w_update", One).unwrap();
        sim.settle().unwrap();
        sim.set_by_name("w_update", Zero).unwrap();
        sim.set_by_name("w_extest", One).unwrap();
        sim.settle().unwrap();
        // The chip pin y now shows the latched 1, regardless of the core
        // (a AND b = 0).
        assert_eq!(sim.get_by_name("y").unwrap(), One);
        sim.set_by_name("w_extest", Zero).unwrap();
        sim.settle().unwrap();
        assert_eq!(sim.get_by_name("y").unwrap(), Zero, "transparent again");
    }

    #[test]
    fn unknown_scan_port_is_reported() {
        let mut design = Design::new();
        design.add_module(and_core()).unwrap();
        let plan = balance_fixed(&[1], 2, 1, 1);
        let opts = WrapOptions {
            scan_si: vec!["ghost_si".to_string()],
            scan_so: vec!["ghost_so".to_string()],
            ..WrapOptions::default()
        };
        assert!(matches!(
            wrap_core(&mut design, "and_core", &plan, &opts),
            Err(NetlistError::UnknownPort { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "plan input cells")]
    fn inconsistent_plan_panics() {
        let mut design = Design::new();
        design.add_module(and_core()).unwrap();
        let plan = balance_fixed(&[], 5, 1, 1); // 5 != 2 inputs
        let _ = wrap_core(&mut design, "and_core", &plan, &WrapOptions::default());
    }
}
