//! Wrapper Bypass register (WBY): the single-flop serial path used when a
//! core is not selected, so the chip-level serial chain stays short.

use steac_netlist::{GateKind, Module, NetlistBuilder, NetlistError};

/// Generates the WBY module: `wsi -> DFF -> wby_so`, clocked by `wck`.
///
/// # Errors
///
/// Propagates netlist construction errors (none expected).
pub fn wby_module() -> Result<Module, NetlistError> {
    let mut b = NetlistBuilder::new("steac_wby");
    let wsi = b.input("wsi");
    let wck = b.input("wck");
    let q = b.gate(GateKind::Dff, &[wsi, wck]);
    b.output("wby_so", q);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use steac_netlist::AreaReport;
    use steac_sim::{Logic, Simulator};

    #[test]
    fn wby_is_one_flop() {
        let m = wby_module().unwrap();
        assert_eq!(m.flop_count(), 1);
        assert_eq!(AreaReport::for_module(&m).total_ge(), 6.0);
    }

    #[test]
    fn wby_delays_by_one_cycle() {
        let m = wby_module().unwrap();
        let mut sim: Simulator = Simulator::new(&m).unwrap();
        sim.set_by_name("wck", Logic::Zero).unwrap();
        sim.set_by_name("wsi", Logic::One).unwrap();
        sim.settle().unwrap();
        sim.clock_cycle_by_name("wck").unwrap();
        assert_eq!(sim.get_by_name("wby_so").unwrap(), Logic::One);
        sim.set_by_name("wsi", Logic::Zero).unwrap();
        sim.clock_cycle_by_name("wck").unwrap();
        assert_eq!(sim.get_by_name("wby_so").unwrap(), Logic::Zero);
    }
}
