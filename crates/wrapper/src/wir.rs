//! Wrapper Instruction Register (WIR) with one-hot instruction decode.
//!
//! The WIR is a 3-bit shift register with shadow update latches and a
//! decoder producing one mode line per instruction. STEAC's Test
//! Controller normally drives wrapper mode lines in parallel (the DSC
//! controller reconfigures wrappers between sessions), but the serial WIR
//! is generated and verified here for IEEE 1500 compliance of the wrapper
//! set.

use steac_netlist::{GateKind, Module, NetId, NetlistBuilder, NetlistError};

/// Instruction register width in bits.
pub const WIR_WIDTH: usize = 3;

/// WIR instruction encodings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WirInstruction {
    /// Functional mode (all test logic transparent). Encoding `000`.
    WsNormal,
    /// Bypass the wrapper serially. Encoding `001`.
    WsBypass,
    /// Internal scan test. Encoding `010`.
    WsIntestScan,
    /// External interconnect test. Encoding `011`.
    WsExtest,
    /// Safe state (boundary outputs forced to safe values). Encoding
    /// `100`.
    WsSafe,
}

impl WirInstruction {
    /// The binary encoding, LSB first.
    #[must_use]
    pub fn encoding(self) -> [bool; WIR_WIDTH] {
        match self {
            WirInstruction::WsNormal => [false, false, false],
            WirInstruction::WsBypass => [true, false, false],
            WirInstruction::WsIntestScan => [false, true, false],
            WirInstruction::WsExtest => [true, true, false],
            WirInstruction::WsSafe => [false, false, true],
        }
    }

    /// All defined instructions.
    #[must_use]
    pub fn all() -> &'static [WirInstruction] {
        &[
            WirInstruction::WsNormal,
            WirInstruction::WsBypass,
            WirInstruction::WsIntestScan,
            WirInstruction::WsExtest,
            WirInstruction::WsSafe,
        ]
    }

    /// Name of the decoded mode output port.
    #[must_use]
    pub fn mode_port(self) -> &'static str {
        match self {
            WirInstruction::WsNormal => "mode_normal",
            WirInstruction::WsBypass => "mode_bypass",
            WirInstruction::WsIntestScan => "mode_intest",
            WirInstruction::WsExtest => "mode_extest",
            WirInstruction::WsSafe => "mode_safe",
        }
    }
}

/// Generates the WIR module.
///
/// Ports: `wir_si`, `wir_shift`, `wir_update`, `wck` inputs; `wir_so` and
/// one decoded `mode_*` output per instruction.
///
/// # Errors
///
/// Propagates netlist construction errors (none expected).
pub fn wir_module() -> Result<Module, NetlistError> {
    let mut b = NetlistBuilder::new("steac_wir");
    let si = b.input("wir_si");
    let shift = b.input("wir_shift");
    let update = b.input("wir_update");
    let wck = b.input("wck");

    // Shift register with hold (mux selects si-path only while shifting).
    let mut stage_q: Vec<NetId> = Vec::with_capacity(WIR_WIDTH);
    let mut prev = si;
    for i in 0..WIR_WIDTH {
        let q = b.net(&format!("wir_q{i}"));
        let d = b.gate(GateKind::Mux2, &[q, prev, shift]);
        b.gate_into(GateKind::Dff, &[d, wck], q);
        stage_q.push(q);
        prev = q;
    }
    b.output("wir_so", prev);

    // Shadow/update latches.
    let held: Vec<NetId> = stage_q
        .iter()
        .map(|&q| b.gate(GateKind::Latch, &[q, update]))
        .collect();

    // One-hot decode.
    let inv: Vec<NetId> = held.iter().map(|&h| b.gate(GateKind::Inv, &[h])).collect();
    for &inst in WirInstruction::all() {
        let enc = inst.encoding();
        let lits: Vec<NetId> = (0..WIR_WIDTH)
            .map(|i| if enc[i] { held[i] } else { inv[i] })
            .collect();
        let mode = b.and_tree(&lits);
        b.output(inst.mode_port(), mode);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use steac_netlist::AreaReport;
    use steac_sim::{Logic, Simulator};

    #[test]
    fn encodings_are_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for &i in WirInstruction::all() {
            assert!(seen.insert(i.encoding().to_vec()), "duplicate encoding");
        }
    }

    #[test]
    fn wir_module_builds_and_is_small() {
        let m = wir_module().unwrap();
        let area = AreaReport::for_module(&m).total_ge();
        // The WIR is a minor contributor (tens of GE).
        assert!(area > 20.0 && area < 80.0, "unexpected WIR area {area}");
    }

    /// Shift each instruction in, update, and check the one-hot decode.
    #[test]
    fn decode_is_one_hot_for_every_instruction() {
        let m = wir_module().unwrap();
        for &inst in WirInstruction::all() {
            let mut sim: Simulator = Simulator::new(&m).unwrap();
            for p in ["wir_si", "wir_shift", "wir_update", "wck"] {
                sim.set_by_name(p, Logic::Zero).unwrap();
            }
            sim.settle().unwrap();
            // Shift LSB-first encoding: the bit for stage 0 must be
            // shifted in LAST (it travels the shortest distance).
            let enc = inst.encoding();
            sim.set_by_name("wir_shift", Logic::One).unwrap();
            for i in (0..WIR_WIDTH).rev() {
                sim.set_by_name("wir_si", Logic::from(enc[i])).unwrap();
                sim.clock_cycle_by_name("wck").unwrap();
            }
            sim.set_by_name("wir_shift", Logic::Zero).unwrap();
            sim.set_by_name("wir_update", Logic::One).unwrap();
            sim.settle().unwrap();
            sim.set_by_name("wir_update", Logic::Zero).unwrap();
            sim.settle().unwrap();
            for &other in WirInstruction::all() {
                let v = sim.get_by_name(other.mode_port()).unwrap();
                let expect = Logic::from(other == inst);
                assert_eq!(v, expect, "{inst:?}: {} wrong", other.mode_port());
            }
        }
    }

    #[test]
    fn hold_without_shift() {
        let m = wir_module().unwrap();
        let mut sim: Simulator = Simulator::new(&m).unwrap();
        for p in ["wir_si", "wir_shift", "wir_update", "wck"] {
            sim.set_by_name(p, Logic::Zero).unwrap();
        }
        sim.settle().unwrap();
        // Load WS_BYPASS = 001 (LSB first -> shift 0,0,1).
        sim.set_by_name("wir_shift", Logic::One).unwrap();
        for bit in [false, false, true] {
            sim.set_by_name("wir_si", Logic::from(bit)).unwrap();
            sim.clock_cycle_by_name("wck").unwrap();
        }
        sim.set_by_name("wir_shift", Logic::Zero).unwrap();
        // Clocking without shift must not disturb the register.
        sim.clock_cycle_by_name("wck").unwrap();
        sim.set_by_name("wir_update", Logic::One).unwrap();
        sim.settle().unwrap();
        sim.set_by_name("wir_update", Logic::Zero).unwrap();
        sim.settle().unwrap();
        assert_eq!(
            sim.get_by_name("mode_bypass").unwrap(),
            Logic::One,
            "bypass instruction lost"
        );
    }
}
