//! The Wrapper Boundary Register (WBR) cell.
//!
//! The paper reports the WBR cell area as "equivalent to 26 two-input NAND
//! gates"; the cell generated here is an actual netlist whose GE total is
//! exactly 26.0 under the workspace GE table.
//!
//! # Cell structure
//!
//! ```text
//!            +--------------------------- cfi (functional in)
//!            |
//!   cti -->[mux1 shift_en]-->[mux2 hold]--> D [DFF] q --> cto
//!            cfi               q(hold)         ck
//!                                      q -->[LATCH update_en] u
//!   cfo <--[mux4 mode]<--[mux3 safe_en]<-- u
//!            cfi              safe
//! ```
//!
//! * `mux1` selects the shift path (`cti`, the previous cell / TAM bit)
//!   when `shift_en = 1`, the capture source (`cfi`) otherwise.
//! * `mux2` holds the flop value when neither shifting nor capturing
//!   (`hold = NOT (shift_en OR capture_en)` realized as an OR + mux).
//! * The update latch `u` isolates the shift register from the functional
//!   path while new data shifts through.
//! * `mux3` substitutes the safe value when `safe_en = 1`.
//! * `mux4` steers the functional output: transparent (`cfi`) in normal
//!   mode, latched test value when `mode = 1`.
//!
//! GE budget: 3.5·4 (muxes) + 1.5 (OR2) + 6.0 (DFF) + 3.5 (latch) +
//! 1.0 (output buffer) = **26.0 GE** — matching the paper's figure.

use steac_netlist::{AreaReport, GateKind, Module, NetlistBuilder, NetlistError};

/// Canonical module name of the generated WBR cell.
pub const WBR_CELL_NAME: &str = "steac_wbr_cell";

/// Generates the WBR cell as a reusable module.
///
/// Ports:
///
/// | Port | Dir | Role |
/// |------|-----|------|
/// | `cfi` | in | functional data in |
/// | `cti` | in | test/shift data in (previous cell or TAM wire) |
/// | `safe` | in | safe value substituted when `safe_en = 1` |
/// | `shift_en` | in | shift-enable |
/// | `capture_en` | in | capture-enable |
/// | `update_en` | in | update-latch enable |
/// | `safe_en` | in | safe-value select |
/// | `mode` | in | 1 = test value drives `cfo`, 0 = transparent |
/// | `ck` | in | wrapper clock |
/// | `cfo` | out | functional data out |
/// | `cto` | out | test/shift data out (next cell or TAM wire) |
///
/// # Errors
///
/// Propagates netlist construction errors (none are expected; the cell is
/// statically correct).
pub fn wbr_cell_module() -> Result<Module, NetlistError> {
    let mut b = NetlistBuilder::new(WBR_CELL_NAME);
    let cfi = b.input("cfi");
    let cti = b.input("cti");
    let safe = b.input("safe");
    let shift_en = b.input("shift_en");
    let capture_en = b.input("capture_en");
    let update_en = b.input("update_en");
    let safe_en = b.input("safe_en");
    let mode = b.input("mode");
    let ck = b.input("ck");

    // Shift/capture path.
    let m1 = b.gate(GateKind::Mux2, &[cfi, cti, shift_en]);
    let active = b.gate(GateKind::Or2, &[shift_en, capture_en]);
    let q = b.net("q");
    let m2 = b.gate(GateKind::Mux2, &[q, m1, active]);
    b.gate_into(GateKind::Dff, &[m2, ck], q);

    // Update latch and functional output path.
    let u = b.gate(GateKind::Latch, &[q, update_en]);
    let m3 = b.gate(GateKind::Mux2, &[u, safe, safe_en]);
    let cfo = b.gate(GateKind::Mux2, &[cfi, m3, mode]);
    b.output("cfo", cfo);

    // Test output with a buffer (isolates the flop from TAM loading).
    let cto = b.gate(GateKind::Buf, &[q]);
    b.output("cto", cto);

    b.finish()
}

/// The WBR cell area in gate equivalents (computed from the netlist, not
/// hard-coded).
///
/// # Panics
///
/// Never panics in practice; the cell netlist is statically valid.
#[must_use]
pub fn wbr_cell_area_ge() -> f64 {
    let m = wbr_cell_module().expect("WBR cell is statically valid");
    AreaReport::for_module(&m).total_ge()
}

#[cfg(test)]
mod tests {
    use super::*;
    use steac_sim::{Logic, Simulator};

    #[test]
    fn wbr_cell_is_26_ge_as_in_the_paper() {
        let area = wbr_cell_area_ge();
        assert!(
            (area - 26.0).abs() < f64::EPSILON,
            "paper reports 26 NAND2-equivalents, got {area}"
        );
    }

    #[test]
    fn wbr_cell_validates_and_has_11_ports() {
        let m = wbr_cell_module().unwrap();
        assert_eq!(m.ports.len(), 11);
        assert_eq!(m.flop_count(), 1);
    }

    fn cell_sim_setup(sim: &mut Simulator) {
        for pin in [
            "cfi",
            "cti",
            "safe",
            "shift_en",
            "capture_en",
            "update_en",
            "safe_en",
            "mode",
        ] {
            sim.set_by_name(pin, Logic::Zero).unwrap();
        }
        sim.set_by_name("ck", Logic::Zero).unwrap();
        sim.settle().unwrap();
    }

    #[test]
    fn transparent_in_normal_mode() {
        let m = wbr_cell_module().unwrap();
        let mut sim: Simulator = Simulator::new(&m).unwrap();
        cell_sim_setup(&mut sim);
        sim.set_by_name("cfi", Logic::One).unwrap();
        sim.settle().unwrap();
        assert_eq!(sim.get_by_name("cfo").unwrap(), Logic::One);
        sim.set_by_name("cfi", Logic::Zero).unwrap();
        sim.settle().unwrap();
        assert_eq!(sim.get_by_name("cfo").unwrap(), Logic::Zero);
    }

    #[test]
    fn shift_capture_update_sequence() {
        let m = wbr_cell_module().unwrap();
        let mut sim: Simulator = Simulator::new(&m).unwrap();
        cell_sim_setup(&mut sim);

        // Shift a 1 in: appears on cto after the clock.
        sim.set_by_name("shift_en", Logic::One).unwrap();
        sim.set_by_name("cti", Logic::One).unwrap();
        sim.clock_cycle_by_name("ck").unwrap();
        assert_eq!(sim.get_by_name("cto").unwrap(), Logic::One);

        // Update into the latch, select test mode: cfo shows the value.
        sim.set_by_name("shift_en", Logic::Zero).unwrap();
        sim.set_by_name("update_en", Logic::One).unwrap();
        sim.settle().unwrap();
        sim.set_by_name("update_en", Logic::Zero).unwrap();
        sim.set_by_name("mode", Logic::One).unwrap();
        sim.settle().unwrap();
        assert_eq!(sim.get_by_name("cfo").unwrap(), Logic::One);

        // Capture the functional input (0) back into the flop.
        sim.set_by_name("capture_en", Logic::One).unwrap();
        sim.set_by_name("cfi", Logic::Zero).unwrap();
        sim.clock_cycle_by_name("ck").unwrap();
        assert_eq!(sim.get_by_name("cto").unwrap(), Logic::Zero);
        // The latch (and hence cfo in test mode) still holds the old 1.
        assert_eq!(sim.get_by_name("cfo").unwrap(), Logic::One);
    }

    #[test]
    fn hold_when_idle() {
        let m = wbr_cell_module().unwrap();
        let mut sim: Simulator = Simulator::new(&m).unwrap();
        cell_sim_setup(&mut sim);
        sim.set_by_name("shift_en", Logic::One).unwrap();
        sim.set_by_name("cti", Logic::One).unwrap();
        sim.clock_cycle_by_name("ck").unwrap();
        sim.set_by_name("shift_en", Logic::Zero).unwrap();
        // Clock with neither shift nor capture: value must hold.
        sim.set_by_name("cfi", Logic::Zero).unwrap();
        sim.clock_cycle_by_name("ck").unwrap();
        assert_eq!(sim.get_by_name("cto").unwrap(), Logic::One);
    }

    #[test]
    fn safe_value_substitution() {
        let m = wbr_cell_module().unwrap();
        let mut sim: Simulator = Simulator::new(&m).unwrap();
        cell_sim_setup(&mut sim);
        sim.set_by_name("mode", Logic::One).unwrap();
        sim.set_by_name("safe_en", Logic::One).unwrap();
        sim.set_by_name("safe", Logic::One).unwrap();
        sim.settle().unwrap();
        assert_eq!(sim.get_by_name("cfo").unwrap(), Logic::One);
    }
}
