//! Wrapper scan-chain construction and balancing.
//!
//! A wrapper chain concatenates input WBR cells, internal scan chains and
//! output WBR cells into one shift path per TAM wire. Test time depends on
//! the longest scan-in and scan-out paths, so STEAC balances the partition
//! per assigned TAM width. Two regimes match the paper:
//!
//! * **hard cores** ([`balance_fixed`]): internal chains are immutable;
//!   they are packed onto TAM wires with the LPT (longest processing time
//!   first) heuristic, then boundary cells are distributed greedily;
//! * **soft cores** ([`balance_soft`]): "If the IP is a soft core, the
//!   scan chains can be reconfigured. The Core Test Scheduler will then
//!   rebalance scan chains for each assigned TAM width" — all scan cells
//!   are redistributed evenly.

use std::fmt;

/// One wrapper chain: what shifts through a single TAM wire.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WrapperChainPlan {
    /// Number of input WBR cells on this chain.
    pub in_cells: usize,
    /// Number of output WBR cells on this chain.
    pub out_cells: usize,
    /// Internal scan chain lengths threaded on this chain, in shift order.
    pub internal_lengths: Vec<usize>,
    /// Indices of the source internal chains (into the core's chain list)
    /// in the same order as [`internal_lengths`](Self::internal_lengths).
    /// For soft cores these index the rebalanced chains.
    pub internal_indices: Vec<usize>,
}

impl WrapperChainPlan {
    /// Scan cells from internal chains on this wrapper chain.
    #[must_use]
    pub fn internal_cells(&self) -> usize {
        self.internal_lengths.iter().sum()
    }

    /// Scan-in length: cells that must be loaded to apply a stimulus
    /// (input cells + internal cells).
    #[must_use]
    pub fn scan_in_len(&self) -> usize {
        self.in_cells + self.internal_cells()
    }

    /// Scan-out length: cells that must be unloaded to observe a response
    /// (internal cells + output cells).
    #[must_use]
    pub fn scan_out_len(&self) -> usize {
        self.internal_cells() + self.out_cells
    }

    /// Total flops on the chain.
    #[must_use]
    pub fn total_len(&self) -> usize {
        self.in_cells + self.internal_cells() + self.out_cells
    }
}

/// A complete wrapper-chain configuration for one TAM width.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WrapperPlan {
    /// Number of wrapper chains (assigned TAM width).
    pub width: usize,
    /// Per-chain plans; `chains.len() == width` (chains may be empty).
    pub chains: Vec<WrapperChainPlan>,
}

impl WrapperPlan {
    /// Longest scan-in path over all chains.
    #[must_use]
    pub fn si_max(&self) -> usize {
        self.chains
            .iter()
            .map(WrapperChainPlan::scan_in_len)
            .max()
            .unwrap_or(0)
    }

    /// Longest scan-out path over all chains.
    #[must_use]
    pub fn so_max(&self) -> usize {
        self.chains
            .iter()
            .map(WrapperChainPlan::scan_out_len)
            .max()
            .unwrap_or(0)
    }

    /// Total internal scan cells across chains.
    #[must_use]
    pub fn total_internal_cells(&self) -> usize {
        self.chains
            .iter()
            .map(WrapperChainPlan::internal_cells)
            .sum()
    }

    /// Total boundary cells across chains.
    #[must_use]
    pub fn total_boundary_cells(&self) -> usize {
        self.chains.iter().map(|c| c.in_cells + c.out_cells).sum()
    }

    /// Scan test application time in tester cycles for `patterns` test
    /// patterns: the classic wrapper/TAM model
    /// `T = (1 + max(si, so)) · p + min(si, so)`.
    #[must_use]
    pub fn test_time(&self, patterns: u64) -> u64 {
        if patterns == 0 {
            return 0;
        }
        let si = self.si_max() as u64;
        let so = self.so_max() as u64;
        si.max(so)
            .saturating_add(1)
            .saturating_mul(patterns)
            .saturating_add(si.min(so))
    }
}

impl fmt::Display for WrapperPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "wrapper plan: width {} (si_max {}, so_max {})",
            self.width,
            self.si_max(),
            self.so_max()
        )?;
        for (i, c) in self.chains.iter().enumerate() {
            writeln!(
                f,
                "  chain {i}: {} in + {:?} internal + {} out (si {}, so {})",
                c.in_cells,
                c.internal_lengths,
                c.out_cells,
                c.scan_in_len(),
                c.scan_out_len()
            )?;
        }
        Ok(())
    }
}

/// Balances a **hard core**: internal chains are packed with LPT onto
/// `width` wrapper chains, then input and output cells are distributed to
/// minimise the maxima of scan-in/scan-out lengths.
///
/// # Panics
///
/// Panics if `width == 0`; a core assigned zero TAM wires cannot be
/// wrapped (the scheduler never requests it).
#[must_use]
pub fn balance_fixed(
    internal_chains: &[usize],
    inputs: usize,
    outputs: usize,
    width: usize,
) -> WrapperPlan {
    assert!(width > 0, "wrapper needs at least one TAM wire");
    let mut chains = vec![WrapperChainPlan::default(); width];

    // LPT: longest internal chain first, onto the currently shortest
    // wrapper chain.
    let mut sorted: Vec<(usize, usize)> = internal_chains.iter().copied().enumerate().collect();
    sorted.sort_unstable_by_key(|&(_, len)| std::cmp::Reverse(len));
    for (idx, len) in sorted {
        let tgt = (0..width)
            .min_by_key(|&i| chains[i].internal_cells())
            .expect("width > 0");
        chains[tgt].internal_lengths.push(len);
        chains[tgt].internal_indices.push(idx);
    }

    // Distribute input cells one by one to the chain with the smallest
    // scan-in length (greedy optimal for unit items).
    for _ in 0..inputs {
        let tgt = (0..width)
            .min_by_key(|&i| chains[i].scan_in_len())
            .expect("width > 0");
        chains[tgt].in_cells += 1;
    }
    // Likewise output cells against scan-out length.
    for _ in 0..outputs {
        let tgt = (0..width)
            .min_by_key(|&i| chains[i].scan_out_len())
            .expect("width > 0");
        chains[tgt].out_cells += 1;
    }

    WrapperPlan { width, chains }
}

/// Balances a **soft core**: the `total_cells` scan cells are freely
/// redistributed into `width` chains of near-equal length before boundary
/// cells are added (the paper's rebalancing feedback to the SOC
/// integrator).
///
/// # Panics
///
/// Panics if `width == 0`.
#[must_use]
pub fn balance_soft(
    total_cells: usize,
    inputs: usize,
    outputs: usize,
    width: usize,
) -> WrapperPlan {
    assert!(width > 0, "wrapper needs at least one TAM wire");
    let base = total_cells / width;
    let extra = total_cells % width;
    let internal: Vec<usize> = (0..width).map(|i| base + usize::from(i < extra)).collect();
    balance_fixed(&internal, inputs, outputs, width)
}

/// Sweeps widths `1..=max_width` and returns `(width, test_time)` pairs —
/// the staircase curve used by the scheduler to pick TAM assignments.
#[must_use]
pub fn width_sweep(
    internal_chains: &[usize],
    inputs: usize,
    outputs: usize,
    patterns: u64,
    soft: bool,
    max_width: usize,
) -> Vec<(usize, u64)> {
    let total: usize = internal_chains.iter().sum();
    (1..=max_width.max(1))
        .map(|w| {
            let plan = if soft {
                balance_soft(total, inputs, outputs, w)
            } else {
                balance_fixed(internal_chains, inputs, outputs, w)
            };
            (w, plan.test_time(patterns))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 1 USB core data.
    const USB_CHAINS: [usize; 4] = [1629, 78, 293, 45];

    #[test]
    fn everything_is_placed_exactly_once() {
        let plan = balance_fixed(&USB_CHAINS, 221, 104, 3);
        assert_eq!(plan.total_internal_cells(), 2045);
        assert_eq!(plan.total_boundary_cells(), 221 + 104);
        assert_eq!(plan.chains.len(), 3);
    }

    #[test]
    fn lpt_bound_holds() {
        // max chain load <= total/width + longest item (classic LPT bound).
        let plan = balance_fixed(&USB_CHAINS, 0, 0, 4);
        let max_load = plan
            .chains
            .iter()
            .map(WrapperChainPlan::internal_cells)
            .max()
            .unwrap();
        let total: usize = USB_CHAINS.iter().sum();
        assert!(max_load <= total / 4 + 1629);
        // With the 1629 monster chain, si_max is dominated by it.
        assert_eq!(max_load, 1629);
    }

    #[test]
    fn soft_rebalance_beats_fixed_for_usb() {
        // The USB core's 1629-flop chain dominates fixed balancing; a soft
        // rebalance spreads 2045 flops into ~512 per chain at width 4.
        let fixed = balance_fixed(&USB_CHAINS, 221, 104, 4);
        let soft = balance_soft(2045, 221, 104, 4);
        assert!(soft.si_max() < fixed.si_max());
        assert!(soft.test_time(716) < fixed.test_time(716));
        // Soft internal chains differ by at most one cell.
        let lens: Vec<usize> = soft.chains.iter().map(|c| c.internal_cells()).collect();
        let max = lens.iter().max().unwrap();
        let min = lens.iter().min().unwrap();
        assert!(max - min <= 1, "{lens:?}");
    }

    #[test]
    fn test_time_formula() {
        // One chain of 10 cells, 2 in, 3 out, width 1:
        // si = 12, so = 13, p = 5 -> (1+13)*5 + 12 = 82.
        let plan = balance_fixed(&[10], 2, 3, 1);
        assert_eq!(plan.si_max(), 12);
        assert_eq!(plan.so_max(), 13);
        assert_eq!(plan.test_time(5), 82);
        assert_eq!(plan.test_time(0), 0);
    }

    #[test]
    fn wider_tam_never_hurts_soft_cores() {
        let mut prev = u64::MAX;
        for w in 1..=8 {
            let t = balance_soft(2045, 221, 104, w).test_time(716);
            assert!(t <= prev, "width {w} worsened: {t} > {prev}");
            prev = t;
        }
    }

    #[test]
    fn width_sweep_shape() {
        let sweep = width_sweep(&USB_CHAINS, 221, 104, 716, false, 6);
        assert_eq!(sweep.len(), 6);
        assert_eq!(sweep[0].0, 1);
        // Hard core: beyond 4 chains the 1629 chain dominates; time
        // plateaus (staircase).
        let t4 = sweep[3].1;
        let t6 = sweep[5].1;
        assert_eq!(t4, t6, "staircase plateau expected: {sweep:?}");
    }

    #[test]
    fn pure_combinational_core_gets_boundary_only_chains() {
        // JPEG-like: no internal scan, 165 in / 104 out.
        let plan = balance_fixed(&[], 165, 104, 4);
        assert_eq!(plan.total_internal_cells(), 0);
        assert_eq!(plan.total_boundary_cells(), 269);
        // Cells spread evenly: si_max = ceil(165/4) = 42.
        assert_eq!(plan.si_max(), 42);
        assert_eq!(plan.so_max(), 26);
    }

    #[test]
    #[should_panic(expected = "at least one TAM wire")]
    fn zero_width_panics() {
        let _ = balance_fixed(&[1], 0, 0, 0);
    }
}
