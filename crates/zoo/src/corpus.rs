//! Corpus runner: drives [`run_soc`](crate::flow::run_soc) across a
//! whole [`ZooParams`] corpus and aggregates a scheduling / test-time /
//! coverage table.

use crate::flow::{run_soc, RunOptions, SocRun};
use crate::gen::ZooParams;
use std::fmt;
use steac_sched::ScheduleError;
use steac_sim::exec::Exec;

/// One corpus SOC's flow results, flattened for reporting.
#[derive(Debug, Clone)]
pub struct CorpusRow {
    /// SOC name (`socNNN`).
    pub name: String,
    /// Logic cores + memories on the SOC.
    pub cores: usize,
    /// Test tasks generated.
    pub tasks: usize,
    /// Sessions in the schedule.
    pub sessions: usize,
    /// Session-scheduled total test time (cycles).
    pub total_cycles: u64,
    /// Static non-session baseline, when feasible.
    pub nonsession_cycles: Option<u64>,
    /// Serial reference, when feasible.
    pub serial_cycles: Option<u64>,
    /// Wrapper cells placed across scheduled scan tasks.
    pub wrapped_cells: usize,
    /// Glue-netlist fault coverage (percent), when graded.
    pub coverage: Option<f64>,
    /// Invariant violations found on this SOC.
    pub violations: usize,
}

impl CorpusRow {
    /// Serial-to-session speedup, when the serial reference exists.
    #[must_use]
    pub fn speedup(&self) -> Option<f64> {
        let serial = self.serial_cycles?;
        if self.total_cycles == 0 {
            return None;
        }
        #[allow(clippy::cast_precision_loss)]
        Some(serial as f64 / self.total_cycles as f64)
    }
}

/// Aggregated corpus results.
#[derive(Debug, Clone)]
pub struct CorpusReport {
    /// The corpus seed (for reproduction).
    pub seed: u64,
    /// Per-SOC rows, in corpus order.
    pub rows: Vec<CorpusRow>,
}

impl CorpusReport {
    /// Total invariant violations across the corpus.
    #[must_use]
    pub fn violations(&self) -> usize {
        self.rows.iter().map(|r| r.violations).sum()
    }

    /// Total tasks scheduled across the corpus.
    #[must_use]
    pub fn total_tasks(&self) -> usize {
        self.rows.iter().map(|r| r.tasks).sum()
    }

    /// Mean serial-to-session speedup over SOCs where both exist.
    #[must_use]
    pub fn mean_speedup(&self) -> f64 {
        let speedups: Vec<f64> = self.rows.iter().filter_map(CorpusRow::speedup).collect();
        if speedups.is_empty() {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        let n = speedups.len() as f64;
        speedups.iter().sum::<f64>() / n
    }

    /// Mean glue-netlist coverage over graded SOCs.
    #[must_use]
    pub fn mean_coverage(&self) -> f64 {
        let covs: Vec<f64> = self.rows.iter().filter_map(|r| r.coverage).collect();
        if covs.is_empty() {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        let n = covs.len() as f64;
        covs.iter().sum::<f64>() / n
    }
}

impl fmt::Display for CorpusReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "SOC zoo corpus (seed {:#x}, {} SOCs, {} tasks)",
            self.seed,
            self.rows.len(),
            self.total_tasks()
        )?;
        writeln!(
            f,
            "{:<8} {:>5} {:>5} {:>4} {:>14} {:>14} {:>14} {:>8} {:>7} {:>4}",
            "soc",
            "cores",
            "tasks",
            "sess",
            "session",
            "nonsession",
            "serial",
            "speedup",
            "cover%",
            "viol"
        )?;
        for r in &self.rows {
            let fmt_opt = |c: Option<u64>| c.map_or_else(|| "infeasible".into(), |c| c.to_string());
            writeln!(
                f,
                "{:<8} {:>5} {:>5} {:>4} {:>14} {:>14} {:>14} {:>8} {:>7} {:>4}",
                r.name,
                r.cores,
                r.tasks,
                r.sessions,
                r.total_cycles,
                fmt_opt(r.nonsession_cycles),
                fmt_opt(r.serial_cycles),
                r.speedup()
                    .map_or_else(|| "-".into(), |s| format!("{s:.2}x")),
                r.coverage.map_or_else(|| "-".into(), |c| format!("{c:.1}")),
                r.violations,
            )?;
        }
        writeln!(
            f,
            "mean speedup {:.2}x, mean coverage {:.1}%, {} violation(s)",
            self.mean_speedup(),
            self.mean_coverage(),
            self.violations()
        )
    }
}

/// Flattens one [`SocRun`] into a report row.
fn row_of(name: String, cores: usize, tasks: usize, run: &SocRun) -> CorpusRow {
    CorpusRow {
        name,
        cores,
        tasks,
        sessions: run.schedule.sessions.len(),
        total_cycles: run.schedule.total_cycles,
        nonsession_cycles: run.nonsession.as_ref().ok().map(|s| s.makespan),
        serial_cycles: run.serial.as_ref().ok().map(|s| s.makespan),
        wrapped_cells: run.wrapped_cells,
        coverage: run.grading.as_ref().map(|g| g.coverage_percent()),
        violations: run.violations.len(),
    }
}

/// Runs the full flow for every SOC in the corpus.
///
/// # Errors
///
/// Returns the first SOC index whose session schedule came back
/// infeasible — the corpus sizes budgets so that every SOC is
/// schedulable, and an infeasible instance is a generator or scheduler
/// bug worth failing loudly on.
pub fn run_corpus(
    params: &ZooParams,
    exec: &Exec,
    opts: &RunOptions,
) -> Result<CorpusReport, (usize, ScheduleError)> {
    let mut rows = Vec::with_capacity(params.socs);
    for index in 0..params.socs {
        let soc = params.soc(index);
        let run = run_soc(&soc, exec, opts).map_err(|e| (index, e))?;
        rows.push(row_of(
            soc.name.clone(),
            soc.cores + soc.memories,
            soc.tasks.len(),
            &run,
        ));
    }
    Ok(CorpusReport {
        seed: params.seed,
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_corpus_runs_clean_without_grading() {
        let params = ZooParams {
            socs: 8,
            ..ZooParams::tiny()
        };
        let opts = RunOptions {
            grade: false,
            ..RunOptions::default()
        };
        let report = run_corpus(&params, &Exec::serial(), &opts).expect("corpus feasible");
        assert_eq!(report.rows.len(), 8);
        assert_eq!(report.violations(), 0, "{report}");
        assert!(report.mean_speedup() >= 1.0, "{report}");
    }

    #[test]
    fn report_renders_a_table() {
        let params = ZooParams {
            socs: 2,
            ..ZooParams::tiny()
        };
        let opts = RunOptions {
            grade: true,
            vectors: 24,
            ..RunOptions::default()
        };
        let report = run_corpus(&params, &Exec::serial(), &opts).expect("corpus feasible");
        let text = format!("{report}");
        assert!(text.contains("soc000"));
        assert!(text.contains("cover%"));
    }
}
