//! The generator: seeded, parameterized synthetic SOCs.
//!
//! Every SOC is derived from `(master seed, index)` through SplitMix64,
//! so a corpus is reproducible from two numbers: equal [`ZooParams`]
//! produce byte-identical task sets, budgets and netlists. All knobs
//! live in [`ZooParams`]; the presets ([`ZooParams::smoke`],
//! [`ZooParams::tiny`]) are the fixed operating points CI runs.
//!
//! The generator sizes each SOC's pin budget and power cap *after*
//! rolling its cores: the budget is the per-session share of the total
//! minimum pin demand plus headroom, the cap the per-session share of
//! total power plus headroom. Headroom factors are themselves sampled,
//! so the corpus spans comfortable chips and tightly-packed ones.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use steac_sched::{ChipConfig, TestTask};
use steac_tam::{share_controls, ControlClass, ControlSignal, PinBudget, SharePolicy};

/// Clock frequencies (MHz) SOCs draw their clock palettes from; cores
/// on the same frequency can share a clock pin under the DSC policy.
const FREQ_CLASSES: [u32; 6] = [50, 100, 133, 200, 266, 400];

/// Knobs for the synthetic corpus. All sampling derives from [`seed`]
/// (see [`ZooParams::soc`]); two equal parameter sets generate
/// byte-identical corpora.
///
/// [`seed`]: ZooParams::seed
#[derive(Debug, Clone, PartialEq)]
pub struct ZooParams {
    /// Master seed; SOC `i` runs on `splitmix(seed, i)`.
    pub seed: u64,
    /// Number of SOCs in the corpus.
    pub socs: usize,
    /// Core-count band, sampled log-uniformly per SOC.
    pub min_cores: usize,
    /// Upper end of the core-count band (inclusive).
    pub max_cores: usize,
    /// Probability a core is a memory group (BIST) instead of logic.
    pub memory_ratio: f64,
    /// Probability a logic core is soft (rebalanceable scan chains).
    pub soft_ratio: f64,
    /// Probability a logic core carries a functional test besides scan.
    pub functional_ratio: f64,
    /// Distinct shared memory-BIST interfaces per SOC (band, inclusive).
    pub mbist_groups: (usize, usize),
    /// Session budget band (inclusive).
    pub max_sessions: (usize, usize),
    /// Power-cap headroom over the per-session power share (band).
    pub power_headroom: (f64, f64),
    /// Pin-budget headroom over the per-session minimum-pin share
    /// (band).
    pub pin_headroom: (f64, f64),
    /// Probability a task's power draw spikes to several times the
    /// typical roll — pathological power profiles that force the
    /// scheduler to serialize around hot tasks. 0 in the standard
    /// presets; the [`ZooParams::adversarial`] preset turns it on.
    pub spiky_power: f64,
}

impl ZooParams {
    /// The CI smoke corpus: 120 SOCs from 4 to 150 cores, fixed seed.
    /// This is the standing stress workload — regressions here are
    /// scheduler regressions, not corpus drift.
    #[must_use]
    pub fn smoke() -> Self {
        ZooParams {
            seed: 0xD5C_2005,
            socs: 120,
            min_cores: 4,
            max_cores: 150,
            memory_ratio: 0.25,
            soft_ratio: 0.5,
            functional_ratio: 0.35,
            mbist_groups: (1, 3),
            max_sessions: (2, 5),
            power_headroom: (1.6, 2.4),
            pin_headroom: (1.5, 2.5),
            spiky_power: 0.0,
        }
    }

    /// Small SOCs only (≤ [`steac_sched::EXHAUSTIVE_LIMIT`] tasks with
    /// high probability): the band the exhaustive-vs-greedy
    /// differential tests run on.
    #[must_use]
    pub fn tiny() -> Self {
        ZooParams {
            seed: 0xD5C_2005 ^ 0x7171,
            socs: 60,
            min_cores: 2,
            max_cores: 6,
            memory_ratio: 0.3,
            soft_ratio: 0.5,
            functional_ratio: 0.3,
            mbist_groups: (1, 2),
            max_sessions: (2, 4),
            power_headroom: (1.4, 2.2),
            pin_headroom: (1.5, 2.5),
            spiky_power: 0.0,
        }
    }

    /// The adversarial corpus: pathological power profiles (a sampled
    /// fraction of tasks spike to 4x the typical draw) combined with
    /// near-zero power and pin headroom, so sessions serialize around
    /// hot tasks and scan grants collapse toward single-wire TAMs.
    /// Budgets are still sized to keep every instance feasible: the
    /// lone-task floors hold regardless of headroom, and with spikes
    /// on, the power sizing adds the first-fit sufficiency term (see
    /// `size_config`) so outliers pressure schedule *quality* and the
    /// invariant checks, not feasibility. Fixed seed: CI runs this
    /// corpus every merge.
    #[must_use]
    pub fn adversarial() -> Self {
        ZooParams {
            seed: 0xD5C_2005 ^ 0xAD5A,
            socs: 40,
            min_cores: 4,
            max_cores: 80,
            memory_ratio: 0.25,
            soft_ratio: 0.5,
            functional_ratio: 0.35,
            mbist_groups: (1, 3),
            max_sessions: (2, 5),
            power_headroom: (1.02, 1.15),
            pin_headroom: (1.0, 1.08),
            spiky_power: 0.15,
        }
    }

    /// Generates SOC `index` of this corpus.
    ///
    /// # Panics
    ///
    /// Panics if the parameter bands are empty (`min_cores >
    /// max_cores` and friends).
    #[must_use]
    pub fn soc(&self, index: usize) -> SyntheticSoc {
        let seed = splitmix(self.seed, index as u64);
        let mut rng = StdRng::seed_from_u64(seed);
        let cores = log_uniform(&mut rng, self.min_cores as u64, self.max_cores as u64) as usize;
        let max_sessions = rng.gen_range(self.max_sessions.0..=self.max_sessions.1);
        let mbist_groups = rng.gen_range(self.mbist_groups.0..=self.mbist_groups.1);

        // The SOC's clock palette: cores drawing the same frequency can
        // share a clock pin, which is what makes control sharing bite.
        let palette_len = rng.gen_range(2usize..=4);
        let mut palette = Vec::with_capacity(palette_len);
        while palette.len() < palette_len {
            let f = FREQ_CLASSES[rng.gen_range(0..FREQ_CLASSES.len())];
            if !palette.contains(&f) {
                palette.push(f);
            }
        }

        let mut tasks = Vec::new();
        let mut memories = 0usize;
        for c in 0..cores {
            if rng.gen_bool(self.memory_ratio) {
                memories += 1;
                let cycles = log_uniform(&mut rng, 10_000, 3_000_000);
                let group = rng.gen_range(0..mbist_groups);
                let mut t = TestTask::bist(&format!("m{c}"), cycles).with_power(roll_power(
                    &mut rng,
                    self.spiky_power,
                    0.2,
                    1.0,
                ));
                t.pin_group = Some(format!("mbist{group}"));
                tasks.push(t);
            } else {
                let core = format!("c{c}");
                let freq = palette[rng.gen_range(0..palette.len())];
                let chains: Vec<usize> = (0..rng.gen_range(1usize..=6))
                    .map(|_| log_uniform(&mut rng, 16, 2_000) as usize)
                    .collect();
                let inputs = rng.gen_range(2usize..=220);
                let outputs = rng.gen_range(2usize..=200);
                let patterns = log_uniform(&mut rng, 32, 4_000);
                let soft = rng.gen_bool(self.soft_ratio);
                let controls = vec![
                    ControlSignal::new(&core, "ck", ControlClass::Clock { freq_mhz: freq }),
                    ControlSignal::new(&core, "rst", ControlClass::Reset),
                    ControlSignal::new(&core, "se", ControlClass::ScanEnable),
                    ControlSignal::new(&core, "te", ControlClass::TestEnable),
                ];
                tasks.push(
                    TestTask::scan(&core, patterns, &chains, inputs, outputs, soft)
                        .with_controls(controls.clone())
                        .with_power(roll_power(&mut rng, self.spiky_power, 0.2, 1.0)),
                );
                if rng.gen_bool(self.functional_ratio) {
                    let func_controls = controls
                        .iter()
                        .filter(|s| {
                            matches!(
                                s.class,
                                ControlClass::Clock { .. } | ControlClass::TestEnable
                            )
                        })
                        .cloned()
                        .collect();
                    tasks.push(
                        TestTask::functional(
                            &core,
                            log_uniform(&mut rng, 1_000, 200_000),
                            rng.gen_range(8usize..=120),
                            rng.gen_range(8usize..=100),
                        )
                        .with_controls(func_controls)
                        .with_power(roll_power(
                            &mut rng,
                            self.spiky_power,
                            0.4,
                            1.2,
                        )),
                    );
                }
            }
        }

        let config = size_config(&mut rng, &tasks, max_sessions, self);
        SyntheticSoc {
            name: format!("soc{index:03}"),
            seed,
            cores,
            memories,
            tasks,
            config,
        }
    }

    /// Generates the whole corpus.
    #[must_use]
    pub fn corpus(&self) -> Vec<SyntheticSoc> {
        (0..self.socs).map(|i| self.soc(i)).collect()
    }
}

/// One task's power draw: a uniform roll from the band, spiked to 4x
/// with probability `spiky` (the adversarial preset's pathological
/// profile). The spike roll is skipped entirely at `spiky == 0` so the
/// standard presets' RNG streams — and therefore their corpora — stay
/// byte-identical.
fn roll_power(rng: &mut StdRng, spiky: f64, lo: f64, hi: f64) -> f64 {
    let p = rng.gen_range(lo..hi);
    if spiky > 0.0 && rng.gen_bool(spiky) {
        p * 4.0
    } else {
        p
    }
}

/// Sizes the chip budget around the rolled tasks: the power cap and pin
/// budget get the per-session share of the totals plus sampled
/// headroom, so every corpus SOC is *intended* to be schedulable while
/// still spanning loose and tight operating points.
fn size_config(
    rng: &mut StdRng,
    tasks: &[TestTask],
    max_sessions: usize,
    params: &ZooParams,
) -> ChipConfig {
    let session_share = SharePolicy::dsc(max_sessions);
    let static_share = SharePolicy {
        te_via_controller: false,
        ..SharePolicy::dsc(1)
    };

    let total_power: f64 = tasks.iter().map(|t| t.power).sum();
    let max_power = tasks.iter().map(|t| t.power).fold(0.0f64, f64::max);
    let headroom = rng.gen_range(params.power_headroom.0..params.power_headroom.1);
    let balanced = total_power / max_sessions as f64 * headroom;
    // With spiky power on, the near-balanced-partition assumption
    // behind the tight per-session share no longer holds: a 4x outlier
    // can make every partition exceed `total/k * headroom` no matter
    // how the rest is arranged. Mirror the pin sizing's `+ max_single`
    // term — capacity `total/k + max` is the classic first-fit
    // sufficiency bound, so a partition always exists and the pressure
    // stays on schedule quality, not feasibility.
    let power_limit = if params.spiky_power > 0.0 {
        (balanced + max_power).max(max_power * 1.05)
    } else {
        balanced.max(max_power * 1.05)
    };

    // Upper bound on any session's control pins: sharing the whole
    // inventory (a session's subset can only form fewer groups).
    let signals: Vec<ControlSignal> = tasks
        .iter()
        .flat_map(|t| t.controls.iter().cloned())
        .collect();
    let control_upper = share_controls(&signals, &session_share).shared_pins();

    let refs: Vec<&TestTask> = tasks.iter().collect();
    let total_min = steac_sched::min_pins_needed(&refs);
    // The indivisible floor is a task's *single-session* pin need —
    // min pins plus its fixed shared interfaces (a BIST task has zero
    // min pins but still drags its whole 7-pin interface into whichever
    // session runs it).
    let max_single = tasks
        .iter()
        .map(|t| steac_sched::min_pins_needed(&[t]))
        .max()
        .unwrap_or(0);
    let pin_headroom = rng.gen_range(params.pin_headroom.0..params.pin_headroom.1);
    let data = (total_min as f64 / max_sessions as f64 * pin_headroom).ceil() as usize + max_single;

    let global_pins = 4;
    let reserved = 2;
    ChipConfig {
        budget: PinBudget::with_reserved(reserved + global_pins + control_upper + data, reserved),
        global_pins,
        power_limit,
        max_sessions,
        session_share,
        static_share,
    }
}

/// One synthetic SOC: its rolled task set and the budget sized for it.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticSoc {
    /// Corpus-unique name (`soc<index>`).
    pub name: String,
    /// The SOC's derived seed (drives task generation and the grading
    /// netlist).
    pub seed: u64,
    /// Number of cores rolled (logic + memory).
    pub cores: usize,
    /// How many of the cores are memory (BIST) groups.
    pub memories: usize,
    /// The schedulable test tasks (1–2 per logic core, 1 per memory).
    pub tasks: Vec<TestTask>,
    /// Chip budget sized for this SOC.
    pub config: ChipConfig,
}

/// SplitMix64: one 64-bit hop, used to derive per-SOC seeds.
#[must_use]
pub fn splitmix(seed: u64, index: u64) -> u64 {
    let mut z = seed
        .wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Log-uniform integer sample in `[lo, hi]`: the corpus needs small
/// cores to be common and thousand-cell monsters to exist.
fn log_uniform(rng: &mut StdRng, lo: u64, hi: u64) -> u64 {
    if lo >= hi {
        return lo;
    }
    let (l, h) = ((lo as f64).ln(), ((hi + 1) as f64).ln());
    let x = rng.gen_range(l..h).exp();
    (x as u64).clamp(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let p = ZooParams::smoke();
        assert_eq!(p.soc(17), p.soc(17));
        assert_eq!(p.soc(0).name, "soc000");
    }

    #[test]
    fn different_indices_differ() {
        let p = ZooParams::smoke();
        assert_ne!(p.soc(1).tasks, p.soc(2).tasks);
    }

    #[test]
    fn core_counts_stay_in_band() {
        let p = ZooParams::smoke();
        for i in 0..40 {
            let soc = p.soc(i);
            assert!(soc.cores >= p.min_cores && soc.cores <= p.max_cores);
            assert!(!soc.tasks.is_empty());
        }
    }

    #[test]
    fn corpus_spans_tens_to_hundreds_of_cores() {
        let corpus = ZooParams::smoke().corpus();
        let max = corpus.iter().map(|s| s.cores).max().unwrap();
        let min = corpus.iter().map(|s| s.cores).min().unwrap();
        assert!(max >= 100, "largest SOC has {max} cores");
        assert!(min < 20, "smallest SOC has {min} cores");
    }

    #[test]
    fn adversarial_preset_is_deterministic_and_actually_spikes() {
        let p = ZooParams::adversarial();
        assert_eq!(p.soc(5), p.soc(5));
        // The pathological profile must really appear: some rolled task
        // exceeds the nominal band's ceiling.
        let spiked = (0..10).flat_map(|i| p.soc(i).tasks).any(|t| t.power > 1.25);
        assert!(spiked, "no spiky power profile in 10 adversarial SOCs");
        // Standard presets stay spike-free and byte-identical to their
        // historical corpora (spiky_power must not perturb their RNG).
        assert!(ZooParams::smoke()
            .soc(3)
            .tasks
            .iter()
            .all(|t| t.power <= 1.2));
    }

    #[test]
    fn every_task_fits_its_budget_alone() {
        // The sizing contract: any single task must be schedulable.
        let p = ZooParams::smoke();
        for i in 0..20 {
            let soc = p.soc(i);
            for t in &soc.tasks {
                assert!(
                    t.power <= soc.config.power_limit + 1e-9,
                    "{}: task {} power {} over cap {}",
                    soc.name,
                    t.name,
                    t.power,
                    soc.config.power_limit
                );
            }
        }
    }

    #[test]
    fn fixed_interfaces_count_toward_the_lone_task_floor() {
        // Regression: tiny-corpus SOC 9 rolled two BIST tasks whose
        // `min_pins()` is 0 but whose shared 7-pin mbist interfaces are
        // indivisible, and the original sizing (floor = max min_pins)
        // granted only ceil(total/2 · headroom) = 6 data pins — neither
        // task could run even in a session of its own. The floor must
        // be the single-task pin need *including* fixed interfaces.
        let soc = ZooParams::tiny().soc(9);
        assert!(soc.tasks.iter().all(|t| t.min_pins() == 0));
        for t in &soc.tasks {
            let need = steac_sched::min_pins_needed(&[t]);
            let control = share_controls(&t.controls, &soc.config.session_share).shared_pins();
            let data = soc
                .config
                .budget
                .data_pins(soc.config.global_pins + control);
            assert!(
                data >= need,
                "{}: task {} needs {need} data pins alone, budget grants {data}",
                soc.name,
                t.name
            );
        }
        steac_sched::schedule_sessions(&soc.tasks, &soc.config).expect("soc009 is feasible");
    }
}
