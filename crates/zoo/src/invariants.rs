//! Scheduler invariants checked over every corpus SOC.
//!
//! These are the properties the paper's scheduler must hold at any
//! scale, written against the *outputs* (schedules and allocations), so
//! they stay valid however the search heuristics evolve:
//!
//! * every task scheduled exactly once,
//! * no session exceeds its pin budget or the power cap,
//! * session makespans equal the slowest member, and each member's
//!   cycles match its task's time model at the granted width,
//! * the schedule total is the (saturating) sum of session makespans,
//! * water-filling allocation respects min/max bounds and the budget,
//!   and never worsens the minimum-allocation makespan,
//! * total test time is monotone non-increasing as the TAM budget
//!   grows (checked on the exact, exhaustive-search path — the greedy
//!   heuristic is only *near*-monotone, see
//!   [`check_tam_monotone`]).

use crate::gen::SyntheticSoc;
use std::fmt;
use steac_sched::{
    allocate_session, min_pins_needed, schedule_sessions_with, ChipConfig, SessionSchedule,
    Strategy, TestTask,
};
use steac_tam::{share_controls, PinBudget};

/// One invariant violation, with enough payload to reproduce.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// The schedule does not contain each task exactly once.
    TaskCoverage {
        /// Task indices seen, sorted.
        seen: Vec<usize>,
        /// Number of tasks expected.
        expected: usize,
    },
    /// A session's member powers sum over the cap.
    PowerExceeded {
        /// Session position.
        session: usize,
        /// Sum of member powers.
        power: f64,
        /// The cap.
        limit: f64,
    },
    /// A session's granted pins exceed its data budget.
    PinsExceeded {
        /// Session position.
        session: usize,
        /// Granted data pins (incl. shared fixed interfaces).
        used: usize,
        /// Data pins available.
        available: usize,
    },
    /// A session's recorded control/data pins disagree with re-derived
    /// sharing.
    ControlMismatch {
        /// Session position.
        session: usize,
        /// Recorded control pins.
        recorded: usize,
        /// Re-derived control pins.
        derived: usize,
    },
    /// Session makespan is not the max of member cycles.
    MakespanMismatch {
        /// Session position.
        session: usize,
        /// Recorded makespan.
        makespan: u64,
        /// Max member cycles.
        slowest: u64,
    },
    /// A member's recorded cycles disagree with the task time model at
    /// its granted width.
    TimeModelMismatch {
        /// Task index.
        task: usize,
        /// Recorded cycles.
        cycles: u64,
        /// `task.time(pins)`.
        expected: u64,
    },
    /// Schedule total is not the saturating sum of session makespans.
    TotalMismatch {
        /// Recorded total.
        total: u64,
        /// Saturating sum of makespans.
        sum: u64,
    },
    /// Total test time grew when the TAM budget grew.
    NonMonotoneTam {
        /// Pin budget of the narrower chip.
        narrow_pins: usize,
        /// Pin budget of the wider chip.
        wide_pins: usize,
        /// Total at the narrower budget.
        narrow_total: u64,
        /// Total at the wider budget.
        wide_total: u64,
    },
    /// Water-filling broke an allocation bound or worsened the
    /// minimum-allocation makespan.
    AllocBound {
        /// Which bound broke, human-readable.
        detail: String,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::TaskCoverage { seen, expected } => {
                write!(f, "tasks not covered exactly once: {seen:?} of {expected}")
            }
            Violation::PowerExceeded {
                session,
                power,
                limit,
            } => write!(f, "session {session}: power {power:.3} > limit {limit:.3}"),
            Violation::PinsExceeded {
                session,
                used,
                available,
            } => write!(f, "session {session}: {used} pins > {available} available"),
            Violation::ControlMismatch {
                session,
                recorded,
                derived,
            } => write!(
                f,
                "session {session}: recorded {recorded} control pins, derived {derived}"
            ),
            Violation::MakespanMismatch {
                session,
                makespan,
                slowest,
            } => write!(
                f,
                "session {session}: makespan {makespan} != slowest member {slowest}"
            ),
            Violation::TimeModelMismatch {
                task,
                cycles,
                expected,
            } => write!(
                f,
                "task {task}: recorded {cycles} cycles, time model says {expected}"
            ),
            Violation::TotalMismatch { total, sum } => {
                write!(f, "total {total} != sum of makespans {sum}")
            }
            Violation::NonMonotoneTam {
                narrow_pins,
                wide_pins,
                narrow_total,
                wide_total,
            } => write!(
                f,
                "total grew with TAM width: {narrow_total} @ {narrow_pins} pins -> \
                 {wide_total} @ {wide_pins} pins"
            ),
            Violation::AllocBound { detail } => write!(f, "allocation bound: {detail}"),
        }
    }
}

/// Checks every session-schedule invariant for one SOC's schedule.
/// Returns all violations found (empty = clean).
#[must_use]
pub fn check_schedule(soc: &SyntheticSoc, schedule: &SessionSchedule) -> Vec<Violation> {
    let mut v = Vec::new();
    let config = &soc.config;
    let tasks = &soc.tasks;

    let mut seen: Vec<usize> = schedule
        .sessions
        .iter()
        .flat_map(|s| s.tasks.iter().map(|t| t.task_index))
        .collect();
    seen.sort_unstable();
    if seen != (0..tasks.len()).collect::<Vec<_>>() {
        v.push(Violation::TaskCoverage {
            seen,
            expected: tasks.len(),
        });
    }

    for (si, sess) in schedule.sessions.iter().enumerate() {
        if sess.power > config.power_limit + 1e-9 {
            v.push(Violation::PowerExceeded {
                session: si,
                power: sess.power,
                limit: config.power_limit,
            });
        }

        // Re-derive the session's control sharing and data budget from
        // its members; the recorded numbers must agree.
        let signals: Vec<_> = sess
            .tasks
            .iter()
            .flat_map(|t| tasks[t.task_index].controls.iter().cloned())
            .collect();
        let control = share_controls(&signals, &config.session_share).shared_pins();
        if control != sess.control_pins {
            v.push(Violation::ControlMismatch {
                session: si,
                recorded: sess.control_pins,
                derived: control,
            });
        }
        let data = config.budget.data_pins(config.global_pins + control);
        let members: Vec<&TestTask> = sess.tasks.iter().map(|t| &tasks[t.task_index]).collect();
        let fixed = min_pins_needed(&members) - members.iter().map(|t| t.min_pins()).sum::<usize>();
        let used = sess.tasks.iter().map(|t| t.pins).sum::<usize>() + fixed;
        if used > data.min(sess.data_pins_available) {
            v.push(Violation::PinsExceeded {
                session: si,
                used,
                available: data.min(sess.data_pins_available),
            });
        }

        let slowest = sess.tasks.iter().map(|t| t.cycles).max().unwrap_or(0);
        if sess.makespan != slowest {
            v.push(Violation::MakespanMismatch {
                session: si,
                makespan: sess.makespan,
                slowest,
            });
        }
        for t in &sess.tasks {
            let expected = tasks[t.task_index].time(t.pins.max(1));
            if t.cycles != expected {
                v.push(Violation::TimeModelMismatch {
                    task: t.task_index,
                    cycles: t.cycles,
                    expected,
                });
            }
        }
    }

    let sum = schedule
        .sessions
        .iter()
        .fold(0u64, |acc, s| acc.saturating_add(s.makespan));
    if schedule.total_cycles != sum {
        v.push(Violation::TotalMismatch {
            total: schedule.total_cycles,
            sum,
        });
    }
    v
}

/// Checks that total test time is monotone non-increasing as the TAM
/// (pin) budget grows, on the **exhaustive** search path.
///
/// The property is a theorem for the exact search: a wider budget only
/// enlarges every session's feasible allocation set, so the optimal
/// partition at the narrow width is still available at the wide one.
/// The greedy path makes no such promise (its local search can walk to
/// a different basin at a different width), which is why the zoo pins
/// the exact path and tracks the heuristic separately.
#[must_use]
pub fn check_tam_monotone(soc: &SyntheticSoc, widenings: &[usize]) -> Vec<Violation> {
    let mut v = Vec::new();
    let base = soc.config.budget.test_pins;
    let mut prev: Option<(usize, u64)> = None;
    for &extra in widenings {
        let config = ChipConfig {
            budget: PinBudget::with_reserved(base + extra, soc.config.budget.reserved),
            ..soc.config.clone()
        };
        let Ok(s) = schedule_sessions_with(&soc.tasks, &config, Strategy::Exhaustive) else {
            prev = None;
            continue;
        };
        if let Some((ppins, ptotal)) = prev {
            if s.total_cycles > ptotal {
                v.push(Violation::NonMonotoneTam {
                    narrow_pins: ppins,
                    wide_pins: base + extra,
                    narrow_total: ptotal,
                    wide_total: s.total_cycles,
                });
            }
        }
        prev = Some((base + extra, s.total_cycles));
    }
    v
}

/// Checks water-filling allocation bounds for one task set over a
/// budget sweep: never over budget, never below a task minimum or
/// above its useful maximum, terminates (returns at all), and never
/// worse than the minimum allocation it started from.
#[must_use]
pub fn check_alloc(tasks: &[&TestTask], budgets: &[usize]) -> Vec<Violation> {
    let mut v = Vec::new();
    let mut prev: Option<(usize, u64)> = None;
    for &budget in budgets {
        let Some(alloc) = allocate_session(tasks, budget) else {
            prev = None;
            continue;
        };
        if alloc.total_pins() > budget {
            v.push(Violation::AllocBound {
                detail: format!("{} pins granted from budget {budget}", alloc.total_pins()),
            });
        }
        for (t, &p) in tasks.iter().zip(&alloc.pins) {
            if p < t.min_pins() || p > t.max_pins().max(t.min_pins()) {
                v.push(Violation::AllocBound {
                    detail: format!(
                        "task {} granted {p} pins outside [{}, {}]",
                        t.name,
                        t.min_pins(),
                        t.max_pins().max(t.min_pins())
                    ),
                });
            }
            if t.min_pins() > 0 && t.time(p) > t.time(t.min_pins()) {
                v.push(Violation::AllocBound {
                    detail: format!("task {} slower at {p} pins than at its minimum", t.name),
                });
            }
        }
        // Makespan must never worsen as the budget grows.
        if let Some((pb, pm)) = prev {
            if alloc.makespan() > pm {
                v.push(Violation::AllocBound {
                    detail: format!(
                        "makespan grew with budget: {pm} @ {pb} -> {} @ {budget}",
                        alloc.makespan()
                    ),
                });
            }
        }
        prev = Some((budget, alloc.makespan()));
    }
    v
}
