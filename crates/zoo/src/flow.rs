//! The per-SOC driver: wrap → share controls → schedule → generate
//! patterns → fault-grade, with invariant checks at every seam.
//!
//! This is the paper's Fig. 1 flow driven at corpus scale. The wrap
//! stage is *verified* rather than merely executed: each scheduled scan
//! task's wrapper plan is rebuilt at the granted width and its
//! chain-balance test time must equal the cycles the scheduler booked —
//! the wrapper and scheduler layers are only allowed to agree.

use crate::gen::{splitmix, SyntheticSoc};
use crate::invariants::{check_schedule, Violation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use steac_netlist::{GateKind, Module, NetId, NetlistBuilder};
use steac_sched::{
    schedule_nonsession, schedule_serial, schedule_sessions, NonSessionSchedule, ScheduleError,
    SessionSchedule, TestKind,
};
use steac_sim::exec::Exec;
use steac_sim::fault::{enumerate_faults, grade_vectors};
use steac_sim::models::bridging::{enumerate_bridges, grade_bridges};
use steac_sim::models::transition::{enumerate_transition_faults, grade_transitions};
use steac_sim::models::ModelKind;
use steac_sim::Logic;
use steac_tam::{share_controls, ShareReport};
use steac_wrapper::chain::{balance_fixed, balance_soft};

/// Options for [`run_soc`].
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Run the fault-grading stage (builds the SOC's glue netlist and
    /// grades it through the supplied backend). Scheduling-only runs
    /// skip it for speed.
    pub grade: bool,
    /// Pseudo-random vectors per grading run.
    pub vectors: usize,
    /// Fault model the grading stage runs
    /// ([`ModelKind::from_env`] — `STEAC_MODEL` — by default).
    pub model: ModelKind,
    /// Run the invariant checks and record violations.
    pub check: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            grade: true,
            vectors: 96,
            model: ModelKind::from_env(),
            check: true,
        }
    }
}

/// Model-agnostic grading summary of one SOC's glue netlist — the
/// common denominator of [`steac_sim::fault::CoverageReport`],
/// [`steac_sim::models::transition::TransitionReport`] and
/// [`steac_sim::models::bridging::BridgingReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GradeSummary {
    /// Fault model graded.
    pub model: ModelKind,
    /// Total faults enumerated.
    pub total: usize,
    /// Faults detected by the seeded vectors.
    pub detected: usize,
    /// In-thread fallbacks taken by a process backend.
    pub process_fallbacks: usize,
}

impl GradeSummary {
    /// Coverage in percent (100 for an empty fault list).
    #[must_use]
    pub fn coverage_percent(&self) -> f64 {
        if self.total == 0 {
            100.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                100.0 * self.detected as f64 / self.total as f64
            }
        }
    }
}

impl fmt::Display for GradeSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}/{} detected ({:.2}%)",
            self.model,
            self.detected,
            self.total,
            self.coverage_percent()
        )
    }
}

/// Everything the flow produced for one SOC.
#[derive(Debug, Clone)]
pub struct SocRun {
    /// Whole-inventory control sharing (the static upper bound).
    pub control: ShareReport,
    /// The session-based schedule.
    pub schedule: SessionSchedule,
    /// Non-session baseline; `Err` when the static architecture cannot
    /// test this chip (a legitimate corpus outcome, not a failure).
    pub nonsession: Result<NonSessionSchedule, ScheduleError>,
    /// Idealised serial reference (always feasible by construction of
    /// the corpus budgets).
    pub serial: Result<NonSessionSchedule, ScheduleError>,
    /// Wrapper cells placed across all scheduled scan tasks.
    pub wrapped_cells: usize,
    /// Fault-grading coverage of the SOC's glue netlist under the
    /// requested model, when graded.
    pub grading: Option<GradeSummary>,
    /// Invariant violations found (empty = clean run).
    pub violations: Vec<Violation>,
}

/// Runs the full flow for one SOC.
///
/// # Errors
///
/// [`ScheduleError`] when the session scheduler finds no feasible
/// schedule — the corpus sizes budgets so this should not happen, and
/// the smoke tests treat it as a failure. Grading errors panic: they
/// mean the generated netlist or the sim stack is broken, not the SOC.
///
/// # Panics
///
/// Panics if the wrap-verify stage finds a scan task whose scheduled
/// cycles disagree with its rebuilt wrapper plan (the layers must
/// agree), or if the grading backend fails.
pub fn run_soc(
    soc: &SyntheticSoc,
    exec: &Exec,
    opts: &RunOptions,
) -> Result<SocRun, ScheduleError> {
    // Share the whole control inventory once: the static upper bound
    // every session must undercut.
    let signals: Vec<_> = soc
        .tasks
        .iter()
        .flat_map(|t| t.controls.iter().cloned())
        .collect();
    let control = share_controls(&signals, &soc.config.session_share);

    let schedule = schedule_sessions(&soc.tasks, &soc.config)?;
    let wrapped_cells = verify_wrap(soc, &schedule);

    let nonsession = schedule_nonsession(&soc.tasks, &soc.config);
    let serial = schedule_serial(&soc.tasks, &soc.config);

    let mut violations = Vec::new();
    if opts.check {
        violations.extend(check_schedule(soc, &schedule));
        for sess in &schedule.sessions {
            if sess.control_pins > control.shared_pins() {
                violations.push(Violation::ControlMismatch {
                    session: usize::MAX,
                    recorded: sess.control_pins,
                    derived: control.shared_pins(),
                });
            }
        }
    }

    let grading = if opts.grade {
        let module = glue_netlist(soc);
        let pins: Vec<NetId> = module
            .ports_with_dir(steac_netlist::PortDir::Input)
            .map(|p| p.net)
            .collect();
        let vectors = seeded_vectors(soc.seed, pins.len(), opts.vectors);
        Some(grade_glue(exec, &module, &pins, &vectors, opts.model))
    } else {
        None
    };

    Ok(SocRun {
        control,
        schedule,
        nonsession,
        serial,
        wrapped_cells,
        grading,
        violations,
    })
}

/// Grades `module` under one fault model and flattens the
/// model-specific report into a [`GradeSummary`].
///
/// # Panics
///
/// Panics if the grading backend fails — that means the generated
/// netlist or the sim stack is broken, not the SOC.
#[must_use]
pub fn grade_glue(
    exec: &Exec,
    module: &Module,
    pins: &[NetId],
    vectors: &[Vec<Logic>],
    model: ModelKind,
) -> GradeSummary {
    match model {
        ModelKind::StuckAt => {
            let faults = enumerate_faults(module);
            let r = grade_vectors(exec, module, &faults, pins, vectors)
                .expect("stuck-at grading the glue netlist must not fail");
            GradeSummary {
                model,
                total: r.total,
                detected: r.detected,
                process_fallbacks: r.process_fallbacks,
            }
        }
        ModelKind::Transition => {
            let faults = enumerate_transition_faults(module);
            let r = grade_transitions(exec, module, &faults, pins, vectors)
                .expect("transition grading the glue netlist must not fail");
            GradeSummary {
                model,
                total: r.total,
                detected: r.detected,
                process_fallbacks: r.process_fallbacks,
            }
        }
        ModelKind::Bridging => {
            let faults = enumerate_bridges(module)
                .expect("the glue netlist compiles for bridge enumeration");
            let r = grade_bridges(exec, module, &faults, pins, vectors)
                .expect("bridging grading the glue netlist must not fail");
            GradeSummary {
                model,
                total: r.total,
                detected: r.detected,
                process_fallbacks: r.process_fallbacks,
            }
        }
    }
}

/// Rebuilds every scheduled scan task's wrapper plan at its granted
/// width and checks the scheduler booked exactly the plan's test time;
/// returns total wrapper cells placed.
///
/// # Panics
///
/// Panics on any disagreement — this is the contract between the
/// `wrapper` and `sched` layers.
fn verify_wrap(soc: &SyntheticSoc, schedule: &SessionSchedule) -> usize {
    let mut cells = 0usize;
    for sess in &schedule.sessions {
        for st in &sess.tasks {
            let task = &soc.tasks[st.task_index];
            let TestKind::Scan {
                patterns,
                internal_chains,
                inputs,
                outputs,
                soft,
            } = &task.kind
            else {
                continue;
            };
            let width = st.pins / 2;
            assert!(
                width >= 1,
                "{}: scan task granted {} pins",
                task.name,
                st.pins
            );
            let plan = if *soft {
                balance_soft(internal_chains.iter().sum(), *inputs, *outputs, width)
            } else {
                balance_fixed(internal_chains, *inputs, *outputs, width)
            };
            let expected = plan.test_time(*patterns);
            assert_eq!(
                st.cycles, expected,
                "{}: scheduler booked {} cycles, wrapper plan says {expected}",
                task.name, st.cycles
            );
            let internal: usize = internal_chains.iter().sum();
            assert_eq!(
                plan.total_internal_cells(),
                internal,
                "{}: wrapper chains lost internal cells",
                task.name
            );
            assert_eq!(
                plan.total_boundary_cells(),
                inputs + outputs,
                "{}: wrapper chains lost boundary cells",
                task.name
            );
            cells += plan.total_internal_cells() + plan.total_boundary_cells();
        }
    }
    cells
}

/// Combinational gate kinds the glue netlist draws from.
const GLUE_KINDS: [GateKind; 10] = [
    GateKind::Inv,
    GateKind::Buf,
    GateKind::Nand2,
    GateKind::Nor2,
    GateKind::And2,
    GateKind::Or2,
    GateKind::Xor2,
    GateKind::Xnor2,
    GateKind::And3,
    GateKind::Or3,
];

/// Builds the SOC's seeded glue netlist: a random combinational DAG
/// whose size scales gently with the core count, used as the grading
/// workload so every corpus SOC exercises the sim stack.
#[must_use]
pub fn glue_netlist(soc: &SyntheticSoc) -> Module {
    let mut rng = StdRng::seed_from_u64(soc.seed ^ 0x6175_6c74);
    let mut b = NetlistBuilder::new(&soc.name);
    let n_in = rng.gen_range(4usize..=10);
    let gates = (20 + soc.cores / 2).min(160);
    let mut pool: Vec<NetId> = b.input_bus("pi", n_in);
    for _ in 0..gates {
        let kind = GLUE_KINDS[rng.gen_range(0..GLUE_KINDS.len())];
        let ins: Vec<NetId> = (0..kind.input_count())
            .map(|_| pool[rng.gen_range(0..pool.len())])
            .collect();
        let out = b.gate(kind, &ins);
        pool.push(out);
    }
    // A couple of direct observation points plus an OR cone over late
    // nets so most of the DAG is observable.
    let last = pool[pool.len() - 1];
    b.output("po0", last);
    let cone: Vec<NetId> = (0..8.min(pool.len()))
        .map(|_| pool[rng.gen_range(pool.len().saturating_sub(24)..pool.len())])
        .collect();
    let or = b.or_tree(&cone);
    b.output("po1", or);
    b.finish()
        .expect("glue netlist is well-formed by construction")
}

/// Deterministic SplitMix64 vectors, independent of any other crate so
/// zoo grading stimulus is stable.
#[must_use]
pub fn seeded_vectors(seed: u64, pins: usize, count: usize) -> Vec<Vec<Logic>> {
    (0..count)
        .map(|k| {
            (0..pins)
                .map(|i| Logic::from(splitmix(seed ^ (k as u64), i as u64) & 1 == 1))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::ZooParams;

    #[test]
    fn glue_netlist_is_deterministic_and_gradable() {
        let soc = ZooParams::smoke().soc(3);
        let m1 = glue_netlist(&soc);
        let m2 = glue_netlist(&soc);
        assert_eq!(m1.cells.len(), m2.cells.len());
        assert!(enumerate_faults(&m1).len() > 10);
    }

    #[test]
    fn run_soc_completes_cleanly_on_a_smoke_instance() {
        let soc = ZooParams::smoke().soc(0);
        let run = run_soc(&soc, &Exec::serial(), &RunOptions::default()).expect("feasible");
        assert!(run.violations.is_empty(), "{:?}", run.violations);
        let grading = run.grading.expect("graded");
        assert!(grading.total > 0);
        assert!(run.serial.is_ok(), "serial reference must exist");
    }

    /// The fixed-seed adversarial instance CI pins: spiky power under
    /// near-zero headroom must still schedule feasibly, wrap-verify
    /// cleanly and pass every invariant check.
    #[test]
    fn adversarial_instance_runs_cleanly() {
        let soc = ZooParams::adversarial().soc(0);
        let opts = RunOptions {
            vectors: 24,
            ..RunOptions::default()
        };
        let run = run_soc(&soc, &Exec::serial(), &opts).expect("adversarial soc000 feasible");
        assert!(run.violations.is_empty(), "{:?}", run.violations);
        assert!(run.grading.expect("graded").total > 0);
        // The single-wire-TAM pressure is real: at least one scan task
        // runs at the minimum 2-pin (1-wire in, 1-wire out) grant.
        let min_grant = run
            .schedule
            .sessions
            .iter()
            .flat_map(|s| s.tasks.iter())
            .filter(|st| {
                matches!(
                    soc.tasks[st.task_index].kind,
                    steac_sched::TestKind::Scan { .. }
                )
            })
            .map(|st| st.pins)
            .min();
        assert_eq!(min_grant, Some(2), "no single-wire TAM grant rolled");
    }

    /// Every registered fault model grades the same glue netlist
    /// through the flow, each with a non-trivial fault universe.
    #[test]
    fn every_model_grades_the_glue_netlist() {
        let soc = ZooParams::smoke().soc(2);
        for model in ModelKind::ALL {
            let opts = RunOptions {
                vectors: 24,
                model,
                ..RunOptions::default()
            };
            let run = run_soc(&soc, &Exec::serial(), &opts).expect("feasible");
            let grading = run.grading.expect("graded");
            assert_eq!(grading.model, model);
            assert!(grading.total > 0, "{model}: empty fault universe");
            assert!(grading.detected > 0, "{model}: nothing detected");
            assert!(grading.to_string().contains(&model.to_string()));
        }
    }
}
