//! # steac-zoo — the seeded synthetic-SOC corpus
//!
//! A parameterized generator of synthetic SOCs plus a driver that runs
//! the paper's full flow (wrap → share controls → schedule sessions →
//! generate patterns → fault-grade) over each one, checking scheduler
//! invariants along the way. The zoo is the standing stress workload
//! that flushes out sentinel, overflow and heuristic bugs the
//! hand-built DSC reproduction is too small to reach.
//!
//! ## Knobs
//!
//! [`ZooParams`] controls everything and two presets cover the common
//! cases:
//!
//! * `seed` — master seed; SOC `i` derives its own seed via SplitMix64,
//!   so corpus membership is stable under `socs` changes.
//! * `socs` — corpus size.
//! * `min_cores` / `max_cores` — log-uniform band of cores per SOC
//!   (log-uniform keeps most SOCs small and a few in the hundreds).
//! * `memory_ratio` — fraction of cores that are memories (MBIST tasks).
//! * `soft_ratio` — fraction of logic cores with soft (rebalanceable)
//!   scan chains.
//! * `functional_ratio` — chance a logic core also gets a functional
//!   pin-multiplexed task.
//! * `mbist_groups` — range of shared MBIST interface groups.
//! * `max_sessions`, `power_headroom`, `pin_headroom` — budget sizing;
//!   headrooms scale the per-session share of total demand so every
//!   generated SOC is feasible *by construction*.
//!
//! [`ZooParams::smoke`] is the fixed-seed CI corpus (120 SOCs, 4–150
//! cores); [`ZooParams::tiny`] generates small instances whose task
//! counts fit under [`steac_sched::EXHAUSTIVE_LIMIT`], for differential
//! exhaustive-vs-greedy testing; [`ZooParams::adversarial`] rolls
//! pathological power profiles (`spiky_power`) under near-zero
//! headroom, pressing schedules toward single-wire TAM grants.
//!
//! The grading stage is model-parameterized: [`RunOptions::model`]
//! selects the gate-level fault model (stuck-at, transition or
//! bridging — `STEAC_MODEL` by default, see
//! [`steac_sim::models::ModelKind`]), and the per-SOC
//! [`GradeSummary`] records which model produced the coverage figure.
//!
//! ## Invariants checked
//!
//! [`check_schedule`] re-derives every claim a schedule makes: each
//! task scheduled exactly once, per-session power under the cap,
//! granted pins within the (re-shared) data budget, makespans equal to
//! the slowest member, member cycles equal to the task time model at
//! the granted width, and the total equal to the saturating sum of
//! makespans. [`check_tam_monotone`] asserts total test time is
//! monotone non-increasing in TAM width on the exhaustive path, and
//! [`check_alloc`] sweeps water-filling bounds. The flow driver
//! additionally cross-checks the wrapper layer: every scheduled scan
//! task's plan is rebuilt at its granted width and must reproduce the
//! booked cycle count exactly.

pub mod corpus;
pub mod flow;
pub mod gen;
pub mod invariants;

pub use corpus::{run_corpus, CorpusReport, CorpusRow};
pub use flow::{
    glue_netlist, grade_glue, run_soc, seeded_vectors, GradeSummary, RunOptions, SocRun,
};
pub use gen::{splitmix, SyntheticSoc, ZooParams};
pub use invariants::{check_alloc, check_schedule, check_tam_monotone, Violation};
