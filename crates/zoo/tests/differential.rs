//! Differential test: the greedy+local-search heuristic against the
//! exhaustive set-partition search, over every zoo instance small
//! enough for the exact search.
//!
//! Two properties must hold on every such instance:
//!
//! * the greedy total is never *better* than the exhaustive optimum
//!   (the exact search is a true lower bound), and
//! * greedy never reports infeasible when the exhaustive search found a
//!   feasible schedule (the seeded-greedy + backtracking fallback is a
//!   completeness guarantee, not just a heuristic).

use steac_sched::{schedule_sessions_with, Strategy, EXHAUSTIVE_LIMIT};
use steac_zoo::ZooParams;

#[test]
fn greedy_matches_or_trails_exhaustive_on_small_instances() {
    let params = ZooParams {
        socs: 80,
        ..ZooParams::tiny()
    };
    let mut compared = 0usize;
    for index in 0..params.socs {
        let soc = params.soc(index);
        if soc.tasks.len() > EXHAUSTIVE_LIMIT {
            continue;
        }
        let exact = schedule_sessions_with(&soc.tasks, &soc.config, Strategy::Exhaustive);
        let greedy = schedule_sessions_with(&soc.tasks, &soc.config, Strategy::Greedy);
        match (exact, greedy) {
            (Ok(e), Ok(g)) => {
                assert!(
                    g.total_cycles >= e.total_cycles,
                    "{}: greedy {} beat the exhaustive optimum {}",
                    soc.name,
                    g.total_cycles,
                    e.total_cycles
                );
                compared += 1;
            }
            (Ok(e), Err(err)) => panic!(
                "{}: exhaustive found a {}-cycle schedule but greedy says {err}",
                soc.name, e.total_cycles
            ),
            // Exhaustive infeasible: greedy may agree or not; nothing to
            // compare (the corpus shouldn't generate these anyway).
            (Err(e), _) => panic!("{}: tiny corpus instance infeasible: {e}", soc.name),
        }
    }
    assert!(
        compared >= 40,
        "only {compared} instances were small enough to compare — tiny() drifted"
    );
}

/// The auto strategy must agree with whichever path it dispatches to.
#[test]
fn auto_strategy_dispatches_consistently() {
    let params = ZooParams {
        socs: 20,
        ..ZooParams::tiny()
    };
    for index in 0..params.socs {
        let soc = params.soc(index);
        let auto = schedule_sessions_with(&soc.tasks, &soc.config, Strategy::Auto)
            .expect("tiny corpus is feasible");
        let expected = if soc.tasks.len() <= EXHAUSTIVE_LIMIT {
            schedule_sessions_with(&soc.tasks, &soc.config, Strategy::Exhaustive)
        } else {
            schedule_sessions_with(&soc.tasks, &soc.config, Strategy::Greedy)
        }
        .expect("tiny corpus is feasible");
        assert_eq!(auto.total_cycles, expected.total_cycles, "{}", soc.name);
    }
}
