//! The standing stress workload: the fixed-seed smoke corpus, run
//! end-to-end (wrap → share → schedule → patterns → grade) with every
//! invariant checked. Any violation or infeasible SOC fails the suite.

use steac_sim::exec::Exec;
use steac_zoo::{run_corpus, RunOptions, ZooParams};

/// The full 120-SOC corpus with grading. Slow in debug builds — the CI
/// zoo job runs it in release with `--include-ignored`.
#[test]
#[cfg_attr(debug_assertions, ignore = "slow in debug: run with --release")]
fn smoke_corpus_runs_end_to_end_clean() {
    let params = ZooParams::smoke();
    let opts = RunOptions {
        grade: true,
        vectors: 48,
        ..RunOptions::default()
    };
    let report = match run_corpus(&params, &Exec::from_env(), &opts) {
        Ok(r) => r,
        Err((index, e)) => panic!("soc{index:03} infeasible: {e}"),
    };
    assert!(report.rows.len() >= 100, "corpus must span >=100 SOCs");
    assert_eq!(report.violations(), 0, "invariant violations:\n{report}");
    for row in &report.rows {
        let cov = row.coverage.expect("every SOC graded");
        assert!(cov > 0.0, "{}: zero coverage", row.name);
        assert!(
            row.serial_cycles.is_some(),
            "{}: serial reference infeasible",
            row.name
        );
        assert!(
            row.speedup().is_none_or(|s| s >= 1.0 - 1e-9),
            "{}: session schedule slower than serial",
            row.name
        );
    }
}

/// The adversarial corpus: pathological spiky power under near-zero
/// pin/power headroom. Feasibility and invariants must hold on every
/// instance even when the schedule is forced down to single-wire TAM
/// grants. Fixed seed — the CI zoo job runs this with
/// `--include-ignored`.
#[test]
#[cfg_attr(debug_assertions, ignore = "slow in debug: run with --release")]
fn adversarial_corpus_runs_end_to_end_clean() {
    let params = ZooParams::adversarial();
    let opts = RunOptions {
        grade: true,
        vectors: 32,
        ..RunOptions::default()
    };
    let report = match run_corpus(&params, &Exec::from_env(), &opts) {
        Ok(r) => r,
        Err((index, e)) => panic!("adversarial soc{index:03} infeasible: {e}"),
    };
    assert_eq!(report.rows.len(), 40);
    assert_eq!(report.violations(), 0, "invariant violations:\n{report}");
    for row in &report.rows {
        assert!(row.coverage.expect("graded") > 0.0, "{}", row.name);
    }
}

/// Scheduling-only pass over a reduced corpus (smoke knobs, smaller
/// core band), cheap enough for debug builds, so the ordinary test run
/// always exercises the zoo path.
#[test]
fn corpus_prefix_schedules_clean_in_debug() {
    let params = ZooParams {
        socs: 16,
        max_cores: 48,
        ..ZooParams::smoke()
    };
    let opts = RunOptions {
        grade: false,
        ..RunOptions::default()
    };
    let report = match run_corpus(&params, &Exec::serial(), &opts) {
        Ok(r) => r,
        Err((index, e)) => panic!("soc{index:03} infeasible: {e}"),
    };
    assert_eq!(report.violations(), 0, "invariant violations:\n{report}");
}

/// Two runs of the same corpus must produce identical schedules.
#[test]
fn corpus_is_deterministic() {
    let params = ZooParams {
        socs: 10,
        max_cores: 40,
        ..ZooParams::smoke()
    };
    let opts = RunOptions {
        grade: false,
        check: false,
        ..RunOptions::default()
    };
    let a = run_corpus(&params, &Exec::serial(), &opts).expect("feasible");
    let b = run_corpus(&params, &Exec::serial(), &opts).expect("feasible");
    let totals = |r: &steac_zoo::CorpusReport| -> Vec<(String, u64, usize)> {
        r.rows
            .iter()
            .map(|row| (row.name.clone(), row.total_cycles, row.sessions))
            .collect()
    };
    assert_eq!(totals(&a), totals(&b));
}
