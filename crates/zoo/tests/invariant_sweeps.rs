//! Budget-sweep invariants over zoo instances: TAM-width monotonicity
//! on the exhaustive path, and water-filling allocation bounds, plus a
//! property test over freshly-seeded corpora.

use proptest::prelude::*;
use steac_sched::TestTask;
use steac_sim::exec::Exec;
use steac_zoo::{check_alloc, check_schedule, check_tam_monotone, run_soc, RunOptions, ZooParams};

const WIDENINGS: [usize; 5] = [0, 8, 16, 32, 64];

#[test]
fn total_time_is_monotone_in_tam_width_on_the_exact_path() {
    // 16 SOCs keeps the partition enumeration (Bell-number growth)
    // affordable in debug builds while still sweeping 5 widths per SOC.
    let params = ZooParams {
        socs: 16,
        ..ZooParams::tiny()
    };
    for index in 0..params.socs {
        let soc = params.soc(index);
        if soc.tasks.len() > steac_sched::EXHAUSTIVE_LIMIT {
            continue;
        }
        let violations = check_tam_monotone(&soc, &WIDENINGS);
        assert!(violations.is_empty(), "{}: {violations:?}", soc.name);
    }
}

#[test]
fn water_filling_respects_bounds_across_budget_sweeps() {
    let params = ZooParams {
        socs: 30,
        ..ZooParams::smoke()
    };
    for index in 0..params.socs {
        let soc = params.soc(index);
        let refs: Vec<&TestTask> = soc.tasks.iter().take(12).collect();
        let floor: usize = refs.iter().map(|t| t.min_pins()).sum();
        let budgets: Vec<usize> = (0..10).map(|k| floor + 1 + k * 7).collect();
        let violations = check_alloc(&refs, &budgets);
        assert!(violations.is_empty(), "{}: {violations:?}", soc.name);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any freshly-seeded small corpus schedules clean: the generator's
    /// feasibility-by-construction sizing and the scheduler's
    /// invariants hold for arbitrary seeds, not just the smoke seed.
    #[test]
    fn random_seeds_schedule_clean(seed in 0u64..u64::MAX) {
        let params = ZooParams { seed, socs: 3, ..ZooParams::tiny() };
        let opts = RunOptions { grade: false, ..RunOptions::default() };
        for index in 0..params.socs {
            let soc = params.soc(index);
            let run = run_soc(&soc, &Exec::serial(), &opts)
                .unwrap_or_else(|e| panic!("{} (seed {seed:#x}): {e}", soc.name));
            prop_assert!(run.violations.is_empty(), "{} (seed {seed:#x}): {:?}",
                soc.name, run.violations);
            let check = check_schedule(&soc, &run.schedule);
            prop_assert!(check.is_empty(), "{} (seed {seed:#x}): {check:?}", soc.name);
        }
    }
}
