//! The unified execution-backend API: one `&Exec` value selects *how*
//! a batched workload runs — serially, across in-process threads,
//! across `steac-worker` processes, or across a fleet of remote
//! `steac-worker` hosts — while the workload code stays identical.
//!
//! Every batched workload in the platform (PPSFP fault grading, batched
//! ATE playback, March fault simulation, JPEG pattern playback)
//! decomposes into independent work units over shared immutable state.
//! Before this module each workload exposed a family of near-identical
//! entry points (`_with`, `_processes`, `_with_pool`, env sniffing in
//! the default); now each exposes exactly one, taking [`&Exec`](Exec):
//!
//! ```text
//! fault::grade_vectors(&exec, …)
//! fault::fault_coverage(&exec, …)
//! cycle::apply_cycle_patterns_batch(&exec, …)
//! membist::faultsim::fault_coverage(&exec, …)
//! dsc::verify::jpeg_playback_batch(&exec, …)
//! ```
//!
//! A workload describes itself to the dispatcher once, as an
//! [`ExecWork`] — how to run a unit in-process, and how to serialize
//! the job/units and decode results for process (and, later, remote)
//! transports. [`Exec::dispatch`] then owns the one merge-by-unit-index
//! determinism contract for every backend: unit `i`'s result (or the
//! lowest-indexed unit's error) is identical no matter which backend
//! ran it or how execution interleaved. [`Backend::Remote`] is that
//! seam paying off: the same wire bytes ship over a pluggable
//! [`crate::remote::Transport`] (TCP to `steac-worker --serve`
//! listeners on other machines, or spawned local processes) through a
//! work-stealing [`RemoteFleet`] — and no workload crate changed to
//! gain it.
//!
//! Flows whose unit list is *produced* rather than materialized — the
//! streaming generate→play pipeline — use the sibling seam: a
//! [`StreamWork`] pulls owned units from an iterator (typically a
//! bounded channel fed by a generator thread) and
//! [`Exec::dispatch_stream`] plays them through the same backends under
//! the same determinism contract, holding only a bounded window of
//! units in flight so peak memory follows pipeline depth, not stream
//! length.
//!
//! # Fallback policy
//!
//! Shipped dispatch — processes or remote hosts — can fail for reasons
//! that have nothing to do with the workload (worker binary missing,
//! spawn failure, a worker dying, every remote host lost). The
//! [`Fallback`] policy makes the response explicit instead of
//! per-callsite folklore:
//!
//! * [`Fallback::InThread`] (the default): recompute the whole run on
//!   the in-thread pool. The fallback is **surfaced**, not silent — it
//!   is logged to stderr, counted on the `Exec`
//!   ([`Exec::process_fallbacks`]), and returned to the caller in
//!   [`Dispatch::fallback`] so reports can carry it.
//! * [`Fallback::Fail`]: surface the failure as the workload's typed
//!   error (deterministically the lowest-indexed affected unit).
//!
//! (Transient remote trouble is retried *inside* the fleet first; the
//! policy only decides what a run that could not be completed remotely
//! means. See [`crate::remote`] for the retry/requeue model.)
//!
//! # Environment resolution
//!
//! [`Exec::from_env`] is the deployment knob. Precedence:
//!
//! 1. `STEAC_EXEC` — `serial`, `auto`, `threads[:N]`, `processes[:N]`,
//!    `remote:host:port[,host:port…]` (the CI matrix sets this);
//! 2. `STEAC_HOSTS=host:port[,host:port…]` — shorthand for the
//!    `remote:` spec;
//! 3. `STEAC_WORKERS=N` — process pool of `N` workers (pre-`Exec`
//!    compatibility knob);
//! 4. `STEAC_THREADS=N` — in-process pool of `N` threads;
//! 5. otherwise the detected core count ([`Threads::auto`]).
//!
//! A malformed spec **panics** with the parse diagnostic rather than
//! silently running some default backend ([`SpecError`]).

use crate::remote::RemoteFleet;
use crate::shard::{self, PoolError, ProcessPool, Threads};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};

/// Where work units physically execute. `#[non_exhaustive]` so further
/// rungs can be added without breaking any workload crate — exactly how
/// [`Backend::Remote`] arrived after `Processes`.
#[derive(Debug)]
#[non_exhaustive]
pub enum Backend {
    /// Every unit runs inline on the calling thread, in unit order.
    Serial,
    /// Units fan across a `std::thread::scope` pool ([`shard::run_units`]).
    Threads(Threads),
    /// Units serialize to `steac-worker` processes ([`ProcessPool`]).
    Processes(ProcessPool),
    /// Units serialize to `steac-worker` hosts behind pluggable
    /// transports ([`crate::remote`]): TCP to `steac-worker --serve`
    /// listeners on other machines, or spawned local processes — with
    /// work-stealing and retry/requeue across the fleet.
    Remote(RemoteFleet),
}

/// What [`Exec::dispatch`] does when shipped dispatch — the process
/// *or* remote backend — fails (spawn failure, a worker dying, a remote
/// host lost with retries exhausted, malformed results): the explicit
/// replacement for the per-callsite behaviour the `_processes` variants
/// used to hard-code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Fallback {
    /// Recompute in-process, logging and counting the fallback (see
    /// [`Exec::process_fallbacks`] and [`Dispatch::fallback`]). The
    /// run still produces exactly the result the in-thread pool would
    /// have produced — never a silently different one.
    #[default]
    InThread,
    /// Surface the failure as the workload's typed error, attributed to
    /// the lowest-indexed affected unit.
    Fail,
}

/// A rejected `STEAC_EXEC` / `STEAC_HOSTS` backend spec — what was
/// supplied and why it does not parse. [`Exec::from_env`] turns this
/// into a panic so a misconfigured deployment cannot silently run a
/// different backend than it asked for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    spec: String,
    reason: String,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid exec spec `{}`: {}; expected serial | auto | threads[:N] | processes[:N] \
             | remote:host:port[,host:port...]",
            self.spec, self.reason
        )
    }
}

impl std::error::Error for SpecError {}

/// A single execution-backend value: backend + failure policy. Shared
/// by reference across workload calls; the only interior state is the
/// process-fallback counter.
#[derive(Debug)]
pub struct Exec {
    backend: Backend,
    on_process_failure: Fallback,
    fallbacks: AtomicUsize,
}

/// The outcome of a successful [`Exec::dispatch`]: per-unit results in
/// unit order, plus the fallback diagnostic when process dispatch
/// failed and the run was recomputed in-thread.
#[derive(Debug)]
pub struct Dispatch<T> {
    /// One result per work unit, merged **by unit index**.
    pub units: Vec<T>,
    /// `Some(diagnostic)` when the run fell back from processes to the
    /// in-thread pool under [`Fallback::InThread`]; `None` otherwise.
    pub fallback: Option<String>,
}

/// The outcome of a successful [`Exec::dispatch_stream`]: how many
/// outputs reached the sink, plus fallback accounting. A streaming run
/// ships many batches, so unlike [`Dispatch`] it can fall back more
/// than once.
#[derive(Debug)]
pub struct StreamDispatch {
    /// Outputs delivered to the sink, in unit order.
    pub units: usize,
    /// `Some(first diagnostic)` when any shipped batch fell back to the
    /// in-thread pull loop under [`Fallback::InThread`]; `None`
    /// otherwise.
    pub fallback: Option<String>,
    /// Number of shipped batches recomputed in-thread.
    pub fallbacks: usize,
}

impl StreamDispatch {
    fn clean(units: usize) -> Self {
        StreamDispatch {
            units,
            fallback: None,
            fallbacks: 0,
        }
    }

    /// Number of per-batch in-thread fallbacks this streaming dispatch
    /// folded in — the per-call count reports fold into their totals.
    #[must_use]
    pub fn fallback_count(&self) -> usize {
        self.fallbacks
    }
}

/// A batch of independent work units that every backend can execute:
/// in-process via [`ExecWork::run_unit_local`], or serialized to
/// `steac-worker` processes (and, later, remote hosts) via the
/// `kind`/`encode_*`/`decode_result` half, which must agree with the
/// worker-side [`shard::WireJob`] registered for the same `kind`.
///
/// Implementations live next to their workloads (`crate::fault`,
/// `steac-pattern`, `steac-membist`); [`Exec::dispatch`] is the only
/// consumer.
pub trait ExecWork: Sync {
    /// Per-unit result.
    type Output: Send;
    /// Workload error type.
    type Error: Send;

    /// Work-unit kind routed by the worker-side job registry.
    fn kind(&self) -> u16;

    /// Number of independent work units.
    fn unit_count(&self) -> usize;

    /// Serializes the shared job block (shipped once per worker). Only
    /// called for process-backed dispatch.
    fn encode_job(&self) -> Vec<u8>;

    /// Serializes one work unit. Only called for process-backed
    /// dispatch.
    fn encode_unit(&self, unit: usize) -> Vec<u8>;

    /// Executes one unit in-process — the exact code the worker binary
    /// runs for the same unit, so dispatch flavour can never change a
    /// result.
    ///
    /// # Errors
    ///
    /// The workload's typed error for this unit.
    fn run_unit_local(&self, unit: usize) -> Result<Self::Output, Self::Error>;

    /// Decodes one worker result payload.
    ///
    /// # Errors
    ///
    /// A diagnostic for malformed payloads; the dispatcher treats it as
    /// a process-level failure of that unit (subject to the fallback
    /// policy).
    fn decode_result(&self, unit: usize, bytes: &[u8]) -> Result<Self::Output, String>;

    /// Wraps a process-pool failure in the workload's error type (used
    /// under [`Fallback::Fail`]).
    fn pool_error(&self, error: PoolError) -> Self::Error;
}

/// Units a streaming dispatcher pulls from the producer per shipped
/// batch (process / remote backends). This bounds in-flight memory: at
/// most `dispatchers × STREAM_BATCH_UNITS` owned units (plus their
/// encoded wire bytes) sit between the producer and the wire at any
/// moment, independent of how many units the stream eventually yields.
pub const STREAM_BATCH_UNITS: usize = 32;

/// The producer-driven sibling of [`ExecWork`]: a workload whose units
/// are **owned values pulled from an iterator** (typically the
/// receiving end of a bounded channel fed by a generator thread)
/// rather than indices into a materialized batch.
/// [`Exec::dispatch_stream`] is the only consumer; the wire half must
/// agree with the same worker-side [`shard::WireJob`] kind as the
/// materialized path, so a worker cannot tell the flavours apart — and
/// the program cache dedupes both by the same job hash.
pub trait StreamWork: Sync {
    /// One owned work unit (`Sync` because the in-process pool fans a
    /// pulled window across threads by reference).
    type Unit: Send + Sync;
    /// Per-unit result.
    type Output: Send;
    /// Workload error type.
    type Error: Send;

    /// Work-unit kind routed by the worker-side job registry.
    fn kind(&self) -> u16;

    /// Serializes the shared job block. It is encoded once for the
    /// whole stream: every shipped batch reuses it, and the worker
    /// program cache dedupes the batches on its hash.
    fn encode_job(&self) -> Vec<u8>;

    /// Serializes one work unit for the wire.
    fn encode_unit(&self, unit: &Self::Unit) -> Vec<u8>;

    /// Executes one unit in-process — the exact code the worker binary
    /// runs for the same unit, so dispatch flavour can never change a
    /// result.
    ///
    /// # Errors
    ///
    /// The workload's typed error for this unit.
    fn run_unit_local(&self, unit: &Self::Unit) -> Result<Self::Output, Self::Error>;

    /// Decodes one worker result payload for `unit`.
    ///
    /// # Errors
    ///
    /// A diagnostic for malformed payloads; the dispatcher treats it as
    /// a shipped-level failure of that unit (subject to the fallback
    /// policy).
    fn decode_result(&self, unit: &Self::Unit, bytes: &[u8]) -> Result<Self::Output, String>;

    /// Wraps a pool/fleet failure in the workload's error type (used
    /// under [`Fallback::Fail`]).
    fn pool_error(&self, error: PoolError) -> Self::Error;
}

impl Exec {
    /// Serial backend: every unit runs inline, in unit order.
    #[must_use]
    pub fn serial() -> Self {
        Exec::with_backend(Backend::Serial)
    }

    /// In-process thread-pool backend of the given width.
    #[must_use]
    pub fn threads(threads: Threads) -> Self {
        Exec::with_backend(Backend::Threads(threads))
    }

    /// Process-pool backend over `steac-worker` processes.
    #[must_use]
    pub fn processes(pool: ProcessPool) -> Self {
        Exec::with_backend(Backend::Processes(pool))
    }

    /// Remote backend over a fleet of transport-connected `steac-worker`
    /// hosts ([`RemoteFleet`]) — machine-level fan-out with
    /// work-stealing and retry/requeue, same determinism contract.
    #[must_use]
    pub fn remote(fleet: RemoteFleet) -> Self {
        Exec::with_backend(Backend::Remote(fleet))
    }

    /// Thread backend over the detected core count (ignores the
    /// environment).
    #[must_use]
    pub fn auto() -> Self {
        Exec::threads(Threads::auto())
    }

    /// The deployment-level backend: resolves `STEAC_EXEC`, then
    /// `STEAC_HOSTS` (a bare remote host list), then the pre-`Exec`
    /// `STEAC_WORKERS` / `STEAC_THREADS` knobs (in that precedence),
    /// defaulting to [`Exec::auto`].
    ///
    /// Malformed specs are **loud**: a deployment that sets
    /// `STEAC_EXEC=threads:0` (or any other spec [`Exec::parse`]
    /// rejects) asked for a backend it is not getting, and silently
    /// running a default instead would invalidate whatever that run was
    /// measuring — so this panics with the parse diagnostic instead.
    /// The one tolerated degradation is environmental, not syntactic: a
    /// well-formed `processes` spec whose worker binary cannot be found
    /// falls back to threads with a warning on stderr.
    ///
    /// A variable that is set but blank (`STEAC_EXEC= cmd`, an empty CI
    /// yaml value) counts as unset — blanking a variable is the shell
    /// idiom for "without this knob", not a malformed spec.
    ///
    /// # Panics
    ///
    /// When `STEAC_EXEC` or `STEAC_HOSTS` is non-blank but does not
    /// parse.
    #[must_use]
    pub fn from_env() -> Self {
        let set = |name: &str| {
            std::env::var(name)
                .ok()
                .filter(|value| !value.trim().is_empty())
        };
        if let Some(spec) = set("STEAC_EXEC") {
            match Exec::parse(&spec) {
                Ok(exec) => return exec,
                Err(e) => panic!("steac exec: STEAC_EXEC: {e}"),
            }
        }
        if let Some(hosts) = set("STEAC_HOSTS") {
            match Exec::parse(&format!("remote:{hosts}")) {
                Ok(exec) => return exec,
                Err(e) => panic!("steac exec: STEAC_HOSTS: {e}"),
            }
        }
        if let Some(workers) = shard::env_workers() {
            if let Some(pool) = ProcessPool::new(workers) {
                return Exec::processes(pool);
            }
            eprintln!(
                "steac exec: STEAC_WORKERS={workers} but no steac-worker binary found; \
                 using the thread backend"
            );
        }
        Exec::threads(Threads::from_env())
    }

    /// Parses a `STEAC_EXEC`-style backend spec:
    ///
    /// * `serial` | `auto`
    /// * `threads[:N]` | `processes[:N]` (`N` > 0; bare forms use the
    ///   detected core count)
    /// * `remote:host:port[,host:port…]` — a [`RemoteFleet`] of
    ///   [`crate::remote::TcpTransport`]s, one per address
    ///
    /// Anything else is a typed [`SpecError`] naming what was wrong —
    /// never a silently substituted backend. One environmental (not
    /// syntactic) degradation remains: a well-formed `processes` spec
    /// whose worker binary cannot be found falls back to the thread
    /// backend with a warning, so a binary-less environment still runs.
    ///
    /// # Errors
    ///
    /// A [`SpecError`] describing the malformed spec.
    pub fn parse(spec: &str) -> Result<Self, SpecError> {
        let raw = spec;
        let err = |reason: String| SpecError {
            spec: raw.to_string(),
            reason,
        };
        let spec = spec.trim();
        let (head, arg) = match spec.split_once(':') {
            Some((h, a)) => (h.trim(), Some(a.trim())),
            None => (spec, None),
        };
        let width = |arg: Option<&str>| -> Result<Option<usize>, SpecError> {
            match arg {
                None => Ok(None),
                Some(s) => match s.parse::<usize>() {
                    Ok(n) if n > 0 => Ok(Some(n)),
                    _ => Err(err(format!(
                        "worker count must be a positive integer, got `{s}`"
                    ))),
                },
            }
        };
        match head {
            "serial" | "auto" if arg.is_some() => Err(err(format!("`{head}` takes no `:` suffix"))),
            "serial" => Ok(Exec::serial()),
            "auto" => Ok(Exec::auto()),
            "threads" => Ok(Exec::threads(match width(arg)? {
                Some(n) => Threads::exact(n),
                None => Threads::auto(),
            })),
            "processes" => {
                let workers = width(arg)?.unwrap_or_else(|| Threads::auto().get());
                match ProcessPool::new(workers) {
                    Some(pool) => Ok(Exec::processes(pool)),
                    None => {
                        eprintln!(
                            "steac exec: `{spec}` requested but no steac-worker binary found; \
                             using the thread backend"
                        );
                        Ok(Exec::threads(Threads::from_env()))
                    }
                }
            }
            "remote" => {
                let Some(list) = arg.filter(|a| !a.is_empty()) else {
                    return Err(err(
                        "`remote` needs a comma-separated host:port list".to_string()
                    ));
                };
                let mut addrs = Vec::new();
                for entry in list.split(',') {
                    let entry = entry.trim();
                    let valid = entry.rsplit_once(':').is_some_and(|(host, port)| {
                        !host.is_empty() && port.parse::<u16>().is_ok()
                    });
                    if !valid {
                        return Err(err(format!("`{entry}` is not a host:port address")));
                    }
                    addrs.push(entry.to_string());
                }
                Ok(Exec::remote(
                    RemoteFleet::tcp(addrs).expect("host list verified non-empty"),
                ))
            }
            _ => Err(err(format!("unknown backend `{head}`"))),
        }
    }

    fn with_backend(backend: Backend) -> Self {
        Exec {
            backend,
            on_process_failure: Fallback::default(),
            fallbacks: AtomicUsize::new(0),
        }
    }

    /// Sets the process-failure policy (builder style; the default is
    /// [`Fallback::InThread`]).
    #[must_use]
    pub fn with_fallback(mut self, policy: Fallback) -> Self {
        self.on_process_failure = policy;
        self
    }

    /// The configured backend.
    #[must_use]
    pub fn backend(&self) -> &Backend {
        &self.backend
    }

    /// The configured process-failure policy.
    #[must_use]
    pub fn on_process_failure(&self) -> Fallback {
        self.on_process_failure
    }

    /// Configured fan-out width: 1 for serial, the thread count, the
    /// worker-process count, or the remote host count (runs additionally
    /// cap it at the unit count).
    #[must_use]
    pub fn width(&self) -> usize {
        match &self.backend {
            Backend::Serial => 1,
            Backend::Threads(t) => t.get(),
            Backend::Processes(p) => p.workers(),
            Backend::Remote(f) => f.hosts(),
        }
    }

    /// The in-process worker count this backend implies — what
    /// [`Exec::run_units`] / [`Exec::run_fallible`] use, and what
    /// process dispatch falls back to under [`Fallback::InThread`].
    /// `Serial` pins it to 1; `Processes` and `Remote` use
    /// [`Threads::from_env`] for their local compute.
    #[must_use]
    pub fn local_threads(&self) -> Threads {
        match &self.backend {
            Backend::Serial => Threads::single(),
            Backend::Threads(t) => *t,
            Backend::Processes(_) | Backend::Remote(_) => Threads::from_env(),
        }
    }

    /// How many times process dispatch on this `Exec` has fallen back
    /// to the in-thread pool (only ever nonzero under
    /// [`Fallback::InThread`]). Reports fold the per-call count in; this
    /// is the running total across calls.
    #[must_use]
    pub fn process_fallbacks(&self) -> usize {
        self.fallbacks.load(Ordering::Relaxed)
    }

    /// Runs `work(0..unit_count)` on the backend's **in-process** pool
    /// and returns results in unit order — for workloads (or workload
    /// phases, like pattern generation) whose closures cannot cross a
    /// process boundary. `Serial` runs inline; `Processes` uses the
    /// local thread width ([`Exec::local_threads`]).
    pub fn run_units<T, F>(&self, unit_count: usize, work: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        shard::run_units(self.local_threads(), unit_count, work)
    }

    /// [`Exec::run_units`] for fallible work: all results in unit
    /// order, or the error of the lowest-indexed failing unit.
    ///
    /// # Errors
    ///
    /// The error of the lowest-indexed failing unit.
    pub fn run_fallible<T, E, F>(&self, unit_count: usize, work: F) -> Result<Vec<T>, E>
    where
        T: Send,
        E: Send,
        F: Fn(usize) -> Result<T, E> + Sync,
    {
        shard::run_fallible(self.local_threads(), unit_count, work)
    }

    /// Executes an [`ExecWork`] on the configured backend and merges
    /// the per-unit results **by unit index** — the single dispatch
    /// seam every workload entry point routes through, so the
    /// determinism contract (unit-order results, lowest-indexed-unit
    /// errors, bit-identical reports across backends) lives in exactly
    /// one place.
    ///
    /// # Errors
    ///
    /// The workload error of the lowest-indexed failing unit; under
    /// [`Fallback::Fail`], also the wrapped process-pool failure.
    pub fn dispatch<W: ExecWork>(&self, work: &W) -> Result<Dispatch<W::Output>, W::Error> {
        let count = work.unit_count();
        let local =
            |threads: Threads| shard::run_fallible(threads, count, |i| work.run_unit_local(i));
        match &self.backend {
            Backend::Serial => return Ok(Dispatch::clean(local(Threads::single())?)),
            Backend::Threads(t) => return Ok(Dispatch::clean(local(*t)?)),
            Backend::Processes(_) | Backend::Remote(_) => {}
        }
        if count == 0 {
            return Ok(Dispatch::clean(Vec::new()));
        }
        let job = work.encode_job();
        let units: Vec<Vec<u8>> = (0..count).map(|i| work.encode_unit(i)).collect();
        let shipped = match &self.backend {
            Backend::Processes(pool) => pool.run(work.kind(), &job, &units),
            Backend::Remote(fleet) => fleet.run(work.kind(), &job, &units),
            Backend::Serial | Backend::Threads(_) => unreachable!("handled above"),
        };
        let failure = match shipped {
            Ok(results) => {
                let mut decoded = Vec::with_capacity(count);
                let mut bad = None;
                for (unit, bytes) in results.iter().enumerate() {
                    match work.decode_result(unit, bytes) {
                        Ok(v) => decoded.push(v),
                        Err(diagnostic) => {
                            bad = Some(PoolError::Unit { unit, diagnostic });
                            break;
                        }
                    }
                }
                match bad {
                    None => return Ok(Dispatch::clean(decoded)),
                    Some(failure) => failure,
                }
            }
            Err(failure) => failure,
        };
        match self.on_process_failure {
            Fallback::Fail => Err(work.pool_error(failure)),
            Fallback::InThread => {
                let diagnostic = failure.to_string();
                self.fallbacks.fetch_add(1, Ordering::Relaxed);
                eprintln!(
                    "steac exec: {self} dispatch failed ({diagnostic}); \
                     recomputing on the in-thread pool"
                );
                Ok(Dispatch {
                    units: local(self.local_threads())?,
                    fallback: Some(diagnostic),
                })
            }
        }
    }

    /// Executes a [`StreamWork`] over units pulled from `units` as they
    /// become available, delivering outputs to `sink` **strictly in
    /// unit order** — the streaming sibling of [`Exec::dispatch`], for
    /// flows whose unit list is produced incrementally (a generator
    /// thread feeding a bounded channel) instead of materialized up
    /// front.
    ///
    /// Memory stays bounded by pipeline depth, never by stream length:
    /// the serial and thread backends pull a window of `4 × threads`
    /// units at a time; the process and remote backends pull
    /// [`STREAM_BATCH_UNITS`]-unit batches on dispatcher threads and a
    /// merge loop re-orders finished batches back into unit order. The
    /// remote path reuses the in-flight window and content-addressed
    /// program cache of [`crate::remote`]: concurrent batches of the
    /// same job still ship the program to each host exactly once (the
    /// host-level prime gate), and every later batch goes by hash.
    ///
    /// Determinism contract: on success the sink sees exactly the
    /// outputs the materialized path would have produced, in unit
    /// order, regardless of backend, batch boundaries, or interleaving.
    /// On error the sink has seen an in-order prefix of those outputs
    /// (a backend may withhold outputs from the failing unit's own
    /// window or batch) and the error is the lowest-indexed failing
    /// unit's.
    ///
    /// # Errors
    ///
    /// The workload error of the lowest-indexed failing unit; under
    /// [`Fallback::Fail`], also the wrapped pool/fleet failure.
    pub fn dispatch_stream<W, I, S>(
        &self,
        work: &W,
        units: I,
        sink: S,
    ) -> Result<StreamDispatch, W::Error>
    where
        W: StreamWork,
        I: Iterator<Item = W::Unit> + Send,
        S: FnMut(W::Output),
    {
        match &self.backend {
            Backend::Serial | Backend::Threads(_) => {
                self.stream_local(work, units, sink, self.local_threads())
            }
            Backend::Processes(_) | Backend::Remote(_) => self.stream_shipped(work, units, sink),
        }
    }

    /// Serial/thread streaming: pull a bounded window off the producer,
    /// fan it across the in-process pool ([`shard::run_fallible`] — the
    /// same lowest-index error rule as materialized dispatch), sink it
    /// in order, repeat.
    fn stream_local<W, I, S>(
        &self,
        work: &W,
        mut units: I,
        mut sink: S,
        threads: Threads,
    ) -> Result<StreamDispatch, W::Error>
    where
        W: StreamWork,
        I: Iterator<Item = W::Unit>,
        S: FnMut(W::Output),
    {
        let window = threads.get() * 4;
        let mut delivered = 0usize;
        loop {
            let batch: Vec<W::Unit> = units.by_ref().take(window).collect();
            if batch.is_empty() {
                return Ok(StreamDispatch::clean(delivered));
            }
            let outputs =
                shard::run_fallible(threads, batch.len(), |i| work.run_unit_local(&batch[i]))?;
            for output in outputs {
                sink(output);
                delivered += 1;
            }
        }
    }

    /// Process/remote streaming: dispatcher threads pull bounded
    /// batches off the shared producer and ship each one through the
    /// pool/fleet as a sub-run of the same job, while a merge loop on
    /// the calling thread re-orders finished batches back into unit
    /// order before sinking. In-flight state is bounded by the
    /// dispatcher count and the result-channel depth — never by the
    /// stream length.
    fn stream_shipped<W, I, S>(
        &self,
        work: &W,
        units: I,
        mut sink: S,
    ) -> Result<StreamDispatch, W::Error>
    where
        W: StreamWork,
        I: Iterator<Item = W::Unit> + Send,
        S: FnMut(W::Output),
    {
        struct Feed<I> {
            units: I,
            next_seq: usize,
        }
        // Two dispatchers keep a remote fleet's pipeline full (one batch
        // on the wire while the next is pulled and encoded); the process
        // pool spawns workers per run, so a second concurrent batch
        // would double the process count instead of overlapping it.
        let dispatchers = match &self.backend {
            Backend::Remote(_) => 2,
            _ => 1,
        };
        let kind = work.kind();
        let job = work.encode_job();
        let feed = Mutex::new(Feed { units, next_seq: 0 });
        let abort = AtomicBool::new(false);
        let (tx, rx) = mpsc::sync_channel(dispatchers * 2);
        std::thread::scope(|scope| {
            for _ in 0..dispatchers {
                let tx = tx.clone();
                let (feed, abort, job) = (&feed, &abort, &job);
                scope.spawn(move || {
                    while !abort.load(Ordering::Relaxed) {
                        let (start, batch) = {
                            let mut feed = feed.lock().expect("no panics hold the lock");
                            let start = feed.next_seq;
                            let batch: Vec<W::Unit> =
                                feed.units.by_ref().take(STREAM_BATCH_UNITS).collect();
                            feed.next_seq += batch.len();
                            (start, batch)
                        };
                        if batch.is_empty() {
                            break;
                        }
                        let done = self.ship_stream_batch(work, kind, job, start, &batch);
                        if done.is_err() {
                            // Terminal under Fallback::Fail: stop pulling.
                            abort.store(true, Ordering::Relaxed);
                        }
                        if tx.send((start, batch.len(), done)).is_err() {
                            break; // the merge loop saw an earlier error
                        }
                    }
                });
            }
            drop(tx);
            let mut pending = BTreeMap::new();
            let mut head = 0usize;
            let mut delivered = 0usize;
            let mut fallbacks = 0usize;
            let mut fallback: Option<String> = None;
            let mut error: Option<W::Error> = None;
            'merge: for (start, len, done) in rx {
                pending.insert(start, (len, done));
                while let Some((len, done)) = pending.remove(&head) {
                    match done {
                        Ok((results, diagnostic)) => {
                            head += len;
                            if let Some(diagnostic) = diagnostic {
                                fallbacks += 1;
                                fallback.get_or_insert(diagnostic);
                            }
                            for result in results {
                                match result {
                                    Ok(output) => {
                                        sink(output);
                                        delivered += 1;
                                    }
                                    Err(e) => {
                                        error = Some(e);
                                        abort.store(true, Ordering::Relaxed);
                                        break 'merge;
                                    }
                                }
                            }
                        }
                        Err(e) => {
                            error = Some(e);
                            break 'merge;
                        }
                    }
                }
            }
            match error {
                Some(e) => Err(e),
                None => Ok(StreamDispatch {
                    units: delivered,
                    fallback,
                    fallbacks,
                }),
            }
        })
    }

    /// Ships one streamed batch (units `start..start + batch.len()`)
    /// through the pool/fleet and decodes it, applying the fallback
    /// policy per batch: `Ok` carries per-unit results in batch order
    /// (recomputed in-thread under [`Fallback::InThread`], with the
    /// diagnostic), `Err` is terminal under [`Fallback::Fail`].
    #[allow(clippy::type_complexity)]
    fn ship_stream_batch<W: StreamWork>(
        &self,
        work: &W,
        kind: u16,
        job: &[u8],
        start: usize,
        batch: &[W::Unit],
    ) -> Result<(Vec<Result<W::Output, W::Error>>, Option<String>), W::Error> {
        let encoded: Vec<Vec<u8>> = batch.iter().map(|u| work.encode_unit(u)).collect();
        let shipped = match &self.backend {
            Backend::Processes(pool) => pool.run(kind, job, &encoded),
            Backend::Remote(fleet) => fleet.run(kind, job, &encoded),
            Backend::Serial | Backend::Threads(_) => {
                unreachable!("in-process backends stream locally")
            }
        };
        let failure = match shipped {
            Ok(results) => {
                let mut decoded = Vec::with_capacity(batch.len());
                let mut bad = None;
                for (offset, (unit, bytes)) in batch.iter().zip(&results).enumerate() {
                    match work.decode_result(unit, bytes) {
                        Ok(v) => decoded.push(Ok(v)),
                        Err(diagnostic) => {
                            bad = Some(PoolError::Unit {
                                unit: start + offset,
                                diagnostic,
                            });
                            break;
                        }
                    }
                }
                match bad {
                    None => return Ok((decoded, None)),
                    Some(failure) => failure,
                }
            }
            // Re-key unit-level failures from batch-local to stream
            // indices so diagnostics name the true unit.
            Err(PoolError::Unit { unit, diagnostic }) => PoolError::Unit {
                unit: start + unit,
                diagnostic,
            },
            Err(failure) => failure,
        };
        match self.on_process_failure {
            Fallback::Fail => Err(work.pool_error(failure)),
            Fallback::InThread => {
                let diagnostic = failure.to_string();
                self.fallbacks.fetch_add(1, Ordering::Relaxed);
                eprintln!(
                    "steac exec: {self} stream dispatch failed ({diagnostic}); \
                     recomputing the batch in-thread"
                );
                let recomputed = batch.iter().map(|u| work.run_unit_local(u)).collect();
                Ok((recomputed, Some(diagnostic)))
            }
        }
    }
}

impl<T> Dispatch<T> {
    fn clean(units: Vec<T>) -> Self {
        Dispatch {
            units,
            fallback: None,
        }
    }

    /// 1 when this dispatch fell back from processes to the in-thread
    /// pool, else 0 — the per-call count reports fold in.
    #[must_use]
    pub fn fallback_count(&self) -> usize {
        usize::from(self.fallback.is_some())
    }
}

impl Default for Exec {
    fn default() -> Self {
        Exec::from_env()
    }
}

impl fmt::Display for Exec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.backend {
            Backend::Serial => f.write_str("serial"),
            Backend::Threads(t) => write!(f, "threads:{}", t.get()),
            Backend::Processes(p) => write!(f, "processes:{}", p.workers()),
            Backend::Remote(fleet) => write!(f, "remote:{}", fleet.endpoints().join(",")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    #[test]
    fn spec_parsing_accepts_the_documented_grammar() {
        assert_eq!(Exec::parse("serial").unwrap().to_string(), "serial");
        assert_eq!(Exec::parse(" threads:3 ").unwrap().to_string(), "threads:3");
        assert!(matches!(
            Exec::parse("auto").unwrap().backend(),
            Backend::Threads(_)
        ));
        assert!(Exec::parse("threads").is_ok());
        let remote = Exec::parse("remote:127.0.0.1:7601, 127.0.0.1:7602").unwrap();
        assert!(matches!(remote.backend(), Backend::Remote(f) if f.hosts() == 2));
        assert_eq!(
            remote.to_string(),
            "remote:127.0.0.1:7601,127.0.0.1:7602",
            "display round-trips the spec grammar"
        );
        assert_eq!(Exec::parse("remote:jpeg-farm-01:9000").unwrap().width(), 1);
    }

    /// Every malformed spec is a typed `SpecError` naming the offending
    /// spec — the loud-parse contract `from_env` panics with.
    #[test]
    fn malformed_specs_are_typed_errors() {
        for bad in [
            "",
            "serial:2",
            "auto:4",
            "threads:0",
            "threads:x",
            "threads:",
            "processes:0",
            "processes:",
            "processes:-1",
            "ssh:2",
            "remote",
            "remote:",
            "remote:,",
            "remote:hostonly",
            "remote:127.0.0.1:notaport",
            "remote::7601",
            "remote:127.0.0.1:7601,,127.0.0.1:7602",
        ] {
            let err = Exec::parse(bad).expect_err(&format!("`{bad}` should not parse"));
            assert!(err.to_string().contains("invalid exec spec"), "{err}");
            assert!(
                err.to_string().contains(&format!("`{bad}`")) || bad.is_empty(),
                "diagnostic names the spec: {err}"
            );
        }
    }

    #[test]
    fn widths_and_local_threads_follow_the_backend() {
        let serial = Exec::serial();
        assert_eq!(serial.width(), 1);
        assert_eq!(serial.local_threads().get(), 1);
        let threads = Exec::threads(Threads::exact(5));
        assert_eq!(threads.width(), 5);
        assert_eq!(threads.local_threads().get(), 5);
        let procs = Exec::processes(ProcessPool::with_binary(PathBuf::from("/nope"), 3));
        assert_eq!(procs.width(), 3);
        assert!(procs.local_threads().get() >= 1);
        assert_eq!(procs.to_string(), "processes:3");
    }

    #[test]
    fn in_process_dispatch_is_unit_ordered_on_every_backend() {
        let expected: Vec<usize> = (0..50).map(|i| i * 3).collect();
        for exec in [
            Exec::serial(),
            Exec::threads(Threads::exact(1)),
            Exec::threads(Threads::exact(4)),
        ] {
            assert_eq!(exec.run_units(50, |i| i * 3), expected, "{exec}");
            let fallible: Result<Vec<usize>, usize> = exec.run_fallible(50, Ok);
            assert_eq!(fallible.unwrap().len(), 50, "{exec}");
        }
    }

    /// A minimal ExecWork that squares its unit index; the process
    /// backend has no real worker for it, which exercises both
    /// fallback policies.
    struct Squares(usize);

    impl ExecWork for Squares {
        type Output = usize;
        type Error = String;

        fn kind(&self) -> u16 {
            9999
        }
        fn unit_count(&self) -> usize {
            self.0
        }
        fn encode_job(&self) -> Vec<u8> {
            Vec::new()
        }
        fn encode_unit(&self, unit: usize) -> Vec<u8> {
            vec![unit as u8]
        }
        fn run_unit_local(&self, unit: usize) -> Result<usize, String> {
            Ok(unit * unit)
        }
        fn decode_result(&self, _unit: usize, _bytes: &[u8]) -> Result<usize, String> {
            Err("no decoder in this test".to_string())
        }
        fn pool_error(&self, error: PoolError) -> String {
            error.to_string()
        }
    }

    #[test]
    fn dispatch_merges_by_unit_index_on_in_process_backends() {
        let expected: Vec<usize> = (0..97).map(|i| i * i).collect();
        for exec in [Exec::serial(), Exec::threads(Threads::exact(4))] {
            let d = exec.dispatch(&Squares(97)).unwrap();
            assert_eq!(d.units, expected, "{exec}");
            assert!(d.fallback.is_none());
            assert_eq!(d.fallback_count(), 0);
        }
    }

    #[test]
    fn process_failure_honours_the_fallback_policy() {
        let bogus = || ProcessPool::with_binary(PathBuf::from("/nonexistent/steac-worker"), 2);
        let forgiving = Exec::processes(bogus());
        let d = forgiving.dispatch(&Squares(10)).unwrap();
        assert_eq!(d.units, (0..10).map(|i| i * i).collect::<Vec<_>>());
        assert!(d.fallback.is_some(), "fallback must be surfaced");
        assert_eq!(d.fallback_count(), 1);
        assert_eq!(forgiving.process_fallbacks(), 1);

        let strict = Exec::processes(bogus()).with_fallback(Fallback::Fail);
        let err = strict.dispatch(&Squares(10)).unwrap_err();
        assert!(err.contains("cannot spawn worker"), "{err}");
        assert_eq!(strict.process_fallbacks(), 0);
    }

    /// A fleet whose only host is unreachable: the Remote arm must obey
    /// the same `Fallback` policy as the process arm, through the same
    /// dispatch seam.
    #[test]
    fn remote_failure_honours_the_fallback_policy() {
        // Bind-then-drop to get a localhost port with no listener.
        let addr = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap().to_string()
        };
        let dead_fleet = || {
            crate::remote::RemoteFleet::tcp([addr.clone()])
                .unwrap()
                .with_max_retries(0)
        };
        let forgiving = Exec::remote(dead_fleet());
        let d = forgiving.dispatch(&Squares(10)).unwrap();
        assert_eq!(d.units, (0..10).map(|i| i * i).collect::<Vec<_>>());
        assert!(d.fallback.is_some(), "fallback must be surfaced");
        assert_eq!(forgiving.process_fallbacks(), 1);

        let strict = Exec::remote(dead_fleet()).with_fallback(Fallback::Fail);
        let err = strict.dispatch(&Squares(10)).unwrap_err();
        assert!(err.contains("work unit 0"), "{err}");
        assert_eq!(strict.process_fallbacks(), 0);
    }

    #[test]
    fn empty_dispatch_never_touches_the_pool() {
        let exec = Exec::processes(ProcessPool::with_binary(PathBuf::from("/nope"), 2))
            .with_fallback(Fallback::Fail);
        let d = exec.dispatch(&Squares(0)).unwrap();
        assert!(d.units.is_empty());
        assert!(d.fallback.is_none());
    }

    /// Streaming sibling of `Squares`: owned `usize` units, squared;
    /// `usize::MAX` poisons the local path for error-order tests.
    struct SquareStream;

    impl StreamWork for SquareStream {
        type Unit = usize;
        type Output = usize;
        type Error = String;

        fn kind(&self) -> u16 {
            9999
        }
        fn encode_job(&self) -> Vec<u8> {
            Vec::new()
        }
        fn encode_unit(&self, unit: &usize) -> Vec<u8> {
            vec![*unit as u8]
        }
        fn run_unit_local(&self, unit: &usize) -> Result<usize, String> {
            if *unit == usize::MAX {
                return Err("poisoned unit".to_string());
            }
            Ok(unit * unit)
        }
        fn decode_result(&self, _unit: &usize, _bytes: &[u8]) -> Result<usize, String> {
            Err("no decoder in this test".to_string())
        }
        fn pool_error(&self, error: PoolError) -> String {
            error.to_string()
        }
    }

    #[test]
    fn stream_dispatch_sinks_in_unit_order_on_in_process_backends() {
        let expected: Vec<usize> = (0..97).map(|i| i * i).collect();
        for exec in [
            Exec::serial(),
            Exec::threads(Threads::exact(1)),
            Exec::threads(Threads::exact(4)),
        ] {
            let mut got = Vec::new();
            let d = exec
                .dispatch_stream(&SquareStream, 0..97, |o| got.push(o))
                .unwrap();
            assert_eq!(got, expected, "{exec}");
            assert_eq!(d.units, 97, "{exec}");
            assert!(d.fallback.is_none());
            assert_eq!(d.fallback_count(), 0);
        }
    }

    #[test]
    fn stream_dispatch_surfaces_the_lowest_indexed_unit_error() {
        for exec in [Exec::serial(), Exec::threads(Threads::exact(4))] {
            let units = (0..40).map(|i| if i >= 17 { usize::MAX } else { i });
            let mut got = Vec::new();
            let err = exec
                .dispatch_stream(&SquareStream, units, |o| got.push(o))
                .unwrap_err();
            assert_eq!(err, "poisoned unit", "{exec}");
            assert!(got.len() <= 17, "{exec}: sink saw past the failing unit");
            assert_eq!(
                got,
                (0..got.len()).map(|i| i * i).collect::<Vec<_>>(),
                "{exec}: delivered prefix must be in unit order"
            );
        }
    }

    #[test]
    fn stream_dispatch_honours_the_fallback_policy_on_shipped_backends() {
        // No real worker binary: every shipped batch fails. InThread
        // recomputes per batch (so the count tracks batches), Fail
        // surfaces the wrapped pool error.
        let bogus = || ProcessPool::with_binary(PathBuf::from("/nonexistent/steac-worker"), 2);
        let forgiving = Exec::processes(bogus());
        let mut got = Vec::new();
        let d = forgiving
            .dispatch_stream(&SquareStream, 0..100, |o| got.push(o))
            .unwrap();
        assert_eq!(got, (0..100).map(|i| i * i).collect::<Vec<_>>());
        assert_eq!(d.units, 100);
        assert!(d.fallback.is_some(), "fallback must be surfaced");
        assert_eq!(d.fallback_count(), 100usize.div_ceil(STREAM_BATCH_UNITS));
        assert_eq!(forgiving.process_fallbacks(), d.fallback_count());

        let strict = Exec::processes(bogus()).with_fallback(Fallback::Fail);
        let err = strict
            .dispatch_stream(&SquareStream, 0..100, |_| {})
            .unwrap_err();
        assert!(err.contains("cannot spawn worker"), "{err}");
        assert_eq!(strict.process_fallbacks(), 0);
    }

    #[test]
    fn empty_stream_never_touches_the_pool() {
        let exec = Exec::processes(ProcessPool::with_binary(PathBuf::from("/nope"), 2))
            .with_fallback(Fallback::Fail);
        let d = exec
            .dispatch_stream(&SquareStream, std::iter::empty(), |_: usize| {})
            .unwrap();
        assert_eq!(d.units, 0);
        assert!(d.fallback.is_none());
    }
}
