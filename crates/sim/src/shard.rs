//! Multi-core and multi-process fan-out of independent work units.
//!
//! Every batched workload in the platform — PPSFP fault grading, batched
//! ATE playback, March fault simulation — decomposes into *work units*:
//! independent 64-lane passes over an immutable compiled program. This
//! module owns the pools that fan those units out:
//!
//! * [`Threads`] picks the in-process worker count (auto-detected,
//!   capped by the `STEAC_THREADS` environment variable or an explicit
//!   override);
//! * [`run_units`] / [`run_fallible`] execute `unit_count` closure calls
//!   on a scoped worker pool, handing out unit indices from a shared
//!   atomic counter (dynamic load balancing — passes that drop all their
//!   faults early finish early) and merging results **by unit index**,
//!   never by completion order, so sharded results are bit-identical to
//!   a single-threaded run at every thread count;
//! * [`grade_in_passes`] is the shared good+63 pass-partitioning helper:
//!   it chunks an item list into packed passes, runs each pass to a
//!   detection mask, and flattens the masks back to per-item verdicts in
//!   list order — the one place the partition/merge contract lives for
//!   both gate-level and March fault grading, thread- or process-wide;
//! * [`ProcessPool`] fans serialized work units across **worker
//!   processes** (the `steac-worker` binary), the next rung after
//!   threads: the job (a [`crate::wire`]-encoded program plus workload
//!   parameters) ships once per worker, units are assigned round-robin
//!   by index, and results merge by unit index with the exact same
//!   determinism contract as [`run_units`]. Workloads reach it through
//!   [`crate::exec::Exec`] (`Exec::processes(..)`, or `Exec::from_env`
//!   with `STEAC_EXEC=processes:N` / `STEAC_WORKERS=N`), whose
//!   [`crate::exec::Fallback`] policy decides what a spawn failure
//!   does;
//! * [`JobRegistry`] is the worker-side routing table: the umbrella
//!   crate registers every workload's `open_wire_job` under its `kind`
//!   and the `steac-worker` binary routes requests through that one
//!   table.
//!
//! # Worker protocol (version 3)
//!
//! One request in, one response out, everything little-endian via
//! [`crate::wire`] primitives. Requests and responses are *tagged*:
//!
//! ```text
//! request:  magic b"STWQ", version u16, tag u8
//!   tag 0 (run):    kind u16, job hash u64 (FNV-1a 64 of the job
//!                   bytes), job-present u8 (0 = by hash, 1 = inline),
//!                   [job block when inline], unit count u64,
//!                   then per unit: index u64, unit block
//!   tag 1 (status): nothing further
//! response: magic b"STWR", version u16, tag u8
//!   tag 0 (results):      per unit: index u64, status u8 (0 = ok,
//!                         1 = error), payload block (result bytes, or
//!                         a UTF-8 diagnostic)
//!   tag 1 (need program): job hash u64 — the worker has no cached
//!                         program under that hash; the dispatcher
//!                         re-sends the same units with the job inline
//!   tag 2 (status):       uptime ms, cache entries/capacity/hits/
//!                         misses/evictions, requests served, units
//!                         served, bytes received (u64 each)
//! ```
//!
//! The **program cache** is what makes tag-0-by-hash worthwhile: a
//! persistent worker ([`WorkerState`]) keeps a small LRU of recently
//! seen job blocks keyed by their content hash, so a fleet run ships
//! the serialized program *once per host* and every subsequent request
//! is a 26-byte header plus unit bytes. An inline job whose bytes do
//! not hash to the declared value is never executed or cached — every
//! unit reports the mismatch, deterministically, so a corrupted
//! program can fail a run but never produce a wrong answer.
//!
//! The same request/response bytes travel unchanged over every
//! transport: stdio frames them by EOF and process exit (one fresh
//! [`WorkerState`] per process, so a by-hash request correctly draws
//! "need program"), remote transports ([`crate::remote`]) frame them
//! with a length-prefixed versioned envelope and share one
//! [`WorkerState`] across connections — [`process_request_with`] is
//! the one execution core behind both.
//!
//! The worker opens the job once (`kind` selects the workload; the job
//! block carries the compiled program and shared parameters) and
//! executes its units in order. Protocol errors — truncated or
//! version-mismatched requests — surface as a typed diagnostic; the
//! dispatcher reports any worker failure as the **lowest-indexed**
//! affected unit's error, so failure reporting is as deterministic as
//! success merging.
//!
//! No dependencies beyond `std`: the thread pool is
//! `std::thread::scope`, the process pool is `std::process::Command`.

use crate::wire::{fnv1a64, WireReader, WireWriter};
use std::fmt;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Worker-count configuration for sharded execution.
///
/// The resolution order is: explicit [`Threads::exact`] >
/// `STEAC_THREADS` environment variable > detected core count. The
/// effective count is always at least 1, and pools additionally cap it
/// at the number of work units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Threads(usize);

impl Threads {
    /// Exactly `n` workers (clamped to at least 1). Ignores the
    /// environment — use this in scaling experiments that must control
    /// the width.
    #[must_use]
    pub fn exact(n: usize) -> Self {
        Threads(n.max(1))
    }

    /// One worker: sharded calls degenerate to the single-threaded loop.
    #[must_use]
    pub fn single() -> Self {
        Threads(1)
    }

    /// The detected core count
    /// ([`std::thread::available_parallelism`]), falling back to 1.
    #[must_use]
    pub fn auto() -> Self {
        Threads(
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// [`Threads::auto`], overridden by a positive integer in the
    /// `STEAC_THREADS` environment variable. Deployments normally
    /// configure width through [`crate::exec::Exec::from_env`]
    /// (`STEAC_EXEC`), which consults this as its compatibility
    /// fallback.
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("STEAC_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
        {
            Some(n) if n > 0 => Threads(n),
            _ => Threads::auto(),
        }
    }

    /// The configured worker count (≥ 1).
    #[must_use]
    pub fn get(self) -> usize {
        self.0
    }
}

impl Default for Threads {
    fn default() -> Self {
        Threads::from_env()
    }
}

/// Runs `work(0..unit_count)` across a scoped worker pool and returns the
/// results **in unit order** (index `i` of the result is `work(i)`,
/// regardless of which worker ran it or when it finished).
///
/// Units are handed out from a shared atomic counter, so a unit that
/// finishes early (fault dropping, short patterns) frees its worker for
/// the next one. With one effective worker — or a single unit — the work
/// runs inline on the calling thread, so scalar callers pay no spawn
/// cost.
///
/// # Panics
///
/// Propagates a panic from any work unit.
pub fn run_units<T, F>(threads: Threads, unit_count: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = threads.get().min(unit_count);
    if workers <= 1 {
        return (0..unit_count).map(work).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = Vec::new();
    slots.resize_with(unit_count, || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut produced = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= unit_count {
                            break;
                        }
                        produced.push((i, work(i)));
                    }
                    produced
                })
            })
            .collect();
        for handle in handles {
            for (i, value) in handle.join().expect("shard worker panicked") {
                slots[i] = Some(value);
            }
        }
    });
    slots
        .into_iter()
        .map(|v| v.expect("every unit ran exactly once"))
        .collect()
}

/// [`run_units`] for fallible work: returns all results in unit order,
/// or the error of the **lowest-indexed** failing unit (not the first
/// one to fail in wall-clock time), keeping error reporting
/// deterministic across thread counts.
///
/// Later units may still run after an earlier one has failed (workers
/// drain the counter independently); work must therefore be safe to run
/// regardless of other units' outcomes — which independent simulation
/// passes are by construction.
///
/// # Errors
///
/// The error of the lowest-indexed failing unit.
pub fn run_fallible<T, E, F>(threads: Threads, unit_count: usize, work: F) -> Result<Vec<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
{
    run_units(threads, unit_count, work).into_iter().collect()
}

/// Flattens per-pass detection masks (one mask per `per_pass` chunk of
/// the item list, in list order) into one `bool` per item. `first_lane`
/// is the lane carrying a pass's first item — 1 when lane 0 runs the
/// good machine (gate-level PPSFP), 0 when every lane carries an item
/// (March walks).
///
/// Because the flattening walks chunks in order, downstream reports keep
/// exactly the order a single-threaded pass-by-pass loop would produce,
/// regardless of which thread or process computed each mask.
#[must_use]
pub fn flags_from_masks(
    item_count: usize,
    per_pass: usize,
    first_lane: usize,
    masks: &[u64],
) -> Vec<bool> {
    debug_assert!(per_pass + first_lane <= 64, "pass does not fit one word");
    let mut flags = Vec::with_capacity(item_count);
    'outer: for &mask in masks {
        for lane in 0..per_pass {
            if flags.len() == item_count {
                break 'outer;
            }
            flags.push(mask >> (lane + first_lane) & 1 == 1);
        }
    }
    flags
}

/// [`flags_from_masks`] over `N`-word lane masks (the wide executors'
/// `N`×64-lane passes): lane `l` of a pass lives in bit `l % 64` of word
/// `l / 64`. `N = 1` degenerates to the classic single-word flattening.
#[must_use]
pub fn flags_from_lane_masks<const N: usize>(
    item_count: usize,
    per_pass: usize,
    first_lane: usize,
    masks: &[[u64; N]],
) -> Vec<bool> {
    debug_assert!(
        per_pass + first_lane <= 64 * N,
        "pass does not fit {N} words"
    );
    let mut flags = Vec::with_capacity(item_count);
    'outer: for mask in masks {
        for lane in 0..per_pass {
            if flags.len() == item_count {
                break 'outer;
            }
            let bit = lane + first_lane;
            flags.push(mask[bit / 64] >> (bit % 64) & 1 == 1);
        }
    }
    flags
}

/// [`grade_in_passes`] over `N`-word lane masks: chunks `items` into
/// passes of `per_pass` (up to `N`×64 minus `first_lane` items each),
/// runs them on the in-thread pool, and flattens through
/// [`flags_from_lane_masks`].
///
/// # Errors
///
/// The error of the lowest-indexed failing pass.
pub fn grade_in_lane_passes<const N: usize, T, E, F>(
    threads: Threads,
    items: &[T],
    per_pass: usize,
    first_lane: usize,
    run: F,
) -> Result<Vec<bool>, E>
where
    T: Sync,
    E: Send,
    F: Fn(usize, &[T]) -> Result<[u64; N], E> + Sync,
{
    let chunks: Vec<&[T]> = items.chunks(per_pass).collect();
    let masks = run_fallible(threads, chunks.len(), |ci| run(ci, chunks[ci]))?;
    Ok(flags_from_lane_masks(
        items.len(),
        per_pass,
        first_lane,
        &masks,
    ))
}

/// The shared good+63 partition/merge contract: chunks `items` into
/// packed passes of `per_pass`, runs `run(pass_index, chunk)` for each on
/// the in-thread pool, and flattens the per-pass detection masks into
/// per-item flags in list order (see [`flags_from_masks`]).
///
/// Both gate-level fault grading ([`crate::fault`]) and March fault
/// simulation (`steac-membist`) drive their thread-sharded paths through
/// this helper, and merge their process-pool results through
/// [`flags_from_masks`], so every dispatch flavour shares one
/// partitioning implementation.
///
/// # Errors
///
/// The error of the lowest-indexed failing pass.
pub fn grade_in_passes<T, E, F>(
    threads: Threads,
    items: &[T],
    per_pass: usize,
    first_lane: usize,
    run: F,
) -> Result<Vec<bool>, E>
where
    T: Sync,
    E: Send,
    F: Fn(usize, &[T]) -> Result<u64, E> + Sync,
{
    let chunks: Vec<&[T]> = items.chunks(per_pass).collect();
    let masks = run_fallible(threads, chunks.len(), |ci| run(ci, chunks[ci]))?;
    Ok(flags_from_masks(items.len(), per_pass, first_lane, &masks))
}

// ---------- process-level fan-out ----------

const REQUEST_MAGIC: [u8; 4] = *b"STWQ";
const RESPONSE_MAGIC: [u8; 4] = *b"STWR";

/// Version of the worker request/response framing; bumped in lock step
/// with [`crate::wire::WIRE_VERSION`] discipline (see that module's
/// versioning rule). Version 3 added request/response tags, the
/// content-addressed program reference (hash + optional inline block)
/// and the status exchange.
pub const PROTOCOL_VERSION: u16 = 3;

/// Request tags (see the module docs for the full frame layouts).
const REQ_RUN: u8 = 0;
const REQ_STATUS: u8 = 1;

/// Response tags.
const REPLY_RESULTS: u8 = 0;
const REPLY_NEED_PROGRAM: u8 = 1;
const REPLY_STATUS: u8 = 2;

/// Byte offset of the first job-block byte inside an inline run
/// request: magic (4) + version (2) + tag (1) + kind (2) + hash (8) +
/// present flag (1) + block length (8). The hash-corruption chaos test
/// flips bytes from here on to prove a damaged program is a typed
/// error, never a wrong answer.
#[doc(hidden)]
pub const RUN_REQUEST_JOB_OFFSET: usize = 26;

/// Default number of programs a persistent worker keeps decoded-job
/// *bytes* for, most recently used last. Small on purpose: a fleet
/// serves one or a handful of distinct programs at a time, and a stale
/// entry costs one extra round trip, not a wrong answer. Interleaved
/// streaming workloads (grading + playback + March against one fleet)
/// can outgrow it — `steac-worker --serve` takes `--cache-cap N` /
/// `STEAC_CACHE_CAP` to widen the cache, and the status exchange
/// reports capacity next to the eviction counter so thrash is visible.
pub const DEFAULT_PROGRAM_CACHE_CAPACITY: usize = 8;

/// The program-cache capacity requested via the `STEAC_CACHE_CAP`
/// environment variable (`None` unless set to a positive integer).
/// Consulted by `steac-worker --serve` when no `--cache-cap` flag is
/// given.
#[must_use]
pub fn env_cache_capacity() -> Option<usize> {
    std::env::var("STEAC_CACHE_CAP")
        .ok()?
        .trim()
        .parse::<usize>()
        .ok()
        .filter(|&n| n > 0)
}

/// The content-addressed LRU of job blocks a persistent worker serves
/// by-hash requests from. Caches the wire *bytes*, not opened jobs:
/// [`WireJob`]s are stateful (`run_unit` takes `&mut self`), so each
/// request opens its own job from the cached bytes — decode cost is
/// noise next to executing even one unit.
#[derive(Debug)]
struct ProgramCache {
    /// `(hash, job bytes)`, least recently used first.
    entries: Vec<(u64, Vec<u8>)>,
    /// Entries kept before the LRU victim is dropped (≥ 1).
    capacity: usize,
}

impl Default for ProgramCache {
    fn default() -> Self {
        ProgramCache::with_capacity(DEFAULT_PROGRAM_CACHE_CAPACITY)
    }
}

impl ProgramCache {
    /// An empty cache holding at most `capacity` programs (clamped to
    /// at least 1 — a worker that cannot cache the program it is
    /// currently running would need-program forever).
    fn with_capacity(capacity: usize) -> Self {
        ProgramCache {
            entries: Vec::new(),
            capacity: capacity.max(1),
        }
    }

    /// Returns the cached bytes for `hash`, refreshing its LRU slot.
    fn get(&mut self, hash: u64) -> Option<Vec<u8>> {
        let pos = self.entries.iter().position(|&(h, _)| h == hash)?;
        let entry = self.entries.remove(pos);
        let bytes = entry.1.clone();
        self.entries.push(entry);
        Some(bytes)
    }

    /// Inserts (or refreshes) an entry; returns `true` when a victim
    /// was evicted to make room.
    fn insert(&mut self, hash: u64, bytes: Vec<u8>) -> bool {
        if let Some(pos) = self.entries.iter().position(|&(h, _)| h == hash) {
            let _ = self.entries.remove(pos);
            self.entries.push((hash, bytes));
            return false;
        }
        self.entries.push((hash, bytes));
        if self.entries.len() > self.capacity {
            let _ = self.entries.remove(0);
            return true;
        }
        false
    }
}

/// The persistent state of one worker: the program cache plus the
/// counters behind the status exchange. One per `--serve` listener
/// (shared across connections and requests), one fresh per stdio
/// request (where nothing can persist anyway).
#[derive(Debug)]
pub struct WorkerState {
    started: Instant,
    cache: Mutex<ProgramCache>,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_evictions: AtomicU64,
    requests_served: AtomicU64,
    units_served: AtomicU64,
    bytes_received: AtomicU64,
}

impl Default for WorkerState {
    fn default() -> Self {
        WorkerState::new()
    }
}

impl WorkerState {
    /// A fresh state with an empty default-capacity cache and zeroed
    /// counters.
    #[must_use]
    pub fn new() -> Self {
        WorkerState::with_cache_capacity(DEFAULT_PROGRAM_CACHE_CAPACITY)
    }

    /// A fresh state whose program cache holds at most `capacity`
    /// programs (clamped to ≥ 1). `steac-worker --serve --cache-cap N`
    /// builds its shared state through this.
    #[must_use]
    pub fn with_cache_capacity(capacity: usize) -> Self {
        WorkerState {
            started: Instant::now(),
            cache: Mutex::new(ProgramCache::with_capacity(capacity)),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            cache_evictions: AtomicU64::new(0),
            requests_served: AtomicU64::new(0),
            units_served: AtomicU64::new(0),
            bytes_received: AtomicU64::new(0),
        }
    }

    /// A point-in-time snapshot of the counters — the payload of the
    /// status exchange.
    #[must_use]
    pub fn status(&self) -> WorkerStatus {
        let cache = self.cache.lock().expect("no panics hold the lock");
        let (cache_entries, cache_capacity) = (cache.entries.len() as u64, cache.capacity as u64);
        drop(cache);
        WorkerStatus {
            uptime_ms: self.started.elapsed().as_millis().min(u128::from(u64::MAX)) as u64,
            cache_entries,
            cache_capacity,
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            cache_evictions: self.cache_evictions.load(Ordering::Relaxed),
            requests_served: self.requests_served.load(Ordering::Relaxed),
            units_served: self.units_served.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
        }
    }
}

/// One worker's self-reported counters, as returned by the status
/// exchange ([`crate::remote::query_status`], `steac-worker --status`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkerStatus {
    /// Milliseconds since the worker state was created.
    pub uptime_ms: u64,
    /// Programs currently held by the cache.
    pub cache_entries: u64,
    /// Programs the cache can hold before evicting — reported next to
    /// the eviction counter so cache thrash under interleaved
    /// streaming workloads is visible from `--status`.
    pub cache_capacity: u64,
    /// By-hash requests served from the cache.
    pub cache_hits: u64,
    /// By-hash requests answered "need program".
    pub cache_misses: u64,
    /// Cache entries evicted to make room.
    pub cache_evictions: u64,
    /// Requests processed (run and status alike).
    pub requests_served: u64,
    /// Work units executed.
    pub units_served: u64,
    /// Request bytes received (after transport framing).
    pub bytes_received: u64,
}

impl fmt::Display for WorkerStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "up {:.1}s · programs cached {}/{} (hits {}, misses {}, evictions {}{}) · \
             requests {} · units {} · bytes received {}",
            self.uptime_ms as f64 / 1000.0,
            self.cache_entries,
            self.cache_capacity,
            self.cache_hits,
            self.cache_misses,
            self.cache_evictions,
            // A full cache that has already evicted is thrashing:
            // every additional distinct program costs a round trip.
            if self.cache_evictions > 0 && self.cache_entries == self.cache_capacity {
                " — cache under pressure, consider --cache-cap"
            } else {
                ""
            },
            self.requests_served,
            self.units_served,
            self.bytes_received,
        )
    }
}

/// One opened job inside a worker process: decoded shared state plus the
/// per-unit execution step. Implementations live next to their workloads
/// (`crate::fault`, `steac-pattern`, `steac-membist`); the `steac-worker`
/// binary routes a request's `kind` to the right `open_wire_job`
/// constructor.
pub trait WireJob {
    /// Executes one serialized work unit and returns the serialized
    /// result.
    ///
    /// # Errors
    ///
    /// A human-readable diagnostic; the dispatcher attaches it to this
    /// unit's index.
    fn run_unit(&mut self, unit: &[u8]) -> Result<Vec<u8>, String>;
}

/// How a registry entry constructs its job from the job block.
pub type OpenJobFn = fn(&[u8]) -> Result<Box<dyn WireJob>, String>;

/// The worker-side job registry: one table mapping a request's `kind`
/// to the workload that opens it. Replaces the per-crate routing that
/// `src/bin/steac-worker.rs` used to hand-write — the root crate
/// registers every workload (`steac_suite::worker_registry`) and the
/// worker binary, tests and any future remote agent all route through
/// the same table.
#[derive(Debug, Default)]
pub struct JobRegistry {
    entries: Vec<(u16, &'static str, OpenJobFn)>,
}

impl JobRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        JobRegistry::default()
    }

    /// Registers a workload under `kind` with a human-readable `name`
    /// (used in diagnostics).
    ///
    /// # Panics
    ///
    /// If `kind` is already registered — kinds are a global protocol
    /// namespace and a duplicate is a programming error.
    pub fn register(&mut self, kind: u16, name: &'static str, open: OpenJobFn) {
        assert!(
            !self.entries.iter().any(|&(k, ..)| k == kind),
            "work-unit kind {kind} registered twice ({name})"
        );
        self.entries.push((kind, name, open));
    }

    /// Opens the job registered under `kind` from its job block — the
    /// single routing point of the worker protocol.
    ///
    /// # Errors
    ///
    /// A diagnostic for unknown kinds or corrupt job bytes.
    pub fn open(&self, kind: u16, job: &[u8]) -> Result<Box<dyn WireJob>, String> {
        match self.entries.iter().find(|&&(k, ..)| k == kind) {
            Some(&(_, name, open)) => open(job).map_err(|e| format!("opening {name} job: {e}")),
            None => {
                let known: Vec<String> = self
                    .entries
                    .iter()
                    .map(|&(k, name, _)| format!("{k}={name}"))
                    .collect();
                Err(format!(
                    "unknown work-unit kind {kind} (known: {})",
                    known.join(", ")
                ))
            }
        }
    }

    /// The registered `(kind, name)` pairs, in registration order.
    pub fn kinds(&self) -> impl Iterator<Item = (u16, &'static str)> + '_ {
        self.entries.iter().map(|&(k, name, _)| (k, name))
    }
}

/// The process-worker count requested via the `STEAC_WORKERS`
/// environment variable (`None` unless set to a positive integer). The
/// deployment-level knob that opts the default workload entry points
/// into process dispatch; CI pins it to 2 for one full suite run.
#[must_use]
pub fn env_workers() -> Option<usize> {
    std::env::var("STEAC_WORKERS")
        .ok()?
        .trim()
        .parse::<usize>()
        .ok()
        .filter(|&n| n > 0)
}

/// Locates the `steac-worker` binary: the `STEAC_WORKER_BIN` environment
/// variable if it names an existing file, else a `steac-worker` sitting
/// next to the current executable or one directory up (which covers
/// `target/<profile>/` binaries and `target/<profile>/deps/` test
/// executables). `None` means process dispatch is unavailable and
/// callers fall back to the in-thread pool.
#[must_use]
pub fn default_worker_binary() -> Option<PathBuf> {
    if let Ok(p) = std::env::var("STEAC_WORKER_BIN") {
        let p = PathBuf::from(p);
        return p.is_file().then_some(p);
    }
    let exe = std::env::current_exe().ok()?;
    let dir = exe.parent()?;
    let mut candidates = vec![dir.join("steac-worker")];
    if let Some(parent) = dir.parent() {
        candidates.push(parent.join("steac-worker"));
    }
    candidates.into_iter().find(|c| c.is_file())
}

/// Failure of a [`ProcessPool`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// A worker process could not be spawned at all (missing or broken
    /// binary). Callers treat this as "process dispatch unavailable" and
    /// fall back to the in-thread pool.
    Spawn {
        /// What failed.
        diagnostic: String,
    },
    /// A work unit failed — the unit itself reported an error, or its
    /// worker died/misbehaved. Deterministic: always the lowest-indexed
    /// affected unit.
    Unit {
        /// Lowest-indexed failing unit.
        unit: usize,
        /// Worker-provided (or dispatcher-derived) diagnostic.
        diagnostic: String,
    },
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::Spawn { diagnostic } => write!(f, "cannot spawn worker: {diagnostic}"),
            PoolError::Unit { unit, diagnostic } => {
                write!(f, "work unit {unit} failed: {diagnostic}")
            }
        }
    }
}

impl std::error::Error for PoolError {}

/// Dispatcher that fans serialized work units across `steac-worker`
/// processes and merges the results **by unit index** — the process-level
/// sibling of [`run_units`], with the same determinism contract: unit
/// `i`'s result (or the lowest-indexed unit's error) is identical no
/// matter how many workers ran or how they interleaved.
///
/// Units are assigned round-robin by index (worker `w` of `W` gets units
/// `w, w+W, w+2W, …`), the job payload ships once per worker, and each
/// worker streams its results back over stdout.
#[derive(Debug, Clone)]
pub struct ProcessPool {
    binary: PathBuf,
    workers: usize,
}

impl ProcessPool {
    /// A pool over the default worker binary (see
    /// [`default_worker_binary`]); `None` when no binary can be found —
    /// callers fall back to the in-thread pool.
    #[must_use]
    pub fn new(workers: usize) -> Option<Self> {
        Some(ProcessPool::with_binary(default_worker_binary()?, workers))
    }

    /// A pool over an explicit worker binary (clamped to ≥ 1 worker).
    /// Scaling harnesses and tests use this to pin the binary and width.
    #[must_use]
    pub fn with_binary(binary: PathBuf, workers: usize) -> Self {
        ProcessPool {
            binary,
            workers: workers.max(1),
        }
    }

    /// Configured worker-process count (≥ 1; runs additionally cap it at
    /// the unit count).
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The worker binary this pool spawns.
    #[must_use]
    pub fn binary(&self) -> &Path {
        &self.binary
    }

    /// Executes `units` under job `kind`/`job` across the worker
    /// processes and returns the result payloads in unit order.
    ///
    /// # Errors
    ///
    /// [`PoolError::Spawn`] when no worker process could be started
    /// (callers fall back to threads), [`PoolError::Unit`] for the
    /// lowest-indexed unit whose execution failed.
    pub fn run(&self, kind: u16, job: &[u8], units: &[Vec<u8>]) -> Result<Vec<Vec<u8>>, PoolError> {
        if units.is_empty() {
            return Ok(Vec::new());
        }
        let job_hash = fnv1a64(job);
        let workers = self.workers.min(units.len());
        let assignments: Vec<Vec<usize>> = (0..workers)
            .map(|w| (w..units.len()).step_by(workers).collect())
            .collect();

        let mut children: Vec<Child> = Vec::with_capacity(workers);
        for _ in 0..workers {
            match Command::new(&self.binary)
                .stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .stderr(Stdio::piped())
                .spawn()
            {
                Ok(child) => children.push(child),
                Err(e) => {
                    for mut child in children {
                        let _ = child.kill();
                        let _ = child.wait();
                    }
                    return Err(PoolError::Spawn {
                        diagnostic: format!("{}: {e}", self.binary.display()),
                    });
                }
            }
        }

        let mut feeds = Vec::with_capacity(workers);
        for (child, assigned) in children.iter_mut().zip(&assignments) {
            let stdin = child.stdin.take().expect("stdin was piped");
            // A spawned worker lives for exactly one request, so its
            // cache can never be warm: always ship the job inline.
            feeds.push((
                stdin,
                encode_request(kind, Some(job), job_hash, assigned, units),
            ));
        }
        // Writers run on scoped threads so a worker blocked writing its
        // response never deadlocks against us writing its request.
        let outputs: Vec<std::io::Result<std::process::Output>> = std::thread::scope(|scope| {
            let writers: Vec<_> = feeds
                .into_iter()
                .map(|(mut stdin, request)| {
                    scope.spawn(move || {
                        // A dead worker surfaces via its exit status;
                        // the broken pipe here is expected then.
                        let _ = stdin.write_all(&request);
                    })
                })
                .collect();
            let outs = children.into_iter().map(Child::wait_with_output).collect();
            for w in writers {
                let _ = w.join();
            }
            outs
        });

        let mut slots: Vec<Option<Vec<u8>>> = Vec::new();
        slots.resize_with(units.len(), || None);
        let mut failures: Vec<(usize, String)> = Vec::new();
        for (w, (output, assigned)) in outputs.into_iter().zip(&assignments).enumerate() {
            match output {
                Err(e) => failures.push((assigned[0], format!("worker {w} I/O error: {e}"))),
                Ok(output) => {
                    let (items, parse_error) = match parse_reply(&output.stdout, units.len()) {
                        Reply::Results(items, damage) => (items, damage),
                        Reply::NeedProgram(h) => (
                            Vec::new(),
                            Some(format!(
                                "worker demanded program {h:#018x} despite an inline job"
                            )),
                        ),
                        Reply::Status(_) => {
                            (Vec::new(), Some("unexpected status reply".to_string()))
                        }
                    };
                    for (idx, result) in items {
                        match result {
                            Ok(bytes) => slots[idx] = Some(bytes),
                            Err(diagnostic) => failures.push((idx, diagnostic)),
                        }
                    }
                    // Assigned units with neither a result nor a recorded
                    // failure: the worker died or sent garbage. Attribute
                    // its diagnostics to its first missing unit (one entry
                    // is enough — any failure fails the whole run).
                    if let Some(&idx) = assigned
                        .iter()
                        .find(|&&idx| slots[idx].is_none() && !failures.iter().any(|f| f.0 == idx))
                    {
                        let stderr = String::from_utf8_lossy(&output.stderr);
                        let stderr = stderr.trim();
                        let mut diagnostic = if output.status.success() {
                            format!("worker {w} returned no result")
                        } else {
                            format!("worker {w} exited abnormally ({})", output.status)
                        };
                        if let Some(e) = parse_error {
                            diagnostic = format!("{diagnostic}; response: {e}");
                        }
                        if !stderr.is_empty() {
                            diagnostic = format!("{diagnostic}; stderr: {stderr}");
                        }
                        failures.push((idx, diagnostic));
                    }
                }
            }
        }
        if let Some((unit, diagnostic)) = failures.into_iter().min_by_key(|f| f.0) {
            return Err(PoolError::Unit { unit, diagnostic });
        }
        Ok(slots
            .into_iter()
            .map(|s| s.expect("every unit has a result or a recorded failure"))
            .collect())
    }
}

/// Encodes one run request. `job` is `Some(bytes)` to ship the program
/// inline (its FNV-1a hash must be `job_hash`) or `None` to reference
/// the worker's cache by `job_hash` alone.
pub(crate) fn encode_request(
    kind: u16,
    job: Option<&[u8]>,
    job_hash: u64,
    unit_indices: &[usize],
    units: &[Vec<u8>],
) -> Vec<u8> {
    let unit_bytes: usize = unit_indices.iter().map(|&idx| units[idx].len()).sum();
    let mut w = WireWriter::new();
    w.reserve(
        RUN_REQUEST_JOB_OFFSET
            + job.map_or(0, <[u8]>::len)
            + unit_bytes
            + 24 * unit_indices.len()
            + 8,
    );
    w.put_bytes(&REQUEST_MAGIC);
    w.put_u16(PROTOCOL_VERSION);
    w.put_u8(REQ_RUN);
    w.put_u16(kind);
    w.put_u64(job_hash);
    match job {
        Some(job) => {
            w.put_u8(1);
            w.put_block(job);
        }
        None => w.put_u8(0),
    }
    w.put_usize(unit_indices.len());
    for &idx in unit_indices {
        w.put_usize(idx);
        w.put_block(&units[idx]);
    }
    w.finish()
}

/// Encodes a status request.
pub(crate) fn encode_status_request() -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_bytes(&REQUEST_MAGIC);
    w.put_u16(PROTOCOL_VERSION);
    w.put_u8(REQ_STATUS);
    w.finish()
}

fn encode_need_program(hash: u64) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_bytes(&RESPONSE_MAGIC);
    w.put_u16(PROTOCOL_VERSION);
    w.put_u8(REPLY_NEED_PROGRAM);
    w.put_u64(hash);
    w.finish()
}

fn encode_status_reply(status: &WorkerStatus) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_bytes(&RESPONSE_MAGIC);
    w.put_u16(PROTOCOL_VERSION);
    w.put_u8(REPLY_STATUS);
    for field in [
        status.uptime_ms,
        status.cache_entries,
        status.cache_capacity,
        status.cache_hits,
        status.cache_misses,
        status.cache_evictions,
        status.requests_served,
        status.units_served,
        status.bytes_received,
    ] {
        w.put_u64(field);
    }
    w.finish()
}

/// One parsed worker response.
pub(crate) enum Reply {
    /// Per-unit results recovered so far, plus an optional description
    /// of where parsing stopped (protocol damage after that point).
    Results(Vec<(usize, Result<Vec<u8>, String>)>, Option<String>),
    /// The worker has no cached program under this hash; re-send the
    /// same units with the job inline.
    NeedProgram(u64),
    /// The worker's status counters.
    Status(WorkerStatus),
}

/// Parses one worker's response bytes. Damage anywhere — header,
/// unknown tag, malformed record — degrades to
/// [`Reply::Results`] carrying whatever was recovered plus the
/// diagnostic, so every caller handles damage through one path.
pub(crate) fn parse_reply(bytes: &[u8], unit_count: usize) -> Reply {
    let mut r = WireReader::new(bytes);
    let header = (|| {
        r.expect_magic(&RESPONSE_MAGIC, "response magic")?;
        r.expect_version(PROTOCOL_VERSION, "response version")?;
        r.get_u8("response tag")
    })();
    let tag = match header {
        Ok(tag) => tag,
        Err(e) => return Reply::Results(Vec::new(), Some(e.to_string())),
    };
    match tag {
        REPLY_RESULTS => {
            let mut items = Vec::new();
            while r.remaining() > 0 {
                let record = (|| {
                    let idx = r.get_usize("result unit index")?;
                    let status = r.get_u8("result status")?;
                    let payload = r.get_block("result payload")?.to_vec();
                    Ok::<_, crate::wire::WireError>((idx, status, payload))
                })();
                match record {
                    Ok((idx, status, payload)) if idx < unit_count => {
                        let result = if status == 0 {
                            Ok(payload)
                        } else {
                            Err(String::from_utf8_lossy(&payload).into_owned())
                        };
                        items.push((idx, result));
                    }
                    Ok((idx, ..)) => {
                        return Reply::Results(
                            items,
                            Some(format!("unit index {idx} out of range")),
                        )
                    }
                    Err(e) => return Reply::Results(items, Some(e.to_string())),
                }
            }
            Reply::Results(items, None)
        }
        REPLY_NEED_PROGRAM => {
            let hash = (|| {
                let hash = r.get_u64("needed program hash")?;
                r.finish()?;
                Ok::<_, crate::wire::WireError>(hash)
            })();
            match hash {
                Ok(hash) => Reply::NeedProgram(hash),
                Err(e) => Reply::Results(Vec::new(), Some(e.to_string())),
            }
        }
        REPLY_STATUS => {
            let status = (|| {
                let mut fields = [0u64; 9];
                for field in &mut fields {
                    *field = r.get_u64("status field")?;
                }
                r.finish()?;
                Ok::<_, crate::wire::WireError>(WorkerStatus {
                    uptime_ms: fields[0],
                    cache_entries: fields[1],
                    cache_capacity: fields[2],
                    cache_hits: fields[3],
                    cache_misses: fields[4],
                    cache_evictions: fields[5],
                    requests_served: fields[6],
                    units_served: fields[7],
                    bytes_received: fields[8],
                })
            })();
            match status {
                Ok(status) => Reply::Status(status),
                Err(e) => Reply::Results(Vec::new(), Some(e.to_string())),
            }
        }
        other => Reply::Results(Vec::new(), Some(format!("unknown response tag {other}"))),
    }
}

/// The transport-independent worker core: parses one already-delivered
/// request against persistent `state`, opens the job via `open` (handed
/// the request's `kind` and job bytes — inline from the request, or
/// served from the program cache on a by-hash reference), executes
/// every unit in order, and returns the serialized response.
/// [`serve_worker`] (stdio framing, fresh state) and
/// [`crate::remote::serve_tcp`] (envelope framing, one shared state per
/// listener) are both thin shells around this function, so every
/// transport executes requests identically.
///
/// Three non-fatal outcomes still produce a well-formed response:
///
/// * a by-hash request missing the cache returns "need program"
///   (counted as a miss) — the dispatcher re-ships the job inline;
/// * an inline job whose bytes do not match the declared hash makes
///   every unit report the mismatch — a corrupted program fails
///   deterministically, it never runs;
/// * a job that fails to open (unknown kind, corrupt job bytes) makes
///   every unit report the open diagnostic.
///
/// # Errors
///
/// A diagnostic when the request itself is unreadable (truncated bytes,
/// bad magic, version mismatch, unknown tag).
pub fn process_request_with<F>(data: &[u8], open: F, state: &WorkerState) -> Result<Vec<u8>, String>
where
    F: FnOnce(u16, &[u8]) -> Result<Box<dyn WireJob>, String>,
{
    state
        .bytes_received
        .fetch_add(data.len() as u64, Ordering::Relaxed);
    state.requests_served.fetch_add(1, Ordering::Relaxed);
    let mut r = WireReader::new(data);
    let header = (|| {
        r.expect_magic(&REQUEST_MAGIC, "request magic")?;
        r.expect_version(PROTOCOL_VERSION, "request version")?;
        r.get_u8("request tag")
    })();
    let tag = header.map_err(|e| e.to_string())?;
    if tag == REQ_STATUS {
        r.finish().map_err(|e| e.to_string())?;
        return Ok(encode_status_reply(&state.status()));
    }
    if tag != REQ_RUN {
        return Err(format!("unknown request tag {tag}"));
    }
    let run_header = (|| {
        let kind = r.get_u16("job kind")?;
        let hash = r.get_u64("job hash")?;
        let present = r.get_u8("job present flag")?;
        Ok::<_, crate::wire::WireError>((kind, hash, present))
    })();
    let (kind, hash, present) = run_header.map_err(|e| e.to_string())?;
    let mut hash_error = None;
    let cached: Vec<u8>;
    let job: &[u8] = match present {
        1 => {
            let job = r.get_block("job payload").map_err(|e| e.to_string())?;
            let computed = fnv1a64(job);
            if computed == hash {
                let evicted = state
                    .cache
                    .lock()
                    .expect("no panics hold the lock")
                    .insert(hash, job.to_vec());
                if evicted {
                    state.cache_evictions.fetch_add(1, Ordering::Relaxed);
                }
            } else {
                hash_error = Some(format!(
                    "program hash mismatch: declared {hash:#018x}, computed {computed:#018x} \
                     over {} job bytes",
                    job.len()
                ));
            }
            job
        }
        0 => {
            let hit = state
                .cache
                .lock()
                .expect("no panics hold the lock")
                .get(hash);
            match hit {
                Some(bytes) => {
                    state.cache_hits.fetch_add(1, Ordering::Relaxed);
                    cached = bytes;
                    &cached
                }
                None => {
                    state.cache_misses.fetch_add(1, Ordering::Relaxed);
                    return Ok(encode_need_program(hash));
                }
            }
        }
        other => return Err(format!("bad job-present flag {other}")),
    };
    let count = r.get_usize("unit count").map_err(|e| e.to_string())?;
    let mut handler = match hash_error {
        Some(e) => Err(e),
        None => open(kind, job),
    };

    let mut w = WireWriter::new();
    w.put_bytes(&RESPONSE_MAGIC);
    w.put_u16(PROTOCOL_VERSION);
    w.put_u8(REPLY_RESULTS);
    for _ in 0..count {
        let unit = (|| {
            let idx = r.get_usize("unit index")?;
            let unit = r.get_block("unit payload")?;
            Ok::<_, crate::wire::WireError>((idx, unit))
        })();
        let (idx, unit) = unit.map_err(|e| e.to_string())?;
        let result = match &mut handler {
            Ok(job) => job.run_unit(unit),
            Err(e) => Err(e.clone()),
        };
        w.put_usize(idx);
        match result {
            Ok(bytes) => {
                w.put_u8(0);
                w.put_block(&bytes);
            }
            Err(diagnostic) => {
                w.put_u8(1);
                w.put_block(diagnostic.as_bytes());
            }
        }
    }
    r.finish().map_err(|e| e.to_string())?;
    state
        .units_served
        .fetch_add(count as u64, Ordering::Relaxed);
    Ok(w.finish())
}

/// [`process_request_with`] against a fresh, throwaway [`WorkerState`] —
/// the right core for one-shot workers (stdio, spawned processes) where
/// nothing can persist between requests. A by-hash request here
/// correctly draws "need program".
///
/// # Errors
///
/// As [`process_request_with`].
pub fn process_request<F>(data: &[u8], open: F) -> Result<Vec<u8>, String>
where
    F: FnOnce(u16, &[u8]) -> Result<Box<dyn WireJob>, String>,
{
    process_request_with(data, open, &WorkerState::new())
}

/// The stdio worker shell: reads one request from `input` (framed by
/// EOF), runs it through [`process_request`], and writes the response to
/// `output` (framed by process exit). This is the entire main of the
/// `steac-worker` binary's default mode; `--serve` wraps the same core
/// in TCP envelopes ([`crate::remote::serve_tcp`]).
///
/// # Errors
///
/// A diagnostic when the request itself is unreadable (truncated bytes,
/// bad magic, version mismatch, I/O failure); the binary prints it to
/// stderr and exits nonzero.
pub fn serve_worker<R, W, F>(mut input: R, mut output: W, open: F) -> Result<(), String>
where
    R: std::io::Read,
    W: std::io::Write,
    F: FnOnce(u16, &[u8]) -> Result<Box<dyn WireJob>, String>,
{
    let mut data = Vec::new();
    input
        .read_to_end(&mut data)
        .map_err(|e| format!("reading request: {e}"))?;
    let response = process_request(&data, open)?;
    output
        .write_all(&response)
        .and_then(|()| output.flush())
        .map_err(|e| format!("writing response: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn threads_resolution_and_clamping() {
        assert_eq!(Threads::exact(0).get(), 1);
        assert_eq!(Threads::exact(7).get(), 7);
        assert_eq!(Threads::single().get(), 1);
        assert!(Threads::auto().get() >= 1);
        assert!(Threads::from_env().get() >= 1);
    }

    #[test]
    fn results_are_in_unit_order_at_every_width() {
        let expected: Vec<usize> = (0..97).map(|i| i * i).collect();
        for t in 1..=8 {
            let got = run_units(Threads::exact(t), 97, |i| i * i);
            assert_eq!(got, expected, "{t} threads");
        }
    }

    #[test]
    fn every_unit_runs_exactly_once() {
        let runs: Vec<AtomicU64> = (0..50).map(|_| AtomicU64::new(0)).collect();
        run_units(Threads::exact(4), 50, |i| {
            runs[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, r) in runs.iter().enumerate() {
            assert_eq!(r.load(Ordering::Relaxed), 1, "unit {i}");
        }
    }

    #[test]
    fn fallible_reports_lowest_indexed_error() {
        for t in 1..=8 {
            let r: Result<Vec<usize>, usize> = run_fallible(Threads::exact(t), 64, |i| {
                if i == 13 || i == 40 {
                    Err(i)
                } else {
                    Ok(i)
                }
            });
            assert_eq!(r.unwrap_err(), 13, "{t} threads");
        }
        let ok: Result<Vec<usize>, usize> = run_fallible(Threads::exact(3), 10, Ok);
        assert_eq!(ok.unwrap(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn zero_units_is_empty() {
        let got: Vec<u8> = run_units(Threads::exact(4), 0, |_| unreachable!());
        assert!(got.is_empty());
    }

    struct EchoJob;
    impl WireJob for EchoJob {
        fn run_unit(&mut self, unit: &[u8]) -> Result<Vec<u8>, String> {
            Ok(unit.to_vec())
        }
    }

    fn open_echo(_job: &[u8]) -> Result<Box<dyn WireJob>, String> {
        Ok(Box::new(EchoJob))
    }

    fn open_broken(job: &[u8]) -> Result<Box<dyn WireJob>, String> {
        Err(format!("{} bad bytes", job.len()))
    }

    #[test]
    fn job_registry_routes_by_kind() {
        let mut reg = JobRegistry::new();
        reg.register(7, "echo", open_echo);
        reg.register(8, "broken", open_broken);
        assert_eq!(
            reg.kinds().collect::<Vec<_>>(),
            [(7, "echo"), (8, "broken")]
        );
        let Ok(mut job) = reg.open(7, b"ignored") else {
            panic!("echo job should open");
        };
        assert_eq!(job.run_unit(b"abc").unwrap(), b"abc");
        let Err(err) = reg.open(8, b"xy") else {
            panic!("broken job should not open");
        };
        assert!(err.contains("opening broken job: 2 bad bytes"), "{err}");
        let Err(err) = reg.open(9, b"") else {
            panic!("unknown kind should not open");
        };
        assert!(err.contains("unknown work-unit kind 9"), "{err}");
        assert!(err.contains("7=echo"), "{err}");
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn job_registry_rejects_duplicate_kinds() {
        let mut reg = JobRegistry::new();
        reg.register(7, "echo", open_echo);
        reg.register(7, "echo2", open_echo);
    }

    // ---------- protocol v3: cache, hash verification, status ----------

    /// The kind-routing shape `process_request*` expects (the registry
    /// adds the kind itself; here we take both).
    fn open_any(_kind: u16, _job: &[u8]) -> Result<Box<dyn WireJob>, String> {
        Ok(Box::new(EchoJob))
    }

    fn unit_list(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("u{i}").into_bytes()).collect()
    }

    fn run_results(reply: &[u8], count: usize) -> Vec<(usize, Result<Vec<u8>, String>)> {
        match parse_reply(reply, count) {
            Reply::Results(items, None) => items,
            Reply::Results(_, Some(e)) => panic!("damaged reply: {e}"),
            _ => panic!("expected results"),
        }
    }

    #[test]
    fn by_hash_request_misses_then_hits_a_persistent_cache() {
        let state = WorkerState::new();
        let units = unit_list(3);
        let job = b"the job bytes";
        let hash = fnv1a64(job);

        // Cold cache: by-hash draws "need program", nothing runs.
        let req = encode_request(7, None, hash, &[0, 1, 2], &units);
        let reply = process_request_with(&req, open_any, &state).unwrap();
        assert!(matches!(parse_reply(&reply, 3), Reply::NeedProgram(h) if h == hash));
        assert_eq!(state.status().cache_misses, 1);
        assert_eq!(state.status().units_served, 0);

        // Inline ship: runs, and primes the cache.
        let req = encode_request(7, Some(job), hash, &[0, 1, 2], &units);
        let reply = process_request_with(&req, open_any, &state).unwrap();
        assert_eq!(run_results(&reply, 3).len(), 3);
        assert_eq!(state.status().cache_entries, 1);

        // Warm cache: by-hash now runs without the job bytes.
        let req = encode_request(7, None, hash, &[1], &units);
        let reply = process_request_with(&req, open_any, &state).unwrap();
        let items = run_results(&reply, 3);
        assert_eq!(items, vec![(1, Ok(b"u1".to_vec()))]);
        let status = state.status();
        assert_eq!(status.cache_hits, 1);
        assert_eq!(status.cache_misses, 1);
        assert_eq!(status.units_served, 4);
        assert_eq!(status.requests_served, 3);
        assert!(status.bytes_received > 0);
    }

    #[test]
    fn hash_mismatch_fails_every_unit_and_never_caches() {
        let state = WorkerState::new();
        let units = unit_list(2);
        let job = b"honest bytes";
        let wrong = fnv1a64(job) ^ 0xdead_beef;
        let req = encode_request(7, Some(job), wrong, &[0, 1], &units);
        let reply = process_request_with(&req, open_any, &state).unwrap();
        let items = run_results(&reply, 2);
        assert_eq!(items.len(), 2);
        for (_, result) in items {
            let e = result.unwrap_err();
            assert!(e.contains("program hash mismatch"), "{e}");
        }
        // The poisoned program must not have entered the cache.
        assert_eq!(state.status().cache_entries, 0);
        let req = encode_request(7, None, wrong, &[0], &units);
        let reply = process_request_with(&req, open_any, &state).unwrap();
        assert!(matches!(parse_reply(&reply, 2), Reply::NeedProgram(_)));
    }

    #[test]
    fn program_cache_evicts_least_recently_used() {
        let state = WorkerState::new();
        let units = unit_list(1);
        let jobs: Vec<Vec<u8>> = (0..=DEFAULT_PROGRAM_CACHE_CAPACITY)
            .map(|i| format!("job {i}").into_bytes())
            .collect();
        for job in &jobs {
            let req = encode_request(7, Some(job), fnv1a64(job), &[0], &units);
            let _ = process_request_with(&req, open_any, &state).unwrap();
        }
        let status = state.status();
        assert_eq!(status.cache_entries, DEFAULT_PROGRAM_CACHE_CAPACITY as u64);
        assert_eq!(status.cache_capacity, DEFAULT_PROGRAM_CACHE_CAPACITY as u64);
        assert_eq!(status.cache_evictions, 1);
        // A full cache that has evicted reads as thrash in --status.
        assert!(status.to_string().contains("cache under pressure"));
        // The first program was the victim; the last is still warm.
        let req = encode_request(7, None, fnv1a64(&jobs[0]), &[0], &units);
        let reply = process_request_with(&req, open_any, &state).unwrap();
        assert!(matches!(parse_reply(&reply, 1), Reply::NeedProgram(_)));
        let req = encode_request(7, None, fnv1a64(jobs.last().unwrap()), &[0], &units);
        let reply = process_request_with(&req, open_any, &state).unwrap();
        assert_eq!(run_results(&reply, 1).len(), 1);
    }

    #[test]
    fn program_cache_capacity_is_configurable() {
        // A widened cache keeps every program an interleaved workload
        // mix ships; the default-capacity state above would have
        // evicted. Capacity 0 clamps to 1 so the running program
        // always fits.
        let state = WorkerState::with_cache_capacity(32);
        let units = unit_list(1);
        let jobs: Vec<Vec<u8>> = (0..=DEFAULT_PROGRAM_CACHE_CAPACITY)
            .map(|i| format!("job {i}").into_bytes())
            .collect();
        for job in &jobs {
            let req = encode_request(7, Some(job), fnv1a64(job), &[0], &units);
            let _ = process_request_with(&req, open_any, &state).unwrap();
        }
        let status = state.status();
        assert_eq!(status.cache_entries, jobs.len() as u64);
        assert_eq!(status.cache_capacity, 32);
        assert_eq!(status.cache_evictions, 0);
        assert!(!status.to_string().contains("cache under pressure"));
        // The oldest program is still warm — no need-program round trip.
        let req = encode_request(7, None, fnv1a64(&jobs[0]), &[0], &units);
        let reply = process_request_with(&req, open_any, &state).unwrap();
        assert_eq!(run_results(&reply, 1).len(), 1);

        assert_eq!(
            WorkerState::with_cache_capacity(0).status().cache_capacity,
            1
        );
    }

    #[test]
    fn status_exchange_round_trips() {
        let state = WorkerState::new();
        let reply = process_request_with(&encode_status_request(), open_any, &state).unwrap();
        match parse_reply(&reply, 0) {
            Reply::Status(status) => {
                assert_eq!(status.requests_served, 1);
                assert_eq!(status.units_served, 0);
                assert!(status.bytes_received >= 7);
                // The Display form is the `--status` output; smoke it.
                assert!(status.to_string().contains("requests 1"));
            }
            _ => panic!("expected a status reply"),
        }
    }

    #[test]
    fn inline_job_bytes_start_at_the_documented_offset() {
        let units = unit_list(1);
        let job = b"locate me";
        let req = encode_request(7, Some(job), fnv1a64(job), &[0], &units);
        assert_eq!(
            &req[RUN_REQUEST_JOB_OFFSET..RUN_REQUEST_JOB_OFFSET + job.len()],
            job
        );
    }

    #[test]
    fn one_shot_core_answers_by_hash_with_need_program() {
        // process_request (fresh state per call) can never have a warm
        // cache: the by-hash fast path must degrade loudly, not panic.
        let units = unit_list(2);
        let req = encode_request(7, None, 0x1234, &[0, 1], &units);
        let reply = process_request(&req, open_any).unwrap();
        assert!(matches!(parse_reply(&reply, 2), Reply::NeedProgram(0x1234)));
    }
}
